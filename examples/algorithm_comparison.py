"""Compare every registered sorting algorithm on a dataset of your choice.

Reproduces the per-dataset panels of Figures 9-12 interactively: pick a
dataset and size on the command line, get one row per algorithm with
wall-clock, comparisons, moves, and auxiliary space.

Run:  python examples/algorithm_comparison.py [dataset] [n]
      python examples/algorithm_comparison.py citibike-201902 50000
"""

import sys

from repro.bench import print_table
from repro.experiments.common import time_sorter_on_stream
from repro.sorting import available_sorters, get_sorter
from repro.workloads import load_dataset


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "lognormal"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    params = {"mu": 1.0, "sigma": 1.0} if dataset in ("lognormal", "absnormal") else {}
    stream = load_dataset(dataset, n, seed=1, **params)
    summary = stream.disorder_summary()
    print(
        f"dataset {stream.name}: n={n}, inversions={summary['inversions']}, "
        f"runs={summary['runs']}, rem={summary['rem']}\n"
    )

    rows = []
    for name in available_sorters():
        timing = time_sorter_on_stream(name, stream, repeats=3)
        # One extra instrumented run for the space column.
        ts, vs = stream.sort_input()
        stats = get_sorter(name).sort(ts, vs)
        rows.append(
            (
                name,
                timing.mean_seconds * 1e3,
                timing.std_seconds * 1e3,
                stats.comparisons,
                stats.moves,
                stats.extra_space,
            )
        )
    rows.sort(key=lambda r: r[1])
    print_table(
        ("algorithm", "time_ms", "std_ms", "comparisons", "moves", "aux_space"),
        rows,
        title=f"all sorters on {stream.name} (fastest first)",
    )


if __name__ == "__main__":
    main()
