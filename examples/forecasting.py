"""Downstream forecasting on ordered vs disordered data (Figure 22).

Trains the from-scratch NumPy LSTM on the same signal twice — once in
generation order, once in arrival order under heavy delays — and shows the
accuracy gap that motivates sorting before analytics ("the disordered data
points obviously lead to incorrect statistics", §VI-E).

Run:  python examples/forecasting.py
"""

import numpy as np

from repro.bench import print_table
from repro.downstream import train_and_evaluate
from repro.theory import LogNormalDelay
from repro.workloads import TimeSeriesGenerator

N = 4_000
SIGMAS = (0.0, 0.5, 1.0, 2.0, 4.0)


def main() -> None:
    print(f"forecasting a sine-with-noise signal, {N} points, LSTM(hidden=2)\n")
    rows = []
    baseline = None
    for sigma in SIGMAS:
        stream = TimeSeriesGenerator(LogNormalDelay(1.0, sigma)).generate(N, seed=9)
        outcome = train_and_evaluate(np.asarray(stream.values), epochs=12, seed=9)
        if baseline is None:
            baseline = outcome
        rows.append(
            (
                sigma,
                outcome.train_mse,
                outcome.test_mse,
                outcome.test_mse / baseline.test_mse,
            )
        )
    print_table(
        ("sigma", "train_mse", "test_mse", "vs_ordered"),
        rows,
        title="LSTM forecast loss vs disorder (LogNormal(1, sigma) delays)",
    )
    print(
        "sigma = 0 is the fully ordered stream; growing sigma corrupts the\n"
        "temporal structure and the model degrades — the paper's Figure 22(b)."
    )


if __name__ == "__main__":
    main()
