"""Disorder analysis: from a raw arrival stream to a block-size prediction.

Walks the paper's analytical chain on a concrete dataset:

1. measure the interval inversion ratio profile (Definition 4, Figure 8a);
2. compare it with the theoretical tail F̄_Δτ(L) (Proposition 2);
3. estimate the expected merge overlap E(Q) (Proposition 4);
4. predict the optimal block size from the cost model (Proposition 5) and
   compare with what Backward-Sort's search actually picks.

Run:  python examples/disorder_analysis.py
"""

from repro.bench import print_table
from repro.core import BackwardSorter, find_block_size
from repro.metrics import iir_profile, iir_truncation_point, mean_overhang
from repro.theory import (
    ExponentialDelay,
    expected_iir,
    expected_overlap,
    optimal_block_size,
)
from repro.workloads import TimeSeriesGenerator

N = 100_000
DELAY = ExponentialDelay(0.05)  # mean delay of 20 ticks


def main() -> None:
    stream = TimeSeriesGenerator(DELAY).generate(N, seed=3)
    print(f"dataset: {N} points, delays ~ Exp(0.05) (mean 20 ticks)\n")

    # 1 + 2: measured vs predicted IIR profile.
    rows = []
    for interval, alpha in iir_profile(stream.timestamps, intervals=[1, 4, 16, 64, 256]):
        rows.append((interval, alpha, expected_iir(DELAY, interval)))
    print_table(
        ("interval L", "measured alpha", "theory F(L)"),
        rows,
        title="Proposition 2 — measured vs predicted interval inversion ratio",
    )

    # 3: overlap.
    measured_q = mean_overhang(stream.timestamps)
    bound_q = expected_overlap(DELAY)
    print(f"measured mean overlap Q: {measured_q:.2f}")
    print(f"Proposition 4 bound    : E(dtau+) = {bound_q:.2f}\n")

    # 4: block size — cost model vs the truncation heuristic vs the search.
    predicted = optimal_block_size(bound_q, n=N)
    truncation = iir_truncation_point(stream.timestamps, threshold=1e-3)
    searched = find_block_size(list(stream.timestamps)).block_size
    print(f"cost-model optimum (L* = Q): {predicted:.0f}")
    print(f"IIR truncation heuristic   : {truncation}")
    print(f"set-block-size search picks: {searched}\n")

    sorter = BackwardSorter()
    ts, vs = stream.sort_input()
    timed = sorter.timed_sort(ts, vs)
    print(
        f"Backward-Sort: {timed.seconds * 1e3:.1f} ms with L={timed.stats.block_size}, "
        f"mean merge overlap {timed.stats.mean_overlap:.2f} "
        f"(vs predicted Q {bound_q:.2f})"
    )


if __name__ == "__main__":
    main()
