"""An IoT fleet writing through the full storage engine.

The paper's motivating scenario (§I): devices emit points in generation
order, the network delays some of them, and the database must keep every
sensor queryable in time order.  This example drives the IoTDB substrate
end-to-end — separation policy, working/flushing memtables, Backward-Sort
at the flush and query call sites, TsFile sealing — and prints the
server-side metrics the paper's system experiments measure.

Run:  python examples/iot_ingestion.py
      python examples/iot_ingestion.py --obs                 # + span tree & registry dump
      python examples/iot_ingestion.py --obs --obs-export jsonl   # machine-readable
"""

import argparse

from repro.iotdb import IoTDBConfig, StorageEngine
from repro.obs import Observability
from repro.theory import AbsNormalDelay, LogNormalDelay, MixtureDelay, ConstantDelay
from repro.workloads import TimeSeriesGenerator

#: Three devices with different network behaviour.
FLEET = {
    "root.plant.turbine1": MixtureDelay(
        [(0.9, ConstantDelay(0.0)), (0.1, AbsNormalDelay(0.0, 2.0))]
    ),
    "root.plant.turbine2": AbsNormalDelay(1.0, 1.0),
    "root.fleet.truck7": LogNormalDelay(1.0, 1.5),  # flaky cellular uplink
}

POINTS_PER_DEVICE = 20_000


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable full observability (metrics + tracing) and dump it at the end",
    )
    parser.add_argument(
        "--obs-export",
        choices=("text", "jsonl", "prom"),
        default="text",
        help="export format for the --obs dump (default: text)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = IoTDBConfig(
        sorter="backward",
        memtable_flush_threshold=15_000,
        wal_enabled=True,
    )
    obs = Observability() if args.obs else None
    engine = StorageEngine.create(config, obs=obs)

    print("ingesting out-of-order streams from 3 devices...")
    for device, delay in FLEET.items():
        stream = TimeSeriesGenerator(delay).generate(POINTS_PER_DEVICE, seed=11)
        engine.write_batch(device, "temperature", stream.timestamps, stream.values)

    snapshot = engine.describe()
    reports = engine.flush_reports
    mean_flush = snapshot["flushes"]["mean_seconds"]
    mean_sort = (
        sum(r.sort_seconds for r in reports) / len(reports) if reports else 0.0
    )
    print(f"points written : {snapshot['points_written']}")
    routed = engine.separation.routed_counts()
    print(f"separation     : {routed}")
    print(f"flushes so far : seq={snapshot['flushes']['seq']} unseq={snapshot['flushes']['unseq']}")
    print(f"mean flush time: {mean_flush * 1e3:.1f} ms "
          f"(sorting: {mean_sort * 1e3:.1f} ms)\n")

    # A dashboard-style query: the last 2000 ticks of the flaky truck.
    device = "root.fleet.truck7"
    latest = engine.latest_time(device, "temperature")
    result = engine.query(device, "temperature", latest - 2_000, latest + 1)
    print(f"tail query on {device}:")
    print(f"  points returned : {len(result)}")
    print(f"  time range      : [{result.timestamps[0]}, {result.timestamps[-1]}]")
    print(f"  query sort cost : {result.stats.sort_seconds * 1e3:.2f} ms")
    print(f"  sources visited : {result.stats.sources_visited}")
    in_order = all(
        a < b for a, b in zip(result.timestamps, result.timestamps[1:])
    )
    print(f"  strictly ordered: {in_order}\n")

    # The §VI-E analytics use case: per-window averages require time order.
    buckets = engine.aggregate_windows(device, "temperature", latest - 2_000, latest, 500)
    print("GROUP BY time (window=500) on the same range:")
    for b in buckets:
        print(f"  [{b.start:>6}, {b.end:>6})  count={b.result.count:4d}  avg={b.result.avg:+.3f}")

    # Compaction folds the unsequence stragglers back into sequence files,
    # restoring the statistics fast path for aggregations.
    engine.flush_all()
    report = engine.compact()
    print(
        f"\ncompaction: {report.files_before} files -> {report.files_after} "
        f"({report.unseq_files_merged} unseq merged, {report.points_written} points)"
    )
    agg = engine.aggregate(device, "temperature", 0, latest + 1)
    print(
        f"post-compaction aggregate: count={agg.count}, "
        f"{agg.pages_skipped} pages answered from statistics alone"
    )

    engine.close()
    print("\nengine closed; all memtables flushed to sealed TsFiles")

    if obs is not None:
        print("\n--- observability export ---")
        if args.obs_export == "jsonl":
            print(obs.export_jsonlines())
        elif args.obs_export == "prom":
            print(obs.export_prometheus())
        else:
            print(obs.export_text())


if __name__ == "__main__":
    main()
