"""A guided tour of the paper's worked examples, executed live.

Walks Examples 1-7 of "Backward-Sort for Time Series in Apache IoTDB"
(ICDE 2023) against this library, printing each claim next to the value the
code produces.  Doc-as-code: if the library drifts from the paper, this
script's output drifts visibly.

Run:  python examples/paper_tour.py
"""

import numpy as np

from repro.core import BackwardSorter, SortStats, backward_merge_blocks
from repro.experiments.merge_moves import (
    backward_merge_moves_model,
    straight_merge_moves_model,
)
from repro.metrics import interval_inversion_ratio
from repro.metrics.interval_inversion import empirical_interval_inversion_ratio
from repro.theory import DiscreteUniformDelay, ExponentialDelay, expected_overlap
from repro.workloads import TimeSeriesGenerator


def example_1_delay_only() -> None:
    print("— Example 1: delay-only, not-too-distant arrivals (Figure 1)")
    # p5 (generated at 10:02) and p9 (10:08) arrive late, as in the figure.
    generation_minutes = [0, 3, 4, 5, 2, 6, 7, 9, 8, 10]  # arrival order
    ts = [1000 + m for m in generation_minutes]
    sorter = BackwardSorter(fixed_block_size=5)
    stats = sorter.sort(ts)
    print(f"  arrival order sorted locally: {ts == sorted(ts)}")
    print(f"  merges stayed inside blocks: mean overlap = {stats.mean_overlap:.1f}\n")


def example_3_merge_moves() -> None:
    print("— Example 3: straight vs backward merge (Figure 2)")
    m = 1_000
    print(f"  paper's model at M={m}: straight {straight_merge_moves_model(m)}"
          f" vs backward {backward_merge_moves_model(m)} moves (~25% saved)")
    from repro.experiments.merge_moves import run_merge_move_comparison

    measured = run_merge_move_comparison(m)
    print(f"  measured here: straight {measured.straight_moves}"
          f" vs backward {measured.backward_moves} ({measured.saving:.0%} saved)\n")


def examples_4_5_interval_inversions() -> None:
    print("— Examples 4-5: interval inversion ratio (Figure 3's idea)")
    arr = [4, 3, 9, 8, 5, 6, 11, 1, 12, 7, 10, 13, 2, 14, 15]
    for interval in (1, 3, 5):
        exact = interval_inversion_ratio(arr, interval)
        sampled = empirical_interval_inversion_ratio(list(arr), interval)
        print(f"  L={interval}: exact α={exact:.3f}, down-sampled α̃={sampled:.3f}")
    print()


def example_6_exponential() -> None:
    print("— Example 6: τ ~ Exp(2) ⇒ E(α_L) = 1/(2e^{2L})")
    dist = ExponentialDelay(2.0)
    stream = TimeSeriesGenerator(dist).generate(400_000, seed=6)
    for interval in (1, 5):
        measured = interval_inversion_ratio(stream.timestamps, interval)
        theory = dist.delay_difference_tail(float(interval))
        print(f"  L={interval}: measured α̃={measured:.6f}, theory {theory:.6f}")
    print()


def example_7_expected_overlap() -> None:
    print("— Example 7: τ ~ uniform{0,1,2,3} ⇒ E(Q) = 10/16 = 0.625")
    dist = DiscreteUniformDelay(4)
    print(f"  expected_overlap -> {expected_overlap(dist):.4f}")
    from repro.metrics import mean_overhang

    stream = TimeSeriesGenerator(dist).generate(200_000, seed=7)
    print(f"  measured mean overhang (= Σ_(k≥1) F̄(k)) -> "
          f"{mean_overhang(stream.timestamps):.4f}  (≤ the bound, as Prop. 4 requires)\n")


def algorithm_1_full_run() -> None:
    print("— Algorithm 1 end to end")
    stream = TimeSeriesGenerator(ExponentialDelay(0.2)).generate(50_000, seed=8)
    ts, vs = stream.sort_input()
    sorter = BackwardSorter()
    timed = sorter.timed_sort(ts, vs)
    s = timed.stats
    print(f"  set block size: L={s.block_size} after {s.block_size_loops} loop(s), "
          f"{s.scanned_points} points scanned (≤ 2n/L0 = {2 * len(ts) // sorter.l0})")
    print(f"  sort by blocks: {s.block_count} blocks")
    print(f"  backward merge: {s.merges} merges, mean overlap {s.mean_overlap:.2f}")
    print(f"  total: {timed.seconds * 1e3:.1f} ms, sorted = {ts == sorted(ts)}")


def main() -> None:
    print("A tour of the paper's worked examples, run against this library\n")
    example_1_delay_only()
    example_3_merge_moves()
    examples_4_5_interval_inversions()
    example_6_exponential()
    example_7_expected_overlap()
    algorithm_1_full_run()


if __name__ == "__main__":
    main()
