"""Quickstart: sort an out-of-order time series with Backward-Sort.

Generates a delay-only arrival stream (the data shape of Figure 1: points
can be late, never early), sorts it with the paper's algorithm, and prints
what the algorithm decided — the block size it searched for, how many
blocks it sorted, and how local the backward merges were.

Run:  python examples/quickstart.py
"""

from repro import BackwardSorter, get_sorter, is_sorted
from repro.theory import ExponentialDelay
from repro.workloads import TimeSeriesGenerator


def main() -> None:
    # 50k points generated one per tick, each delayed by Exp(0.2) ticks.
    generator = TimeSeriesGenerator(ExponentialDelay(0.2))
    stream = generator.generate(50_000, seed=7)
    print(f"dataset: {len(stream)} points, delay-only exponential arrivals")
    summary = stream.disorder_summary()
    print(f"disorder: {summary['inversions']} inversions, {summary['runs']} runs\n")

    sorter = BackwardSorter()  # paper defaults: theta = 0.04
    ts, vs = stream.sort_input()
    timed = sorter.timed_sort(ts, vs)
    assert is_sorted(ts)

    stats = timed.stats
    print(f"Backward-Sort finished in {timed.seconds * 1e3:.1f} ms")
    print(f"  chosen block size L : {stats.block_size}")
    print(f"  blocks sorted       : {stats.block_count}")
    print(f"  block-size loops    : {stats.block_size_loops} (Prop. 3 bound: log2(n/L0))")
    print(f"  mean merge overlap Q: {stats.mean_overlap:.2f} points")
    print(f"  comparisons / moves : {stats.comparisons} / {stats.moves}\n")

    # The same stream through the incumbent (Timsort) for comparison.
    ts2, vs2 = stream.sort_input()
    baseline = get_sorter("tim").timed_sort(ts2, vs2)
    print(f"Timsort (IoTDB's incumbent) took {baseline.seconds * 1e3:.1f} ms")
    speedup = baseline.seconds / timed.seconds
    print(f"Backward-Sort speedup over Timsort: {speedup:.2f}x")


if __name__ == "__main__":
    main()
