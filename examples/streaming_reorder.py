"""Online reordering: fix delay-only disorder as points arrive.

Backward-Sort repairs disorder in batch; the same delay analysis sizes an
*online* reorder buffer — hold arriving points briefly, release them in
timestamp order, route extreme stragglers aside (the in-memory analogue of
the separation policy).  This example sizes the buffer three ways from the
paper's quantities and shows the trade-off between buffer depth and
straggler rate.

Run:  python examples/streaming_reorder.py
"""

from repro.bench import print_table
from repro.core import ReorderBuffer
from repro.metrics import max_overhang, mean_overhang, profile_stream
from repro.theory import LogNormalDelay, expected_overlap
from repro.workloads import TimeSeriesGenerator

N = 20_000
DELAY = LogNormalDelay(1.0, 1.0)


def main() -> None:
    stream = TimeSeriesGenerator(DELAY).generate(N, seed=13)
    q_theory = expected_overlap(DELAY)
    q_measured = mean_overhang(stream.timestamps)
    deepest = max_overhang(stream.timestamps)
    print(f"stream: {N} points, delays ~ LogNormal(1, 1)")
    print(f"expected overlap E(Δτ⁺) : {q_theory:.2f}")
    print(f"measured mean overhang  : {q_measured:.2f}")
    print(f"worst single overhang   : {deepest}\n")

    rows = []
    for label, capacity in (
        ("~Q", max(1, round(q_theory))),
        ("4·Q", max(1, round(4 * q_theory))),
        ("max overhang + 1", deepest + 1),
    ):
        buf = ReorderBuffer(capacity=capacity)
        out = [t for t, _ in buf.process(zip(stream.timestamps, stream.values))]
        assert out == sorted(out)
        rows.append(
            (
                label,
                capacity,
                buf.emitted,
                buf.stragglers,
                f"{buf.stragglers / N:.3%}",
            )
        )
    print_table(
        ("buffer sizing", "capacity", "emitted in order", "stragglers", "straggler rate"),
        rows,
        title="reorder-buffer depth vs stragglers (delay-only stream)",
    )

    print("full disorder profile of the same stream:\n")
    print(profile_stream(stream.timestamps, stream.delays).render())


if __name__ == "__main__":
    main()
