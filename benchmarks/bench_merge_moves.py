"""Figure 2 / Example 3 bench: straight vs backward merge on the paper's layout.

The benchmark groups pair the two strategies on the same three-block
layout; backward merge must be the faster row, mirroring its lower move
count (paper: 3M+7 vs 4M+4; measured: larger savings still, because the
backward merge only touches overlaps).
"""

from __future__ import annotations

import pytest

from repro.core.backward_merge import backward_merge_blocks
from repro.core.instrumentation import SortStats
from repro.experiments.merge_moves import build_figure2_layout
from repro.sorting.mergesort import straight_block_merge

_M = 4_096


def _fresh_layout():
    ts, bounds = build_figure2_layout(_M)
    return (list(ts), list(range(len(ts))), bounds), {}


@pytest.mark.parametrize(
    "strategy,merge_fn",
    [
        ("straight", straight_block_merge),
        ("backward", backward_merge_blocks),
    ],
)
def test_merge_strategy(benchmark, strategy, merge_fn):
    benchmark.group = f"fig2 merge of 3 blocks, M={_M}"

    def run(ts, vs, bounds):
        merge_fn(ts, vs, bounds, SortStats())
        assert ts[0] == 1

    benchmark.pedantic(run, setup=_fresh_layout, rounds=5)
