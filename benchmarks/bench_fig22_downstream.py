"""Figure 22 bench: LSTM training on ordered vs disordered series.

Times one full train-and-evaluate episode per disorder level and records
the resulting test MSE as extra info — the benchmark table's MSE column
must grow with σ while wall-clock stays flat (disorder hurts accuracy, not
speed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.downstream import train_and_evaluate
from repro.theory import LogNormalDelay
from repro.workloads import TimeSeriesGenerator

_SIGMAS = (0.0, 1.0, 4.0)
_N = 1_500
_EPOCHS = 6


@pytest.mark.parametrize("sigma", _SIGMAS)
def test_forecast_training(benchmark, sigma):
    stream = TimeSeriesGenerator(LogNormalDelay(1.0, sigma)).generate(_N, seed=22)
    values = np.asarray(stream.values)
    benchmark.group = f"fig22 LSTM fit, n={_N}, epochs={_EPOCHS}"

    def run():
        return train_and_evaluate(values, epochs=_EPOCHS, seed=22)

    outcome = benchmark.pedantic(run, rounds=1)
    benchmark.extra_info["test_mse"] = outcome.test_mse
    assert outcome.test_mse > 0
