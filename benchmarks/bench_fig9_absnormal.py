"""Figure 9 bench: sort time on AbsNormal(µ, σ) — one group per (µ, σ).

Within each group the pytest-benchmark table reproduces one sub-plot of
Figure 9: six algorithms on the same stream.  Expected shape: Backward-Sort
fastest, everything slower as σ grows.
"""

from __future__ import annotations

import pytest

from repro.sorting import PAPER_ALGORITHMS, get_sorter
from repro.workloads import abs_normal

from conftest import SORT_N

_SIGMAS = (0.5, 1.0, 4.0)
_MU = 1.0


def _fresh_arrays(stream):
    def _setup():
        ts, vs = stream.sort_input()
        return (ts, vs), {}

    return _setup


@pytest.mark.parametrize("sigma", _SIGMAS)
@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_sort_time(benchmark, algorithm, sigma):
    stream = abs_normal(SORT_N, mu=_MU, sigma=sigma, seed=9)
    benchmark.group = f"fig9 absnormal(mu={_MU:g}, sigma={sigma:g}) n={SORT_N}"

    def run(ts, vs):
        get_sorter(algorithm).sort(ts, vs)
        assert ts[0] <= ts[-1]

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)
