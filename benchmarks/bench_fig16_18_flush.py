"""Figures 16-18 bench: flush time (with sort share) per sorting algorithm.

Benchmarks the flush pipeline directly: fill a memtable from a dataset's
arrival stream, transition it to flushing, and time sort → encode → write
into an in-memory TsFile.  The extra-info column records the sort share of
the flush, reproducing the stacked split of Figures 16-18.  Expected shape:
the Backward row flushes fastest; its sort share is the smallest.
"""

from __future__ import annotations

import io

import pytest

from repro.iotdb import IoTDBConfig, MemTable, TsFileWriter, flush_memtable
from repro.sorting import PAPER_ALGORITHMS, get_sorter
from repro.workloads import load_dataset

from conftest import SYSTEM_POINTS

_DATASETS = ("lognormal", "samsung-s10")


def _fresh_memtable(dataset):
    config = IoTDBConfig(memtable_flush_threshold=SYSTEM_POINTS + 1)
    params = {"mu": 1.0, "sigma": 1.0} if dataset == "lognormal" else {}
    stream = load_dataset(dataset, SYSTEM_POINTS, seed=16, **params)

    def _setup():
        memtable = MemTable(config)
        memtable.write_batch("root.d1", "s1", stream.timestamps, stream.values)
        memtable.mark_flushing()
        return (memtable,), {}

    return _setup


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_flush_time(benchmark, algorithm, dataset):
    benchmark.group = f"fig16-18 flush of {SYSTEM_POINTS} pts, {dataset}"
    sorter = get_sorter(algorithm)
    reports = []

    def run(memtable):
        report = flush_memtable(memtable, TsFileWriter(io.BytesIO()), sorter)
        reports.append(report)

    benchmark.pedantic(run, setup=_fresh_memtable(dataset), rounds=3)
    mean_sort = sum(r.sort_seconds for r in reports) / len(reports)
    mean_total = sum(r.total_seconds for r in reports) / len(reports)
    benchmark.extra_info["sort_share"] = mean_sort / mean_total
    assert all(r.total_points == SYSTEM_POINTS for r in reports)
