"""Compaction bench: the deferred cost of the separation policy, paid once.

Measures (a) the full-merge compaction pass itself, and (b) the query-side
payoff: a tail time-range query against a fragmented engine (many seq files
plus unseq overwrites) vs the same engine after compaction.
"""

from __future__ import annotations

import pytest

from repro.iotdb import IoTDBConfig, StorageEngine
from repro.workloads import log_normal

_N = 8_000


def _fragmented_engine() -> StorageEngine:
    engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=_N // 8, page_size=256))
    stream = log_normal(_N, mu=1.0, sigma=1.0, seed=23)
    engine.write_batch("d", "s", stream.timestamps, stream.values)
    # Rewrite an early slice so unsequence files exist.
    for t in range(0, _N // 10):
        engine.write("d", "s", t, 0.0)
    engine.flush_all()
    return engine


def test_compaction_pass(benchmark):
    benchmark.group = "compaction pass"

    def setup():
        return (_fragmented_engine(),), {}

    report = benchmark.pedantic(lambda e: e.compact(), setup=setup, rounds=3)
    assert report.files_after == 1
    assert report.unseq_files_merged >= 1


@pytest.mark.parametrize("compacted", (False, True), ids=("fragmented", "compacted"))
def test_query_before_after(benchmark, compacted):
    benchmark.group = "tail query: fragmented vs compacted"
    engine = _fragmented_engine()
    if compacted:
        engine.compact()

    def run():
        return engine.query("d", "s", _N - 2_000, _N)

    result = benchmark(run)
    assert len(result) == 2_000
