"""Figure 8 bench: (a) IIR profile cost and (b) sort time vs fixed block size.

Figure 8(b)'s U-curve appears directly in the benchmark table: within each
dataset group, the fixed-block-size rows are slowest at the degenerate
extremes (tiny L → insertion-like, L = N → Quicksort) and fastest at an
interior optimum near the dataset's IIR truncation point.
"""

from __future__ import annotations

import pytest

from repro.metrics import iir_profile
from repro.sorting import get_sorter
from repro.workloads import load_dataset

from conftest import SORT_N

_BLOCK_SIZES = (8, 64, 512, 4_096, SORT_N)
_DATASETS = ("samsung-s10", "citibike-201902")


def _fresh_arrays(stream):
    def _setup():
        ts, vs = stream.sort_input()
        return (ts, vs), {}

    return _setup


@pytest.mark.parametrize("dataset", _DATASETS)
@pytest.mark.parametrize("block_size", _BLOCK_SIZES)
def test_fixed_block_size_sort(benchmark, dataset, block_size):
    stream = load_dataset(dataset, SORT_N, seed=8)
    benchmark.group = f"fig8b {dataset} n={SORT_N} (sort time vs fixed L)"

    def run(ts, vs):
        get_sorter("backward", fixed_block_size=block_size).sort(ts, vs)
        assert ts[0] <= ts[-1]

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)


@pytest.mark.parametrize("dataset", _DATASETS)
def test_iir_profile_cost(benchmark, dataset):
    """Figure 8(a)'s measurement itself: profiling α over all intervals."""
    stream = load_dataset(dataset, SORT_N, seed=8)
    benchmark.group = "fig8a IIR profile computation"
    profile = benchmark(lambda: iir_profile(stream.timestamps))
    assert profile[0][0] == 1
