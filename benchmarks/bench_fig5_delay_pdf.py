"""Figure 5 / Example 6 bench: Δτ analytics and the empirical α estimator.

Benchmarks the two measurement paths that feed the figure — the numeric
convolution of f_Δτ and the interval-inversion estimate on a generated
stream — and asserts the Example 6 agreement inside the benchmarked body.
"""

from __future__ import annotations

import pytest

from repro.metrics import interval_inversion_ratio
from repro.theory import ExponentialDelay, delay_difference_pdf_numeric
from repro.workloads import exponential

from conftest import SORT_N


@pytest.mark.parametrize("lam", (1.0, 2.0, 3.0))
def test_numeric_pdf(benchmark, lam):
    dist = ExponentialDelay(lam)
    benchmark.group = "fig5 numeric f_dtau(1.0)"
    value = benchmark(lambda: delay_difference_pdf_numeric(dist, 1.0))
    assert value == pytest.approx(dist.delay_difference_pdf(1.0), rel=1e-3)


@pytest.mark.parametrize("interval", (1, 5))
def test_empirical_alpha(benchmark, interval):
    stream = exponential(SORT_N * 5, lam=2.0, seed=5)
    dist = ExponentialDelay(2.0)
    benchmark.group = "example6 empirical alpha"
    alpha = benchmark(lambda: interval_inversion_ratio(stream.timestamps, interval))
    assert alpha == pytest.approx(
        dist.delay_difference_tail(float(interval)), rel=0.3, abs=5e-5
    )
