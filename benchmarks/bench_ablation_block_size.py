"""Ablations of Backward-Sort's design choices (DESIGN.md §6).

Four knobs, each benchmarked against the paper's default on the same
moderately disordered stream:

* degenerate block sizes (Proposition 5: L=1 → insertion, L=N → quicksort)
  vs the searched L;
* the Θ threshold (paper default 0.04);
* block-size growth strategy (doubling vs ratio-proportional jumps);
* the per-block sorting algorithm ("Quicksort is used in default and can
  be substituted").
"""

from __future__ import annotations

import pytest

from repro.sorting import get_sorter
from repro.workloads import log_normal

_N = 20_000


def _stream():
    return log_normal(_N, mu=1.0, sigma=1.0, seed=42)


def _fresh_arrays(stream):
    def _setup():
        ts, vs = stream.sort_input()
        return (ts, vs), {}

    return _setup


@pytest.mark.parametrize("label,kwargs", [
    ("searched-L", {}),
    ("L=64", {"fixed_block_size": 64}),
    ("L=1024", {"fixed_block_size": 1024}),
    ("L=N (quicksort)", {"fixed_block_size": _N}),
])
def test_block_size_choice(benchmark, label, kwargs):
    benchmark.group = "ablation: block size (lognormal(1,1))"
    stream = _stream()

    def run(ts, vs):
        get_sorter("backward", **kwargs).sort(ts, vs)

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)


def test_block_size_one_is_quadratic():
    """L=1 degenerates to insertion sort; verified on a smaller array so the
    ablation suite stays fast (O(n²) at n=20k would take minutes)."""
    stream = log_normal(3_000, mu=1.0, sigma=1.0, seed=42)
    ts, vs = stream.sort_input()
    stats = get_sorter("backward", fixed_block_size=1).sort(ts, vs)
    assert ts == sorted(ts)
    assert stats.block_size == 1


@pytest.mark.parametrize("theta", (0.01, 0.04, 0.16))
def test_theta_sensitivity(benchmark, theta):
    benchmark.group = "ablation: theta threshold"
    stream = _stream()

    def run(ts, vs):
        get_sorter("backward", theta=theta).sort(ts, vs)

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)


@pytest.mark.parametrize("growth", ("double", "ratio"))
def test_growth_strategy(benchmark, growth):
    benchmark.group = "ablation: block-size growth strategy"
    stream = _stream()

    def run(ts, vs):
        get_sorter("backward", growth=growth).sort(ts, vs)

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)


@pytest.mark.parametrize("block_sort", ("quick", "insertion", "tim", "run-adaptive"))
def test_block_sorter_substitution(benchmark, block_sort):
    benchmark.group = "ablation: per-block sorting algorithm"
    stream = _stream()

    def run(ts, vs):
        get_sorter("backward", block_sort=block_sort).sort(ts, vs)

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)


@pytest.mark.parametrize("l0", (4, 32, 128))
def test_initial_block_size(benchmark, l0):
    """The paper's L0 = 4 vs this implementation's Python-tuned default 32."""
    benchmark.group = "ablation: initial block size L0"
    stream = _stream()

    def run(ts, vs):
        get_sorter("backward", l0=l0).sort(ts, vs)

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)
