"""Online vs batch reordering on the same delay-only stream.

Compares the streaming :class:`ReorderBuffer` (sized from the overlap
analysis) against batch Backward-Sort for producing a fully ordered output.
The batch path should win on raw throughput (tight loops, no heap), while
the buffer's value is bounded latency — the extra-info column records its
straggler rate to show the size/completeness trade-off.
"""

from __future__ import annotations

import pytest

from repro.core import ReorderBuffer
from repro.metrics import max_overhang
from repro.sorting import get_sorter
from repro.workloads import log_normal

_N = 20_000


def _stream():
    return log_normal(_N, mu=1.0, sigma=1.0, seed=29)


def test_batch_backward_sort(benchmark):
    benchmark.group = f"online vs batch reordering n={_N}"
    stream = _stream()

    def setup():
        return (stream.sort_input(),), {}

    def run(arrays):
        ts, vs = arrays
        get_sorter("backward").sort(ts, vs)
        return ts

    benchmark.pedantic(run, setup=setup, rounds=3)


@pytest.mark.parametrize("sizing", ("tight", "lossless"))
def test_online_reorder_buffer(benchmark, sizing):
    benchmark.group = f"online vs batch reordering n={_N}"
    stream = _stream()
    if sizing == "lossless":
        capacity = max_overhang(stream.timestamps) + 1
    else:
        capacity = 64
    arrivals = list(zip(stream.timestamps, stream.values))

    def run():
        buf = ReorderBuffer(capacity=capacity)
        out = list(buf.process(arrivals))
        return buf, out

    buf, out = benchmark.pedantic(run, rounds=3)
    benchmark.extra_info["capacity"] = capacity
    benchmark.extra_info["straggler_rate"] = buf.stragglers / _N
    assert [t for t, _ in out] == sorted(t for t, _ in out)
