"""Figure 10 bench: sort time on LogNormal(µ, σ) — one group per σ.

Expected shape: like Figure 9 but heavier-tailed; Patience Sort's relative
position degrades ("Patience Sort is not stable, especially in LogNormal
Datasets"), Backward-Sort leads.
"""

from __future__ import annotations

import pytest

from repro.sorting import PAPER_ALGORITHMS, get_sorter
from repro.workloads import log_normal

from conftest import SORT_N

_SIGMAS = (0.5, 1.0, 2.0)
_MU = 1.0


def _fresh_arrays(stream):
    def _setup():
        ts, vs = stream.sort_input()
        return (ts, vs), {}

    return _setup


@pytest.mark.parametrize("sigma", _SIGMAS)
@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_sort_time(benchmark, algorithm, sigma):
    stream = log_normal(SORT_N, mu=_MU, sigma=sigma, seed=10)
    benchmark.group = f"fig10 lognormal(mu={_MU:g}, sigma={sigma:g}) n={SORT_N}"

    def run(ts, vs):
        get_sorter(algorithm).sort(ts, vs)
        assert ts[0] <= ts[-1]

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)
