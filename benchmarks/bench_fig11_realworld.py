"""Figure 11 bench: sort time on the four real-world(simulated) datasets.

Expected shape: Backward-Sort clearly ahead on the mildly disordered
Samsung traces; at worst at parity with Quicksort on the heavily disordered
CitiBike traces (the Proposition 5 degenerate regime); YSort collapses on
CitiBike.
"""

from __future__ import annotations

import pytest

from repro.sorting import PAPER_ALGORITHMS, get_sorter
from repro.workloads import REAL_WORLD_DATASETS, load_dataset

from conftest import SORT_N


def _fresh_arrays(stream):
    def _setup():
        ts, vs = stream.sort_input()
        return (ts, vs), {}

    return _setup


@pytest.mark.parametrize("dataset", REAL_WORLD_DATASETS)
@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_sort_time(benchmark, algorithm, dataset):
    stream = load_dataset(dataset, SORT_N, seed=11)
    benchmark.group = f"fig11 {dataset} n={SORT_N}"

    def run(ts, vs):
        get_sorter(algorithm).sort(ts, vs)
        assert ts[0] <= ts[-1]

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)
