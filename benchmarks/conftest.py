"""Shared configuration for the per-figure benchmark targets.

Run with::

    pytest benchmarks/ --benchmark-only

Each figure of the paper has one module here; benchmarks are grouped so the
pytest-benchmark summary table reads like the corresponding figure (one
group per dataset/panel, one row per algorithm).  Sizes default to the
"small" scale (20k-point arrays, 8k-point system workloads) so the whole
suite completes in a few minutes of pure Python; the experiment drivers in
``repro.experiments`` accept larger scales when more fidelity is wanted.
"""

from __future__ import annotations

import pytest

#: Array size for pure-algorithm benchmarks.
SORT_N = 20_000
#: Ingested points for system benchmarks.
SYSTEM_POINTS = 8_000
#: Reduced write-percentage grid for benchmark cells (full grid in
#: repro.experiments).
BENCH_WRITE_PERCENTAGES = (0.5, 0.95)


@pytest.fixture
def sort_n() -> int:
    return SORT_N


@pytest.fixture
def system_points() -> int:
    return SYSTEM_POINTS
