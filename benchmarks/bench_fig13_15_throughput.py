"""Figures 13-15 bench: query throughput vs write percentage.

Each benchmark cell runs one full system workload (ingest + tail queries)
against a fresh engine; the extra-info column carries the measured query
throughput so the table reports both wall-clock and the figure's metric.
Expected shape: the Backward row sustains the highest throughput per group.
"""

from __future__ import annotations

import pytest

from repro.bench import SystemWorkloadConfig, run_system_benchmark
from repro.iotdb import IoTDBConfig
from repro.sorting import PAPER_ALGORITHMS

from conftest import BENCH_WRITE_PERCENTAGES, SYSTEM_POINTS

_DATASETS = (
    ("lognormal", {"mu": 1.0, "sigma": 1.0}),
    ("citibike-201902", {}),
)


@pytest.mark.parametrize("dataset,params", _DATASETS, ids=[d for d, _ in _DATASETS])
@pytest.mark.parametrize("write_pct", BENCH_WRITE_PERCENTAGES)
@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_query_throughput(benchmark, algorithm, write_pct, dataset, params):
    config = SystemWorkloadConfig(
        dataset=dataset,
        dataset_params=params,
        total_points=SYSTEM_POINTS,
        write_percentage=write_pct,
        seed=13,
    )
    benchmark.group = f"fig13-15 {dataset} wp={write_pct:g}"

    def run():
        result = run_system_benchmark(
            config,
            sorter=algorithm,
            engine_config=IoTDBConfig(
                sorter=algorithm, memtable_flush_threshold=SYSTEM_POINTS // 4
            ),
        )
        benchmark.extra_info["query_throughput_pts_per_s"] = result.query_throughput
        return result

    result = benchmark.pedantic(run, rounds=2)
    assert result.total_points == SYSTEM_POINTS
