"""Figures 19-21 bench: total test latency per sorting algorithm.

Each cell times the complete benchmark episode — batched ingestion,
interleaved tail queries, every triggered flush, and the final checkpoint —
which is exactly the paper's "total test latency".  Expected shape: the
Backward row lowest, with differences widening at lower write percentages
(more queries → more query-path sorting).
"""

from __future__ import annotations

import pytest

from repro.bench import SystemWorkloadConfig, run_system_benchmark
from repro.iotdb import IoTDBConfig
from repro.sorting import PAPER_ALGORITHMS

from conftest import BENCH_WRITE_PERCENTAGES, SYSTEM_POINTS


@pytest.mark.parametrize("write_pct", BENCH_WRITE_PERCENTAGES)
@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_total_latency(benchmark, algorithm, write_pct):
    config = SystemWorkloadConfig(
        dataset="absnormal",
        dataset_params={"mu": 1.0, "sigma": 2.0},
        total_points=SYSTEM_POINTS,
        write_percentage=write_pct,
        seed=19,
    )
    benchmark.group = f"fig19-21 absnormal(1,2) wp={write_pct:g}"

    def run():
        return run_system_benchmark(
            config,
            sorter=algorithm,
            engine_config=IoTDBConfig(
                sorter=algorithm, memtable_flush_threshold=SYSTEM_POINTS // 4
            ),
        )

    result = benchmark.pedantic(run, rounds=2)
    assert result.flush_count >= 4
