"""Ablations of the storage substrate: TVList array size and encodings.

The TVList backing-array size (IoTDB default 32, §V-B) trades allocation
count against wasted slots; the encoding choice trades flush CPU against
file size.  Both are benchmarked on the same flush workload.
"""

from __future__ import annotations

import io

import pytest

from repro.iotdb import IoTDBConfig, MemTable, TsFileWriter, flush_memtable, get_encoder
from repro.iotdb.config import TSDataType
from repro.sorting import get_sorter
from repro.workloads import log_normal

_N = 8_000


@pytest.mark.parametrize("array_size", (8, 32, 256))
def test_tvlist_array_size_ingest(benchmark, array_size):
    benchmark.group = "ablation: TVList array size (ingest)"
    stream = log_normal(_N, mu=1.0, sigma=1.0, seed=7)
    config = IoTDBConfig(array_size=array_size, memtable_flush_threshold=_N + 1)

    def run():
        memtable = MemTable(config)
        memtable.write_batch("d", "s", stream.timestamps, stream.values)
        return memtable

    memtable = benchmark(run)
    benchmark.extra_info["allocated_slots"] = memtable.memory_slots()


@pytest.mark.parametrize("array_size", (8, 32, 256))
def test_tvlist_array_size_flush(benchmark, array_size):
    benchmark.group = "ablation: TVList array size (flush)"
    stream = log_normal(_N, mu=1.0, sigma=1.0, seed=7)
    config = IoTDBConfig(array_size=array_size, memtable_flush_threshold=_N + 1)
    sorter = get_sorter("backward")

    def setup():
        memtable = MemTable(config)
        memtable.write_batch("d", "s", stream.timestamps, stream.values)
        memtable.mark_flushing()
        return (memtable,), {}

    benchmark.pedantic(
        lambda mt: flush_memtable(mt, TsFileWriter(io.BytesIO()), sorter),
        setup=setup,
        rounds=3,
    )


@pytest.mark.parametrize("encoding", ("plain", "gorilla"))
def test_value_encoding_cost(benchmark, encoding):
    """Encoder CPU on a sorted double column (the flush's encode stage)."""
    benchmark.group = "ablation: value encoding (8k doubles)"
    stream = log_normal(_N, mu=1.0, sigma=1.0, seed=7)
    values = sorted(stream.values)
    blob = benchmark(lambda: get_encoder(encoding, TSDataType.DOUBLE).encode(values))
    benchmark.extra_info["bytes"] = len(blob)


@pytest.mark.parametrize("encoding", ("plain", "ts2diff"))
def test_time_encoding_cost(benchmark, encoding):
    """Encoder CPU + output size on a sorted timestamp column."""
    benchmark.group = "ablation: time encoding (8k sorted int64)"
    ts = sorted(log_normal(_N, mu=1.0, sigma=1.0, seed=7).timestamps)
    blob = benchmark(lambda: get_encoder(encoding, TSDataType.INT64).encode(ts))
    benchmark.extra_info["bytes"] = len(blob)


@pytest.mark.parametrize("compression", ("none", "zlib"))
def test_page_compression_flush(benchmark, compression):
    """Flush cost and file size with and without page compression."""
    benchmark.group = "ablation: page compression (flush)"
    stream = log_normal(_N, mu=1.0, sigma=1.0, seed=7)
    config = IoTDBConfig(compression=compression, memtable_flush_threshold=_N + 1)
    sorter = get_sorter("backward")

    def setup():
        memtable = MemTable(config)
        memtable.write_batch("d", "s", stream.timestamps, stream.values)
        memtable.mark_flushing()
        return (memtable,), {}

    report = benchmark.pedantic(
        lambda mt: flush_memtable(mt, TsFileWriter(io.BytesIO()), sorter, config),
        setup=setup,
        rounds=3,
    )
    benchmark.extra_info["file_bytes"] = report.file_bytes


@pytest.mark.parametrize("strategy", ("flatten", "direct"))
def test_tvlist_sort_strategy(benchmark, strategy):
    """§V-C ablation: flatten-sort-writeback vs index-arithmetic in place.

    In Java the direct path wins (no copy); in CPython the per-access
    div/mod usually costs more than the flat copy saves — measured here.
    """
    benchmark.group = "ablation: TVList sort strategy (backward sort)"
    stream = log_normal(_N, mu=1.0, sigma=1.0, seed=7)

    def setup():
        memtable = MemTable(IoTDBConfig(memtable_flush_threshold=_N + 1))
        memtable.write_batch("d", "s", stream.timestamps, stream.values)
        return (memtable.chunk("d", "s"),), {}

    if strategy == "flatten":
        sorter = get_sorter("backward")

        def run(tvlist):
            tvlist.sort_in_place(sorter)
    else:
        from repro.iotdb.tvlist_sort import backward_sort_tvlist_inplace

        def run(tvlist):
            backward_sort_tvlist_inplace(tvlist)

    benchmark.pedantic(run, setup=setup, rounds=3)
