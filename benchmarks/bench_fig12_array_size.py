"""Figure 12 bench: sort time vs array size — one group per size.

Expected shape: roughly linearithmic growth for every algorithm with
Backward-Sort lowest at each size (rankings noisier at the smallest size,
as the paper notes for sub-millisecond runs).
"""

from __future__ import annotations

import pytest

from repro.sorting import PAPER_ALGORITHMS, get_sorter
from repro.workloads import log_normal

_SIZES = (2_000, 20_000, 60_000)


def _fresh_arrays(stream):
    def _setup():
        ts, vs = stream.sort_input()
        return (ts, vs), {}

    return _setup


@pytest.mark.parametrize("n", _SIZES)
@pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
def test_sort_time(benchmark, algorithm, n):
    stream = log_normal(n, mu=0.0, sigma=1.0, seed=12)
    benchmark.group = f"fig12 lognormal(0,1) n={n}"

    def run(ts, vs):
        get_sorter(algorithm).sort(ts, vs)
        assert ts[0] <= ts[-1]

    benchmark.pedantic(run, setup=_fresh_arrays(stream), rounds=3)
