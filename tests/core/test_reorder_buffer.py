"""Online reorder buffer: ordering guarantees and straggler routing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reorder_buffer import ReorderBuffer
from repro.errors import InvalidParameterError
from repro.metrics import max_overhang
from tests.conftest import make_delayed_stream


class TestReorderBuffer:
    def test_output_sorted(self):
        buf = ReorderBuffer(capacity=8)
        arrivals = [(3, "a"), (1, "b"), (2, "c"), (5, "d"), (4, "e")]
        out = list(buf.process(arrivals))
        assert [t for t, _ in out] == [1, 2, 3, 4, 5]
        assert buf.stragglers == 0

    def test_fifo_on_equal_timestamps(self):
        buf = ReorderBuffer(capacity=4)
        out = list(buf.process([(1, "first"), (1, "second"), (0, "z")]))
        assert out == [(0, "z"), (1, "first"), (1, "second")]

    def test_capacity_forces_emission(self):
        buf = ReorderBuffer(capacity=2)
        emitted = list(buf.push(10, None))
        emitted += list(buf.push(11, None))
        assert emitted == []
        emitted += list(buf.push(12, None))
        assert [t for t, _ in emitted] == [10]
        assert len(buf) == 2

    def test_straggler_routed_not_emitted(self):
        buf = ReorderBuffer(capacity=1)
        out = list(buf.push(10, None)) + list(buf.push(20, None))
        assert [t for t, _ in out] == [10]
        out = list(buf.push(5, "late"))  # below watermark 10
        assert out == []
        assert buf.stragglers == 1
        assert buf.late_points == [(5, "late")]

    def test_custom_late_callback(self):
        seen = []
        buf = ReorderBuffer(capacity=1, on_late=lambda t, v: seen.append(t))
        list(buf.push(10, None))
        list(buf.push(20, None))
        list(buf.push(1, None))
        assert seen == [1]
        assert buf.late_points == []

    def test_capacity_validation(self):
        with pytest.raises(InvalidParameterError):
            ReorderBuffer(capacity=0)

    def test_sized_by_max_overhang_loses_nothing(self):
        # A buffer at least as deep as the worst overhang reorders the whole
        # stream with zero stragglers — the link to the paper's Q analysis.
        stream = make_delayed_stream(5_000, lam=0.3, seed=6)
        depth = max_overhang(stream.timestamps) + 1
        buf = ReorderBuffer(capacity=depth)
        out = list(buf.process(zip(stream.timestamps, stream.values)))
        assert [t for t, _ in out] == sorted(stream.timestamps)
        assert buf.stragglers == 0

    def test_undersized_buffer_degrades_gracefully(self):
        stream = make_delayed_stream(5_000, lam=0.05, seed=7)  # long delays
        buf = ReorderBuffer(capacity=2)
        out = [t for t, _ in buf.process(zip(stream.timestamps, stream.values))]
        assert out == sorted(out)  # emitted prefix is always ordered
        assert buf.emitted + buf.stragglers == 5_000
        assert buf.stragglers > 0

    @settings(max_examples=40, deadline=None)
    @given(
        ts=st.lists(st.integers(0, 200), max_size=150),
        capacity=st.integers(1, 50),
    )
    def test_property_emitted_sorted_and_complete(self, ts, capacity):
        buf = ReorderBuffer(capacity=capacity)
        out = [t for t, _ in buf.process((t, None) for t in ts)]
        assert out == sorted(out)
        assert len(out) + buf.stragglers == len(ts)
        # Emitted points plus stragglers form a permutation of the input.
        late = [t for t, _ in buf.late_points]
        assert sorted(out + late) == sorted(ts)
