"""Set-block-size phase: estimator semantics and Proposition 3 bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.block_size import (
    BlockSizeResult,
    empirical_interval_inversion_ratio,
    find_block_size,
)
from repro.core.instrumentation import SortStats
from repro.errors import InvalidParameterError
from tests.conftest import make_delayed_stream


class TestEmpiricalIIR:
    def test_example5_style_sampling(self):
        # An Example 5 analogue: anchors at multiples of L, one sampled pair
        # per anchor.  Array engineered so exactly one of the four sampled
        # pairs at L=3 is inverted.
        ts = [4, 3, 5, 9, 8, 10, 11, 6, 12, 12, 7, 15, 2, 13, 14]
        # anchors 0,3,6,9: pairs (4,9),(9,11),(11,12),(12,2) -> 1/4
        assert empirical_interval_inversion_ratio(ts, 3) == pytest.approx(0.25)

    def test_sorted_input_zero(self):
        assert empirical_interval_inversion_ratio(list(range(100)), 4) == 0.0

    def test_reverse_input_one(self):
        assert empirical_interval_inversion_ratio(list(range(100, 0, -1)), 4) == 1.0

    def test_interval_beyond_length(self):
        assert empirical_interval_inversion_ratio([3, 1], 5) == 0.0

    def test_rejects_bad_interval(self):
        with pytest.raises(InvalidParameterError):
            empirical_interval_inversion_ratio([1, 2, 3], 0)
        with pytest.raises(InvalidParameterError):
            empirical_interval_inversion_ratio([1, 2, 3], 2, anchor_stride=0)

    def test_scanned_points_recorded(self):
        stats = SortStats()
        empirical_interval_inversion_ratio(list(range(100)), 10, stats=stats)
        assert stats.scanned_points == 9

    @settings(max_examples=40, deadline=None)
    @given(ts=st.lists(st.integers(0, 1000), min_size=2, max_size=200), interval=st.integers(1, 50))
    def test_ratio_in_unit_interval(self, ts, interval):
        ratio = empirical_interval_inversion_ratio(ts, interval)
        assert 0.0 <= ratio <= 1.0


class TestFindBlockSize:
    def test_sorted_input_stops_at_l0(self):
        result = find_block_size(list(range(10_000)), theta=0.04, l0=4)
        assert result.block_size == 4
        assert result.loops == 1

    def test_reverse_input_degenerates_to_n(self):
        n = 1024
        result = find_block_size(list(range(n, 0, -1)), theta=0.04, l0=4)
        assert result.block_size == n

    def test_block_size_grows_with_disorder(self):
        mild = make_delayed_stream(20_000, lam=2.0, seed=1).timestamps
        wild = make_delayed_stream(20_000, lam=0.02, seed=1).timestamps
        l_mild = find_block_size(mild).block_size
        l_wild = find_block_size(wild).block_size
        assert l_wild > l_mild

    def test_proposition3_scan_bound(self):
        # Total scanned points <= 2 n / L0 and loops <= log2(n/L0) + 1.
        import math

        for lam in (0.02, 0.1, 0.5, 2.0):
            ts = make_delayed_stream(30_000, lam=lam, seed=2).timestamps
            n = len(ts)
            l0 = 4
            result = find_block_size(ts, theta=0.04, l0=l0)
            assert result.scanned_points <= 2 * n / l0
            assert result.loops <= math.log2(n / l0) + 2

    def test_ratio_growth_reaches_threshold_faster(self):
        ts = make_delayed_stream(30_000, lam=0.02, seed=3).timestamps
        doubling = find_block_size(ts, growth="double")
        ratio = find_block_size(ts, growth="ratio")
        assert ratio.loops <= doubling.loops
        assert ratio.block_size >= 1

    def test_stats_accumulated(self):
        stats = SortStats()
        result = find_block_size(make_delayed_stream(5_000).timestamps, stats=stats)
        assert stats.block_size_loops == result.loops
        assert stats.scanned_points == result.scanned_points

    def test_history_records_each_probe(self):
        result = find_block_size(make_delayed_stream(5_000, lam=0.1).timestamps)
        assert len(result.history) == result.loops
        sizes = [size for size, _ in result.history]
        assert sizes == sorted(sizes)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            find_block_size([1, 2], theta=0.0)
        with pytest.raises(InvalidParameterError):
            find_block_size([1, 2], theta=1.5)
        with pytest.raises(InvalidParameterError):
            find_block_size([1, 2], l0=0)
        with pytest.raises(InvalidParameterError):
            find_block_size([1, 2], growth="triple")

    def test_empty_and_tiny_inputs(self):
        assert isinstance(find_block_size([]), BlockSizeResult)
        assert find_block_size([5]).block_size >= 1
        assert find_block_size([2, 1]).block_size >= 1
