"""Set-block-size phase: estimator semantics and Proposition 3 bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.block_size import (
    BlockSizeResult,
    empirical_interval_inversion_ratio,
    find_block_size,
)
from repro.core.instrumentation import SortStats
from repro.errors import InvalidParameterError
from tests.conftest import make_delayed_stream


class TestEmpiricalIIR:
    def test_example5_style_sampling(self):
        # An Example 5 analogue: anchors at multiples of L, one sampled pair
        # per anchor.  Array engineered so exactly one of the four sampled
        # pairs at L=3 is inverted.
        ts = [4, 3, 5, 9, 8, 10, 11, 6, 12, 12, 7, 15, 2, 13, 14]
        # anchors 0,3,6,9: pairs (4,9),(9,11),(11,12),(12,2) -> 1/4
        assert empirical_interval_inversion_ratio(ts, 3) == pytest.approx(0.25)

    def test_sorted_input_zero(self):
        assert empirical_interval_inversion_ratio(list(range(100)), 4) == 0.0

    def test_reverse_input_one(self):
        assert empirical_interval_inversion_ratio(list(range(100, 0, -1)), 4) == 1.0

    def test_interval_beyond_length(self):
        assert empirical_interval_inversion_ratio([3, 1], 5) == 0.0

    def test_rejects_bad_interval(self):
        with pytest.raises(InvalidParameterError):
            empirical_interval_inversion_ratio([1, 2, 3], 0)
        with pytest.raises(InvalidParameterError):
            empirical_interval_inversion_ratio([1, 2, 3], 2, anchor_stride=0)

    def test_scanned_points_recorded(self):
        stats = SortStats()
        empirical_interval_inversion_ratio(list(range(100)), 10, stats=stats)
        assert stats.scanned_points == 9

    @settings(max_examples=40, deadline=None)
    @given(ts=st.lists(st.integers(0, 1000), min_size=2, max_size=200), interval=st.integers(1, 50))
    def test_ratio_in_unit_interval(self, ts, interval):
        ratio = empirical_interval_inversion_ratio(ts, interval)
        assert 0.0 <= ratio <= 1.0


class TestFindBlockSize:
    def test_sorted_input_stops_at_l0(self):
        result = find_block_size(list(range(10_000)), theta=0.04, l0=4)
        assert result.block_size == 4
        assert result.loops == 1

    def test_reverse_input_degenerates_to_n(self):
        n = 1024
        result = find_block_size(list(range(n, 0, -1)), theta=0.04, l0=4)
        assert result.block_size == n

    def test_block_size_grows_with_disorder(self):
        mild = make_delayed_stream(20_000, lam=2.0, seed=1).timestamps
        wild = make_delayed_stream(20_000, lam=0.02, seed=1).timestamps
        l_mild = find_block_size(mild).block_size
        l_wild = find_block_size(wild).block_size
        assert l_wild > l_mild

    def test_proposition3_scan_bound(self):
        # Total scanned points <= 2 n / L0 and loops <= log2(n/L0) + 1.
        import math

        for lam in (0.02, 0.1, 0.5, 2.0):
            ts = make_delayed_stream(30_000, lam=lam, seed=2).timestamps
            n = len(ts)
            l0 = 4
            result = find_block_size(ts, theta=0.04, l0=l0)
            assert result.scanned_points <= 2 * n / l0
            assert result.loops <= math.log2(n / l0) + 2

    def test_ratio_growth_reaches_threshold_faster(self):
        ts = make_delayed_stream(30_000, lam=0.02, seed=3).timestamps
        doubling = find_block_size(ts, growth="double")
        ratio = find_block_size(ts, growth="ratio")
        assert ratio.loops <= doubling.loops
        assert ratio.block_size >= 1

    def test_stats_accumulated(self):
        stats = SortStats()
        result = find_block_size(make_delayed_stream(5_000).timestamps, stats=stats)
        assert stats.block_size_loops == result.loops
        assert stats.scanned_points == result.scanned_points

    def test_history_records_each_probe(self):
        result = find_block_size(make_delayed_stream(5_000, lam=0.1).timestamps)
        assert len(result.history) == result.loops
        sizes = [size for size, _ in result.history]
        assert sizes == sorted(sizes)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            find_block_size([1, 2], theta=0.0)
        with pytest.raises(InvalidParameterError):
            find_block_size([1, 2], theta=1.5)
        with pytest.raises(InvalidParameterError):
            find_block_size([1, 2], l0=0)
        with pytest.raises(InvalidParameterError):
            find_block_size([1, 2], growth="triple")

    def test_empty_and_tiny_inputs(self):
        assert isinstance(find_block_size([]), BlockSizeResult)
        assert find_block_size([5]).block_size >= 1
        assert find_block_size([2, 1]).block_size >= 1

    def test_empty_input_is_capped_not_l0(self):
        # Regression: the final assignment used to fall back to an
        # *uncapped* l0 for n == 0, contradicting the "capped at len(ts)"
        # contract and leaking a block size larger than the array into
        # callers that cache or reuse it.
        result = find_block_size([], l0=64)
        assert result.block_size == 1
        assert result.loops == 0
        assert result.scanned_points == 0
        assert result.history == []

    def test_tiny_inputs_capped_at_n(self):
        # n < l0 skips the search entirely; the cap must still apply on
        # that exit path, for every n and l0 combination.
        for l0 in (4, 32, 64):
            for n in (1, 2, 3, l0 - 1):
                ts = list(range(n, 0, -1))
                result = find_block_size(ts, l0=l0)
                assert result.block_size == min(l0, n)
                assert 1 <= result.block_size <= max(n, 1)

    def test_cap_agrees_with_init_for_every_small_n(self):
        # The init-time and final-assignment caps used to disagree; both
        # paths must now land on the same contract.
        for n in range(0, 10):
            result = find_block_size(list(range(n)), l0=32)
            assert result.block_size == min(32, max(n, 1))


class TestBlockSizeCache:
    def test_roundtrip_and_miss(self):
        from repro.core.block_size import BlockSizeCache

        cache = BlockSizeCache()
        assert cache.get("root.d0.s0") is None
        cache.put("root.d0.s0", 128)
        assert cache.get("root.d0.s0") == 128
        assert len(cache) == 1

    def test_put_overwrites(self):
        from repro.core.block_size import BlockSizeCache

        cache = BlockSizeCache()
        cache.put("s", 32)
        cache.put("s", 256)
        assert cache.get("s") == 256
        assert len(cache) == 1

    def test_fifo_eviction(self):
        from repro.core.block_size import BlockSizeCache

        cache = BlockSizeCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_overwrite_refreshes_eviction_order(self):
        from repro.core.block_size import BlockSizeCache

        cache = BlockSizeCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-insert: "a" is now newest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_invalidate_and_clear(self):
        from repro.core.block_size import BlockSizeCache

        cache = BlockSizeCache()
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate("a")
        cache.invalidate("missing")  # no-op
        assert cache.get("a") is None
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_parameters(self):
        from repro.core.block_size import BlockSizeCache

        with pytest.raises(InvalidParameterError):
            BlockSizeCache(max_entries=0)
        cache = BlockSizeCache()
        with pytest.raises(InvalidParameterError):
            cache.put("s", 0)
