"""Backward merge: correctness, stability, locality, and move accounting."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.backward_merge import backward_merge_blocks, merge_block_into_suffix
from repro.core.instrumentation import SortStats


def _merge_case(block, suffix):
    ts = sorted(block) + sorted(suffix)
    vs = list(range(len(ts)))
    return ts, vs


class TestMergeBlockIntoSuffix:
    def test_no_overlap_fast_path(self):
        ts, vs = _merge_case([1, 2, 3], [4, 5, 6])
        stats = SortStats()
        overlap = merge_block_into_suffix(ts, vs, 0, 3, stats)
        assert overlap == 0
        assert stats.moves == 0
        assert stats.comparisons == 1
        assert ts == [1, 2, 3, 4, 5, 6]

    def test_single_point_overlap(self):
        # Figure 1's p9: one delayed point swaps locally with the suffix head.
        ts, vs = _merge_case([1, 2, 9], [8, 10, 11])
        stats = SortStats()
        overlap = merge_block_into_suffix(ts, vs, 0, 3, stats)
        assert overlap == 1
        assert ts == [1, 2, 8, 9, 10, 11]

    def test_full_overlap(self):
        ts, vs = _merge_case([10, 11, 12], [1, 2, 3])
        stats = SortStats()
        overlap = merge_block_into_suffix(ts, vs, 0, 3, stats)
        assert overlap == 3
        assert ts == [1, 2, 3, 10, 11, 12]

    def test_extra_space_is_overlap_only(self):
        ts, vs = _merge_case(list(range(100)), [95, 96, 97] + list(range(101, 150)))
        stats = SortStats()
        overlap = merge_block_into_suffix(ts, vs, 0, 100, stats)
        assert overlap == 3
        assert stats.extra_space == 3

    def test_stability_on_ties(self):
        # Block elements carry lower value ids (earlier arrival); on equal
        # timestamps they must stay before suffix elements.
        ts = [1, 5, 5, 3, 5, 7]
        vs = [0, 1, 2, 3, 4, 5]
        stats = SortStats()
        merge_block_into_suffix(ts, vs, 0, 3, stats)
        assert ts == [1, 3, 5, 5, 5, 7]
        assert vs == [0, 3, 1, 2, 4, 5]

    @settings(max_examples=80, deadline=None)
    @given(
        block=st.lists(st.integers(0, 40), min_size=1, max_size=40),
        suffix=st.lists(st.integers(0, 40), min_size=1, max_size=40),
    )
    def test_property_sorted_permutation(self, block, suffix):
        ts, vs = _merge_case(block, suffix)
        original = sorted(zip(ts, vs))
        stats = SortStats()
        merge_block_into_suffix(ts, vs, 0, len(block), stats)
        assert ts == sorted(ts)
        assert sorted(zip(ts, vs)) == original


class TestBackwardMergeBlocks:
    def test_three_block_example(self):
        # The Figure 2 layout: timestamps 1 and 3 delayed to the heads of the
        # following blocks.
        ts = [2, 4, 5, 1, 6, 7, 3, 8, 9]
        vs = list(range(9))
        stats = SortStats()
        backward_merge_blocks(ts, vs, [0, 3, 6, 9], stats)
        assert ts == list(range(1, 10))

    def test_many_random_blocks(self):
        rng = random.Random(5)
        for trial in range(20):
            n_blocks = rng.randrange(1, 8)
            blocks = [
                sorted(rng.randrange(100) for _ in range(rng.randrange(1, 20)))
                for _ in range(n_blocks)
            ]
            ts = [t for b in blocks for t in b]
            vs = list(range(len(ts)))
            bounds = [0]
            for b in blocks:
                bounds.append(bounds[-1] + len(b))
            stats = SortStats()
            backward_merge_blocks(ts, vs, bounds, stats)
            assert ts == sorted(ts)
            assert sorted(vs) == list(range(len(vs)))

    def test_mean_overlap_tracked(self):
        ts = [2, 4, 5, 1, 6, 7, 3, 8, 9]
        stats = SortStats()
        backward_merge_blocks(ts, list(range(9)), [0, 3, 6, 9], stats)
        assert stats.merges == 2
        assert stats.overlap_total > 0
        assert stats.mean_overlap == stats.overlap_total / stats.merges

    def test_single_block_is_noop(self):
        ts = [1, 2, 3]
        stats = SortStats()
        backward_merge_blocks(ts, [0, 0, 0], [0, 3], stats)
        assert ts == [1, 2, 3]
        assert stats.merges == 0
