"""Example 3 / Figure 2: backward merge moves fewer points than straight merge.

The paper's worked example: three pre-sorted blocks of length M where the
points with timestamps 1 and 3 arrived late and sit at the heads of blocks 2
and 3.  Straight merge costs 4M + 4 moves (the first block is re-moved),
backward merge 3M + 7 — about a 25 % reduction as M grows.  Our
implementations differ in low-level accounting, so the tests assert the
paper's *shape*: backward strictly cheaper, ratio approaching ≥ 25 % savings
for large M, plus exact small-case arithmetic on the analytic model in
``repro.experiments.merge_moves``.
"""

from __future__ import annotations

import pytest

from repro.core.backward_merge import backward_merge_blocks
from repro.core.instrumentation import SortStats
from repro.experiments.merge_moves import (
    backward_merge_moves_model,
    build_figure2_layout,
    run_merge_move_comparison,
    straight_merge_moves_model,
)
from repro.sorting.mergesort import straight_block_merge


class TestAnalyticModel:
    """The paper's own accounting, reproduced symbolically."""

    @pytest.mark.parametrize("m", (3, 10, 100, 10_000))
    def test_paper_formulae(self, m):
        assert straight_merge_moves_model(m) == 4 * m + 4
        assert backward_merge_moves_model(m) == 3 * m + 7

    def test_quoted_25_percent_reduction(self):
        m = 1_000_000
        saving = 1 - backward_merge_moves_model(m) / straight_merge_moves_model(m)
        assert saving == pytest.approx(0.25, abs=0.01)


class TestFigure2Layout:
    def test_layout_structure(self):
        ts, bounds = build_figure2_layout(4)
        assert len(ts) == 12
        assert bounds == [0, 4, 8, 12]
        # Blocks are individually sorted, with 1 and 3 leading blocks 2 and 3.
        assert ts[4] == 1 and ts[8] == 3
        for lo, hi in zip(bounds, bounds[1:]):
            assert ts[lo:hi] == sorted(ts[lo:hi])

    @pytest.mark.parametrize("m", (3, 8, 64, 512))
    def test_backward_moves_fewer_than_straight(self, m):
        ts, bounds = build_figure2_layout(m)
        straight_stats = SortStats()
        straight_ts = list(ts)
        straight_vs = list(range(len(ts)))
        straight_block_merge(straight_ts, straight_vs, bounds, straight_stats)
        backward_stats = SortStats()
        backward_ts = list(ts)
        backward_vs = list(range(len(ts)))
        backward_merge_blocks(backward_ts, backward_vs, bounds, backward_stats)
        assert straight_ts == sorted(ts)
        assert backward_ts == sorted(ts)
        assert backward_stats.moves < straight_stats.moves

    def test_measured_saving_grows_past_a_quarter(self):
        # With only two delayed points, backward merge moves only the block
        # overlaps; the measured saving beats the paper's 25 % asymptote.
        result = run_merge_move_comparison(m=2048)
        assert result.backward_moves < result.straight_moves
        assert result.saving >= 0.25

    def test_backward_buffer_is_overlap_sized(self):
        ts, bounds = build_figure2_layout(256)
        stats = SortStats()
        backward_merge_blocks(ts, list(range(len(ts))), bounds, stats)
        # Straight merge buffers whole prefixes (hundreds of points);
        # backward merge only ever buffered the 1-point overlaps.
        assert stats.extra_space <= 2
