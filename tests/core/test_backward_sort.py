"""Backward-Sort end-to-end: correctness, degenerate cases, knobs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.backward_sort import BackwardSorter, compute_block_bounds
from repro.errors import InvalidParameterError
from tests.conftest import assert_sorted_permutation, make_delayed_stream


class TestComputeBlockBounds:
    def test_exact_division(self):
        assert compute_block_bounds(12, 4) == [0, 4, 8, 12]

    def test_remainder_absorbed_into_last_block(self):
        bounds = compute_block_bounds(14, 4)
        assert bounds == [0, 4, 8, 14]
        assert bounds[-1] - bounds[-2] == 6  # in [L, 2L)

    def test_block_larger_than_n(self):
        assert compute_block_bounds(3, 10) == [0, 3]

    def test_empty(self):
        assert compute_block_bounds(0, 4) == [0]

    def test_rejects_bad_block_size(self):
        with pytest.raises(InvalidParameterError):
            compute_block_bounds(10, 0)


class TestBackwardSorter:
    def test_sorts_delay_only_stream(self, medium_stream):
        ts, vs = medium_stream.sort_input()
        original = list(zip(ts, vs))
        stats = BackwardSorter().sort(ts, vs)
        assert_sorted_permutation(ts, vs, original)
        assert stats.block_size is not None
        assert stats.block_count >= 1

    def test_fixed_block_size_one_degenerates_to_insertion(self):
        ts = [5, 1, 4, 2, 3]
        stats = BackwardSorter(fixed_block_size=1).sort(ts, list(range(5)))
        assert ts == [1, 2, 3, 4, 5]
        assert stats.block_size == 1
        assert stats.merges == 0  # insertion path, no blocks to merge

    def test_fixed_block_size_n_degenerates_to_quicksort(self):
        rng = random.Random(0)
        ts = rng.sample(range(1000), 1000)
        stats = BackwardSorter(fixed_block_size=1000).sort(ts, list(range(1000)))
        assert ts == sorted(range(1000))
        assert stats.block_count == 1
        assert stats.merges == 0

    def test_found_block_size_between_degenerate_extremes(self):
        stream = make_delayed_stream(20_000, lam=0.1, seed=9)
        ts, vs = stream.sort_input()
        sorter = BackwardSorter()
        stats = sorter.sort(ts, vs)
        assert 1 < stats.block_size < len(ts)
        assert ts == sorted(ts)

    @pytest.mark.parametrize("block_sort", ("quick", "insertion", "tim", "run-adaptive"))
    def test_block_sort_substitution(self, block_sort):
        stream = make_delayed_stream(3_000, lam=0.3, seed=4)
        ts, vs = stream.sort_input()
        original = list(zip(ts, vs))
        BackwardSorter(block_sort=block_sort).sort(ts, vs)
        assert_sorted_permutation(ts, vs, original)

    def test_unknown_block_sort_rejected(self):
        with pytest.raises(InvalidParameterError):
            BackwardSorter(block_sort="bogo")

    def test_bad_fixed_block_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            BackwardSorter(fixed_block_size=0)

    def test_last_block_size_result_exposed(self):
        stream = make_delayed_stream(5_000, lam=0.5, seed=1)
        sorter = BackwardSorter()
        ts, vs = stream.sort_input()
        sorter.sort(ts, vs)
        assert sorter.last_block_size is not None
        assert sorter.last_block_size.loops >= 1

    def test_overlap_stats_bounded_by_block_reach(self):
        # On a mildly disordered stream the mean overlap must stay tiny
        # relative to the block size (the "not-too-distant" payoff).
        stream = make_delayed_stream(20_000, lam=1.0, seed=6)
        ts, vs = stream.sort_input()
        stats = BackwardSorter().sort(ts, vs)
        if stats.merges:
            assert stats.mean_overlap < stats.block_size

    @settings(max_examples=30, deadline=None)
    @given(ts=st.lists(st.integers(0, 10_000), max_size=400))
    def test_property_arbitrary_input(self, ts):
        # Backward-Sort must stay correct even when delay-only is violated.
        vs = list(range(len(ts)))
        expected = sorted(ts)
        BackwardSorter().sort(ts, vs)
        assert ts == expected

    @settings(max_examples=20, deadline=None)
    @given(
        ts=st.lists(st.integers(0, 10_000), max_size=300),
        block_size=st.integers(1, 350),
    )
    def test_property_any_fixed_block_size(self, ts, block_size):
        expected = sorted(ts)
        BackwardSorter(fixed_block_size=block_size).sort(ts, list(range(len(ts))))
        assert ts == expected

    def test_empty_and_singleton(self):
        for ts in ([], [7]):
            out = list(ts)
            BackwardSorter().sort(out)
            assert out == ts
