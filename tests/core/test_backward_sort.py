"""Backward-Sort end-to-end: correctness, degenerate cases, knobs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sanitizer import sanitize_enabled
from repro.core.backward_sort import BackwardSorter, compute_block_bounds
from repro.errors import InvalidParameterError
from tests.conftest import assert_sorted_permutation, make_delayed_stream


class TestComputeBlockBounds:
    def test_exact_division(self):
        assert compute_block_bounds(12, 4) == [0, 4, 8, 12]

    def test_remainder_absorbed_into_last_block(self):
        bounds = compute_block_bounds(14, 4)
        assert bounds == [0, 4, 8, 14]
        assert bounds[-1] - bounds[-2] == 6  # in [L, 2L)

    def test_block_larger_than_n(self):
        assert compute_block_bounds(3, 10) == [0, 3]

    def test_empty(self):
        assert compute_block_bounds(0, 4) == [0]

    def test_rejects_bad_block_size(self):
        with pytest.raises(InvalidParameterError):
            compute_block_bounds(10, 0)


class TestBackwardSorter:
    def test_sorts_delay_only_stream(self, medium_stream):
        ts, vs = medium_stream.sort_input()
        original = list(zip(ts, vs))
        stats = BackwardSorter().sort(ts, vs)
        assert_sorted_permutation(ts, vs, original)
        assert stats.block_size is not None
        assert stats.block_count >= 1

    def test_fixed_block_size_one_degenerates_to_insertion(self):
        ts = [5, 1, 4, 2, 3]
        stats = BackwardSorter(fixed_block_size=1).sort(ts, list(range(5)))
        assert ts == [1, 2, 3, 4, 5]
        assert stats.block_size == 1
        assert stats.merges == 0  # insertion path, no blocks to merge

    def test_fixed_block_size_n_degenerates_to_quicksort(self):
        rng = random.Random(0)
        ts = rng.sample(range(1000), 1000)
        stats = BackwardSorter(fixed_block_size=1000).sort(ts, list(range(1000)))
        assert ts == sorted(range(1000))
        assert stats.block_count == 1
        assert stats.merges == 0

    def test_found_block_size_between_degenerate_extremes(self):
        stream = make_delayed_stream(20_000, lam=0.1, seed=9)
        ts, vs = stream.sort_input()
        sorter = BackwardSorter()
        stats = sorter.sort(ts, vs)
        assert 1 < stats.block_size < len(ts)
        assert ts == sorted(ts)

    @pytest.mark.parametrize("block_sort", ("quick", "insertion", "tim", "run-adaptive"))
    def test_block_sort_substitution(self, block_sort):
        stream = make_delayed_stream(3_000, lam=0.3, seed=4)
        ts, vs = stream.sort_input()
        original = list(zip(ts, vs))
        BackwardSorter(block_sort=block_sort).sort(ts, vs)
        assert_sorted_permutation(ts, vs, original)

    def test_unknown_block_sort_rejected(self):
        with pytest.raises(InvalidParameterError):
            BackwardSorter(block_sort="bogo")

    def test_bad_fixed_block_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            BackwardSorter(fixed_block_size=0)

    def test_last_block_size_result_exposed(self):
        stream = make_delayed_stream(5_000, lam=0.5, seed=1)
        sorter = BackwardSorter()
        ts, vs = stream.sort_input()
        sorter.sort(ts, vs)
        assert sorter.last_block_size is not None
        assert sorter.last_block_size.loops >= 1

    def test_overlap_stats_bounded_by_block_reach(self):
        # On a mildly disordered stream the mean overlap must stay tiny
        # relative to the block size (the "not-too-distant" payoff).
        stream = make_delayed_stream(20_000, lam=1.0, seed=6)
        ts, vs = stream.sort_input()
        stats = BackwardSorter().sort(ts, vs)
        if stats.merges:
            assert stats.mean_overlap < stats.block_size

    @settings(max_examples=30, deadline=None)
    @given(ts=st.lists(st.integers(0, 10_000), max_size=400))
    def test_property_arbitrary_input(self, ts):
        # Backward-Sort must stay correct even when delay-only is violated.
        vs = list(range(len(ts)))
        expected = sorted(ts)
        BackwardSorter().sort(ts, vs)
        assert ts == expected

    @settings(max_examples=20, deadline=None)
    @given(
        ts=st.lists(st.integers(0, 10_000), max_size=300),
        block_size=st.integers(1, 350),
    )
    def test_property_any_fixed_block_size(self, ts, block_size):
        expected = sorted(ts)
        BackwardSorter(fixed_block_size=block_size).sort(ts, list(range(len(ts))))
        assert ts == expected

    def test_empty_and_singleton(self):
        for ts in ([], [7]):
            out = list(ts)
            BackwardSorter().sort(out)
            assert out == ts


@pytest.mark.skipif(
    sanitize_enabled(),
    reason="sanitized sorts deliberately run without per-series cache state",
)
class TestBlockSizeCaching:
    """The per-series L cache: steady-state reuse, revalidation, fallback."""

    def _stream(self, seed, n=20_000, lam=0.02):
        return make_delayed_stream(n, lam=lam, seed=seed).sort_input()

    def test_second_sort_of_a_series_skips_the_search(self):
        sorter = BackwardSorter()
        ts1, vs1 = self._stream(seed=11)
        sorter.sort(ts1, vs1, series="root.d0.s0")
        first = sorter.last_block_size
        assert first.loops > 1  # the workload needs a real doubling search

        ts2, vs2 = self._stream(seed=12)
        original = list(zip(ts2, vs2))
        sorter.sort(ts2, vs2, series="root.d0.s0")
        second = sorter.last_block_size
        assert_sorted_permutation(ts2, vs2, original)
        # Same arrival pattern: the cached L revalidates in fewer probes
        # and scans fewer points than the full doubling search did.
        assert second.loops < first.loops
        assert second.scanned_points < first.scanned_points

    def test_cached_choice_stays_minimal_in_the_doubling_lattice(self):
        # A large L remembered from a high-disorder sort must not stick
        # when the series calms down: the descent probes L/2 and walks
        # back toward L0.
        sorter = BackwardSorter()
        wild_ts, wild_vs = self._stream(seed=3, lam=0.002)
        sorter.sort(wild_ts, wild_vs, series="s")
        wild_l = sorter.last_block_size.block_size

        calm_ts, calm_vs = self._stream(seed=4, lam=2.0)
        uncached = BackwardSorter()
        expected = uncached.sort(list(calm_ts), list(calm_vs)).block_size
        sorter.sort(calm_ts, calm_vs, series="s")
        assert calm_ts == sorted(calm_ts)
        assert sorter.last_block_size.block_size == expected < wild_l

    def test_disorder_growth_resumes_the_doubling_search(self):
        # Seed the cache with an L that is far too small for the stream:
        # the failing probe must hand off to the search at 2L and still
        # produce a correct sort and a usable block size.
        sorter = BackwardSorter()
        sorter.block_size_cache.put("s", sorter.l0)
        ts, vs = self._stream(seed=5, lam=0.002)
        original = list(zip(ts, vs))
        sorter.sort(ts, vs, series="s")
        assert_sorted_permutation(ts, vs, original)
        result = sorter.last_block_size
        assert result.block_size > sorter.l0
        assert result.history[0][0] == sorter.l0  # the rejected probe is recorded

    def test_no_series_never_touches_the_cache(self):
        sorter = BackwardSorter()
        ts, vs = self._stream(seed=6)
        sorter.sort(ts, vs)
        assert len(sorter.block_size_cache) == 0

    def test_disabled_cache_is_inert(self):
        sorter = BackwardSorter(cache_block_sizes=False)
        ts, vs = self._stream(seed=7)
        sorter.sort(ts, vs, series="s")
        assert len(sorter.block_size_cache) == 0
        # And a pre-seeded entry is ignored.
        sorter.block_size_cache.put("s", 2)
        ts2, vs2 = self._stream(seed=8)
        sorter.sort(ts2, vs2, series="s")
        assert sorter.last_block_size.history[0][0] != 2

    def test_degenerate_results_are_not_cached(self):
        # A chunk too small to decompose (L >= n) says nothing about the
        # series' steady-state disorder and must not poison the cache.
        sorter = BackwardSorter()
        ts = [5, 3, 4, 1, 2]
        sorter.sort(ts, list(range(5)), series="s")
        assert ts == [1, 2, 3, 4, 5]
        assert len(sorter.block_size_cache) == 0

    def test_cached_and_uncached_agree_on_the_sorted_output(self):
        cached = BackwardSorter()
        uncached = BackwardSorter(cache_block_sizes=False)
        for seed in (21, 22, 23):
            ts_c, vs_c = self._stream(seed=seed, n=5_000)
            ts_u, vs_u = self._stream(seed=seed, n=5_000)
            cached.sort(ts_c, vs_c, series="s")
            uncached.sort(ts_u, vs_u, series="s")
            assert ts_c == ts_u
            assert vs_c == vs_u

    def test_fixed_block_size_bypasses_the_cache(self):
        sorter = BackwardSorter(fixed_block_size=8)
        ts, vs = self._stream(seed=9, n=2_000)
        sorter.sort(ts, vs, series="s")
        assert len(sorter.block_size_cache) == 0
        assert sorter.last_block_size.block_size == 8
