"""Observability façade, from_env switch, and the SortStats bridge."""

from __future__ import annotations

import json

import pytest

from repro.core.instrumentation import SortStats
from repro.obs import (
    FakeClock,
    MONOTONIC,
    NOOP,
    NOOP_REGISTRY,
    NOOP_TRACER,
    Observability,
    from_env,
    metrics_only,
    record_sort_stats,
)


class TestConfigurations:
    def test_default_is_fully_enabled(self):
        obs = Observability()
        assert obs.metrics_enabled and obs.tracing_enabled and obs.enabled
        assert obs.clock is MONOTONIC

    def test_metrics_only(self):
        obs = metrics_only()
        assert obs.metrics_enabled
        assert not obs.tracing_enabled
        assert obs.enabled
        assert obs.tracer is NOOP_TRACER

    def test_noop_is_all_off_and_shared(self):
        assert not NOOP.enabled
        assert NOOP.registry is NOOP_REGISTRY
        assert NOOP.tracer is NOOP_TRACER

    def test_injected_clock_reaches_the_tracer(self):
        clock = FakeClock()
        obs = Observability(clock=clock)
        with obs.span("s") as span:
            clock.advance(0.5)
        assert span.duration == pytest.approx(0.5)

    def test_span_delegates_to_the_tracer(self):
        obs = Observability(clock=FakeClock())
        with obs.span("engine.write", space="seq"):
            pass
        assert obs.tracer.find("engine.write").attributes == {"space": "seq"}

    def test_exporters_run_on_a_live_instance(self):
        obs = Observability(clock=FakeClock())
        obs.registry.counter("c", "help").inc()
        with obs.span("s"):
            pass
        assert "c" in obs.export_text()
        for line in obs.export_jsonlines().splitlines():
            json.loads(line)
        assert "# TYPE c counter" in obs.export_prometheus()

    def test_exporters_on_noop_are_empty(self):
        assert "(no metrics recorded)" in NOOP.export_text()
        assert NOOP.export_jsonlines() == ""
        assert NOOP.export_prometheus() == ""


class TestFromEnv:
    def test_unset_yields_the_shared_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert from_env() is NOOP

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_OBS", value)
        obs = from_env()
        assert obs.enabled and obs is not NOOP

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_falsy_values_stay_noop(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_OBS", value)
        assert from_env() is NOOP


class TestBridge:
    def stats(self):
        s = SortStats()
        s.comparisons = 7
        s.moves = 11
        s.merges = 2
        s.extra_space = 64
        return s

    def test_counters_land_under_sorter_and_site_labels(self):
        obs = metrics_only()
        record_sort_stats(
            obs, self.stats(), sorter="backward", site="flush", seconds=0.25,
            points=100,
        )
        reg = obs.registry
        labels = {"sorter": "backward", "site": "flush"}
        assert reg.get("sort_invocations_total").labels(**labels).value == 1
        assert reg.get("sort_comparisons_total").labels(**labels).value == 7
        assert reg.get("sort_moves_total").labels(**labels).value == 11
        assert reg.get("sort_merges_total").labels(**labels).value == 2
        assert reg.get("sort_extra_space_peak").labels(**labels).value == 64
        assert reg.get("sort_points_total").labels(**labels).value == 100
        hist = reg.get("sort_seconds").labels(**labels)
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.25)

    def test_extra_space_is_a_high_water_mark(self):
        obs = metrics_only()
        for extra in (64, 16):
            s = SortStats()
            s.extra_space = extra
            record_sort_stats(obs, s, sorter="backward", site="direct")
        gauge = obs.registry.get("sort_extra_space_peak")
        assert gauge.labels(sorter="backward", site="direct").value == 64

    def test_optional_fields_are_skipped(self):
        obs = metrics_only()
        record_sort_stats(obs, SortStats(), sorter="tim")
        assert obs.registry.get("sort_seconds") is None
        assert obs.registry.get("sort_points_total") is None

    def test_disabled_obs_records_nothing(self):
        record_sort_stats(NOOP, self.stats(), sorter="backward")
        assert NOOP.registry.as_dict() == {}
