"""End-to-end: a traced StorageEngine produces metrics + a nested span tree."""

from __future__ import annotations

import json

import pytest

from repro.iotdb import IoTDBConfig, StorageEngine
from repro.obs import NOOP_TRACER, Observability
from tests.conftest import make_delayed_stream


@pytest.fixture
def traced_engine():
    obs = Observability()
    engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=100), obs=obs)
    stream = make_delayed_stream(250, seed=13)
    for t, v in zip(stream.timestamps, stream.values):
        engine.write("root.d1", "s1", t, v)
    engine.query("root.d1", "s1", 0, 250)
    return engine, obs


class TestMetrics:
    def test_counters_and_histograms_populate(self, traced_engine):
        engine, obs = traced_engine
        reg = obs.registry
        assert reg.get("engine_points_written_total").value == 250
        assert reg.get("engine_queries_total").value == 1
        # Two threshold flushes of the sequence space.
        assert reg.get("engine_flushes_total").labels(space="seq").value == 2
        flush_hist = reg.get("engine_flush_seconds").labels(space="seq")
        assert flush_hist.count == 2
        assert flush_hist.sum > 0
        sort_hist = reg.get("engine_flush_sort_seconds").labels(space="seq")
        assert sort_hist.count == 2
        query_hist = reg.get("engine_query_seconds")
        assert query_hist.count == 1

    def test_sorter_bridge_labels_flush_and_query_sites(self, traced_engine):
        engine, obs = traced_engine
        invocations = obs.registry.get("sort_invocations_total")
        sites = {labels["site"] for labels, _ in invocations.children()}
        assert "flush" in sites
        assert "query" in sites
        name = engine.sorter.name
        assert invocations.labels(sorter=name, site="flush").value >= 2

    def test_memtable_writes_counter(self, traced_engine):
        _, obs = traced_engine
        assert obs.registry.get("memtable_writes_total").value == 250


class TestSpanTree:
    def test_write_flush_query_nesting(self, traced_engine):
        _, obs = traced_engine
        tracer = obs.tracer
        # A threshold flush nests under the write that triggered it.
        write_span = next(
            s for s in tracer.iter_spans()
            if s.name == "engine.write" and s.find("engine.flush")
        )
        flush_span = write_span.find("engine.flush")
        chunk_span = flush_span.find("flush.chunk")
        assert chunk_span is not None
        sort_span = chunk_span.find("sort")
        assert sort_span is not None
        assert sort_span.attributes["site"] == "flush"
        assert sort_span.duration >= 0
        # The query span holds its own (query-site) sort.
        query_span = tracer.find("engine.query")
        assert query_span is not None
        query_sort = query_span.find("sort")
        assert query_sort is not None
        assert query_sort.attributes["site"] == "query"

    def test_span_attributes_carry_workload_facts(self, traced_engine):
        _, obs = traced_engine
        chunk = obs.tracer.find("flush.chunk")
        assert chunk.attributes["device"] == "root.d1"
        assert chunk.attributes["points"] == 100
        assert chunk.attributes["deduped_points"] <= 100
        query = obs.tracer.find("engine.query")
        assert query.attributes["points"] == 250


class TestExports:
    def test_jsonlines_roundtrip(self, traced_engine):
        _, obs = traced_engine
        records = [json.loads(line) for line in obs.export_jsonlines().splitlines()]
        types = {r["type"] for r in records}
        assert types == {"metric", "span"}
        names = {r["name"] for r in records if r["type"] == "metric"}
        assert "engine_points_written_total" in names
        assert "sort_seconds" in names

    def test_prometheus_exposition(self, traced_engine):
        _, obs = traced_engine
        text = obs.export_prometheus()
        assert "# TYPE engine_points_written_total counter" in text
        assert 'engine_flushes_total{space="seq"} 2' in text


class TestDefaults:
    def test_default_engine_is_metrics_only(self):
        engine = StorageEngine.create()
        assert engine.obs.metrics_enabled
        assert engine.obs.tracer is NOOP_TRACER

    def test_describe_reads_from_the_registry(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=50))
        stream = make_delayed_stream(120, seed=17)
        for t, v in zip(stream.timestamps, stream.values):
            engine.write("d", "s", t, v)
        snap = engine.describe()
        assert snap["points_written"] == 120
        assert snap["flushes"]["seq"] == 2
        assert snap["flushes"]["mean_seconds"] > 0
        assert "engine_points_written_total" in snap["metrics"]

    def test_engines_do_not_share_registries(self):
        a = StorageEngine.create()
        b = StorageEngine.create()
        a.write("d", "s", 1, 1.0)
        assert a.describe()["points_written"] == 1
        assert b.describe()["points_written"] == 0


class TestFacadeRemoved:
    def make_engine(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=50))
        stream = make_delayed_stream(120, seed=19)
        for t, v in zip(stream.timestamps, stream.values):
            engine.write("d", "s", t, v)
        engine.query("d", "s", 0, 120)
        return engine

    def test_engine_metrics_facade_is_gone(self):
        engine = self.make_engine()
        assert not hasattr(engine, "metrics")
        import repro.iotdb as iotdb

        assert not hasattr(iotdb, "EngineMetrics")

    def test_registry_carries_the_old_facade_numbers(self):
        engine = self.make_engine()
        snap = engine.describe()
        assert snap["points_written"] == 120
        assert snap["flushes"]["seq"] == 2
        assert snap["flushes"]["unseq"] == 0
        queries = snap["metrics"]["engine_queries_total"]["samples"]
        assert queries == [{"labels": {}, "value": 1}]

    def test_flush_reports_property_is_the_supported_read(self):
        engine = self.make_engine()
        reports = engine.flush_reports
        assert len(reports) == 2
        # A copy, not an alias into engine internals.
        reports.clear()
        assert len(engine.flush_reports) == 2
