"""Exporters: aligned text, JSON-lines, Prometheus exposition, span tree."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    FakeClock,
    MetricsRegistry,
    Tracer,
    iter_jsonlines,
    render_jsonlines,
    render_prometheus,
    render_span_tree,
    render_text,
)


@pytest.fixture
def populated():
    reg = MetricsRegistry()
    reg.counter("writes_total", "points written", ("space",)).labels(
        space="seq"
    ).inc(42)
    reg.gauge("depth", "stack depth").set(3)
    reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.05)
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("outer", site="test"):
        clock.advance(0.2)
        with tracer.span("inner"):
            clock.advance(0.1)
    return reg, tracer


class TestText:
    def test_table_lists_every_sample(self, populated):
        reg, tracer = populated
        text = render_text(reg, tracer)
        assert "writes_total" in text
        assert 'space="seq"' in text
        assert "42" in text
        assert "count=1" in text  # histogram summary
        assert "spans" in text

    def test_empty_registry_renders_placeholder(self):
        assert "(no metrics recorded)" in render_text(MetricsRegistry())


class TestSpanTree:
    def test_nesting_shown_by_indentation(self, populated):
        _, tracer = populated
        tree = render_span_tree(tracer)
        lines = tree.splitlines()
        assert lines[0] == "spans"
        outer = next(l for l in lines if "outer" in l)
        inner = next(l for l in lines if "inner" in l)
        assert len(inner) - len(inner.lstrip()) > len(outer) - len(outer.lstrip())
        assert "300.000ms" in outer
        assert "100.000ms" in inner
        assert "site=test" in outer

    def test_dropped_spans_noted(self):
        clock = FakeClock()
        tracer = Tracer(clock, max_spans=1)
        for _ in range(3):
            with tracer.span("s"):
                clock.advance(0.01)
        assert "2 span(s)" in render_span_tree(tracer)


class TestJsonLines:
    def test_every_line_parses_and_covers_metrics_and_spans(self, populated):
        reg, tracer = populated
        lines = render_jsonlines(reg, tracer).splitlines()
        records = [json.loads(line) for line in lines]
        kinds = {r["type"] for r in records}
        assert kinds == {"metric", "span"}
        metric = next(r for r in records if r.get("name") == "writes_total")
        assert metric["labels"] == {"space": "seq"}
        assert metric["value"] == 42
        spans = [r for r in records if r["type"] == "span"]
        inner = next(s for s in spans if s["name"] == "inner")
        outer = next(s for s in spans if s["name"] == "outer")
        assert inner["parent_id"] == outer["span_id"]
        assert inner["duration"] == pytest.approx(0.1)

    def test_histogram_samples_carry_cumulative_buckets(self, populated):
        reg, _ = populated
        records = [json.loads(l) for l in iter_jsonlines(reg)]
        hist = next(r for r in records if r["name"] == "lat_seconds")
        assert hist["count"] == 1
        assert hist["buckets"][0] == [0.1, 1]

    def test_dropped_spans_emit_a_record(self):
        tracer = Tracer(FakeClock(), max_spans=0)
        with tracer.span("s"):
            pass
        records = [json.loads(l) for l in iter_jsonlines(MetricsRegistry(), tracer)]
        assert records == [{"type": "spans_dropped", "count": 1}]


class TestPrometheus:
    def test_exposition_format(self, populated):
        reg, _ = populated
        text = render_prometheus(reg)
        assert "# HELP writes_total points written" in text
        assert "# TYPE writes_total counter" in text
        assert 'writes_total{space="seq"} 42' in text
        assert "# TYPE depth gauge" in text
        assert "depth 3" in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.05" in text
        assert "lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
