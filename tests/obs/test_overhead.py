"""Disabled observability must stay within 5% of the raw sort (ISSUE bound).

The hot path pays one no-op method call per event when ``obs`` is the
shared NOOP: ``timed_sort`` still wraps the sort in a Timer (it always
did), and the span/bridge branches short-circuit on ``obs.enabled``.
Min-of-repeats on a 50k-point Backward-Sort keeps the comparison stable —
the minimum strips scheduler noise, and both paths sort identical fresh
copies of the same workload.
"""

from __future__ import annotations

from repro.bench.timing import measure
from repro.core.instrumentation import SortStats
from repro.obs import NOOP
from repro.sorting.registry import get_sorter
from tests.conftest import make_delayed_stream

N_POINTS = 50_000
REPEATS = 5


def test_noop_obs_overhead_under_five_percent():
    stream = make_delayed_stream(N_POINTS, lam=0.3, seed=23)
    sorter = get_sorter("backward")

    def fresh():
        return list(stream.timestamps), list(stream.values)

    def raw(arrays):
        ts, vs = arrays
        sorter.sort(ts, vs, SortStats())

    def through_noop(arrays):
        ts, vs = arrays
        sorter.timed_sort(ts, vs, obs=NOOP)

    baseline = measure(raw, repeats=REPEATS, warmup=1, setup=fresh)
    instrumented = measure(through_noop, repeats=REPEATS, warmup=1, setup=fresh)
    ratio = instrumented.minimum / baseline.minimum
    assert ratio < 1.05, (
        f"NOOP observability overhead {ratio:.3f}x exceeds the 5% budget "
        f"(baseline {baseline.minimum:.6f}s, instrumented "
        f"{instrumented.minimum:.6f}s)"
    )
