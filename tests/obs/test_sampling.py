"""S5: deterministic span sampling for long benchmark runs.

``Tracer(sample_rate=...)`` keeps a representative fraction of root spans
instead of max_spans truncating to a prefix.  The draw is seeded, so the
same seed always keeps the same traces — a benchmark rerun produces an
identical span set.
"""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.obs import Observability
from repro.obs.clock import FakeClock
from repro.obs.tracing import Tracer


def _run(tracer, n=200):
    for i in range(n):
        with tracer.span("root", i=i):
            with tracer.span("child"):
                pass


class TestSampling:
    def test_default_rate_keeps_everything(self):
        tracer = Tracer(clock=FakeClock())
        _run(tracer, 50)
        assert len(tracer.roots) == 50
        assert tracer.sampled_out == 0

    def test_rate_zero_keeps_nothing(self):
        tracer = Tracer(clock=FakeClock(), sample_rate=0.0)
        _run(tracer, 50)
        assert tracer.roots == []
        assert tracer.sampled_out == 100  # roots and children both counted

    def test_sampling_keeps_a_representative_fraction(self):
        tracer = Tracer(clock=FakeClock(), sample_rate=0.25, seed=3)
        _run(tracer, 400)
        kept = len(tracer.roots)
        assert 0 < kept < 400
        assert kept == pytest.approx(100, rel=0.5)
        assert tracer.sampled_out == 2 * (400 - kept)

    def test_same_seed_same_decisions(self):
        def kept_indices(seed):
            tracer = Tracer(clock=FakeClock(), sample_rate=0.3, seed=seed)
            _run(tracer, 100)
            return [span.attributes["i"] for span in tracer.roots]

        assert kept_indices(7) == kept_indices(7)
        assert kept_indices(7) != kept_indices(8)

    def test_unsampled_subtree_is_fully_absent(self):
        tracer = Tracer(clock=FakeClock(), sample_rate=0.5, seed=1)
        _run(tracer, 100)
        # Every retained child belongs to a retained root: no orphans.
        for root in tracer.roots:
            assert root.name == "root"
            assert [c.name for c in root.children] == ["child"]
        names = [s.name for s in tracer.iter_spans()]
        assert names.count("child") == names.count("root") == len(tracer.roots)

    def test_sampled_spans_still_nest_and_time(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, sample_rate=0.0)
        with tracer.span("root") as root:
            clock.advance(2.0)
            with tracer.span("child") as child:
                clock.advance(1.0)
        # Not retained, but the span objects themselves work normally.
        assert root.duration == 3.0
        assert child.duration == 1.0
        assert child.parent_id == root.span_id

    def test_sampling_composes_with_max_spans(self):
        tracer = Tracer(clock=FakeClock(), sample_rate=0.5, seed=2, max_spans=10)
        _run(tracer, 100)
        assert tracer.span_count == 10
        assert tracer.dropped > 0
        assert tracer.sampled_out > 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(InvalidParameterError):
            Tracer(sample_rate=1.5)
        with pytest.raises(InvalidParameterError):
            Tracer(sample_rate=-0.1)

    def test_clear_resets_sampled_out(self):
        tracer = Tracer(clock=FakeClock(), sample_rate=0.0)
        _run(tracer, 10)
        tracer.clear()
        assert tracer.sampled_out == 0

    def test_observability_passes_sampling_through(self):
        obs = Observability(sample_rate=0.0, trace_seed=9)
        with obs.span("engine.write"):
            pass
        assert obs.tracer.sampled_out == 1
        assert obs.tracer.roots == []
