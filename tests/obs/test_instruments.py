"""Instruments and registry: counters, gauges, histograms, labels, no-ops."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.obs import (
    Counter,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_INSTRUMENT,
    NOOP_REGISTRY,
)


class TestCounter:
    def test_increments_accumulate(self):
        c = Counter("events_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("events_total")
        with pytest.raises(InvalidParameterError):
            c.inc(-1)

    def test_labeled_children_are_independent_and_cached(self):
        c = Counter("events_total", "help", labelnames=("space",))
        c.labels(space="seq").inc(2)
        c.labels(space="unseq").inc(5)
        assert c.labels(space="seq") is c.labels(space="seq")
        assert c.labels(space="seq").value == 2
        assert c.labels(space="unseq").value == 5

    def test_label_mismatch_rejected(self):
        c = Counter("events_total", labelnames=("space",))
        with pytest.raises(InvalidParameterError):
            c.labels(wrong="x")

    def test_labels_on_unlabeled_instrument_rejected(self):
        with pytest.raises(InvalidParameterError):
            Counter("events_total").labels(space="seq")

    def test_unlabeled_instrument_is_its_own_child(self):
        c = Counter("events_total")
        assert c.labels() is c
        assert list(c.children()) == [({}, c)]


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_set_max_keeps_high_water_mark(self):
        g = Gauge("peak")
        g.set_max(4)
        g.set_max(2)
        assert g.value == 4
        g.set_max(9)
        assert g.value == 9


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 2.0, 100.0):
            h.observe(v)
        # Cumulative counts, ending with +Inf.
        assert h.bucket_counts() == [
            (0.1, 2),  # 0.05 and the boundary 0.1 (bounds are inclusive)
            (1.0, 3),
            (10.0, 4),
            (float("inf"), 5),
        ]
        assert h.count == 5
        assert h.sum == pytest.approx(102.65)
        assert h.mean == pytest.approx(102.65 / 5)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("lat").mean == 0.0

    def test_buckets_are_sorted_on_construction(self):
        h = Histogram("lat", buckets=(5.0, 1.0))
        assert h.buckets == (1.0, 5.0)

    def test_at_least_one_bucket_required(self):
        with pytest.raises(InvalidParameterError):
            Histogram("lat", buckets=())

    def test_labeled_children_inherit_buckets(self):
        h = Histogram("lat", labelnames=("space",), buckets=(0.5, 2.0))
        child = h.labels(space="seq")
        assert child.buckets == (0.5, 2.0)
        child.observe(1.0)
        assert h.labels(space="seq").count == 1


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("writes_total", "points written")
        b = reg.counter("writes_total")
        assert a is b
        a.inc(3)
        assert reg.get("writes_total").value == 3

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(InvalidParameterError):
            reg.gauge("m")

    def test_label_set_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", labelnames=("space",))
        with pytest.raises(InvalidParameterError):
            reg.counter("m", labelnames=("device",))

    def test_contains_and_get(self):
        reg = MetricsRegistry()
        assert "m" not in reg
        assert reg.get("m") is None
        reg.gauge("m")
        assert "m" in reg

    def test_instruments_iterate_in_name_order(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.counter("alpha")
        assert [i.name for i in reg.instruments()] == ["alpha", "zeta"]

    def test_as_dict_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("writes_total", "w", labelnames=("space",)).labels(
            space="seq"
        ).inc(2)
        reg.histogram("lat", "l", buckets=(1.0,)).observe(0.5)
        snap = reg.as_dict()
        assert snap["writes_total"]["kind"] == "counter"
        assert snap["writes_total"]["samples"] == [
            {"labels": {"space": "seq"}, "value": 2.0}
        ]
        hist = snap["lat"]["samples"][0]
        assert hist["count"] == 1
        assert hist["sum"] == 0.5
        assert hist["buckets"] == [[1.0, 1], [float("inf"), 1]]


class TestNoops:
    def test_noop_registry_hands_out_the_shared_instrument(self):
        assert NOOP_REGISTRY.counter("anything") is NOOP_INSTRUMENT
        assert NOOP_REGISTRY.gauge("anything") is NOOP_INSTRUMENT
        assert NOOP_REGISTRY.histogram("anything") is NOOP_INSTRUMENT

    def test_noop_instrument_absorbs_the_full_api(self):
        n = NOOP_INSTRUMENT
        n.inc()
        n.dec()
        n.set(5)
        n.set_max(5)
        n.observe(0.1)
        assert n.labels(space="seq") is n
        assert n.value == 0.0
        assert list(n.children()) == []

    def test_noop_registry_is_empty(self):
        assert NOOP_REGISTRY.as_dict() == {}
        assert "m" not in NOOP_REGISTRY
        assert list(NOOP_REGISTRY.instruments()) == []

    def test_default_buckets_cover_micro_to_minutes(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 1e-6
        assert DEFAULT_TIME_BUCKETS[-1] >= 100.0
