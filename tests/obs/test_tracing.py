"""Tracer over a FakeClock: exact durations, nesting, retention, no-ops."""

from __future__ import annotations

import pytest

from repro.obs import FakeClock, NOOP_SPAN, NOOP_TRACER, Tracer


def test_fake_clock_rejects_backwards_motion():
    clock = FakeClock()
    clock.advance(1.0)
    with pytest.raises(ValueError):
        clock.advance(-0.5)
    with pytest.raises(ValueError):
        clock.set(0.5)


def test_span_duration_is_exact_under_fake_clock():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("work") as span:
        clock.advance(0.75)
    assert span.duration == pytest.approx(0.75)
    assert span.start == pytest.approx(0.0)
    assert span.end == pytest.approx(0.75)


def test_nested_spans_form_a_tree_with_parent_ids():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("outer") as outer:
        clock.advance(0.25)
        with tracer.span("inner", points=10) as inner:
            clock.advance(0.5)
        clock.advance(0.25)
    assert tracer.roots == [outer]
    assert outer.children == [inner]
    assert inner.parent_id == outer.span_id
    assert outer.duration == pytest.approx(1.0)
    assert inner.duration == pytest.approx(0.5)
    assert inner.attributes == {"points": 10}


def test_sibling_spans_share_a_parent():
    tracer = Tracer(FakeClock())
    with tracer.span("parent"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    root = tracer.roots[0]
    assert [c.name for c in root.children] == ["a", "b"]


def test_span_set_merges_attributes():
    tracer = Tracer(FakeClock())
    with tracer.span("s", fixed=1) as span:
        span.set(extra=2)
        span.set(extra=3, more=4)
    assert span.attributes == {"fixed": 1, "extra": 3, "more": 4}


def test_find_and_iter_walk_depth_first():
    tracer = Tracer(FakeClock())
    with tracer.span("a"):
        with tracer.span("b"):
            with tracer.span("c"):
                pass
    assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c"]
    assert tracer.find("c").name == "c"
    assert tracer.find("missing") is None
    assert tracer.roots[0].find("b").name == "b"


def test_open_span_duration_is_zero():
    tracer = Tracer(FakeClock())
    ctx = tracer.span("open")
    span = ctx.__enter__()
    assert span.duration == 0.0
    ctx.__exit__(None, None, None)


def test_retention_cap_drops_spans_but_keeps_timing():
    clock = FakeClock()
    tracer = Tracer(clock, max_spans=2)
    for _ in range(5):
        with tracer.span("s") as span:
            clock.advance(0.1)
    assert tracer.span_count == 2
    assert tracer.dropped == 3
    assert len(tracer.roots) == 2
    # The dropped span still timed correctly.
    assert span.duration == pytest.approx(0.1)


def test_clear_resets_retention():
    tracer = Tracer(FakeClock())
    with tracer.span("s"):
        pass
    tracer.clear()
    assert tracer.roots == []
    assert tracer.span_count == 0


def test_out_of_order_exit_unwinds_to_the_matching_entry():
    tracer = Tracer(FakeClock())
    outer = tracer.span("outer")
    inner = tracer.span("inner")
    outer_span = outer.__enter__()
    inner.__enter__()
    # Close the outer span while the inner one is still open (generator leak).
    outer.__exit__(None, None, None)
    # The stack unwound; a fresh span becomes a root, not a child of inner.
    with tracer.span("next") as next_span:
        pass
    assert next_span in tracer.roots
    assert outer_span.end is not None


def test_noop_tracer_hands_out_the_shared_span():
    assert NOOP_TRACER.span("anything", points=1) is NOOP_SPAN
    with NOOP_TRACER.span("s") as span:
        span.set(k=1)
    assert span.attributes == {}
    assert list(NOOP_TRACER.iter_spans()) == []
    assert NOOP_TRACER.find("s") is None
    NOOP_TRACER.clear()
