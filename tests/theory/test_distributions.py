"""Delay distributions: sampling, pdf/cdf consistency, closed forms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.theory import (
    AbsNormalDelay,
    ConstantDelay,
    DiscreteUniformDelay,
    ExponentialDelay,
    LogNormalDelay,
    MixtureDelay,
    ParetoDelay,
    UniformDelay,
)

ALL_DISTS = [
    ConstantDelay(2.0),
    ExponentialDelay(0.5),
    ExponentialDelay(3.0),
    AbsNormalDelay(0.0, 1.0),
    AbsNormalDelay(4.0, 2.0),
    LogNormalDelay(0.0, 1.0),
    LogNormalDelay(1.0, 0.5),
    UniformDelay(0.0, 3.0),
    DiscreteUniformDelay(4),
    ParetoDelay(3.0, 1.0),
    MixtureDelay([(0.7, ConstantDelay(0.0)), (0.3, ExponentialDelay(1.0))]),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: repr(d.__class__.__name__))
class TestCommonContract:
    def test_samples_nonnegative(self, dist):
        rng = np.random.default_rng(0)
        samples = dist.sample(5_000, rng)
        assert samples.shape == (5_000,)
        assert np.all(samples >= 0)

    def test_sample_mean_matches(self, dist):
        rng = np.random.default_rng(1)
        samples = dist.sample(100_000, rng)
        mean = dist.mean()
        assert float(np.mean(samples)) == pytest.approx(mean, rel=0.05, abs=0.02)

    def test_cdf_monotone_and_normalised(self, dist):
        xs = np.linspace(0.0, 50.0, 101)
        cdfs = [dist.cdf(float(x)) for x in xs]
        assert all(0.0 <= c <= 1.0 for c in cdfs)
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))
        assert dist.cdf(-1.0) == 0.0

    def test_tail_complements_cdf(self, dist):
        for x in (0.0, 0.5, 2.0, 10.0):
            assert dist.tail(x) == pytest.approx(1.0 - dist.cdf(x))

    def test_sample_cdf_agreement(self, dist):
        rng = np.random.default_rng(2)
        samples = dist.sample(50_000, rng)
        for q in (0.5, 2.0, 5.0):
            emp = float(np.mean(samples <= q))
            # Discrete distributions have mass exactly at integer q.
            assert emp == pytest.approx(dist.cdf(q), abs=0.02)


class TestExponentialClosedForms:
    def test_example6_alpha(self):
        # E(α_L) = 1/(2 e^{λL}): paper quotes λ=2, α_1 ≈ 0.067668.
        dist = ExponentialDelay(2.0)
        assert dist.delay_difference_tail(1.0) == pytest.approx(0.067668, abs=1e-5)
        assert dist.delay_difference_tail(5.0) == pytest.approx(2.270e-5, rel=1e-3)

    def test_laplace_pdf(self):
        dist = ExponentialDelay(1.0)
        assert dist.delay_difference_pdf(0.0) == pytest.approx(0.5)
        assert dist.delay_difference_pdf(1.0) == dist.delay_difference_pdf(-1.0)

    def test_tail_negative_side(self):
        dist = ExponentialDelay(1.0)
        assert dist.delay_difference_tail(-2.0) == pytest.approx(
            1.0 - 0.5 * math.exp(-2.0)
        )


class TestDiscreteUniform:
    def test_pmf_triangular(self):
        dist = DiscreteUniformDelay(4)
        assert dist.delay_difference_pmf(0) == pytest.approx(4 / 16)
        assert dist.delay_difference_pmf(3) == pytest.approx(1 / 16)
        assert dist.delay_difference_pmf(-3) == pytest.approx(1 / 16)
        assert dist.delay_difference_pmf(4) == 0.0
        total = sum(dist.delay_difference_pmf(d) for d in range(-4, 5))
        assert total == pytest.approx(1.0)

    def test_example7_tails(self):
        dist = DiscreteUniformDelay(4)
        assert dist.delay_difference_tail(0.0) == pytest.approx(6 / 16)
        assert dist.delay_difference_tail(1.0) == pytest.approx(3 / 16)
        assert dist.delay_difference_tail(2.0) == pytest.approx(1 / 16)
        assert dist.delay_difference_tail(3.0) == 0.0


class TestUniformTriangularTail:
    def test_symmetry_and_bounds(self):
        dist = UniformDelay(0.0, 2.0)
        assert dist.delay_difference_tail(0.0) == pytest.approx(0.5)
        assert dist.delay_difference_tail(2.0) == 0.0
        assert dist.delay_difference_tail(-2.0) == 1.0
        # F̄(t) + F̄(-t) == 1 by evenness of the (continuous) pdf.
        for t in (0.3, 1.0, 1.7):
            assert dist.delay_difference_tail(t) + dist.delay_difference_tail(-t) == pytest.approx(1.0)


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExponentialDelay(0.0)
        with pytest.raises(InvalidParameterError):
            AbsNormalDelay(0.0, -1.0)
        with pytest.raises(InvalidParameterError):
            LogNormalDelay(0.0, -0.5)
        with pytest.raises(InvalidParameterError):
            UniformDelay(2.0, 1.0)
        with pytest.raises(InvalidParameterError):
            DiscreteUniformDelay(0)
        with pytest.raises(InvalidParameterError):
            ConstantDelay(-1.0)
        with pytest.raises(InvalidParameterError):
            ParetoDelay(0.0)
        with pytest.raises(InvalidParameterError):
            MixtureDelay([])
        with pytest.raises(InvalidParameterError):
            MixtureDelay([(-1.0, ConstantDelay(0.0))])

    def test_lognormal_sigma_zero_is_constant(self):
        dist = LogNormalDelay(1.0, 0.0)
        rng = np.random.default_rng(0)
        samples = dist.sample(10, rng)
        assert np.all(samples == math.e)

    def test_pareto_infinite_mean(self):
        assert ParetoDelay(0.5).mean() == math.inf
