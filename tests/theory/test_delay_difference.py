"""Numeric Δτ analysis: Proposition 1 (evenness) and Example 6 agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.theory import (
    AbsNormalDelay,
    DiscreteUniformDelay,
    ExponentialDelay,
    LogNormalDelay,
    UniformDelay,
    delay_difference_pdf_curve,
    delay_difference_pdf_numeric,
    delay_difference_tail_numeric,
    verify_even_pdf,
)


class TestNumericPdf:
    def test_matches_laplace_closed_form(self):
        dist = ExponentialDelay(2.0)
        for t in (-2.0, -0.5, 0.0, 0.5, 2.0):
            numeric = delay_difference_pdf_numeric(dist, t)
            assert numeric == pytest.approx(dist.delay_difference_pdf(t), rel=1e-3)

    def test_curve_vectorises(self):
        dist = ExponentialDelay(1.0)
        ts = np.array([-1.0, 0.0, 1.0])
        curve = delay_difference_pdf_curve(dist, ts)
        assert curve.shape == (3,)
        assert curve[0] == pytest.approx(curve[2], rel=1e-3)

    def test_discrete_rejected(self):
        with pytest.raises(InvalidParameterError):
            delay_difference_pdf_numeric(DiscreteUniformDelay(4), 0.0)

    def test_figure5_lambda_ordering(self):
        # Figure 5: larger λ concentrates Δτ at 0 (taller peak).
        peak1 = delay_difference_pdf_numeric(ExponentialDelay(1.0), 0.0)
        peak2 = delay_difference_pdf_numeric(ExponentialDelay(2.0), 0.0)
        peak3 = delay_difference_pdf_numeric(ExponentialDelay(3.0), 0.0)
        assert peak1 < peak2 < peak3
        assert peak2 == pytest.approx(1.0, rel=1e-3)  # λ/2


@pytest.mark.parametrize(
    "dist",
    [
        ExponentialDelay(1.0),
        ExponentialDelay(3.0),
        AbsNormalDelay(1.0, 1.0),
        LogNormalDelay(0.0, 0.7),
        UniformDelay(0.0, 2.0),
    ],
    ids=lambda d: type(d).__name__,
)
def test_proposition1_even_pdf(dist):
    assert verify_even_pdf(dist)


class TestNumericTail:
    def test_matches_exponential_closed_form(self):
        dist = ExponentialDelay(2.0)
        for length in (0.0, 0.5, 1.0, 3.0):
            numeric = delay_difference_tail_numeric(dist, length)
            assert numeric == pytest.approx(dist.delay_difference_tail(length), rel=1e-3)

    def test_matches_uniform_closed_form(self):
        dist = UniformDelay(0.0, 2.0)
        for length in (0.0, 0.5, 1.5):
            numeric = delay_difference_tail_numeric(dist, length)
            assert numeric == pytest.approx(dist.delay_difference_tail(length), rel=1e-3)

    def test_discrete_exact_summation(self):
        dist = DiscreteUniformDelay(4)
        for length in (0.0, 1.0, 2.0):
            assert delay_difference_tail_numeric(dist, length) == pytest.approx(
                dist.delay_difference_tail(length)
            )

    def test_monotone_decreasing_in_length(self):
        dist = LogNormalDelay(0.0, 1.0)
        tails = [delay_difference_tail_numeric(dist, float(x)) for x in (0, 1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(tails, tails[1:]))
