"""Propositions 2-6 as executable predictions, checked against measurement."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.backward_sort import BackwardSorter
from repro.core.instrumentation import SortStats
from repro.errors import InvalidParameterError
from repro.metrics import interval_inversion_ratio, mean_overhang
from repro.theory import (
    DiscreteUniformDelay,
    ExponentialDelay,
    LogNormalDelay,
    cost_model,
    expected_block_size_search,
    expected_iir,
    expected_overlap,
    optimal_block_size,
    predicted_complexity,
)
from repro.workloads import TimeSeriesGenerator


class TestProposition2:
    """E(α_L) = F̄_Δτ(L): measured IIR must match the theoretical tail."""

    def test_example6_empirical_vs_theoretical(self):
        dist = ExponentialDelay(2.0)
        stream = TimeSeriesGenerator(dist).generate(300_000, seed=1)
        a1 = interval_inversion_ratio(stream.timestamps, 1)
        assert a1 == pytest.approx(expected_iir(dist, 1), rel=0.05)

    @pytest.mark.parametrize(
        "dist", [ExponentialDelay(1.0), DiscreteUniformDelay(6), LogNormalDelay(0.0, 0.8)],
        ids=lambda d: type(d).__name__,
    )
    def test_generation_index_pairs_exact(self, dist):
        # The proposition's derivation substitutes generation indices for
        # array positions: P(point i arrives after point i+L) = P(Δτ > L).
        # Measuring directly on the delay vector validates the equality with
        # no array-position approximation.
        import numpy as np

        stream = TimeSeriesGenerator(dist).generate(200_000, seed=2)
        delays = np.asarray(stream.delays)
        for interval in (1, 2, 4):
            measured = float(np.mean(delays[:-interval] > interval + delays[interval:]))
            predicted = expected_iir(dist, interval)
            assert measured == pytest.approx(predicted, rel=0.05, abs=2e-4)

    @pytest.mark.parametrize(
        "dist", [ExponentialDelay(1.0), LogNormalDelay(0.0, 0.8)],
        ids=lambda d: type(d).__name__,
    )
    def test_arrival_array_approximation(self, dist):
        # On the actual arrival array, positions drift from generation
        # indices, so the match is approximate for continuous delays.
        stream = TimeSeriesGenerator(dist).generate(200_000, seed=2)
        for interval in (1, 2, 4):
            measured = interval_inversion_ratio(stream.timestamps, interval)
            predicted = expected_iir(dist, interval)
            assert measured == pytest.approx(predicted, rel=0.2, abs=2e-4)

    def test_rejects_negative_interval(self):
        with pytest.raises(InvalidParameterError):
            expected_iir(ExponentialDelay(1.0), -1)


class TestProposition4:
    """E(Q) <= E(Δτ⁺), with equality for discrete Δτ (Equation 20)."""

    def test_example7_exact_value(self):
        assert expected_overlap(DiscreteUniformDelay(4)) == pytest.approx(5 / 8)

    def test_measured_overhang_respects_bound(self):
        for dist in (ExponentialDelay(0.5), DiscreteUniformDelay(8), LogNormalDelay(0.0, 1.0)):
            stream = TimeSeriesGenerator(dist).generate(100_000, seed=3)
            measured = mean_overhang(stream.timestamps)
            assert measured <= expected_overlap(dist) * 1.05

    def test_discrete_equality_with_strict_sum(self):
        # Equation 19 telescopes the measurable overhang into Σ_{k>=1} F̄(k)
        # (i < m forces distances >= 1); for discrete Δτ the match is exact.
        from repro.theory import expected_strict_overlap

        dist = DiscreteUniformDelay(4)
        stream = TimeSeriesGenerator(dist).generate(200_000, seed=4)
        measured = mean_overhang(stream.timestamps)
        assert measured == pytest.approx(expected_strict_overlap(dist), rel=0.05)
        # ... and the paper's Equation 20 value upper-bounds it.
        assert measured <= expected_overlap(dist)


class TestCostModel:
    def test_shape(self):
        n = 100_000
        q = 50.0
        costs = {L: cost_model(n, L, q) for L in (1, 8, 64, 512, 4096)}
        # Convex in L with an interior minimum at L* = ηQ = 50.
        assert costs[64] < costs[1]
        assert costs[64] < costs[4096] or costs[512] < costs[4096]

    def test_optimal_block_size(self):
        assert optimal_block_size(50.0) == pytest.approx(50.0)
        assert optimal_block_size(50.0, eta=2.0) == pytest.approx(100.0)
        assert optimal_block_size(0.0) == 1.0
        assert optimal_block_size(1e9, n=1000) == 1000.0

    def test_optimum_minimises_model(self):
        n, q = 10_000, 30.0
        best = optimal_block_size(q)
        for other in (2.0, 5.0, 300.0, 3000.0):
            assert cost_model(n, best, q) <= cost_model(n, other, q) + 1e-9

    def test_rejects_block_below_one(self):
        with pytest.raises(InvalidParameterError):
            cost_model(100, 0.5, 1.0)


class TestProposition6:
    def test_complexity_degenerates_to_nlogn_for_high_disorder(self):
        n, l0 = 100_000, 4
        # Huge Q: the L0 term dominates, bounded by the max with n log n.
        assert predicted_complexity(n, l0, overlap=1e6) > n * math.log(n)
        # Tiny Q: n log L0 + small — the max clamps at n log n.
        assert predicted_complexity(n, l0, overlap=0.1) == n * math.log(n)

    def test_tiny_inputs(self):
        assert predicted_complexity(1, 4, 1.0) == 1.0


class TestExpectedBlockSizeSearch:
    def test_matches_measured_search_order_of_magnitude(self):
        from repro.core.block_size import find_block_size

        dist = ExponentialDelay(0.05)  # long delays: larger blocks
        stream = TimeSeriesGenerator(dist).generate(100_000, seed=5)
        predicted = expected_block_size_search(dist, theta=0.04, l0=4, n=len(stream))
        measured = find_block_size(stream.timestamps, theta=0.04, l0=4).block_size
        # Same doubling ladder: at most one doubling step apart.
        assert measured in (predicted // 2, predicted, predicted * 2)

    def test_ordered_data_stays_at_l0(self):
        dist = ExponentialDelay(100.0)  # negligible delays
        assert expected_block_size_search(dist, theta=0.04, l0=4, n=10_000) == 4

    def test_rejects_bad_l0(self):
        with pytest.raises(InvalidParameterError):
            expected_block_size_search(ExponentialDelay(1.0), 0.04, 0, 100)


class TestPredictionGuidesSorter:
    def test_backward_sort_block_size_tracks_prediction(self):
        dist = ExponentialDelay(0.2)
        stream = TimeSeriesGenerator(dist).generate(50_000, seed=6)
        predicted = expected_block_size_search(dist, theta=0.04, l0=4, n=len(stream))
        sorter = BackwardSorter()
        ts, vs = stream.sort_input()
        stats = sorter.sort(ts, vs)
        assert stats.block_size in (predicted // 2, predicted, predicted * 2)
