"""Every example script must run to completion as a subprocess."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.name == "algorithm_comparison.py":
        args += ["samsung-d5", "4000"]  # keep the all-sorters sweep quick
    proc = subprocess.run(
        args, capture_output=True, text=True, timeout=180
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
