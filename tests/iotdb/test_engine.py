"""StorageEngine integration: write path, flush, query, separation, WAL."""

from __future__ import annotations

import pytest

from repro.analysis.concurrency import apply_guards
from repro.errors import QueryError, StorageError
from repro.iotdb import IoTDBConfig, Space, StorageEngine
from repro.sorting import PAPER_ALGORITHMS
from repro.workloads import log_normal
from tests.conftest import make_delayed_stream


def _fill(engine, stream, device="root.d1", sensor="s1"):
    for t, v in zip(stream.timestamps, stream.values):
        engine.write(device, sensor, t, v)


class TestWriteAndFlush:
    def test_flush_triggered_at_threshold(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=100))
        stream = make_delayed_stream(350, seed=1)
        _fill(engine, stream)
        assert engine.describe()["flushes"]["seq"] >= 3
        assert len(engine.flush_reports) >= 3

    def test_flush_reports_carry_sort_breakdown(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=200))
        _fill(engine, make_delayed_stream(200, seed=2))
        report = engine.flush_reports[0]
        assert report.total_points == 200
        assert report.total_seconds > 0
        assert report.sort_seconds >= 0
        assert 0.0 <= report.sort_fraction <= 1.0
        assert report.chunks[0].device == "root.d1"

    def test_flush_all_covers_remainder(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=10_000))
        _fill(engine, make_delayed_stream(500, seed=3))
        assert engine.describe()["flushes"]["seq"] == 0
        reports = engine.flush_all()
        assert len(reports) == 1
        assert engine.describe()["flushes"]["seq"] == 1

    def test_batch_write_length_check(self):
        engine = StorageEngine.create()
        with pytest.raises(StorageError):
            engine.write_batch("d", "s", [1, 2], [1.0])


class TestQuery:
    def test_query_spans_memtable_and_files(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=300))
        stream = make_delayed_stream(1_000, seed=4)
        _fill(engine, stream)
        result = engine.query("root.d1", "s1", 0, 1_000)
        assert result.timestamps == list(range(1_000))
        assert result.stats.sources_visited >= 2  # sealed files + memtable

    def test_query_result_sorted_within_window(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=500))
        _fill(engine, make_delayed_stream(2_000, lam=0.2, seed=5))
        result = engine.query("root.d1", "s1", 700, 900)
        assert result.timestamps == list(range(700, 900))

    def test_duplicate_timestamp_overwritten_by_latest(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=10_000))
        engine.write("d", "s", 5, 1.0)
        engine.write("d", "s", 5, 2.0)
        result = engine.query("d", "s", 0, 10)
        assert result.timestamps == [5]
        assert result.values == [2.0]

    def test_overwrite_across_flush_boundary(self):
        # First value sealed into a TsFile; rewrite lands in the unsequence
        # memtable (timestamp below the watermark) and must win the merge.
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=10))
        for t in range(10):
            engine.write("d", "s", t, float(t))
        assert engine.describe()["flushes"]["seq"] == 1
        engine.write("d", "s", 5, 99.0)
        result = engine.query("d", "s", 0, 10)
        assert result.values[5] == 99.0

    def test_query_sort_cost_recorded_for_unsorted_memtable(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=100_000))
        _fill(engine, make_delayed_stream(3_000, lam=0.3, seed=6))
        result = engine.query("root.d1", "s1", 0, 3_000)
        assert result.stats.sort_seconds > 0

    def test_empty_range_rejected(self):
        engine = StorageEngine.create()
        with pytest.raises(QueryError):
            engine.query("d", "s", 10, 10)

    def test_unknown_column_returns_empty(self):
        engine = StorageEngine.create()
        result = engine.query("ghost", "s", 0, 100)
        assert len(result) == 0

    def test_latest_time(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=50))
        _fill(engine, make_delayed_stream(120, seed=7))
        assert engine.latest_time("root.d1", "s1") == 119
        assert engine.latest_time("ghost", "s1") is None


class TestSeparation:
    def test_late_points_routed_to_unseq(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=100))
        for t in range(100):
            engine.write("d", "s", t, float(t))  # flush -> watermark 99
        engine.write("d", "s", 5, 0.5)  # far in the past
        counts = engine.separation.routed_counts()
        assert counts[Space.UNSEQUENCE] == 1
        result = engine.query("d", "s", 0, 100)
        assert result.values[5] == 0.5

    def test_unseq_flush_produces_unseq_file(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=50))
        for t in range(50):
            engine.write("d", "s", t, float(t))
        for t in range(40):  # all below watermark 49
            engine.write("d", "s", t, float(t + 1000))
        for t in range(50, 60):
            engine.write("d", "s", t, float(t))
        engine.flush_all()
        counts = engine.sealed_file_count()
        assert counts[Space.UNSEQUENCE] >= 1
        result = engine.query("d", "s", 0, 40)
        assert result.values == [float(t + 1000) for t in range(40)]


class TestSorterPluggability:
    @pytest.mark.parametrize("name", PAPER_ALGORITHMS)
    def test_every_paper_algorithm_drives_the_engine(self, name):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=250, sorter=name))
        stream = make_delayed_stream(600, lam=0.4, seed=8)
        _fill(engine, stream)
        result = engine.query("root.d1", "s1", 0, 600)
        assert result.timestamps == list(range(600))

    def test_sorter_options_forwarded(self):
        engine = StorageEngine.create(
            IoTDBConfig(sorter="backward", sorter_options={"theta": 0.1, "l0": 8})
        )
        assert engine.sorter.theta == 0.1


class TestWalRecovery:
    def test_recover_unflushed_writes(self):
        config = IoTDBConfig(wal_enabled=True, memtable_flush_threshold=10_000)
        engine = StorageEngine.create(config)
        _fill(engine, make_delayed_stream(200, seed=9))
        # Simulate a crash: rebuild a fresh engine over the same WAL buffers.
        reborn = StorageEngine.create(config)
        shard, reborn_shard = engine.shards[0], reborn.shards[0]
        with shard._lock, reborn_shard._lock:
            reborn_shard._wals = dict(shard._wals)
        apply_guards(reborn_shard)  # re-wrap the transplant under reborn's lock
        replayed = reborn.recover_from_wal()
        assert replayed == 200
        result = reborn.query("root.d1", "s1", 0, 200)
        assert result.timestamps == list(range(200))

    def test_wal_truncated_after_flush(self):
        config = IoTDBConfig(wal_enabled=True, memtable_flush_threshold=100)
        engine = StorageEngine.create(config)
        _fill(engine, make_delayed_stream(100, seed=10))
        shard = engine.shards[0]
        with shard._lock:
            wal = shard._wals[Space.SEQUENCE]
        assert wal.size_bytes() == 0

    def test_recover_requires_wal_enabled(self):
        engine = StorageEngine.create(IoTDBConfig(wal_enabled=False))
        with pytest.raises(StorageError):
            engine.recover_from_wal()


class TestOnDiskFiles:
    def test_data_dir_persists_tsfiles(self, tmp_path):
        config = IoTDBConfig(memtable_flush_threshold=100, data_dir=tmp_path / "data")
        engine = StorageEngine.create(config)
        _fill(engine, make_delayed_stream(250, seed=11))
        engine.close()
        files = sorted((tmp_path / "data").rglob("*.tsfile"))
        assert len(files) == 3  # 2 threshold flushes + final flush_all
        assert all(f.stat().st_size > 0 for f in files)


class TestDescribe:
    def test_engine_snapshot(self):
        engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=100))
        _fill(engine, make_delayed_stream(250, seed=12))
        info = engine.describe()
        assert info["points_written"] == 250
        assert info["sealed_files"] == 2
        assert info["working_points"]["seq"] + info["working_points"]["unseq"] == 50
        assert info["flushes"]["seq"] == 2
        assert "root.d1" in info["watermarks"]
        assert info["sealed"][0]["points"] == 100
