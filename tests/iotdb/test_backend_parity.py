"""Differential parity across persistence backends.

The pluggable backend must change nothing: the same workload driven over
the v1 local layout, the v2 layout on a ``LocalDirStore``, and the v2
layout on a ``MemoryStore`` must produce identical query results,
identical persisted bytes (below ``meta/``), and identical post-crash
recoveries.  These tests are the differential proof behind the "v1 stays
byte-for-byte identical" guarantee.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.iotdb import IoTDBConfig, MemoryStore, StorageEngine
from tests.conftest import make_delayed_stream

BACKENDS = ("v1", "v2-local", "v2-memory")


def _config(data_dir, version, **kw):
    defaults = dict(
        data_dir=data_dir,
        engine_version=version,
        wal_enabled=True,
        memtable_flush_threshold=120,
        shards=2,
    )
    defaults.update(kw)
    return IoTDBConfig(**defaults)


def _build(backend, tmp_path, **kw):
    """(engine, store, data_dir) for one backend flavour."""
    if backend == "v2-memory":
        store = MemoryStore()
        engine = StorageEngine.create(
            _config(None, 2, **kw), backend=store
        )
        return engine, store, None
    data_dir = tmp_path / backend / "data"
    engine = StorageEngine.create(
        _config(data_dir, 1 if backend == "v1" else 2, **kw)
    )
    return engine, engine.store, data_dir


def _drive(engine, n=500, seed=3):
    stream = make_delayed_stream(n, lam=0.4, seed=seed)
    for i, (t, v) in enumerate(zip(stream.timestamps, stream.values)):
        device = f"d{i % 3}"
        engine.write(device, "s", t, v)
    return max(stream.timestamps) + 1


def _query_state(engine, horizon):
    return {
        device: engine.query(device, "s", 0, horizon)
        for device in ("d0", "d1", "d2")
    }


def _tree_bytes(data_dir: Path) -> dict[str, bytes]:
    """Relative path → bytes of every file below data_dir, meta/ excluded."""
    return {
        p.relative_to(data_dir).as_posix(): p.read_bytes()
        for p in sorted(data_dir.rglob("*"))
        if p.is_file() and not p.relative_to(data_dir).as_posix().startswith("meta/")
    }


def _store_bytes(store) -> dict[str, bytes]:
    return {
        key: store.get(key)
        for key in store.list("")
        if not key.startswith("meta/")
    }


class TestQueryParity:
    def test_identical_results_across_backends(self, tmp_path):
        results = {}
        for backend in BACKENDS:
            engine, _, _ = _build(backend, tmp_path)
            horizon = _drive(engine)
            engine.drain_flushes()
            results[backend] = {
                device: (r.timestamps, r.values)
                for device, r in _query_state(engine, horizon).items()
            }
            engine.close()
        assert results["v2-local"] == results["v1"]
        assert results["v2-memory"] == results["v2-local"]

    def test_identical_aggregates_across_backends(self, tmp_path):
        aggregates = {}
        for backend in BACKENDS:
            engine, _, _ = _build(backend, tmp_path)
            horizon = _drive(engine)
            aggregates[backend] = engine.aggregate("d0", "s", 0, horizon)
            engine.close()
        assert aggregates["v2-local"] == aggregates["v1"]
        assert aggregates["v2-memory"] == aggregates["v2-local"]


class TestByteParity:
    def test_v2_local_tree_is_byte_identical_to_v1(self, tmp_path):
        trees = {}
        for backend in ("v1", "v2-local"):
            engine, _, data_dir = _build(backend, tmp_path)
            _drive(engine)
            engine.close()
            trees[backend] = _tree_bytes(data_dir)
        assert trees["v2-local"].keys() == trees["v1"].keys()
        assert trees["v2-local"] == trees["v1"]

    def test_v2_memory_blobs_match_v2_local_files(self, tmp_path):
        engine, _, data_dir = _build("v2-local", tmp_path)
        _drive(engine)
        engine.close()
        local_tree = _tree_bytes(data_dir)

        engine, store, _ = _build("v2-memory", tmp_path)
        _drive(engine)
        engine.close()
        memory_tree = _store_bytes(store)

        assert memory_tree.keys() == local_tree.keys()
        assert memory_tree == local_tree

    def test_meta_stamps_differ_only_in_version(self, tmp_path):
        from repro.iotdb import LocalDirStore, read_meta

        for backend, version in (("v1", 1), ("v2-local", 2)):
            engine, _, data_dir = _build(backend, tmp_path)
            engine.close()
            meta = read_meta(LocalDirStore(data_dir))
            assert meta.version == version
            assert meta.backend == "local"
            assert meta.shards == 2


class TestCrashReopenParity:
    def test_abrupt_reopen_recovers_identically(self, tmp_path):
        recovered = {}
        for backend in BACKENDS:
            engine, store, data_dir = _build(backend, tmp_path)
            horizon = _drive(engine)
            # Abandon without close: sealed files + WAL tails must carry
            # the full state through StorageEngine.open on every backend.
            del engine
            if backend == "v2-memory":
                reborn = StorageEngine.open(_config(None, 2), backend=store)
            else:
                reborn = StorageEngine.open(
                    _config(data_dir, 1 if backend == "v1" else 2)
                )
            recovered[backend] = {
                device: (r.timestamps, r.values)
                for device, r in _query_state(reborn, horizon).items()
            }
            reborn.close()
        assert recovered["v2-local"] == recovered["v1"]
        assert recovered["v2-memory"] == recovered["v2-local"]

    def test_recovered_points_are_complete(self, tmp_path):
        engine, store, _ = _build("v2-memory", tmp_path)
        n = 500
        stream = make_delayed_stream(n, lam=0.4, seed=3)
        written = {}
        for i, (t, v) in enumerate(zip(stream.timestamps, stream.values)):
            device = f"d{i % 3}"
            engine.write(device, "s", t, v)
            written.setdefault(device, {})[t] = v
        horizon = max(stream.timestamps) + 1
        del engine
        reborn = StorageEngine.open(_config(None, 2), backend=store)
        for device, expected in written.items():
            result = reborn.query(device, "s", 0, horizon)
            assert dict(zip(result.timestamps, result.values)) == expected
        reborn.close()
