"""Column encoders: round-trips, compression behaviour, error handling."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncodingError
from repro.iotdb import TSDataType, get_encoder
from repro.iotdb.encoding import (
    BitReader,
    BitWriter,
    read_uvarint,
    write_uvarint,
    zigzag_decode,
    zigzag_encode,
)


class TestPrimitives:
    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=-(2**62), max_value=2**62))
    def test_zigzag_roundtrip(self, n):
        assert zigzag_decode(zigzag_encode(n)) == n
        assert zigzag_encode(n) >= 0

    def test_zigzag_order(self):
        assert [zigzag_encode(x) for x in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(min_value=0, max_value=2**63))
    def test_uvarint_roundtrip(self, n):
        buf = bytearray()
        write_uvarint(buf, n)
        value, pos = read_uvarint(bytes(buf), 0)
        assert value == n
        assert pos == len(buf)

    def test_uvarint_rejects_negative(self):
        with pytest.raises(EncodingError):
            write_uvarint(bytearray(), -1)

    def test_uvarint_truncated(self):
        with pytest.raises(EncodingError):
            read_uvarint(b"\x80", 0)

    @settings(max_examples=30, deadline=None)
    @given(bits=st.lists(st.integers(0, 1), max_size=100))
    def test_bit_io_roundtrip(self, bits):
        writer = BitWriter()
        for b in bits:
            writer.write_bit(b)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in bits] == bits

    def test_bit_io_multibit(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0xFF, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bits(8) == 0xFF

    def test_bit_reader_exhaustion(self):
        with pytest.raises(EncodingError):
            BitReader(b"").read_bit()


def _roundtrip(name, dtype, values):
    blob = get_encoder(name, dtype).encode(values)
    return get_encoder(name, dtype).decode(blob, len(values)), blob


class TestRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(vals=st.lists(st.integers(-(2**60), 2**60), max_size=100))
    def test_int_encoders(self, vals):
        for name in ("plain", "ts2diff", "rle"):
            back, _ = _roundtrip(name, TSDataType.INT64, vals)
            assert back == vals

    @settings(max_examples=30, deadline=None)
    @given(vals=st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=100))
    def test_double_encoders(self, vals):
        for name in ("plain", "gorilla"):
            back, _ = _roundtrip(name, TSDataType.DOUBLE, vals)
            assert back == vals

    def test_gorilla_special_values(self):
        vals = [0.0, -0.0, math.pi, 1e308, 5.5, 5.5, -1e-300, float("inf")]
        back, _ = _roundtrip("gorilla", TSDataType.DOUBLE, vals)
        assert back == vals

    def test_gorilla_nan_roundtrip(self):
        back, _ = _roundtrip("gorilla", TSDataType.DOUBLE, [1.0, float("nan"), 2.0])
        assert back[0] == 1.0 and math.isnan(back[1]) and back[2] == 2.0

    @settings(max_examples=30, deadline=None)
    @given(vals=st.lists(st.booleans(), max_size=200))
    def test_boolean_encoders(self, vals):
        for name in ("plain", "rle"):
            back, _ = _roundtrip(name, TSDataType.BOOLEAN, vals)
            assert back == vals

    @settings(max_examples=30, deadline=None)
    @given(vals=st.lists(st.text(max_size=50), max_size=50))
    def test_text_encoder(self, vals):
        back, _ = _roundtrip("plain", TSDataType.TEXT, vals)
        assert back == vals

    def test_empty_inputs(self):
        for name, dtype in (
            ("plain", TSDataType.INT64),
            ("ts2diff", TSDataType.INT64),
            ("rle", TSDataType.INT64),
            ("plain", TSDataType.DOUBLE),
            ("gorilla", TSDataType.DOUBLE),
            ("plain", TSDataType.TEXT),
        ):
            back, blob = _roundtrip(name, dtype, [])
            assert back == []


class TestCompressionBehaviour:
    def test_ts2diff_rewards_sorted_timestamps(self):
        sorted_ts = list(range(0, 50_000, 5))
        rng = random.Random(1)
        shuffled = list(sorted_ts)
        rng.shuffle(shuffled)
        enc = get_encoder("ts2diff", TSDataType.INT64)
        assert len(enc.encode(sorted_ts)) < len(enc.encode(shuffled)) / 2

    def test_rle_crushes_constant_runs(self):
        vals = [7] * 10_000
        assert len(get_encoder("rle", TSDataType.INT64).encode(vals)) < 16

    def test_gorilla_crushes_repeated_values(self):
        vals = [3.14] * 1_000
        blob = get_encoder("gorilla", TSDataType.DOUBLE).encode(vals)
        # 64 bits + ~1 bit per repeat.
        assert len(blob) < 200


class TestErrorHandling:
    def test_type_mismatches_rejected(self):
        with pytest.raises(EncodingError):
            get_encoder("plain", TSDataType.INT64).encode([1.5])
        with pytest.raises(EncodingError):
            get_encoder("ts2diff", TSDataType.INT64).encode(["x"])
        with pytest.raises(EncodingError):
            get_encoder("plain", TSDataType.BOOLEAN).encode([1])
        with pytest.raises(EncodingError):
            get_encoder("plain", TSDataType.TEXT).encode([7])
        with pytest.raises(EncodingError):
            get_encoder("gorilla", TSDataType.DOUBLE).encode([True])

    def test_unsupported_combination_falls_back_to_plain(self):
        enc = get_encoder("gorilla", TSDataType.TEXT)
        assert enc.name == "plain"
        enc = get_encoder("ts2diff", TSDataType.DOUBLE)
        assert enc.name == "plain"
