"""The SQL-ish session layer: parsing and execution of the paper's statements."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.iotdb import IoTDBConfig, StorageEngine
from repro.iotdb.session import Session, parse


@pytest.fixture
def session():
    engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=10_000))
    s = Session(engine)
    for t in range(100):
        s.insert("root.sg.d1", "s1", t, float(t))
    return s


class TestParsing:
    def test_select_star(self):
        parsed = parse("SELECT * FROM root.sg.d1.s1")
        assert parsed.device == "root.sg.d1"
        assert parsed.sensor == "s1"
        assert parsed.aggregation is None
        assert parsed.start == 0

    def test_paper_statement(self):
        # The literal query shape of §VI-D.
        parsed = parse("SELECT * FROM data.s WHERE time > current - 500")
        assert parsed.start_is_current_minus == 499
        assert parsed.group_window is None

    def test_range_predicates(self):
        parsed = parse("select * from d.s where time >= 10 and time < 20")
        assert parsed.start == 10
        assert parsed.end == 20

    def test_inclusive_bounds(self):
        parsed = parse("select * from d.s where time > 10 and time <= 20")
        assert parsed.start == 11
        assert parsed.end == 21

    def test_aggregations(self):
        assert parse("select count(*) from d.s").aggregation == "count"
        assert parse("select avg(v) from d.s").aggregation == "avg"
        assert parse("select min(v) from d.s").aggregation == "min_value"
        assert parse("select last(v) from d.s").aggregation == "last"

    def test_group_by(self):
        parsed = parse("select avg(v) from d.s where time < 60 group by (10)")
        assert parsed.group_window == 10

    @pytest.mark.parametrize(
        "bad",
        [
            "DELETE FROM d.s",
            "select * from nodots",
            "select median(v) from d.s",
            "select v from d.s",
            "select * from d.s where humidity > 3",
            "select * from d.s group by (10)",  # GROUP BY needs aggregation
            "select * from d.s where time ~ 5",
        ],
    )
    def test_rejects_bad_statements(self, bad):
        with pytest.raises(QueryError):
            parse(bad)


class TestExecution:
    def test_select_star_range(self, session):
        result = session.execute(
            "SELECT * FROM root.sg.d1.s1 WHERE time >= 10 AND time < 15"
        )
        assert result.timestamps == [10, 11, 12, 13, 14]

    def test_paper_tail_query(self, session):
        result = session.execute(
            "SELECT * FROM root.sg.d1.s1 WHERE time > current - 10"
        )
        assert result.timestamps == list(range(90, 100))

    def test_count_and_avg(self, session):
        assert session.execute("select count(*) from root.sg.d1.s1") == 100
        avg = session.execute(
            "select avg(v) from root.sg.d1.s1 where time < 10"
        )
        assert avg == pytest.approx(4.5)

    def test_group_by_windows(self, session):
        rows = session.execute(
            "select count(*) from root.sg.d1.s1 where time < 40 group by (10)"
        )
        assert rows == [(0, 10), (10, 10), (20, 10), (30, 10)]

    def test_current_on_empty_column(self, session):
        with pytest.raises(QueryError):
            session.execute("select * from ghost.s1 where time > current - 5")

    def test_empty_resolved_range(self, session):
        with pytest.raises(QueryError):
            session.execute(
                "select * from root.sg.d1.s1 where time >= 50 and time < 50"
            )

    def test_semicolon_and_case_insensitive(self, session):
        result = session.execute("sElEcT * fRoM root.sg.d1.s1 WhErE tImE < 3;")
        assert result.timestamps == [0, 1, 2]

    def test_multiline_paper_format(self, session):
        # The statement exactly as typeset in the paper.
        result = session.execute(
            """SELECT *
            FROM root.sg.d1.s1
            WHERE time > current - 500"""
        )
        assert len(result) == 100


class TestValuePredicates:
    def test_parse_value_predicate(self):
        parsed = parse("select * from d.s where v > 3.5")
        assert parsed.value_predicates == ((">", 3.5),)
        parsed = parse("select * from d.s where time >= 1 and value <= -2")
        assert parsed.value_predicates == (("<=", -2.0),)
        assert parsed.start == 1

    def test_select_star_with_value_filter(self, session):
        result = session.execute(
            "select * from root.sg.d1.s1 where time < 20 and v >= 15"
        )
        assert result.timestamps == [15, 16, 17, 18, 19]

    def test_equality_and_inequality(self, session):
        result = session.execute("select * from root.sg.d1.s1 where v = 42")
        assert result.values == [42.0]
        result = session.execute(
            "select * from root.sg.d1.s1 where time < 3 and v != 1"
        )
        assert result.values == [0.0, 2.0]

    def test_aggregation_over_filtered_values(self, session):
        count = session.execute("select count(*) from root.sg.d1.s1 where v >= 90")
        assert count == 10
        avg = session.execute("select avg(v) from root.sg.d1.s1 where v < 4")
        assert avg == pytest.approx(1.5)

    def test_group_by_with_value_filter(self, session):
        rows = session.execute(
            "select count(*) from root.sg.d1.s1 where time < 40 and v >= 35 group by (10)"
        )
        assert rows == [(0, 0), (10, 0), (20, 0), (30, 5)]

    def test_conjunction_of_value_predicates(self, session):
        result = session.execute(
            "select * from root.sg.d1.s1 where v >= 10 and v < 13"
        )
        assert result.values == [10.0, 11.0, 12.0]
