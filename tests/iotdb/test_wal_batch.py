"""WAL batch frames: roundtrip, mixed-kind replay, truncation, accounting.

A batch frame is one length-prefixed JSON array of N records with one CRC
and one flush; ``replay`` accepts both frame kinds, so logs written before
batch framing existed (single-record frames only) and logs mixing both
stay recoverable.  Truncation anywhere inside a batch frame drops the
whole batch — the batch was acknowledged only after its single flush, so
replay still surfaces exactly the acknowledged prefix.
"""

from __future__ import annotations

import io

import pytest

from repro.errors import WalCorruptionError
from repro.iotdb.wal import SegmentedWal, WriteAheadLog

RECORDS = [
    ("root.sg.d0", "s0", 5, 1.5),
    ("root.sg.d0", "s1", 6, True),
    ("root.sg.d1", "s0", 7, "text value"),
    ("root.sg.d1", "s1", -8, 2**60),
]


class _FlushCountingFile(io.BytesIO):
    def __init__(self) -> None:
        super().__init__()
        self.flushes = 0

    def flush(self) -> None:  # noqa: A003 - io API
        self.flushes += 1
        super().flush()


class TestBatchFrameCodec:
    def test_batch_roundtrip(self):
        wal = WriteAheadLog()
        wal.append_batch(RECORDS)
        assert [tuple(r) for r in wal.replay()] == RECORDS

    def test_mixed_single_and_batch_frames_replay_in_order(self):
        wal = WriteAheadLog()
        wal.append(*RECORDS[0])
        wal.append_batch(RECORDS[1:3])
        wal.append(*RECORDS[3])
        wal.append_batch([RECORDS[0]])
        assert [tuple(r) for r in wal.replay()] == [
            RECORDS[0],
            RECORDS[1],
            RECORDS[2],
            RECORDS[3],
            RECORDS[0],
        ]

    def test_batch_frame_is_smaller_than_single_frames(self):
        single = WriteAheadLog()
        single_bytes = sum(single.append(*record) for record in RECORDS)
        batch = WriteAheadLog()
        batch_bytes = batch.append_batch(RECORDS)
        assert 0 < batch_bytes < single_bytes
        assert batch.size_bytes() == batch_bytes
        assert single.size_bytes() == single_bytes

    def test_one_flush_per_batch(self):
        fileobj = _FlushCountingFile()
        wal = WriteAheadLog(fileobj)
        wal.append_batch(RECORDS)
        assert fileobj.flushes == 1
        wal.append(*RECORDS[0])
        assert fileobj.flushes == 2

    def test_empty_batch_writes_nothing_and_never_flushes(self):
        fileobj = _FlushCountingFile()
        wal = WriteAheadLog(fileobj)
        assert wal.append_batch([]) == 0
        assert fileobj.flushes == 0
        assert wal.size_bytes() == 0
        assert list(wal.replay()) == []

    def test_single_frame_logs_stay_recoverable(self):
        # The pre-batch on-disk format is exactly today's single-record
        # frame; a log of only those must replay unchanged.
        wal = WriteAheadLog()
        for record in RECORDS:
            wal.append(*record)
        assert [tuple(r) for r in wal.replay()] == RECORDS


def _encode_mixed() -> tuple[WriteAheadLog, list[tuple[int, int]]]:
    """A log of single, batch, single frames.

    Returns the WAL plus ``(byte_offset, records_replayable)`` after each
    frame — the clean truncation points.
    """
    wal = WriteAheadLog()
    boundaries = [(0, 0)]
    offset = wal.append(*RECORDS[0])
    boundaries.append((offset, 1))
    offset += wal.append_batch(RECORDS[1:3])
    boundaries.append((offset, 3))
    offset += wal.append(*RECORDS[3])
    boundaries.append((offset, 4))
    return wal, boundaries


class TestBatchFrameTruncation:
    def test_truncation_at_every_byte_yields_the_acked_prefix(self):
        wal, boundaries = _encode_mixed()
        payload = wal._file.getvalue()
        for cut in range(len(payload) + 1):
            replayed = list(WriteAheadLog(io.BytesIO(payload[:cut])).replay())
            expected = max(count for offset, count in boundaries if offset <= cut)
            assert len(replayed) == expected, f"cut at byte {cut}"
            assert [tuple(r) for r in replayed] == RECORDS[:expected]

    def test_strict_raises_exactly_off_frame_boundaries(self):
        wal, boundaries = _encode_mixed()
        payload = wal._file.getvalue()
        clean = {offset for offset, _ in boundaries}
        for cut in range(len(payload) + 1):
            truncated = WriteAheadLog(io.BytesIO(payload[:cut]))
            if cut in clean:
                assert len(list(truncated.replay(strict=True))) == max(
                    count for offset, count in boundaries if offset <= cut
                )
            else:
                with pytest.raises(WalCorruptionError):
                    list(truncated.replay(strict=True))

    def test_corrupt_batch_payload_fails_the_crc(self):
        wal = WriteAheadLog()
        wal.append_batch(RECORDS)
        payload = bytearray(wal._file.getvalue())
        payload[10] ^= 0xFF  # inside the JSON array, not the header
        corrupted = WriteAheadLog(io.BytesIO(bytes(payload)))
        assert list(corrupted.replay()) == []
        with pytest.raises(WalCorruptionError, match="checksum mismatch"):
            list(corrupted.replay(strict=True))


class _PoisonedLock:
    def __enter__(self):
        raise AssertionError("append_batch([]) must not take the lock")

    def __exit__(self, *exc):  # pragma: no cover - never entered
        return False


class TestSegmentedWalBatch:
    def test_batch_append_lands_in_the_active_segment(self):
        wal = SegmentedWal.in_memory("seq")
        wal.append_batch(RECORDS)
        assert [tuple(r) for r in wal.replay()] == RECORDS

    def test_empty_batch_skips_the_lock_and_the_file(self):
        wal = SegmentedWal.in_memory("seq")
        wal._lock = _PoisonedLock()
        wal.append_batch([])  # early return: the poisoned lock is untouched
        wal.append_batch(iter(()))

    def test_stats_accumulate_and_survive_segment_drops(self):
        wal = SegmentedWal.in_memory("seq")
        wal.append(*RECORDS[0])
        wal.append_batch(RECORDS[1:])
        stats = wal.stats()
        assert stats["flushes"] == 2
        assert stats["bytes_appended"] == wal.size_bytes()
        sealed = wal.rotate()
        wal.drop(sealed)
        assert wal.stats() == stats  # cumulative, not current-size
        assert wal.size_bytes() < stats["bytes_appended"]

    def test_empty_batch_leaves_stats_untouched(self):
        wal = SegmentedWal.in_memory("seq")
        wal.append_batch([])
        assert wal.stats() == {"bytes_appended": 0, "flushes": 0}

    def test_replay_spans_batch_frames_across_segments(self):
        wal = SegmentedWal.in_memory("seq")
        wal.append_batch(RECORDS[:2])
        wal.rotate()
        wal.append_batch(RECORDS[2:])
        assert [tuple(r) for r in wal.replay()] == RECORDS
