"""BlobStore contract tests: LocalDirStore and MemoryStore behave alike.

The two backends must be observationally equivalent: the property test
drives the same random op sequence through a store and a plain
``dict[str, bytes]`` model and checks every readable surface after each
op.  Everything the engine relies on — put atomicity keys, rename as the
publish primitive, prefix listing, streaming handles — is pinned here
against both implementations.
"""

from __future__ import annotations

import io
import tempfile

import pytest
from hypothesis import given, strategies as st

from repro.errors import BlobNotFoundError, StorageError
from repro.iotdb.backends import (
    LocalDirStore,
    MemoryStore,
    validate_key,
)

KEYS = ("a", "b.bin", "dir/a", "dir/b.part", "deep/er/key.log")


@pytest.fixture(params=["local", "memory"])
def store(request, tmp_path):
    if request.param == "local":
        return LocalDirStore(tmp_path / "blobs")
    return MemoryStore()


class TestKeyValidation:
    @pytest.mark.parametrize(
        "bad",
        ["", "/abs", "trailing/", "a//b", "../up", "a/./b", "a/../b", "win\\path"],
    )
    def test_rejects_malformed_keys(self, bad):
        with pytest.raises(StorageError):
            validate_key(bad)

    @pytest.mark.parametrize("good", KEYS)
    def test_accepts_relative_slash_keys(self, good):
        validate_key(good)

    def test_stores_validate_on_every_entry_point(self, store):
        for call in (
            lambda: store.put("../x", b"y"),
            lambda: store.get("../x"),
            lambda: store.delete("../x"),
            lambda: store.open_write("../x"),
            lambda: store.open_read("../x"),
            lambda: store.rename_atomic("../x", "a"),
        ):
            with pytest.raises(StorageError):
                call()


class TestBasicOps:
    def test_put_get_roundtrip(self, store):
        store.put("dir/a", b"hello")
        assert store.get("dir/a") == b"hello"
        assert store.exists("dir/a")

    def test_put_overwrites(self, store):
        store.put("k", b"one")
        store.put("k", b"two")
        assert store.get("k") == b"two"

    def test_get_missing_raises(self, store):
        with pytest.raises(BlobNotFoundError):
            store.get("nope")

    def test_delete_and_missing_ok(self, store):
        store.put("k", b"x")
        store.delete("k")
        assert not store.exists("k")
        with pytest.raises(BlobNotFoundError):
            store.delete("k")
        store.delete("k", missing_ok=True)  # no raise

    def test_list_is_sorted_string_prefix(self, store):
        for key in KEYS:
            store.put(key, b"x")
        assert store.list("") == sorted(KEYS)
        assert store.list("dir/") == ["dir/a", "dir/b.part"]
        # String prefix, not path prefix: "d" matches both dir/ and deep/.
        assert store.list("d") == ["deep/er/key.log", "dir/a", "dir/b.part"]
        assert store.list("zzz") == []

    def test_rename_atomic_moves_bytes(self, store):
        store.put("k.part", b"payload")
        store.rename_atomic("k.part", "k")
        assert store.get("k") == b"payload"
        assert not store.exists("k.part")

    def test_rename_atomic_replaces_target(self, store):
        store.put("k", b"old")
        store.put("k.part", b"new")
        store.rename_atomic("k.part", "k")
        assert store.get("k") == b"new"

    def test_rename_missing_source_raises(self, store):
        with pytest.raises(BlobNotFoundError):
            store.rename_atomic("ghost", "k")

    def test_ensure_prefix_is_idempotent(self, store):
        store.ensure_prefix("shard-00/")
        store.ensure_prefix("shard-00/")
        store.put("shard-00/f", b"x")
        assert store.list("shard-00/") == ["shard-00/f"]


class TestHandles:
    def test_open_write_streams_and_reads_back(self, store):
        handle = store.open_write("w/stream")
        handle.write(b"abc")
        handle.flush()
        handle.write(b"def")
        handle.close()
        assert store.get("w/stream") == b"abcdef"

    def test_open_write_handle_is_seekable_rw(self, store):
        handle = store.open_write("k")
        handle.write(b"0123456789")
        handle.seek(2)
        assert handle.read(3) == b"234"
        handle.seek(0, io.SEEK_END)
        assert handle.tell() == 10
        handle.seek(4)
        handle.truncate()
        handle.close()
        assert store.get("k") == b"0123"

    def test_open_read_is_read_only(self, store):
        store.put("k", b"bytes")
        handle = store.open_read("k")
        assert handle.read() == b"bytes"
        with pytest.raises((io.UnsupportedOperation, OSError)):
            handle.write(b"nope")
        handle.close()

    def test_open_read_missing_raises(self, store):
        with pytest.raises(BlobNotFoundError):
            store.open_read("ghost")

    def test_handle_survives_rename(self, store):
        # The seal protocol renames <key>.part to <key> while the sink
        # handle may still be open (the shard keeps reading sealed files
        # through it) — like an OS fd, the handle must stay valid.
        handle = store.open_write("f.part")
        handle.write(b"sealed-bytes")
        handle.flush()
        store.rename_atomic("f.part", "f")
        handle.seek(0)
        assert handle.read() == b"sealed-bytes"
        handle.close()
        assert store.get("f") == b"sealed-bytes"


class TestMemorySnapshot:
    def test_snapshot_is_deep_and_restorable(self):
        store = MemoryStore()
        store.put("a", b"1")
        handle = store.open_write("b")
        handle.write(b"partial")
        snap = store.snapshot()
        handle.write(b"-more")
        store.put("a", b"2")
        assert snap == {"a": b"1", "b": b"partial"}
        restored = MemoryStore.from_snapshot(snap)
        assert restored.get("a") == b"1"
        assert restored.get("b") == b"partial"
        # The restored store is independent of the snapshot dict.
        restored.put("a", b"3")
        assert snap["a"] == b"1"


# -- property: both stores vs the dict model -----------------------------

_key = st.sampled_from(KEYS)
_data = st.binary(max_size=64)
_op = st.one_of(
    st.tuples(st.just("put"), _key, _data),
    st.tuples(st.just("delete"), _key),
    st.tuples(st.just("rename"), _key, _key),
    st.tuples(st.just("rewrite"), _key, _data),
)


def _apply(store, model: dict, op) -> None:
    if op[0] == "put":
        store.put(op[1], op[2])
        model[op[1]] = op[2]
    elif op[0] == "delete":
        store.delete(op[1], missing_ok=True)
        model.pop(op[1], None)
    elif op[0] == "rename":
        src, dst = op[1], op[2]
        if src in model:
            store.rename_atomic(src, dst)
            data = model.pop(src)
            if src != dst:
                model[dst] = data
            else:
                model[src] = data
        else:
            with pytest.raises(BlobNotFoundError):
                store.rename_atomic(src, dst)
    elif op[0] == "rewrite":
        # open_write truncates ("wb+" semantics) on both backends.
        handle = store.open_write(op[1])
        handle.write(op[2])
        handle.close()
        model[op[1]] = op[2]


@given(ops=st.lists(_op, max_size=24))
def test_stores_match_dict_model(ops):
    with tempfile.TemporaryDirectory(prefix="repro-blob-prop-") as tmp:
        local = LocalDirStore(tmp)
        memory = MemoryStore()
        for name, store in (("local", local), ("memory", memory)):
            model: dict[str, bytes] = {}
            for op in ops:
                _apply(store, model, op)
            assert store.list("") == sorted(model), name
            for key, data in model.items():
                assert store.get(key) == data, (name, key)
                assert store.exists(key), (name, key)
