"""Property suite: the interval index equals the brute-force overlap scan.

The index's whole value is that its candidate set is *provably* the same
set a linear scan over every sealed file's ``[min_time, max_time]`` range
would produce — pruning may skip work, never data.  Hypothesis drives
randomized file tables (tight time ranges force duplicates, point ranges,
and adjacent ranges) and compares the indexed answer against the obvious
O(n) reference, plus the persistence layer's corruption detection at every
possible truncation point.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexCorruptionError
from repro.iotdb.interval_index import IndexEntry, IntervalIndex


@st.composite
def _entry_tables(draw, max_size=30):
    """Random file tables over a tiny time domain: collisions, point
    ranges (min == max), and adjacent ranges all occur constantly."""
    size = draw(st.integers(0, max_size))
    entries = []
    for i in range(size):
        a = draw(st.integers(0, 50))
        b = draw(st.integers(0, 50))
        space = draw(st.sampled_from(["seq", "unseq"]))
        entries.append(
            IndexEntry(
                file_id=f"{space}-{i:06d}",
                space=space,
                min_time=min(a, b),
                max_time=max(a, b),
            )
        )
    return entries


def _brute_force(entries, start, end):
    """The O(n) reference: scan every file's range."""
    return {e.file_id for e in entries if e.max_time >= start and e.min_time < end}


@settings(max_examples=200, deadline=None)
@given(entries=_entry_tables(), start=st.integers(-5, 55), length=st.integers(1, 60))
def test_candidates_equal_brute_force_scan(entries, start, length):
    index = IntervalIndex(entries)
    assert index.candidates(start, start + length) == _brute_force(
        entries, start, start + length
    )


@settings(max_examples=200, deadline=None)
@given(entries=_entry_tables(), start=st.integers(-5, 55), length=st.integers(1, 60))
def test_pruned_files_are_provably_disjoint(entries, start, length):
    # The contrapositive the executor relies on: every file *not* in the
    # candidate set lies entirely outside the query range.
    end = start + length
    candidates = IntervalIndex(entries).candidates(start, end)
    for e in entries:
        if e.file_id not in candidates:
            assert e.max_time < start or e.min_time >= end


@settings(max_examples=100, deadline=None)
@given(entries=_entry_tables(), lo=st.integers(-5, 55), width=st.integers(0, 60))
def test_overlapping_equals_closed_interval_scan(entries, lo, width):
    # The compaction scheduler's overlap measure: closed-interval both ends.
    hi = lo + width
    got = IntervalIndex(entries).overlapping(lo, hi)
    expected = [e for e in entries if e.min_time <= hi and e.max_time >= lo]
    assert sorted(got) == sorted(expected)


@settings(max_examples=100, deadline=None)
@given(
    entries=_entry_tables(max_size=15),
    removals=st.lists(st.integers(0, 14), max_size=8),
    start=st.integers(-5, 55),
    length=st.integers(1, 60),
)
def test_incremental_maintenance_matches_rebuild(entries, removals, start, length):
    # add()/remove() one at a time must land on the same structure as
    # building from scratch — the shard maintains the index incrementally
    # across seals and compactions.
    incremental = IntervalIndex()
    for e in entries:
        incremental.add(e)
    gone = {entries[i].file_id for i in removals if i < len(entries)}
    incremental.remove(gone)
    survivors = [e for e in entries if e.file_id not in gone]
    rebuilt = IntervalIndex(survivors)
    assert incremental.entries() == rebuilt.entries()
    assert incremental.candidates(start, start + length) == rebuilt.candidates(
        start, start + length
    )
    for e in entries:
        assert incremental.covers(e.file_id) == (e.file_id not in gone)


@settings(max_examples=50, deadline=None)
@given(entries=_entry_tables(), start=st.integers(-5, 55))
def test_empty_and_inverted_ranges_have_no_candidates(entries, start):
    index = IntervalIndex(entries)
    assert index.candidates(start, start) == set()
    assert index.candidates(start, start - 3) == set()


@settings(max_examples=50, deadline=None)
@given(entries=_entry_tables())
def test_save_load_roundtrip(entries, tmp_path_factory):
    path = tmp_path_factory.mktemp("idx") / "interval-index.json"
    index = IntervalIndex(entries)
    index.save(path)
    loaded = IntervalIndex.load(path)
    assert loaded.entries() == index.entries()


def test_every_truncation_prefix_is_detected(tmp_path):
    path = tmp_path / "interval-index.json"
    entries = [
        IndexEntry(file_id=f"seq-{i:06d}", space="seq", min_time=i, max_time=i + 5)
        for i in range(4)
    ]
    IntervalIndex(entries).save(path)
    blob = path.read_bytes()
    for cut in range(len(blob)):
        path.write_bytes(blob[:cut])
        with pytest.raises(IndexCorruptionError):
            IntervalIndex.load(path)
    path.write_bytes(blob)
    assert IntervalIndex.load(path).entries() == IntervalIndex(entries).entries()


def test_bit_flips_are_detected(tmp_path):
    path = tmp_path / "interval-index.json"
    IntervalIndex(
        [IndexEntry(file_id="unseq-000001", space="unseq", min_time=3, max_time=9)]
    ).save(path)
    blob = bytearray(path.read_bytes())
    flipped = bytearray(blob)
    # Flip one bit inside the JSON payload (past magic + checksum lines).
    payload_start = blob.index(b"\n", blob.index(b"\n") + 1) + 1
    flipped[payload_start + 5] ^= 0x04
    path.write_bytes(bytes(flipped))
    with pytest.raises(IndexCorruptionError):
        IntervalIndex.load(path)


def test_missing_file_is_corruption_not_crash(tmp_path):
    with pytest.raises(IndexCorruptionError):
        IntervalIndex.load(tmp_path / "no-such-index.json")
