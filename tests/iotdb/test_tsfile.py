"""TsFile format: write/read round-trips, pruning, corruption detection."""

from __future__ import annotations

import io

import pytest

from repro.errors import InvalidParameterError, TsFileCorruptionError
from repro.iotdb import PageStatistics, TSDataType, TsFileReader, TsFileWriter


def _write_simple(ts, vs, dtype=TSDataType.DOUBLE, page_size=10, **chunk_kwargs):
    buf = io.BytesIO()
    writer = TsFileWriter(buf)
    writer.write_chunk("root.d1", "s1", dtype, ts, vs, page_size=page_size, **chunk_kwargs)
    writer.close()
    return buf


class TestRoundTrip:
    def test_single_chunk(self):
        ts = list(range(100))
        vs = [float(t) * 0.5 for t in ts]
        reader = TsFileReader(_write_simple(ts, vs))
        out_t, out_v = reader.read_chunk("root.d1", "s1")
        assert out_t == ts
        assert out_v == vs

    def test_multiple_devices_and_sensors(self):
        buf = io.BytesIO()
        writer = TsFileWriter(buf)
        writer.write_chunk("root.d1", "s1", TSDataType.INT64, [1, 2], [10, 20])
        writer.write_chunk("root.d1", "s2", TSDataType.TEXT, [1, 3], ["a", "b"])
        writer.write_chunk("root.d2", "s1", TSDataType.BOOLEAN, [5], [True])
        writer.close()
        reader = TsFileReader(buf)
        assert reader.devices() == ["root.d1", "root.d2"]
        assert reader.sensors("root.d1") == ["s1", "s2"]
        assert reader.read_chunk("root.d1", "s2") == ([1, 3], ["a", "b"])
        assert reader.read_chunk("root.d2", "s1") == ([5], [True])

    def test_missing_chunk_returns_empty(self):
        reader = TsFileReader(_write_simple([1], [1.0]))
        assert reader.read_chunk("root.d9", "s1") == ([], [])
        assert reader.query_range("root.d9", "s1", 0, 10) == ([], [])
        assert reader.chunk_metadata("root.d9", "s1") is None

    def test_gorilla_values(self):
        ts = list(range(50))
        vs = [float(i % 3) for i in ts]
        buf = _write_simple(ts, vs, value_encoding="gorilla")
        reader = TsFileReader(buf)
        assert reader.read_chunk("root.d1", "s1") == (ts, vs)


class TestQueryRange:
    def test_half_open_semantics(self):
        ts = list(range(0, 100, 2))
        vs = [float(t) for t in ts]
        reader = TsFileReader(_write_simple(ts, vs))
        out_t, out_v = reader.query_range("root.d1", "s1", 10, 20)
        assert out_t == [10, 12, 14, 16, 18]
        assert out_v == [10.0, 12.0, 14.0, 16.0, 18.0]

    def test_page_pruning_by_stats(self):
        ts = list(range(1000))
        vs = [float(t) for t in ts]
        reader = TsFileReader(_write_simple(ts, vs, page_size=100))
        meta = reader.chunk_metadata("root.d1", "s1")
        assert len(meta.pages) == 10
        out_t, _ = reader.query_range("root.d1", "s1", 950, 960)
        assert out_t == list(range(950, 960))

    def test_empty_range(self):
        reader = TsFileReader(_write_simple([1, 2, 3], [1.0, 2.0, 3.0]))
        assert reader.query_range("root.d1", "s1", 100, 200) == ([], [])


class TestStatistics:
    def test_page_statistics_numeric(self):
        stats = PageStatistics.from_points([1, 2, 3], [5.0, 1.0, 9.0])
        assert stats.count == 3
        assert stats.min_time == 1 and stats.max_time == 3
        assert stats.first_value == 5.0 and stats.last_value == 9.0
        assert stats.min_value == 1.0 and stats.max_value == 9.0
        assert stats.sum_value == 15.0

    def test_page_statistics_text(self):
        stats = PageStatistics.from_points([1, 2], ["b", "a"])
        assert stats.min_value is None and stats.sum_value is None

    def test_chunk_metadata_aggregates(self):
        ts = list(range(250))
        vs = [float(t) for t in ts]
        reader = TsFileReader(_write_simple(ts, vs, page_size=100))
        meta = reader.chunk_metadata("root.d1", "s1")
        assert meta.count == 250
        assert meta.min_time == 0 and meta.max_time == 249


class TestWriterValidation:
    def test_unsorted_rejected(self):
        with pytest.raises(InvalidParameterError):
            _write_simple([3, 1, 2], [1.0, 2.0, 3.0])

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidParameterError):
            _write_simple([1, 1, 2], [1.0, 2.0, 3.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            _write_simple([1, 2], [1.0])

    def test_overlapping_second_chunk_rejected(self):
        buf = io.BytesIO()
        writer = TsFileWriter(buf)
        writer.write_chunk("d", "s", TSDataType.INT64, [1, 5], [1, 2])
        with pytest.raises(InvalidParameterError):
            writer.write_chunk("d", "s", TSDataType.INT64, [4, 9], [3, 4])

    def test_dtype_change_rejected(self):
        buf = io.BytesIO()
        writer = TsFileWriter(buf)
        writer.write_chunk("d", "s", TSDataType.INT64, [1], [1])
        with pytest.raises(InvalidParameterError):
            writer.write_chunk("d", "s", TSDataType.DOUBLE, [5], [1.0])

    def test_write_after_close_rejected(self):
        buf = io.BytesIO()
        writer = TsFileWriter(buf)
        writer.close()
        with pytest.raises(InvalidParameterError):
            writer.write_chunk("d", "s", TSDataType.INT64, [1], [1])

    def test_second_nonoverlapping_chunk_appends(self):
        buf = io.BytesIO()
        writer = TsFileWriter(buf)
        writer.write_chunk("d", "s", TSDataType.INT64, [1, 2], [1, 2])
        writer.write_chunk("d", "s", TSDataType.INT64, [5, 9], [3, 4])
        writer.close()
        reader = TsFileReader(buf)
        assert reader.read_chunk("d", "s") == ([1, 2, 5, 9], [1, 2, 3, 4])


class TestCorruptionDetection:
    def test_truncated_file(self):
        with pytest.raises(TsFileCorruptionError):
            TsFileReader(io.BytesIO(b"short"))

    def test_bad_leading_magic(self):
        buf = _write_simple([1], [1.0])
        data = bytearray(buf.getvalue())
        data[0] ^= 0xFF
        with pytest.raises(TsFileCorruptionError):
            TsFileReader(io.BytesIO(bytes(data)))

    def test_bad_trailing_magic(self):
        buf = _write_simple([1], [1.0])
        data = bytearray(buf.getvalue())
        data[-1] ^= 0xFF
        with pytest.raises(TsFileCorruptionError):
            TsFileReader(io.BytesIO(bytes(data)))

    def test_footer_corruption(self):
        buf = _write_simple([1], [1.0])
        data = bytearray(buf.getvalue())
        # Flip a byte inside the JSON footer (just before the 17-byte tail).
        data[-20] ^= 0xFF
        with pytest.raises(TsFileCorruptionError):
            TsFileReader(io.BytesIO(bytes(data)))

    def test_page_corruption_detected_on_read(self):
        ts = list(range(100))
        buf = _write_simple(ts, [float(t) for t in ts], page_size=50)
        data = bytearray(buf.getvalue())
        data[len(b"TsFilePy1") + 5] ^= 0xFF  # inside the first page payload
        reader = TsFileReader(io.BytesIO(bytes(data)))
        with pytest.raises(TsFileCorruptionError):
            reader.read_chunk("root.d1", "s1")


class TestDescribe:
    def test_layout_summary(self):
        buf = io.BytesIO()
        writer = TsFileWriter(buf)
        writer.write_chunk("d1", "s1", TSDataType.DOUBLE, list(range(250)), [0.0] * 250, page_size=100)
        writer.write_chunk("d2", "s1", TSDataType.INT64, [5, 9], [1, 2])
        writer.close()
        info = TsFileReader(buf).describe()
        assert info["chunks"] == 2
        assert info["pages"] == 4  # 3 + 1
        assert info["points"] == 252
        assert info["file_bytes"] > 0
        d1 = next(c for c in info["columns"] if c["device"] == "d1")
        assert d1["min_time"] == 0 and d1["max_time"] == 249
        assert d1["dtype"] == "double"


class TestCompression:
    def test_zlib_roundtrip_and_smaller(self):
        ts = list(range(2_000))
        vs = [float(t % 7) for t in ts]
        plain = io.BytesIO()
        w = TsFileWriter(plain)
        w.write_chunk("d", "s", TSDataType.DOUBLE, ts, vs, page_size=500)
        plain_size = w.close()
        packed = io.BytesIO()
        w = TsFileWriter(packed)
        w.write_chunk(
            "d", "s", TSDataType.DOUBLE, ts, vs, page_size=500, compression="zlib"
        )
        packed_size = w.close()
        assert packed_size < plain_size / 2
        reader = TsFileReader(packed)
        assert reader.read_chunk("d", "s") == (ts, vs)
        assert reader.chunk_metadata("d", "s").compression == "zlib"

    def test_zlib_query_range(self):
        ts = list(range(500))
        vs = [float(t) for t in ts]
        buf = io.BytesIO()
        w = TsFileWriter(buf)
        w.write_chunk("d", "s", TSDataType.DOUBLE, ts, vs, page_size=50, compression="zlib")
        w.close()
        out_t, out_v = TsFileReader(buf).query_range("d", "s", 100, 120)
        assert out_t == list(range(100, 120))

    def test_unknown_compression_rejected(self):
        buf = io.BytesIO()
        w = TsFileWriter(buf)
        with pytest.raises(InvalidParameterError):
            w.write_chunk("d", "s", TSDataType.INT64, [1], [1], compression="snappy")

    def test_config_validates_compression(self):
        from repro.iotdb import IoTDBConfig

        with pytest.raises(InvalidParameterError):
            IoTDBConfig(compression="snappy")
