"""Batch writes are all-or-nothing: the half-applied-batch regression.

The pre-fix ``MemTable.write_batch`` degenerated to a per-point ``write``
loop that reacquired the lock and re-checked the state for every point, so
a ``mark_flushing`` racing in mid-batch accepted a prefix of the batch and
rejected the rest — a half-applied batch with no way for the caller to
tell how far it got.  The race test here fails on that code: the flusher
thread busy-waits until it can observe any of the batch's points and then
retires the memtable, which on the per-point loop lands mid-batch
essentially every time for a 50k-point batch.

The remaining tests pin the other all-or-nothing edges deterministically:
validation failures anywhere in the batch must leave the memtable (and the
column's TVList) completely untouched.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import InvalidParameterError, MemTableFlushedError
from repro.iotdb.config import IoTDBConfig
from repro.iotdb.memtable import MemTable, MemTableState


def _memtable() -> MemTable:
    # A threshold the tests never reach: flushing is always explicit.
    return MemTable(IoTDBConfig(memtable_flush_threshold=10**9))


class TestRacingMarkFlushing:
    def test_batch_racing_mark_flushing_is_all_or_nothing(self):
        n = 50_000
        mem = _memtable()
        timestamps = list(range(n))
        values = [1] * n

        def flusher() -> None:
            # Busy-wait for the first visible point, then retire the
            # memtable.  Pre-fix, points become visible one at a time as
            # the loop releases the lock between them, so this fires
            # mid-batch; post-fix, the batch publishes its points only
            # after all of them landed under one lock hold.
            while True:
                try:
                    if mem.total_points > 0:
                        mem.mark_flushing()
                        return
                except MemTableFlushedError:
                    return

        thread = threading.Thread(target=flusher)
        thread.start()
        try:
            mem.write_batch("root.race.d0", "s0", timestamps, values)
            applied = True
        except MemTableFlushedError:
            applied = False
        thread.join(timeout=30)
        assert not thread.is_alive()

        points = len(mem)
        if applied:
            assert points == n
        else:
            assert points == 0

    def test_rejected_after_flushing_leaves_nothing_behind(self):
        mem = _memtable()
        mem.mark_flushing()
        with pytest.raises(MemTableFlushedError):
            mem.write_batch("root.race.d0", "s0", [1, 2, 3], [1, 2, 3])
        assert len(mem) == 0
        assert mem.chunk("root.race.d0", "s0") is None


class TestValidationIsAllOrNothing:
    def test_bad_timestamp_mid_batch_applies_nothing(self):
        mem = _memtable()
        with pytest.raises(InvalidParameterError):
            mem.write_batch("d", "s", [1, 2, "three", 4], [1, 2, 3, 4])
        assert len(mem) == 0
        assert mem.chunk("d", "s") is None

    def test_bad_value_mid_batch_applies_nothing(self):
        mem = _memtable()
        with pytest.raises(InvalidParameterError):
            mem.write_batch("d", "s", [1, 2, 3, 4], [1, 2, "three", 4])
        assert len(mem) == 0
        assert mem.chunk("d", "s") is None

    def test_bad_value_does_not_disturb_an_existing_chunk(self):
        mem = _memtable()
        mem.write_batch("d", "s", [1, 2, 3], [10, 20, 30])
        with pytest.raises(InvalidParameterError):
            mem.write_batch("d", "s", [4, 5, 6], [40, "fifty", 60])
        assert len(mem) == 3
        tvlist = mem.chunk("d", "s")
        assert tvlist.timestamps() == [1, 2, 3]
        assert tvlist.values() == [10, 20, 30]

    def test_length_mismatch_applies_nothing(self):
        mem = _memtable()
        with pytest.raises(InvalidParameterError):
            mem.write_batch("d", "s", [1, 2, 3], [1, 2])
        assert len(mem) == 0

    def test_empty_batch_is_a_noop(self):
        mem = _memtable()
        mem.write_batch("d", "s", [], [])
        assert len(mem) == 0
        assert mem.chunk("d", "s") is None
        assert mem.state is MemTableState.WORKING

    def test_successful_batch_lands_every_point(self):
        mem = _memtable()
        mem.write_batch("d", "s", [3, 1, 2], [30, 10, 20])
        assert len(mem) == 3
        tvlist = mem.chunk("d", "s")
        assert sorted(tvlist.timestamps()) == [1, 2, 3]
