"""Flush pipeline and query executor specifics."""

from __future__ import annotations

import io

import pytest

from repro.iotdb import (
    IoTDBConfig,
    MemTable,
    TsFileReader,
    TsFileWriter,
    flush_memtable,
)
from repro.iotdb.query import TimeRangeQueryExecutor
from repro.errors import QueryError
from repro.sorting import get_sorter
from tests.conftest import make_delayed_stream


def _flushing_memtable(stream, config=None, device="d", sensor="s"):
    memtable = MemTable(config or IoTDBConfig(memtable_flush_threshold=10**9))
    memtable.write_batch(device, sensor, stream.timestamps, stream.values)
    memtable.mark_flushing()
    return memtable


class TestFlushPipeline:
    def test_flushed_file_is_sorted_and_complete(self):
        stream = make_delayed_stream(2_000, lam=0.3, seed=1)
        memtable = _flushing_memtable(stream)
        buf = io.BytesIO()
        flush_memtable(memtable, TsFileWriter(buf), get_sorter("backward"))
        reader = TsFileReader(buf)
        ts, vs = reader.read_chunk("d", "s")
        assert ts == sorted(stream.timestamps)

    def test_duplicates_deduped_keeping_last(self):
        memtable = MemTable(IoTDBConfig())
        memtable.write_batch("d", "s", [1, 2, 2, 3, 1], [1.0, 2.0, 20.0, 3.0, 10.0])
        memtable.mark_flushing()
        buf = io.BytesIO()
        report = flush_memtable(memtable, TsFileWriter(buf), get_sorter("tim"))
        reader = TsFileReader(buf)
        ts, vs = reader.read_chunk("d", "s")
        assert ts == [1, 2, 3]
        assert vs == [10.0, 20.0, 3.0]  # last write wins (stable sort)
        assert report.chunks[0].deduped_points == 3
        assert report.chunks[0].points == 5

    def test_duplicates_deduped_keeping_last_with_unstable_sorter(self):
        # Regression: with the unstable default sorter the tie group could
        # come out of the sort reordered, resolving the overwrite to the
        # older value.  dedupe_arrival now collapses duplicates pre-sort.
        memtable = MemTable(IoTDBConfig())
        ts = list(range(50)) + list(range(50))
        memtable.write_batch("d", "s", ts, [float(i) for i in range(100)])
        memtable.mark_flushing()
        buf = io.BytesIO()
        report = flush_memtable(memtable, TsFileWriter(buf), get_sorter("backward"))
        got_ts, got_vs = TsFileReader(buf).read_chunk("d", "s")
        assert got_ts == list(range(50))
        assert got_vs == [float(t + 50) for t in range(50)]  # second pass wins
        assert report.chunks[0].points == 100
        assert report.chunks[0].deduped_points == 50

    def test_report_sums_per_chunk(self):
        stream = make_delayed_stream(1_000, seed=2)
        memtable = MemTable(IoTDBConfig())
        half = len(stream) // 2
        memtable.write_batch("d1", "s", stream.timestamps[:half], stream.values[:half])
        memtable.write_batch("d2", "s", stream.timestamps[half:], stream.values[half:])
        memtable.mark_flushing()
        report = flush_memtable(memtable, TsFileWriter(io.BytesIO()), get_sorter("quick"))
        assert len(report.chunks) == 2
        assert report.sort_seconds == pytest.approx(
            sum(c.sort_seconds for c in report.chunks)
        )
        assert report.total_points == 1_000
        assert report.file_bytes > 0

    def test_flush_marks_memtable_flushed(self):
        from repro.iotdb import MemTableState

        memtable = _flushing_memtable(make_delayed_stream(100, seed=3))
        flush_memtable(memtable, TsFileWriter(io.BytesIO()), get_sorter("merge"))
        assert memtable.state is MemTableState.FLUSHED

    def test_empty_memtable_flushes_cleanly(self):
        memtable = MemTable(IoTDBConfig())
        memtable.mark_flushing()
        report = flush_memtable(memtable, TsFileWriter(io.BytesIO()), get_sorter("tim"))
        assert report.total_points == 0
        assert report.chunks == []


class TestQueryExecutor:
    def _reader_with(self, ts, vs, device="d", sensor="s"):
        buf = io.BytesIO()
        writer = TsFileWriter(buf)
        from repro.iotdb.config import TSDataType

        writer.write_chunk(device, sensor, TSDataType.DOUBLE, ts, vs)
        writer.close()
        return TsFileReader(buf)

    def test_merges_files_and_memtable(self):
        executor = TimeRangeQueryExecutor(get_sorter("backward"))
        reader = self._reader_with([0, 1, 2], [0.0, 1.0, 2.0])
        memtable = MemTable(IoTDBConfig())
        memtable.write_batch("d", "s", [3, 5, 4], [3.0, 5.0, 4.0])
        result = executor.execute(
            "d", "s", 0, 10,
            seq_readers=[reader], unseq_readers=[],
            flushing_memtables=[], working_memtable=memtable,
        )
        assert result.timestamps == [0, 1, 2, 3, 4, 5]
        assert result.values == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_freshness_order(self):
        # Same timestamp everywhere: the working memtable must win.
        executor = TimeRangeQueryExecutor(get_sorter("tim"))
        seq = self._reader_with([5], [1.0])
        unseq = self._reader_with([5], [2.0])
        flushing = MemTable(IoTDBConfig())
        flushing.write("d", "s", 5, 3.0)
        working = MemTable(IoTDBConfig())
        working.write("d", "s", 5, 4.0)
        result = executor.execute(
            "d", "s", 0, 10,
            seq_readers=[seq], unseq_readers=[unseq],
            flushing_memtables=[flushing], working_memtable=working,
        )
        assert result.values == [4.0]

    def test_window_filters_memtable_points(self):
        executor = TimeRangeQueryExecutor(get_sorter("backward"))
        memtable = MemTable(IoTDBConfig())
        memtable.write_batch("d", "s", [1, 50, 99], [1.0, 50.0, 99.0])
        result = executor.execute(
            "d", "s", 40, 60,
            seq_readers=[], unseq_readers=[],
            flushing_memtables=[], working_memtable=memtable,
        )
        assert result.timestamps == [50]

    def test_rejects_empty_range(self):
        executor = TimeRangeQueryExecutor(get_sorter("backward"))
        with pytest.raises(QueryError):
            executor.execute(
                "d", "s", 5, 5,
                seq_readers=[], unseq_readers=[],
                flushing_memtables=[], working_memtable=None,
            )

    def test_stats_scanned_vs_returned(self):
        executor = TimeRangeQueryExecutor(get_sorter("backward"))
        memtable = MemTable(IoTDBConfig())
        memtable.write_batch("d", "s", list(range(100)), [float(i) for i in range(100)])
        result = executor.execute(
            "d", "s", 10, 20,
            seq_readers=[], unseq_readers=[],
            flushing_memtables=[], working_memtable=memtable,
        )
        assert result.stats.points_scanned == 100
        assert result.stats.points_returned == 10
        assert result.stats.total_seconds > 0
