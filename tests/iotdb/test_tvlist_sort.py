"""The accessor-based (never-flatten) Backward-Sort over TVLists (§V-C)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.iotdb.tvlist import TVList
from repro.iotdb.tvlist_sort import backward_sort_tvlist_inplace
from tests.conftest import make_delayed_stream


def _tvlist_from(ts, vs, array_size=7):
    tv = TVList(array_size=array_size)
    for t, v in zip(ts, vs):
        tv.put(t, v)
    return tv


class TestInPlaceTVListSort:
    def test_sorts_delay_only_stream(self):
        stream = make_delayed_stream(3_000, lam=0.3, seed=1)
        tv = _tvlist_from(stream.timestamps, stream.values, array_size=32)
        timed = backward_sort_tvlist_inplace(tv)
        assert tv.timestamps() == sorted(stream.timestamps)
        assert tv.is_sorted
        assert timed.stats.block_size is not None

    def test_values_track_timestamps(self):
        tv = _tvlist_from([3, 1, 2], ["c", "a", "b"], array_size=2)
        backward_sort_tvlist_inplace(tv)
        assert tv.timestamps() == [1, 2, 3]
        assert tv.values() == ["a", "b", "c"]

    def test_already_sorted_is_noop(self):
        tv = _tvlist_from(range(100), range(100))
        timed = backward_sort_tvlist_inplace(tv)
        assert timed.stats.comparisons == 0

    def test_matches_flatten_path(self):
        from repro.sorting import get_sorter

        stream = make_delayed_stream(2_000, lam=0.2, seed=2)
        tv_direct = _tvlist_from(stream.timestamps, stream.values, array_size=32)
        tv_flat = _tvlist_from(stream.timestamps, stream.values, array_size=32)
        backward_sort_tvlist_inplace(tv_direct)
        tv_flat.sort_in_place(get_sorter("backward"))
        assert tv_direct.timestamps() == tv_flat.timestamps()

    def test_degenerate_reverse_input(self):
        ts = list(range(500, 0, -1))
        tv = _tvlist_from(ts, ts)
        stats = backward_sort_tvlist_inplace(tv).stats
        assert tv.timestamps() == sorted(ts)
        assert stats.block_size == 500  # quicksort degenerate case

    @pytest.mark.parametrize("array_size", (1, 2, 13, 32, 1000))
    def test_any_array_width(self, array_size):
        rng = random.Random(array_size)
        ts = rng.sample(range(600), 300)
        tv = _tvlist_from(ts, range(300), array_size=array_size)
        backward_sort_tvlist_inplace(tv)
        assert tv.timestamps() == sorted(ts)

    @settings(max_examples=40, deadline=None)
    @given(
        ts=st.lists(st.integers(0, 500), max_size=200),
        array_size=st.integers(1, 40),
    )
    def test_property_sorted_permutation(self, ts, array_size):
        tv = _tvlist_from(ts, range(len(ts)), array_size=array_size)
        backward_sort_tvlist_inplace(tv)
        assert tv.timestamps() == sorted(ts)
        assert sorted(tv.values()) == list(range(len(ts)))

    def test_stats_mirror_algorithm_phases(self):
        stream = make_delayed_stream(5_000, lam=0.5, seed=3)
        tv = _tvlist_from(stream.timestamps, stream.values, array_size=32)
        stats = backward_sort_tvlist_inplace(tv).stats
        assert stats.block_size_loops >= 1
        assert stats.block_count >= 1
        assert stats.merges == stats.block_count - 1
