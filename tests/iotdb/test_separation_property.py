"""S2: property tests for the sequence/unsequence separation invariants.

The paper's separation policy promises two things the rest of the engine
builds on:

* every written point lands in **exactly one** space (routed counts are a
  partition of the writes);
* the **sequence working memtable never holds a point at or below its
  device's watermark** — that is what keeps flush-time disorder
  "not-too-distant" and late points out of the sorter's way.

Checked here against arbitrary interleavings of in-order and late writes,
across devices, with flushes (which advance the watermark) happening at
arbitrary thresholds mid-stream.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.iotdb import IoTDBConfig, Space, StorageEngine

_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),   # device index
        st.integers(min_value=0, max_value=1),   # sensor index
        st.integers(min_value=0, max_value=400),  # timestamp
    ),
    min_size=1,
    max_size=150,
)


def _seq_memtable_respects_watermark(engine) -> bool:
    shard = engine.shards[0]
    with shard._lock:
        seq = shard._working[Space.SEQUENCE]
    for device, _sensor, tvlist in seq.iter_chunks():
        watermark = engine.separation.watermark(device)
        if watermark is None:
            continue
        if min(tvlist.timestamps()) <= watermark:
            return False
    return True


@settings(max_examples=60)
@given(ops=_ops, threshold=st.integers(min_value=5, max_value=60))
def test_every_point_lands_in_exactly_one_space(ops, threshold):
    engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=threshold))
    for d, s, t in ops:
        engine.write(f"d{d}", f"s{s}", t, float(t))
    counts = engine.separation.routed_counts()
    assert counts[Space.SEQUENCE] + counts[Space.UNSEQUENCE] == len(ops)


@settings(max_examples=60)
@given(ops=_ops, threshold=st.integers(min_value=5, max_value=60))
def test_sequence_memtable_never_below_watermark(ops, threshold):
    engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=threshold))
    for d, s, t in ops:
        engine.write(f"d{d}", f"s{s}", t, float(t))
        assert _seq_memtable_respects_watermark(engine)


@settings(max_examples=40)
@given(ops=_ops, threshold=st.integers(min_value=5, max_value=60))
def test_invariant_survives_deferred_flushing(ops, threshold):
    engine = StorageEngine.create(
        IoTDBConfig(memtable_flush_threshold=threshold, deferred_flush=True)
    )
    for i, (d, s, t) in enumerate(ops):
        engine.write(f"d{d}", f"s{s}", t, float(t))
        if i % 37 == 36:
            engine.drain_flushes()
        assert _seq_memtable_respects_watermark(engine)
    engine.drain_flushes()
    assert _seq_memtable_respects_watermark(engine)
