"""TVList: deque-of-arrays layout, sorted tracking, sort paths, typing."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.iotdb import (
    BooleanTVList,
    DoubleTVList,
    IntTVList,
    LongTVList,
    TSDataType,
    TextTVList,
    TVList,
    dedupe_arrival,
    dedupe_sorted,
    infer_dtype,
    tvlist_for,
)
from repro.sorting import get_sorter
from tests.conftest import make_delayed_stream


class TestLayout:
    def test_put_and_get(self):
        tv = TVList(array_size=4)
        for i, t in enumerate([3, 1, 4, 1, 5, 9, 2, 6]):
            tv.put(t, f"v{i}")
        assert len(tv) == 8
        assert tv.get_time(0) == 3
        assert tv.get_time(7) == 6
        assert tv.get_value(5) == "v5"

    def test_arrays_allocated_lazily(self):
        tv = TVList(array_size=32)
        assert tv.memory_slots() == 0
        tv.put(1, "a")
        assert tv.memory_slots() == 32
        for i in range(32):
            tv.put(i, "b")
        assert tv.memory_slots() == 64  # second array after crossing 32

    def test_index_bounds(self):
        tv = TVList()
        tv.put(1, "a")
        with pytest.raises(IndexError):
            tv.get_time(1)
        with pytest.raises(IndexError):
            tv.get_value(-1)

    def test_iteration_and_flat_copies(self):
        tv = TVList(array_size=3)
        pairs = [(5, "a"), (2, "b"), (9, "c"), (1, "d")]
        for t, v in pairs:
            tv.put(t, v)
        assert list(tv) == pairs
        assert tv.timestamps() == [5, 2, 9, 1]
        assert tv.values() == ["a", "b", "c", "d"]

    def test_put_all_checks_lengths(self):
        tv = TVList()
        with pytest.raises(InvalidParameterError):
            tv.put_all([1, 2], ["a"])

    def test_bad_array_size(self):
        with pytest.raises(InvalidParameterError):
            TVList(array_size=0)


class TestSortedTracking:
    def test_in_order_appends_stay_sorted(self):
        tv = TVList()
        for t in (1, 2, 2, 5):
            tv.put(t, None)
        assert tv.is_sorted
        assert tv.max_time == 5

    def test_out_of_order_append_flags(self):
        tv = TVList()
        tv.put(5, None)
        tv.put(3, None)
        assert not tv.is_sorted

    def test_sort_in_place(self):
        stream = make_delayed_stream(500, seed=1)
        tv = TVList(array_size=7)
        for t, v in zip(stream.timestamps, stream.values):
            tv.put(t, v)
        assert not tv.is_sorted
        timed = tv.sort_in_place(get_sorter("backward"))
        assert tv.is_sorted
        assert tv.timestamps() == sorted(stream.timestamps)
        assert timed.seconds > 0

    def test_sort_in_place_skips_when_sorted(self):
        tv = TVList()
        for t in range(100):
            tv.put(t, t)
        timed = tv.sort_in_place(get_sorter("quick"))
        assert timed.seconds == 0.0
        assert timed.stats.comparisons == 0

    def test_get_sorted_arrays_does_not_mutate(self):
        stream = make_delayed_stream(200, seed=2)
        tv = TVList()
        for t, v in zip(stream.timestamps, stream.values):
            tv.put(t, v)
        ts, vs, timed = tv.get_sorted_arrays(get_sorter("tim"))
        assert ts == sorted(stream.timestamps)
        assert tv.timestamps() == stream.timestamps  # untouched
        assert not tv.is_sorted

    def test_values_follow_timestamps_through_sort(self):
        tv = TVList(array_size=2)
        tv.put(3, "three")
        tv.put(1, "one")
        tv.put(2, "two")
        tv.sort_in_place(get_sorter("backward"))
        assert tv.values() == ["one", "two", "three"]


class TestDedupeSorted:
    def test_keeps_last_value(self):
        ts, vs = dedupe_sorted([1, 2, 2, 2, 3], ["a", "b", "c", "d", "e"])
        assert ts == [1, 2, 3]
        assert vs == ["a", "d", "e"]

    def test_no_duplicates_passthrough(self):
        ts, vs = dedupe_sorted([1, 2, 3], list("abc"))
        assert ts == [1, 2, 3]
        assert vs == ["a", "b", "c"]

    def test_empty(self):
        assert dedupe_sorted([], []) == ([], [])


class TestDedupeArrival:
    """Pre-sort dedupe: last arrival wins regardless of sorter stability."""

    def test_keeps_last_arrival(self):
        ts, vs = dedupe_arrival([3, 1, 3, 2, 1], list("abcde"))
        assert ts == [3, 2, 1]
        assert vs == ["c", "d", "e"]

    def test_no_duplicates_passthrough_is_identity(self):
        ts_in, vs_in = [3, 1, 2], list("abc")
        ts, vs = dedupe_arrival(ts_in, vs_in)
        assert ts is ts_in and vs is vs_in

    def test_empty(self):
        assert dedupe_arrival([], []) == ([], [])

    def test_sort_in_place_resolves_overwrites_with_unstable_sorter(self):
        # Regression: Backward-Sort's block quicksort is unstable, so tie
        # groups reach dedupe_sorted in arbitrary order and "keep the last"
        # resolved an overwrite to the *older* value.  Two full passes over
        # the same timestamps: the second pass (values t+50) must win.
        tv = TVList()
        for i, t in enumerate(list(range(50)) + list(range(50))):
            tv.put(t, i)
        tv.sort_in_place(get_sorter("backward"))
        assert len(tv) == 50  # duplicates physically collapsed
        assert tv.timestamps() == list(range(50))
        assert tv.values() == [t + 50 for t in range(50)]

    def test_get_sorted_arrays_resolves_overwrites_without_mutation(self):
        tv = TVList()
        for i, t in enumerate(list(range(50)) + list(range(50))):
            tv.put(t, i)
        ts, vs, _ = tv.get_sorted_arrays(get_sorter("backward"))
        assert ts == list(range(50))
        assert vs == [t + 50 for t in range(50)]
        assert len(tv) == 100  # query path never mutates

    def test_shrink_drops_surplus_backing_arrays(self):
        tv = TVList(array_size=4)
        for i, t in enumerate([5, 3, 5, 3, 5, 3, 5, 3, 5]):
            tv.put(t, i)
        tv.sort_in_place(get_sorter("backward"))
        assert len(tv) == 2
        assert (tv.timestamps(), tv.values()) == ([3, 5], [7, 8])
        assert tv.memory_slots() == 4  # three backing arrays trimmed to one


class TestTypedTVLists:
    def test_int32_range_checked(self):
        tv = IntTVList()
        tv.put(1, 2**31 - 1)
        with pytest.raises(InvalidParameterError):
            tv.put(2, 2**31)
        with pytest.raises(InvalidParameterError):
            tv.put(3, 1.5)
        with pytest.raises(InvalidParameterError):
            tv.put(4, True)

    def test_long_rejects_floats(self):
        tv = LongTVList()
        tv.put(1, 2**62)
        with pytest.raises(InvalidParameterError):
            tv.put(2, 1.0)

    def test_double_accepts_ints_and_floats(self):
        tv = DoubleTVList()
        tv.put(1, 1.5)
        tv.put(2, 3)
        with pytest.raises(InvalidParameterError):
            tv.put(3, "x")

    def test_boolean_strict(self):
        tv = BooleanTVList()
        tv.put(1, True)
        with pytest.raises(InvalidParameterError):
            tv.put(2, 1)

    def test_text_strict(self):
        tv = TextTVList()
        tv.put(1, "hello")
        with pytest.raises(InvalidParameterError):
            tv.put(2, 7)

    def test_factory(self):
        assert isinstance(tvlist_for(TSDataType.DOUBLE), DoubleTVList)
        assert tvlist_for(TSDataType.INT32, array_size=8).dtype is TSDataType.INT32

    def test_infer_dtype(self):
        assert infer_dtype(True) is TSDataType.BOOLEAN
        assert infer_dtype(7) is TSDataType.INT64
        assert infer_dtype(1.5) is TSDataType.DOUBLE
        assert infer_dtype("x") is TSDataType.TEXT
        with pytest.raises(InvalidParameterError):
            infer_dtype(object())
