"""docs/STORAGE.md conformance: parse real engine output at the spec's offsets.

These tests re-implement the byte layouts *as stated in the spec* —
magic strings, offsets, masks, CRC coverage — and run them against blobs
a real engine produced, without importing the codecs under test.  If the
code drifts from the spec (or the spec from the code), these fail.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import pytest

from repro.iotdb import IoTDBConfig, StorageEngine

# Constants copied from docs/STORAGE.md, deliberately NOT imported from
# the implementation: the test checks code and spec agree.
SPEC_WAL_BATCH_FLAG = 0x80000000
SPEC_WAL_LENGTH_MASK = 0x7FFFFFFF
SPEC_META_MAGIC = b"REPROMETA1"
SPEC_INDEX_MAGIC = b"REPROIDX1"
SPEC_TSFILE_MAGIC = b"TsFilePy1"


@pytest.fixture
def data_dir(tmp_path) -> Path:
    """A real persisted tree: points + one batch, enough to seal a file."""
    root = tmp_path / "data"
    engine = StorageEngine.create(
        IoTDBConfig(data_dir=root, wal_enabled=True, memtable_flush_threshold=64)
    )
    for t in range(64):  # one full memtable: seals seq-000001.tsfile
        engine.write("d0", "s0", t, float(t))
    for t in range(64, 80):  # single-record frames in the live segment
        engine.write("d0", "s0", t, float(t))
    engine.write_batch("d0", "s0", list(range(80, 90)), [float(t) for t in range(80, 90)])
    del engine  # abrupt: the live WAL segment stays on disk
    return root


def parse_wal_frames(blob: bytes):
    """Frame walker written to the spec: header | payload | crc, LE."""
    offset = 0
    frames = []
    while offset + 4 <= len(blob):
        (header,) = struct.unpack_from("<I", blob, offset)
        length = header & SPEC_WAL_LENGTH_MASK
        is_batch = bool(header & SPEC_WAL_BATCH_FLAG)
        if offset + 4 + length + 4 > len(blob):
            break  # torn tail: everything before it is durable truth
        payload = blob[offset + 4 : offset + 4 + length]
        (crc,) = struct.unpack_from("<I", blob, offset + 4 + length)
        if crc != zlib.crc32(payload) & 0xFFFFFFFF:
            break
        frames.append((is_batch, json.loads(payload.decode("utf-8"))))
        offset += 4 + length + 4
    return frames, offset


class TestWalSegmentSpec:
    def test_real_segment_parses_at_spec_offsets(self, data_dir):
        segment = data_dir / "shard-00" / "wal-seq-000002.log"
        assert segment.exists(), sorted(p.name for p in (data_dir / "shard-00").iterdir())
        blob = segment.read_bytes()
        frames, consumed = parse_wal_frames(blob)
        assert consumed == len(blob), "undocumented trailing bytes in segment"
        assert frames, "live segment should carry the unflushed tail"
        # 16 single-record frames (t=64..79) then one batch frame (t=80..89).
        singles = [f for f in frames if not f[0]]
        batches = [f for f in frames if f[0]]
        assert [record[2] for _, record in singles] == list(range(64, 80))
        assert len(batches) == 1
        batch_records = batches[0][1]
        assert [record[2] for record in batch_records] == list(range(80, 90))
        for record in batch_records:
            assert record[0] == "d0" and record[1] == "s0"

    def test_single_record_payload_is_flat_json_array(self, data_dir):
        blob = (data_dir / "shard-00" / "wal-seq-000002.log").read_bytes()
        frames, _ = parse_wal_frames(blob)
        is_batch, record = frames[0]
        assert not is_batch
        assert record == ["d0", "s0", 64, 64.0]

    def test_torn_tail_stops_replay_cleanly(self, data_dir):
        blob = (data_dir / "shard-00" / "wal-seq-000002.log").read_bytes()
        whole, _ = parse_wal_frames(blob)
        torn, consumed = parse_wal_frames(blob[:-3])
        assert torn == whole[:-1]
        assert consumed <= len(blob) - 3


class TestMetaFrameSpec:
    def test_engine_json_at_spec_offsets(self, data_dir):
        blob = (data_dir / "meta" / "engine.json").read_bytes()
        # offset 0: 10-byte magic + newline; offset 11: 8 hex chars + newline.
        assert blob[:10] == SPEC_META_MAGIC
        assert blob[10:11] == b"\n"
        crc_field = blob[11:19]
        assert blob[19:20] == b"\n"
        payload = blob[20:-1]
        assert blob[-1:] == b"\n"
        assert int(crc_field, 16) == zlib.crc32(payload) & 0xFFFFFFFF
        obj = json.loads(payload)
        assert obj == {"backend": "local", "shards": 1, "version": 1}
        # Compact, key-sorted encoding is normative.
        assert payload.decode() == json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TestIntervalIndexSpec:
    def test_index_frame_and_entries(self, data_dir):
        blob = (data_dir / "shard-00" / "interval-index.json").read_bytes()
        magic, crc_field, rest = blob.split(b"\n", 2)
        assert magic == SPEC_INDEX_MAGIC
        payload = rest[:-1]
        assert rest[-1:] == b"\n"
        assert int(crc_field, 16) == zlib.crc32(payload) & 0xFFFFFFFF
        entries = json.loads(payload)["entries"]
        assert entries == [
            {"file_id": "seq-000001", "space": "seq", "min_time": 0, "max_time": 63}
        ]


class TestTsFileSpec:
    def test_sealed_file_framing(self, data_dir):
        blob = (data_dir / "shard-00" / "seq-000001.tsfile").read_bytes()
        assert blob[: len(SPEC_TSFILE_MAGIC)] == SPEC_TSFILE_MAGIC
        assert blob[-len(SPEC_TSFILE_MAGIC) :] == SPEC_TSFILE_MAGIC
        footer_len, footer_crc = struct.unpack_from(
            "<II", blob, len(blob) - len(SPEC_TSFILE_MAGIC) - 8
        )
        footer_start = len(blob) - len(SPEC_TSFILE_MAGIC) - 8 - footer_len
        footer = blob[footer_start : footer_start + footer_len]
        assert zlib.crc32(footer) & 0xFFFFFFFF == footer_crc
        index = json.loads(footer)
        assert "d0" in json.dumps(index)  # the chunk index names the device

    def test_no_part_keys_survive_clean_run(self, data_dir):
        assert not list(data_dir.rglob("*.part"))
