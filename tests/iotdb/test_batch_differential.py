"""Differential testing: the batch write path must be invisible to readers.

``engine.write_batch`` and an equivalent sequence of ``engine.write`` calls
must produce *identical* storage: the same query and aggregation answers,
and — when flush timing is pinned (a threshold the workload never reaches,
explicit ``flush_all`` at the same round boundaries) — byte-identical
sealed TsFiles, across both a single-shard and a four-shard engine.  The
batch path is allowed to differ only in how it takes locks and frames its
WAL records, never in what lands on disk.

WAL replay equivalence is covered by crashing both engines before any
flush: the point engine's log is all single-record frames, the batch
engine's is batch frames (and a mix, in the mixed test), and recovery must
reconstruct the same data from either framing.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iotdb import IoTDBConfig, StorageEngine

DEVICES = [f"root.sg.d{i}" for i in range(4)]
SENSORS = ["s0", "s1"]

# One batch: a device, a sensor, and that batch's (lateness, value) points.
_batches = st.lists(
    st.tuples(
        st.integers(0, len(DEVICES) - 1),
        st.integers(0, len(SENSORS) - 1),
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(-1000, 1000)),
            min_size=0,
            max_size=20,
        ),
    ),
    min_size=1,
    max_size=25,
)


def _materialise(batches):
    """Turn the strategy output into concrete per-batch writes.

    Timestamps are derived from a per-device arrival clock minus the
    lateness, exactly as the shard-differential suite does, so the streams
    are delay-only-ish with genuine disorder.
    """
    next_t = {d: 0 for d in DEVICES}
    horizon = 1
    concrete = []
    for device_i, sensor_i, points in batches:
        device = DEVICES[device_i]
        ts, vs = [], []
        for lateness, value in points:
            t = max(0, next_t[device] - lateness)
            next_t[device] += 2
            horizon = max(horizon, t + 1)
            ts.append(t)
            vs.append(float(value))
        concrete.append((device, SENSORS[sensor_i], ts, vs))
    return concrete, horizon


def _config(tmp_path, name, shards):
    return IoTDBConfig(
        data_dir=tmp_path / name,
        wal_enabled=True,
        shards=shards,
        # Never reached: flushes happen only at the explicit flush_all
        # barriers, so both paths seal identical chunk sets.
        memtable_flush_threshold=10**9,
    )


def _ingest(engine, concrete, batched, flush_every=8):
    for index, (device, sensor, ts, vs) in enumerate(concrete):
        if batched:
            engine.write_batch(device, sensor, ts, vs)
        else:
            for t, v in zip(ts, vs):
                engine.write(device, sensor, t, v)
        if (index + 1) % flush_every == 0:
            engine.flush_all()
    engine.flush_all()


def _assert_same_answers(reference, candidate, horizon):
    for device in DEVICES:
        for sensor in SENSORS:
            for start, end in ((0, horizon), (horizon // 3, 2 * horizon // 3 + 1)):
                a = reference.query(device, sensor, start, end)
                b = candidate.query(device, sensor, start, end)
                assert a.timestamps == b.timestamps
                assert a.values == b.values
            agg_a = reference.aggregate(device, sensor, 0, horizon)
            agg_b = candidate.aggregate(device, sensor, 0, horizon)
            for field in ("count", "sum", "min_value", "max_value", "first", "last"):
                assert agg_a.get(field) == agg_b.get(field), field


def _sealed_files(data_dir):
    return {
        path.relative_to(data_dir): path.read_bytes()
        for path in sorted(data_dir.rglob("*.tsfile"))
    }


@settings(max_examples=20, deadline=None)
@given(batches=_batches, shards=st.sampled_from([1, 4]))
def test_batch_writes_equal_point_writes(tmp_path_factory, batches, shards):
    tmp_path = tmp_path_factory.mktemp("batch-diff")
    concrete, horizon = _materialise(batches)
    engines = []
    for name, batched in (("point", False), ("batch", True)):
        engine = StorageEngine.create(_config(tmp_path, f"{name}-{shards}", shards))
        _ingest(engine, concrete, batched)
        engines.append(engine)
    point_engine, batch_engine = engines
    _assert_same_answers(point_engine, batch_engine, horizon)
    for engine in engines:
        engine.close()
    # Identical flush barriers => the sealed TsFiles must match byte for
    # byte, not merely answer queries identically.
    point_files = _sealed_files(tmp_path / f"point-{shards}")
    batch_files = _sealed_files(tmp_path / f"batch-{shards}")
    assert point_files == batch_files


@settings(max_examples=15, deadline=None)
@given(batches=_batches, shards=st.sampled_from([1, 4]))
def test_batch_wal_replay_equals_point_wal_replay(tmp_path_factory, batches, shards):
    # Crash both engines before any flush: everything lives in the WAL, as
    # single-record frames on one side and batch frames on the other, and
    # recovery must reconstruct identical answers from either framing.
    tmp_path = tmp_path_factory.mktemp("batch-wal-diff")
    concrete, horizon = _materialise(batches)
    reopened = []
    for name, batched in (("point", False), ("batch", True)):
        config = _config(tmp_path, f"{name}-{shards}", shards)
        engine = StorageEngine.create(config)
        for device, sensor, ts, vs in concrete:
            if batched:
                engine.write_batch(device, sensor, ts, vs)
            else:
                for t, v in zip(ts, vs):
                    engine.write(device, sensor, t, v)
        del engine  # crash: no close(), recovery must replay the WAL
        reopened.append(StorageEngine.open(config))
    point_engine, batch_engine = reopened
    _assert_same_answers(point_engine, batch_engine, horizon)
    for engine in reopened:
        engine.close()


def test_mixed_frame_log_recovers_every_acknowledged_point(tmp_path):
    # One engine interleaves point and batch writes, so its WAL segments
    # mix both frame kinds; recovery must surface all of them.
    config = _config(tmp_path, "mixed", shards=1)
    engine = StorageEngine.create(config)
    engine.write("root.sg.d0", "s0", 1, 1.0)
    engine.write_batch("root.sg.d0", "s0", [5, 3, 4], [5.0, 3.0, 4.0])
    engine.write("root.sg.d0", "s0", 2, 2.0)
    engine.write_batch("root.sg.d0", "s0", [], [])
    engine.write_batch("root.sg.d0", "s0", [6], [6.0])
    del engine  # crash before any flush
    recovered = StorageEngine.open(config)
    result = recovered.query("root.sg.d0", "s0", 0, 10)
    assert result.timestamps == [1, 2, 3, 4, 5, 6]
    assert result.values == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
    recovered.close()
