"""Compaction: query equivalence, file consolidation, fast-path restoration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.iotdb import IoTDBConfig, Space, StorageEngine
from tests.conftest import make_delayed_stream


def _engine(threshold=200, data_dir=None):
    return StorageEngine.create(
        IoTDBConfig(memtable_flush_threshold=threshold, page_size=64, data_dir=data_dir)
    )


class TestCompaction:
    def test_noop_when_nothing_sealed(self):
        engine = _engine()
        report = engine.compact()
        assert report.files_before == 0
        assert report.files_after == 0
        assert report.points_written == 0

    def test_consolidates_files(self):
        engine = _engine(threshold=100)
        for t in range(550):
            engine.write("d", "s", t, float(t))
        engine.flush_all()
        assert engine.sealed_file_count()[Space.SEQUENCE] == 6
        report = engine.compact()
        assert report.files_before == 6
        assert report.files_after == 1
        assert report.points_written == 550
        assert engine.sealed_file_count()[Space.SEQUENCE] == 1
        result = engine.query("d", "s", 0, 550)
        assert result.timestamps == list(range(550))

    def test_unseq_overwrites_win_through_compaction(self):
        engine = _engine(threshold=100)
        for t in range(100):
            engine.write("d", "s", t, 1.0)  # sealed seq; watermark 99
        for t in range(30):
            engine.write("d", "s", t, 2.0)  # unseq rewrites
        engine.flush_all()
        assert engine.sealed_file_count()[Space.UNSEQUENCE] == 1
        report = engine.compact()
        assert report.unseq_files_merged == 1
        assert engine.sealed_file_count()[Space.UNSEQUENCE] == 0
        result = engine.query("d", "s", 0, 100)
        assert result.values[:30] == [2.0] * 30
        assert result.values[30:] == [1.0] * 70

    def test_restores_aggregation_fast_path(self):
        engine = _engine(threshold=100)
        for t in range(100):
            engine.write("d", "s", t, 1.0)
        for t in range(30):
            engine.write("d", "s", t, 2.0)
        engine.flush_all()
        before = engine.aggregate("d", "s", 0, 100)
        assert before.pages_skipped == 0  # unseq file blocks the fast path
        engine.compact()
        after = engine.aggregate("d", "s", 0, 100)
        assert after.pages_skipped > 0
        assert after.count == before.count
        assert after.sum == pytest.approx(before.sum)

    def test_multiple_devices_preserved(self):
        engine = _engine(threshold=100)
        for t in range(150):
            engine.write("d1", "s", t, float(t))
            engine.write("d2", "s", t, float(-t))
        engine.flush_all()
        engine.compact()
        assert engine.query("d1", "s", 0, 150).values == [float(t) for t in range(150)]
        assert engine.query("d2", "s", 0, 150).values == [float(-t) for t in range(150)]

    def test_on_disk_files_replaced(self, tmp_path):
        engine = _engine(threshold=100, data_dir=tmp_path / "data")
        for t in range(350):
            engine.write("d", "s", t, float(t))
        engine.flush_all()
        files_before = set((tmp_path / "data").rglob("*.tsfile"))
        assert len(files_before) == 4
        engine.compact()
        files_after = set((tmp_path / "data").rglob("*.tsfile"))
        assert len(files_after) == 1
        assert files_after.isdisjoint(files_before)
        assert engine.query("d", "s", 0, 350).timestamps == list(range(350))
        engine.close()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50), threshold=st.sampled_from([75, 150, 400]))
    def test_query_equivalence_property(self, seed, threshold):
        stream = make_delayed_stream(600, lam=0.1, seed=seed)
        engine = _engine(threshold=threshold)
        for t, v in zip(stream.timestamps, stream.values):
            engine.write("d", "s", t, v)
        engine.flush_all()
        before = engine.query("d", "s", 0, 600)
        engine.compact()
        after = engine.query("d", "s", 0, 600)
        assert after.timestamps == before.timestamps
        assert after.values == before.values
