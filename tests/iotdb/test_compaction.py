"""Compaction policies: one shared correctness contract, per-policy behaviour.

``CompactionContract`` holds the tests *every* scheduling policy must pass
(reader invisibility, device preservation, report accounting, repeated
passes changing nothing readers can see); ``TestFullMergePolicy`` and
``TestOverlapDrivenPolicy`` inherit it and pin each policy's own file
selection on top.  A new policy earns its place by subclassing the
contract, not by re-proving correctness ad hoc.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.iotdb import (
    FullMergePolicy,
    IoTDBConfig,
    OverlapDrivenPolicy,
    Space,
    StorageEngine,
    policy_from_config,
)
from tests.conftest import make_delayed_stream


class CompactionContract:
    """The correctness contract every compaction policy must satisfy."""

    policy_name: str = ""  # overridden per policy class

    def _engine(self, threshold=200, data_dir=None, **kw):
        return StorageEngine.create(
            IoTDBConfig(
                memtable_flush_threshold=threshold,
                page_size=64,
                data_dir=data_dir,
                compaction_policy=self.policy_name,
                **kw,
            )
        )

    def test_noop_when_nothing_sealed(self):
        engine = self._engine()
        report = engine.compact()
        assert report.policy == self.policy_name
        assert report.files_before == 0
        assert report.files_after == 0
        assert report.files_selected == 0
        assert report.points_written == 0

    def test_report_accounting_is_consistent(self):
        engine = self._engine(threshold=100)
        for t in range(250):
            engine.write("d", "s", t, float(t))
        for t in range(0, 60, 2):
            engine.write("d", "s", t, -float(t))
        engine.flush_all()
        report = engine.compact()
        assert report.policy == self.policy_name
        assert report.files_selected + report.files_skipped == report.files_before
        produced = 1 if report.points_written else 0
        expected_after = report.files_before - report.files_selected + (
            produced if report.files_selected else 0
        )
        assert report.files_after == expected_after
        counts = engine.sealed_file_count()
        assert counts[Space.SEQUENCE] + counts[Space.UNSEQUENCE] == report.files_after

    def test_multiple_devices_preserved(self):
        engine = self._engine(threshold=100)
        for t in range(150):
            engine.write("d1", "s", t, float(t))
            engine.write("d2", "s", t, float(-t))
        engine.flush_all()
        engine.compact()
        assert engine.query("d1", "s", 0, 150).values == [float(t) for t in range(150)]
        assert engine.query("d2", "s", 0, 150).values == [float(-t) for t in range(150)]

    def test_unseq_overwrites_win_through_compaction(self):
        engine = self._engine(threshold=100)
        for t in range(100):
            engine.write("d", "s", t, 1.0)  # sealed seq; watermark 99
        for t in range(30):
            engine.write("d", "s", t, 2.0)  # unseq rewrites
        engine.flush_all()
        engine.compact()
        result = engine.query("d", "s", 0, 100)
        assert result.values[:30] == [2.0] * 30
        assert result.values[30:] == [1.0] * 70

    def test_repeated_passes_are_reader_invisible(self):
        engine = self._engine(threshold=75)
        for t in range(300):
            engine.write("d", "s", t, float(t))
        for t in range(0, 80, 3):
            engine.write("d", "s", t, -float(t))
        engine.flush_all()
        before = engine.query("d", "s", 0, 300)
        engine.compact()
        engine.compact()  # a second pass must change nothing readers see
        after = engine.query("d", "s", 0, 300)
        assert after.timestamps == before.timestamps
        assert after.values == before.values

    # Each policy class wraps this in its own @given test: hypothesis
    # requires the decorated method to be unique per executor class.
    def _check_query_equivalence(self, seed, threshold):
        stream = make_delayed_stream(600, lam=0.1, seed=seed)
        engine = self._engine(threshold=threshold)
        for t, v in zip(stream.timestamps, stream.values):
            engine.write("d", "s", t, v)
        engine.flush_all()
        before = engine.query("d", "s", 0, 600)
        engine.compact()
        after = engine.query("d", "s", 0, 600)
        assert after.timestamps == before.timestamps
        assert after.values == before.values


class TestFullMergePolicy(CompactionContract):
    policy_name = "full"

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50), threshold=st.sampled_from([75, 150, 400]))
    def test_query_equivalence_property(self, seed, threshold):
        self._check_query_equivalence(seed, threshold)

    def test_consolidates_files(self):
        engine = self._engine(threshold=100)
        for t in range(550):
            engine.write("d", "s", t, float(t))
        engine.flush_all()
        assert engine.sealed_file_count()[Space.SEQUENCE] == 6
        report = engine.compact()
        assert report.files_before == 6
        assert report.files_after == 1
        assert report.files_selected == 6
        assert report.files_skipped == 0
        assert report.points_written == 550
        assert engine.sealed_file_count()[Space.SEQUENCE] == 1
        assert engine.query("d", "s", 0, 550).timestamps == list(range(550))

    def test_unseq_space_emptied(self):
        engine = self._engine(threshold=100)
        for t in range(100):
            engine.write("d", "s", t, 1.0)
        for t in range(30):
            engine.write("d", "s", t, 2.0)
        engine.flush_all()
        assert engine.sealed_file_count()[Space.UNSEQUENCE] == 1
        report = engine.compact()
        assert report.unseq_files_merged == 1
        assert engine.sealed_file_count()[Space.UNSEQUENCE] == 0

    def test_restores_aggregation_fast_path(self):
        engine = self._engine(threshold=100)
        for t in range(100):
            engine.write("d", "s", t, 1.0)
        for t in range(30):
            engine.write("d", "s", t, 2.0)
        engine.flush_all()
        before = engine.aggregate("d", "s", 0, 100)
        assert before.pages_skipped == 0  # unseq file blocks the fast path
        engine.compact()
        after = engine.aggregate("d", "s", 0, 100)
        assert after.pages_skipped > 0
        assert after.count == before.count
        assert after.sum == pytest.approx(before.sum)

    def test_on_disk_files_replaced(self, tmp_path):
        engine = self._engine(threshold=100, data_dir=tmp_path / "data")
        for t in range(350):
            engine.write("d", "s", t, float(t))
        engine.flush_all()
        files_before = set((tmp_path / "data").rglob("*.tsfile"))
        assert len(files_before) == 4
        engine.compact()
        files_after = set((tmp_path / "data").rglob("*.tsfile"))
        assert len(files_after) == 1
        assert files_after.isdisjoint(files_before)
        assert engine.query("d", "s", 0, 350).timestamps == list(range(350))
        engine.close()


class TestOverlapDrivenPolicy(CompactionContract):
    policy_name = "overlap"

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50), threshold=st.sampled_from([75, 150, 400]))
    def test_query_equivalence_property(self, seed, threshold):
        self._check_query_equivalence(seed, threshold)

    def _staged_engine(self, **kw):
        """An engine whose files are sealed one explicit flush at a time."""
        return self._engine(threshold=10_000, **kw)

    def _seal(self, engine, points):
        for t, v in points:
            engine.write("d", "s", t, v)
        engine.flush_all()

    def test_low_overlap_files_left_alone(self):
        # One unseq file overlapping a single seq file scores 1 < 2: the
        # pass must leave everything exactly in place.
        engine = self._staged_engine()
        self._seal(engine, [(t, 1.0) for t in range(100)])
        self._seal(engine, [(t, 2.0) for t in range(0, 30)])  # unseq, score 1
        report = engine.compact()
        assert report.files_selected == 0
        assert report.files_skipped == 2
        assert report.files_after == 2
        assert report.points_written == 0
        assert engine.sealed_file_count()[Space.UNSEQUENCE] == 1
        result = engine.query("d", "s", 0, 100)
        assert result.values[:30] == [2.0] * 30

    def test_high_overlap_unseq_is_merged(self):
        # An unseq file straddling two seq files scores 2 >= 2: it and the
        # files it overlaps are merged into one sequence file.
        engine = self._staged_engine()
        self._seal(engine, [(t, 1.0) for t in range(100)])
        self._seal(engine, [(t, 1.0) for t in range(100, 200)])
        self._seal(engine, [(t, 9.0) for t in range(50, 151, 10)])  # unseq
        report = engine.compact()
        assert report.files_selected == 3
        assert report.files_skipped == 0
        assert report.files_after == 1
        assert engine.sealed_file_count() == {Space.SEQUENCE: 1, Space.UNSEQUENCE: 0}
        result = engine.query("d", "s", 0, 200)
        expected = {t: (9.0 if 50 <= t <= 150 and t % 10 == 0 else 1.0)
                    for t in range(200)}
        assert result.values == [expected[t] for t in range(200)]

    def test_partial_pass_skips_disjoint_low_overlap_unseq(self):
        engine = self._staged_engine()
        self._seal(engine, [(t, 1.0) for t in range(100)])
        self._seal(engine, [(t, 1.0) for t in range(100, 200)])
        self._seal(engine, [(t, 9.0) for t in range(50, 151, 10)])  # score 2
        self._seal(engine, [(t, 5.0) for t in range(0, 11, 5)])  # score 1
        report = engine.compact()
        assert report.files_selected == 3
        assert report.files_skipped == 1
        assert engine.sealed_file_count() == {Space.SEQUENCE: 1, Space.UNSEQUENCE: 1}
        result = engine.query("d", "s", 0, 200)
        expected = {t: 1.0 for t in range(200)}
        expected.update({t: 9.0 for t in range(50, 151, 10)})
        expected.update({t: 5.0 for t in range(0, 11, 5)})
        assert result.values == [expected[t] for t in range(200)]

    def test_safety_closure_pulls_in_earlier_overlapping_unseq(self):
        # V (early, low-overlap) shares t=10 with U (late, high-overlap).
        # If the pass merged U without V, the surviving V — fresher than
        # the merged output — would resurrect its stale value at t=10.
        engine = self._staged_engine()
        self._seal(engine, [(t, 1.0) for t in range(100)])
        self._seal(engine, [(t, 1.0) for t in range(100, 200)])
        self._seal(engine, [(t, -1.0) for t in range(0, 21, 5)])  # V, score 1
        self._seal(engine, [(10, 7.0), (120, 7.0)])  # U, score 2, overlaps V
        report = engine.compact()
        assert report.files_selected == 4, "the closure must pull V in"
        assert report.files_after == 1
        result = engine.query("d", "s", 10, 11)
        assert result.values == [7.0], "U's overwrite must survive the merge"

    def test_threshold_knob_raises_the_bar(self):
        engine = self._staged_engine(compaction_overlap_threshold=3)
        self._seal(engine, [(t, 1.0) for t in range(100)])
        self._seal(engine, [(t, 1.0) for t in range(100, 200)])
        self._seal(engine, [(t, 9.0) for t in range(50, 151, 10)])  # score 2 < 3
        report = engine.compact()
        assert report.files_selected == 0
        assert report.files_after == 3

    def test_explicit_policy_overrides_config(self):
        engine = self._staged_engine()
        self._seal(engine, [(t, 1.0) for t in range(100)])
        self._seal(engine, [(t, 2.0) for t in range(0, 30)])  # score 1
        report = engine.compact(FullMergePolicy())
        assert report.policy == "full"
        assert report.files_after == 1


class TestPolicyFromConfig:
    def test_full_is_the_default(self):
        policy = policy_from_config(IoTDBConfig())
        assert isinstance(policy, FullMergePolicy)
        assert policy.name == "full"

    def test_overlap_carries_the_threshold(self):
        policy = policy_from_config(
            IoTDBConfig(compaction_policy="overlap", compaction_overlap_threshold=5)
        )
        assert isinstance(policy, OverlapDrivenPolicy)
        assert policy.threshold == 5

    def test_invalid_policy_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            IoTDBConfig(compaction_policy="lru")
        with pytest.raises(InvalidParameterError):
            IoTDBConfig(compaction_overlap_threshold=0)
