"""The sharded engine: router, per-shard pipelines, front door, recovery."""

from __future__ import annotations

import warnings
import zlib

import pytest

from repro.errors import StorageError
from repro.iotdb import IoTDBConfig, Space, StorageEngine
from repro.iotdb.shard import shard_directory
from repro.obs import Observability

DEVICES = [f"root.sg.d{i}" for i in range(8)]


def _fill(engine, devices=DEVICES, points=50):
    for device in devices:
        for t in range(points):
            engine.write(device, "s1", t, float(t))


class TestRouter:
    def test_routing_is_the_documented_stable_hash(self):
        engine = StorageEngine.create(IoTDBConfig(shards=4))
        for device in DEVICES:
            expected = zlib.crc32(device.encode("utf-8")) % 4
            assert engine.shard_for(device).shard_id == expected

    def test_single_shard_short_circuits(self):
        engine = StorageEngine.create(IoTDBConfig(shards=1))
        assert all(engine.shard_for(d).shard_id == 0 for d in DEVICES)

    def test_each_device_lives_in_exactly_one_shard(self):
        engine = StorageEngine.create(
            IoTDBConfig(shards=4, memtable_flush_threshold=10_000)
        )
        _fill(engine)
        for device in DEVICES:
            owner = engine.shard_for(device)
            for shard in engine.shards:
                points = len(shard.query(device, "s1", 0, 10_000))
                assert points == (50 if shard is owner else 0)


class TestDirectories:
    def test_shard_dirs_exist_even_unsharded(self, tmp_path):
        config = IoTDBConfig(data_dir=tmp_path / "data", shards=1)
        engine = StorageEngine.create(config)
        engine.close()
        assert (tmp_path / "data" / "shard-00").is_dir()

    def test_files_land_in_the_owning_shard_dir(self, tmp_path):
        config = IoTDBConfig(
            data_dir=tmp_path / "data", shards=4, memtable_flush_threshold=10
        )
        engine = StorageEngine.create(config)
        _fill(engine, points=20)
        engine.close()
        for device in DEVICES:
            owner = engine.shard_for(device).shard_id
            owner_dir = shard_directory(tmp_path / "data", owner)
            assert list(owner_dir.glob("*.tsfile"))
        sharded = set((tmp_path / "data").rglob("*.tsfile"))
        root_level = set((tmp_path / "data").glob("*.tsfile"))
        assert sharded and not root_level


class TestOpen:
    def test_multi_shard_recovery_round_trip(self, tmp_path):
        config = IoTDBConfig(
            data_dir=tmp_path / "data",
            wal_enabled=True,
            shards=4,
            memtable_flush_threshold=30,
        )
        engine = StorageEngine.create(config)
        _fill(engine)  # 50 points/device: sealed files AND unflushed WAL tails
        del engine
        reborn = StorageEngine.open(config)
        for device in DEVICES:
            assert reborn.query(device, "s1", 0, 100).timestamps == list(range(50))
        reborn.close()

    def test_shard_count_mismatch_is_rejected(self, tmp_path):
        config = IoTDBConfig(data_dir=tmp_path / "data", shards=4)
        StorageEngine.create(config).close()
        with pytest.raises(StorageError, match="shard"):
            StorageEngine.open(IoTDBConfig(data_dir=tmp_path / "data", shards=2))

    def test_stray_root_level_tsfile_is_rejected(self, tmp_path):
        config = IoTDBConfig(data_dir=tmp_path / "data", shards=2)
        StorageEngine.create(config).close()
        (tmp_path / "data" / "seq-000000.tsfile").write_bytes(b"junk")
        with pytest.raises(StorageError, match="shard-NN"):
            StorageEngine.open(config)


class TestFrontDoor:
    def test_direct_constructor_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match="StorageEngine.create"):
            StorageEngine(IoTDBConfig())

    def test_factories_do_not_warn(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            StorageEngine.create(IoTDBConfig())
            config = IoTDBConfig(data_dir=tmp_path / "data")
            StorageEngine.create(config).close()
            StorageEngine.open(config).close()


class TestBatchPath:
    def test_write_batch_span_reports_actual_work(self):
        obs = Observability()
        engine = StorageEngine.create(
            IoTDBConfig(shards=4, memtable_flush_threshold=40), obs=obs
        )
        engine.write_batch("root.sg.d0", "s1", list(range(100)), [0.0] * 100)
        span = obs.tracer.find("engine.write_batch")
        assert span.attributes["shard"] == engine.shard_for("root.sg.d0").shard_id
        assert span.attributes["points"] == 100
        # 100 sequential points with threshold 40: the end-of-batch check
        # fires once (the batch path flushes at batch boundaries only).
        assert span.attributes["flushes_triggered"] == 1

    def test_batch_survives_recovery_via_batched_wal_append(self, tmp_path):
        config = IoTDBConfig(
            data_dir=tmp_path / "data", wal_enabled=True, shards=2,
            memtable_flush_threshold=10_000,
        )
        engine = StorageEngine.create(config)
        engine.write_batch("root.sg.d0", "s1", list(range(200)), [1.0] * 200)
        del engine  # crash before any flush: only the WAL has the batch
        reborn = StorageEngine.open(config)
        assert reborn.query("root.sg.d0", "s1", 0, 200).timestamps == list(range(200))
        reborn.close()

    def test_batch_length_mismatch_is_rejected(self):
        engine = StorageEngine.create(IoTDBConfig())
        with pytest.raises(StorageError):
            engine.write_batch("d", "s", [1, 2], [1.0])


class TestFlushPool:
    def test_concurrent_flush_all_is_correct(self, tmp_path):
        config = IoTDBConfig(
            data_dir=tmp_path / "data",
            shards=4,
            flush_workers=3,
            memtable_flush_threshold=10_000,
        )
        engine = StorageEngine.create(config)
        _fill(engine)
        reports = engine.flush_all()
        assert sum(r.total_points for r in reports) == len(DEVICES) * 50
        for device in DEVICES:
            assert engine.query(device, "s1", 0, 100).timestamps == list(range(50))
        engine.close()


class TestObservability:
    def test_flush_reports_carry_the_shard_label(self):
        engine = StorageEngine.create(
            IoTDBConfig(shards=4, memtable_flush_threshold=10)
        )
        _fill(engine, points=20)
        engine.flush_all()
        shards_seen = {r.shard for r in engine.flush_reports}
        assert shards_seen == {s.shard_id for s in engine.shards if s.flush_reports}
        assert len(shards_seen) > 1

    def test_shard_labelled_metrics_sum_to_the_global_counter(self):
        obs = Observability()
        engine = StorageEngine.create(IoTDBConfig(shards=4), obs=obs)
        _fill(engine)
        per_shard = obs.registry.get("engine_shard_points_written_total")
        total = sum(child.value for _, child in per_shard.children())
        assert total == obs.registry.get("engine_points_written_total").value == 400

    def test_describe_aggregates_and_lists_shards(self):
        engine = StorageEngine.create(
            IoTDBConfig(shards=4, memtable_flush_threshold=10_000)
        )
        _fill(engine)
        info = engine.describe()
        assert info["points_written"] == 400
        assert [snap["shard"] for snap in info["shards"]] == [0, 1, 2, 3]
        assert sum(snap["points_written"] for snap in info["shards"]) == 400
