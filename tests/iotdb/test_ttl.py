"""TTL: event-time expiry at query, aggregation, and flush."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.iotdb import IoTDBConfig, StorageEngine


def _engine(ttl, threshold=10_000, **kw):
    return StorageEngine.create(
        IoTDBConfig(ttl=ttl, memtable_flush_threshold=threshold, **kw)
    )


class TestTTLQueries:
    def test_expired_points_invisible(self):
        engine = _engine(ttl=10)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        result = engine.query("d", "s", 0, 100)
        # latest=99, ttl=10 -> live window [90, 99].
        assert result.timestamps == list(range(90, 100))

    def test_window_fully_expired(self):
        engine = _engine(ttl=10)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        result = engine.query("d", "s", 0, 50)
        assert len(result) == 0

    def test_ttl_moves_with_latest_event(self):
        engine = _engine(ttl=10)
        engine.write("d", "s", 0, 0.0)
        assert len(engine.query("d", "s", 0, 100)) == 1
        engine.write("d", "s", 50, 1.0)  # pushes the live window forward
        result = engine.query("d", "s", 0, 100)
        assert result.timestamps == [50]

    def test_no_ttl_keeps_everything(self):
        engine = _engine(ttl=None)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        assert len(engine.query("d", "s", 0, 100)) == 100

    def test_aggregate_respects_ttl(self):
        engine = _engine(ttl=10)
        for t in range(100):
            engine.write("d", "s", t, 1.0)
        agg = engine.aggregate("d", "s", 0, 100)
        assert agg.count == 10
        agg = engine.aggregate("d", "s", 0, 50)
        assert agg.count == 0

    def test_aggregate_fast_path_respects_ttl(self):
        engine = _engine(ttl=50, threshold=100, page_size=10)
        for t in range(100):
            engine.write("d", "s", t, 1.0)  # fully flushed
        agg = engine.aggregate("d", "s", 0, 100)
        assert agg.count == 50  # live window [50, 99]

    def test_ttl_validation(self):
        with pytest.raises(InvalidParameterError):
            IoTDBConfig(ttl=0)


class TestTTLFlush:
    def test_expired_points_dropped_at_flush(self):
        engine = _engine(ttl=20, threshold=100)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        report = engine.flush_reports[0]
        chunk = report.chunks[0]
        assert chunk.expired_points == 80
        assert chunk.deduped_points == 20
        result = engine.query("d", "s", 0, 100)
        assert result.timestamps == list(range(80, 100))

    def test_flush_without_ttl_drops_nothing(self):
        engine = _engine(ttl=None, threshold=100)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        assert engine.flush_reports[0].chunks[0].expired_points == 0
