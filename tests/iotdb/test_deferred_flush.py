"""Deferred (asynchronous-style) flushing: queued memtables stay queryable."""

from __future__ import annotations

import pytest

from repro.iotdb import IoTDBConfig, MemTableState, Space, StorageEngine
from tests.conftest import make_delayed_stream


def _engine(**kw):
    defaults = dict(memtable_flush_threshold=200, deferred_flush=True)
    defaults.update(kw)
    return StorageEngine.create(IoTDBConfig(**defaults))


class TestDeferredFlush:
    def test_memtables_queue_instead_of_flushing(self):
        engine = _engine()
        for t in range(650):
            engine.write("d", "s", t, float(t))
        assert engine.pending_flushes() == 3
        assert engine.describe()["flushes"]["seq"] == 0
        assert engine.sealed_file_count()[Space.SEQUENCE] == 0

    def test_flushing_memtables_are_queryable(self):
        engine = _engine()
        stream = make_delayed_stream(650, lam=0.3, seed=1)
        for t, v in zip(stream.timestamps, stream.values):
            engine.write("d", "s", t, v)
        assert engine.pending_flushes() >= 2
        result = engine.query("d", "s", 0, 650)
        assert result.timestamps == list(range(650))

    def test_drain_seals_files(self):
        engine = _engine()
        for t in range(650):
            engine.write("d", "s", t, float(t))
        reports = engine.drain_flushes()
        assert len(reports) == 3
        assert engine.pending_flushes() == 0
        assert engine.describe()["flushes"]["seq"] == 3
        assert engine.query("d", "s", 0, 650).timestamps == list(range(650))

    def test_watermark_advances_at_retirement(self):
        engine = _engine(memtable_flush_threshold=100)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        # Not yet flushed to disk, but the memtable is immutable: late
        # points must already route to unsequence space.
        assert engine.pending_flushes() == 1
        assert engine.separation.watermark("d") == 99
        engine.write("d", "s", 5, 0.5)
        assert engine.separation.routed_counts()[Space.UNSEQUENCE] == 1
        engine.flush_all()
        result = engine.query("d", "s", 0, 100)
        assert result.values[5] == 0.5

    def test_flush_all_covers_working_and_queued(self):
        engine = _engine()
        for t in range(450):
            engine.write("d", "s", t, float(t))
        assert engine.pending_flushes() == 2  # 2 retired, 50 pts working
        reports = engine.flush_all()
        assert len(reports) == 3
        assert engine.pending_flushes() == 0

    def test_inline_mode_never_queues(self):
        engine = _engine(deferred_flush=False)
        for t in range(650):
            engine.write("d", "s", t, float(t))
        assert engine.pending_flushes() == 0
        assert engine.describe()["flushes"]["seq"] == 3

    def test_queued_memtable_state(self):
        engine = _engine()
        for t in range(250):
            engine.write("d", "s", t, float(t))
        shard = engine.shards[0]
        with shard._lock:
            flushing = list(shard._flushing)
        assert all(task.memtable.state is MemTableState.FLUSHING for task in flushing)

    def test_equivalence_inline_vs_deferred(self):
        stream = make_delayed_stream(1_000, lam=0.2, seed=2)
        results = []
        for deferred in (False, True):
            engine = _engine(deferred_flush=deferred, memtable_flush_threshold=150)
            for t, v in zip(stream.timestamps, stream.values):
                engine.write("d", "s", t, v)
            result = engine.query("d", "s", 0, 1_000)
            results.append((result.timestamps, result.values))
        assert results[0] == results[1]

    def test_latest_time_sees_queued_memtables(self):
        engine = _engine(memtable_flush_threshold=100)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        # All data sits in the FLUSHING queue: no sealed file, empty working.
        assert engine.pending_flushes() == 1
        assert engine.sealed_file_count()[Space.SEQUENCE] == 0
        assert engine.latest_time("d", "s") == 99
