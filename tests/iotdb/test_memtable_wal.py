"""MemTable lifecycle, separation policy, and write-ahead log."""

from __future__ import annotations

import io

import pytest

from repro.errors import (
    InvalidParameterError,
    MemTableFlushedError,
    StorageError,
    WalCorruptionError,
)
from repro.iotdb import (
    IoTDBConfig,
    MemTable,
    MemTableState,
    SegmentedWal,
    SeparationPolicy,
    Space,
    TSDataType,
    WriteAheadLog,
)


class TestMemTable:
    def test_write_and_chunk_layout(self):
        mt = MemTable(IoTDBConfig(memtable_flush_threshold=100))
        mt.write("d1", "s1", 10, 1.0)
        mt.write("d1", "s2", 10, 5)
        mt.write("d2", "s1", 11, 2.0)
        assert mt.total_points == 3
        assert mt.devices() == ["d1", "d2"]
        assert [key[:2] for key in [(d, s) for d, s, _ in mt.iter_chunks()]] == [
            ("d1", "s1"),
            ("d1", "s2"),
            ("d2", "s1"),
        ]

    def test_schema_inference_and_stickiness(self):
        mt = MemTable()
        mt.write("d", "s", 1, 1.5)
        assert mt.chunk_dtype("d", "s") is TSDataType.DOUBLE
        with pytest.raises(InvalidParameterError):
            mt.write("d", "s", 2, "text")  # dtype pinned to DOUBLE

    def test_timestamp_must_be_int(self):
        mt = MemTable()
        with pytest.raises(InvalidParameterError):
            mt.write("d", "s", 1.5, 1.0)
        with pytest.raises(InvalidParameterError):
            mt.write("d", "s", True, 1.0)

    def test_should_flush_threshold(self):
        mt = MemTable(IoTDBConfig(memtable_flush_threshold=3))
        for t in range(2):
            mt.write("d", "s", t, 1.0)
        assert not mt.should_flush()
        mt.write("d", "s", 2, 1.0)
        assert mt.should_flush()

    def test_state_machine(self):
        mt = MemTable()
        mt.write("d", "s", 1, 1.0)
        assert mt.state is MemTableState.WORKING
        mt.mark_flushing()
        assert mt.state is MemTableState.FLUSHING
        with pytest.raises(MemTableFlushedError):
            mt.write("d", "s", 2, 2.0)
        with pytest.raises(MemTableFlushedError):
            mt.mark_flushing()
        mt.mark_flushed()
        assert mt.state is MemTableState.FLUSHED
        with pytest.raises(MemTableFlushedError):
            mt.mark_flushed()

    def test_write_batch(self):
        mt = MemTable()
        mt.write_batch("d", "s", [1, 2, 3], [1.0, 2.0, 3.0])
        assert mt.total_points == 3
        with pytest.raises(InvalidParameterError):
            mt.write_batch("d", "s", [1], [1.0, 2.0])


class TestSeparationPolicy:
    def test_routes_seq_before_any_flush(self):
        policy = SeparationPolicy()
        assert policy.route("d", 100) is Space.SEQUENCE
        assert policy.watermark("d") is None

    def test_routes_unseq_at_or_below_watermark(self):
        policy = SeparationPolicy()
        policy.update_watermark("d", 100)
        assert policy.route("d", 100) is Space.UNSEQUENCE
        assert policy.route("d", 50) is Space.UNSEQUENCE
        assert policy.route("d", 101) is Space.SEQUENCE

    def test_watermark_monotone(self):
        policy = SeparationPolicy()
        policy.update_watermark("d", 100)
        policy.update_watermark("d", 50)  # must not regress
        assert policy.watermark("d") == 100

    def test_per_device_isolation(self):
        policy = SeparationPolicy()
        policy.update_watermark("d1", 100)
        assert policy.route("d2", 5) is Space.SEQUENCE

    def test_disabled_policy_routes_everything_seq(self):
        policy = SeparationPolicy(enabled=False)
        policy.update_watermark("d", 100)
        assert policy.route("d", 1) is Space.SEQUENCE

    def test_routed_counts(self):
        policy = SeparationPolicy()
        policy.update_watermark("d", 10)
        policy.route("d", 5)
        policy.route("d", 20)
        counts = policy.routed_counts()
        assert counts[Space.UNSEQUENCE] == 1
        assert counts[Space.SEQUENCE] == 1


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self):
        wal = WriteAheadLog()
        records = [("d1", "s1", 5, 1.5), ("d1", "s2", 6, "x"), ("d2", "s1", 7, True)]
        for r in records:
            wal.append(*r)
        assert list(wal.replay()) == records

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.append("d", "s", 1, 1.0)
        wal.truncate()
        assert list(wal.replay()) == []
        assert wal.size_bytes() == 0

    def test_torn_tail_tolerated(self):
        buf = io.BytesIO()
        wal = WriteAheadLog(buf)
        wal.append("d", "s", 1, 1.0)
        wal.append("d", "s", 2, 2.0)
        # Simulate a crash mid-append: chop the last few bytes.
        data = buf.getvalue()[:-3]
        recovered = WriteAheadLog(io.BytesIO(data))
        assert list(recovered.replay()) == [("d", "s", 1, 1.0)]

    def test_corruption_raises_in_strict_mode(self):
        buf = io.BytesIO()
        wal = WriteAheadLog(buf)
        wal.append("d", "s", 1, 1.0)
        data = bytearray(buf.getvalue())
        data[6] ^= 0xFF  # corrupt the payload
        bad = WriteAheadLog(io.BytesIO(bytes(data)))
        with pytest.raises(WalCorruptionError):
            list(bad.replay(strict=True))
        assert list(bad.replay()) == []  # lenient mode stops silently


class TestWalStrictDiagnostics:
    """S4 regression: strict replay distinguishes torn header / payload /
    crc / checksum, naming the failing record index."""

    @staticmethod
    def _log(*records) -> bytes:
        buf = io.BytesIO()
        wal = WriteAheadLog(buf)
        for record in records:
            wal.append(*record)
        return buf.getvalue()

    def test_torn_header_names_record(self):
        data = self._log(("d", "s", 1, 1.0), ("d", "s", 2, 2.0))
        record_len = len(data) // 2
        torn = WriteAheadLog(io.BytesIO(data[: record_len + 2]))  # 2 header bytes
        with pytest.raises(
            WalCorruptionError, match=r"torn header at record 1: 2 of 4 bytes"
        ):
            list(torn.replay(strict=True))

    def test_torn_payload_names_record(self):
        data = self._log(("d", "s", 1, 1.0))
        torn = WriteAheadLog(io.BytesIO(data[:7]))  # header + 3 payload bytes
        with pytest.raises(WalCorruptionError, match=r"torn payload at record 0"):
            list(torn.replay(strict=True))

    def test_torn_crc_names_record(self):
        data = self._log(("d", "s", 1, 1.0))
        torn = WriteAheadLog(io.BytesIO(data[:-2]))  # half the trailing crc
        with pytest.raises(
            WalCorruptionError, match=r"torn crc at record 0: 2 of 4 bytes"
        ):
            list(torn.replay(strict=True))

    def test_checksum_mismatch_names_record_and_values(self):
        data = bytearray(self._log(("d", "s", 1, 1.0), ("d", "s", 2, 2.0)))
        data[len(data) // 2 + 6] ^= 0xFF  # flip a payload byte of record 1
        bad = WriteAheadLog(io.BytesIO(bytes(data)))
        with pytest.raises(
            WalCorruptionError, match=r"checksum mismatch at record 1: stored 0x"
        ):
            list(bad.replay(strict=True))

    def test_lenient_mode_still_returns_the_clean_prefix(self):
        data = self._log(("d", "s", 1, 1.0), ("d", "s", 2, 2.0))
        torn = WriteAheadLog(io.BytesIO(data[:-2]))
        assert list(torn.replay()) == [("d", "s", 1, 1.0)]

    def test_append_is_durable_without_close(self, tmp_path):
        # Regression: append() must flush; a crash right after an
        # acknowledged write used to lose it to the user-space buffer.
        path = tmp_path / "wal.log"
        handle = open(path, "wb+")
        wal = WriteAheadLog(handle)
        wal.append("d", "s", 1, 1.0)
        # Read through a second descriptor: only OS-visible bytes count.
        replayed = list(WriteAheadLog(open(path, "rb")).replay())
        assert replayed == [("d", "s", 1, 1.0)]
        handle.close()


class TestSegmentedWal:
    def test_rotate_and_replay_order(self):
        wal = SegmentedWal.in_memory("seq")
        wal.append("d", "s", 1, 1.0)
        sealed_id = wal.rotate()
        wal.append("d", "s", 2, 2.0)
        assert wal.sealed_segment_ids() == [sealed_id]
        assert list(wal.replay()) == [("d", "s", 1, 1.0), ("d", "s", 2, 2.0)]

    def test_drop_removes_only_that_segment(self):
        wal = SegmentedWal.in_memory("seq")
        wal.append("d", "s", 1, 1.0)
        first = wal.rotate()
        wal.append("d", "s", 2, 2.0)
        wal.drop(first)
        assert list(wal.replay()) == [("d", "s", 2, 2.0)]

    def test_cannot_drop_active_or_unknown_segment(self):
        wal = SegmentedWal.in_memory("seq")
        (active,) = wal.segment_ids()
        with pytest.raises(StorageError):
            wal.drop(active)
        with pytest.raises(StorageError):
            wal.drop(999)

    def test_on_disk_fresh_deletes_recovery_keeps(self, tmp_path):
        wal = SegmentedWal.on_disk(tmp_path, "seq", fresh=True)
        wal.append("d", "s", 1, 1.0)
        wal.rotate()
        wal.append("d", "s", 2, 2.0)
        wal.close()

        recovered = SegmentedWal.on_disk(tmp_path, "seq", fresh=False)
        assert list(recovered.replay()) == [("d", "s", 1, 1.0), ("d", "s", 2, 2.0)]
        # Recovered segments are sealed; ids never collide with the new active.
        assert len(recovered.sealed_segment_ids()) == 2
        recovered.close()

        fresh = SegmentedWal.on_disk(tmp_path, "seq", fresh=True)
        assert list(fresh.replay()) == []
        fresh.close()

    def test_spaces_are_isolated_on_disk(self, tmp_path):
        seq = SegmentedWal.on_disk(tmp_path, "seq", fresh=True)
        unseq = SegmentedWal.on_disk(tmp_path, "unseq", fresh=True)
        seq.append("d", "s", 1, 1.0)
        unseq.append("d", "s", 2, 2.0)
        assert list(seq.replay()) == [("d", "s", 1, 1.0)]
        assert list(unseq.replay()) == [("d", "s", 2, 2.0)]
        seq.close()
        unseq.close()

    def test_unrecognised_segment_name_rejected(self, tmp_path):
        (tmp_path / "wal-seq-bogus.log").write_bytes(b"junk")
        with pytest.raises(StorageError):
            SegmentedWal.on_disk(tmp_path, "seq", fresh=False)
