"""Engine-version dispatch: meta/engine.json stamping, inference, refusal.

``StorageEngine.open`` must dispatch on the tree's own stamp — inferring
and stamping unversioned trees, rebuilding torn stamps, and refusing
(never rewriting) well-framed stamps it cannot honour.  Every resolution
outcome is pinned here, along with the create-side parameter contract.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    InvalidParameterError,
    MetaCorruptionError,
    StorageError,
)
from repro.iotdb import (
    ENGINE_META_KEY,
    EngineMeta,
    IoTDBConfig,
    LocalDirStore,
    MemoryStore,
    StorageEngine,
    read_meta,
)
from repro.iotdb.meta import check_supported_version, decode_meta, encode_meta


def _config(tmp_path=None, **kw):
    defaults = dict(wal_enabled=True, memtable_flush_threshold=50)
    if tmp_path is not None:
        defaults["data_dir"] = tmp_path / "data"
    defaults.update(kw)
    return IoTDBConfig(**defaults)


def _fill(engine, n=120):
    for t in range(n):
        engine.write("d", "s", t, float(t))


def _meta_outcome(engine, outcome):
    return engine._instruments.meta_recoveries.labels(outcome=outcome).value


class TestCreateStamps:
    def test_v1_create_stamps_version_1(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path))
        engine.close()
        meta = read_meta(LocalDirStore(tmp_path / "data"))
        assert meta == EngineMeta(version=1, backend="local", shards=1)

    def test_v2_local_create_stamps_version_2(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path, engine_version=2))
        engine.close()
        meta = read_meta(LocalDirStore(tmp_path / "data"))
        assert meta == EngineMeta(version=2, backend="local", shards=1)

    def test_v2_memory_create_stamps_store(self):
        store = MemoryStore()
        engine = StorageEngine.create(
            _config(shards=3), version=2, backend=store
        )
        engine.close()
        assert read_meta(store) == EngineMeta(version=2, backend="memory", shards=3)

    def test_version_kwarg_overrides_config(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path), version=2)
        engine.close()
        assert read_meta(LocalDirStore(tmp_path / "data")).version == 2

    def test_in_memory_v1_engine_has_no_store(self):
        engine = StorageEngine.create(_config())
        assert engine.store is None
        engine.close()


class TestCreateParameterContract:
    def test_config_rejects_unknown_engine_version(self):
        with pytest.raises(InvalidParameterError, match="engine_version"):
            IoTDBConfig(engine_version=3)

    def test_create_rejects_unknown_version(self, tmp_path):
        with pytest.raises(StorageError, match="must be 1 or 2"):
            StorageEngine.create(_config(tmp_path), version=7)

    def test_v1_rejects_explicit_backend(self):
        with pytest.raises(StorageError, match="version 1"):
            StorageEngine.create(_config(), version=1, backend=MemoryStore())

    def test_v2_rejects_backend_plus_data_dir(self, tmp_path):
        with pytest.raises(StorageError, match="not both"):
            StorageEngine.create(
                _config(tmp_path), version=2, backend=MemoryStore()
            )

    def test_v2_requires_some_backend(self):
        with pytest.raises(StorageError, match="backend"):
            StorageEngine.create(_config(), version=2)

    def test_open_rejects_backend_plus_data_dir(self, tmp_path):
        with pytest.raises(StorageError, match="not both"):
            StorageEngine.open(_config(tmp_path), backend=MemoryStore())


class TestOpenDispatch:
    def test_validated_v1_roundtrip(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path))
        _fill(engine)
        del engine
        reborn = StorageEngine.open(_config(tmp_path))
        assert reborn.engine_version == 1
        assert _meta_outcome(reborn, "validated") == 1
        assert reborn.query("d", "s", 0, 120).timestamps == list(range(120))
        reborn.close()

    def test_validated_v2_local_roundtrip(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path, engine_version=2))
        _fill(engine)
        del engine
        reborn = StorageEngine.open(_config(tmp_path))
        assert reborn.engine_version == 2
        assert _meta_outcome(reborn, "validated") == 1
        assert reborn.query("d", "s", 0, 120).timestamps == list(range(120))
        reborn.close()

    def test_validated_v2_memory_roundtrip(self):
        store = MemoryStore()
        engine = StorageEngine.create(_config(), version=2, backend=store)
        _fill(engine)
        engine.close()
        reborn = StorageEngine.open(_config(), backend=store)
        assert reborn.engine_version == 2
        assert _meta_outcome(reborn, "validated") == 1
        assert reborn.query("d", "s", 0, 120).timestamps == list(range(120))
        reborn.close()

    def test_unversioned_local_inferred_v1_and_stamped(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path))
        _fill(engine)
        engine.close()
        # Simulate a pre-stamp tree: remove the meta.
        (tmp_path / "data" / "meta" / "engine.json").unlink()
        reborn = StorageEngine.open(_config(tmp_path))
        assert reborn.engine_version == 1
        assert _meta_outcome(reborn, "stamped-unversioned") == 1
        assert reborn.query("d", "s", 0, 120).timestamps == list(range(120))
        reborn.close()
        assert read_meta(LocalDirStore(tmp_path / "data")).version == 1

    def test_unversioned_store_inferred_v2_and_stamped(self):
        store = MemoryStore()
        engine = StorageEngine.create(_config(), version=2, backend=store)
        _fill(engine)
        engine.close()
        store.delete(ENGINE_META_KEY)
        reborn = StorageEngine.open(_config(), backend=store)
        assert reborn.engine_version == 2
        assert _meta_outcome(reborn, "stamped-unversioned") == 1
        reborn.close()
        assert read_meta(store).version == 2

    def test_torn_meta_rebuilt_never_misread(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path))
        _fill(engine)
        engine.close()
        store = LocalDirStore(tmp_path / "data")
        blob = store.get(ENGINE_META_KEY)
        store.put(ENGINE_META_KEY, blob[: len(blob) // 2])  # torn tail
        with pytest.raises(MetaCorruptionError):
            read_meta(store)
        reborn = StorageEngine.open(_config(tmp_path))
        assert reborn.engine_version == 1
        assert _meta_outcome(reborn, "rebuilt-corrupt") == 1
        assert reborn.query("d", "s", 0, 120).timestamps == list(range(120))
        reborn.close()
        assert read_meta(store) == EngineMeta(version=1, backend="local", shards=1)

    def test_stray_meta_part_is_garbage_collected(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path))
        engine.close()
        store = LocalDirStore(tmp_path / "data")
        store.put(ENGINE_META_KEY + ".part", b"torn mid-publish")
        StorageEngine.open(_config(tmp_path)).close()
        assert not store.exists(ENGINE_META_KEY + ".part")

    def test_future_version_refused_precisely(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path))
        engine.close()
        store = LocalDirStore(tmp_path / "data")
        store.put(
            ENGINE_META_KEY,
            encode_meta(EngineMeta(version=9, backend="local", shards=1)),
        )
        with pytest.raises(StorageError, match="version 9 is not supported"):
            StorageEngine.open(_config(tmp_path))
        # Refused, not rewritten: the future stamp survives untouched.
        assert read_meta(store).version == 9

    def test_malformed_version_field_refused_not_rewritten(self, tmp_path):
        import json
        import zlib

        engine = StorageEngine.create(_config(tmp_path))
        engine.close()
        store = LocalDirStore(tmp_path / "data")
        payload = json.dumps(
            {"backend": "local", "shards": 1, "version": "two"},
            sort_keys=True,
            separators=(",", ":"),
        )
        crc = zlib.crc32(payload.encode()) & 0xFFFFFFFF
        blob = f"REPROMETA1\n{crc:08x}\n{payload}\n".encode()
        store.put(ENGINE_META_KEY, blob)
        with pytest.raises(StorageError, match="malformed version"):
            StorageEngine.open(_config(tmp_path))
        assert store.get(ENGINE_META_KEY) == blob

    def test_v1_tree_refused_through_explicit_backend(self):
        store = MemoryStore()
        store.put(
            ENGINE_META_KEY,
            encode_meta(EngineMeta(version=1, backend="local", shards=1)),
        )
        with pytest.raises(StorageError, match="version 1"):
            StorageEngine.open(_config(), backend=store)

    def test_backend_kind_mismatch_refused(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path))
        engine.close()
        store = LocalDirStore(tmp_path / "data")
        store.put(
            ENGINE_META_KEY,
            encode_meta(EngineMeta(version=2, backend="memory", shards=1)),
        )
        with pytest.raises(StorageError, match="backend kind"):
            StorageEngine.open(_config(tmp_path))

    def test_meta_shards_mismatch_refused(self):
        store = MemoryStore()
        engine = StorageEngine.create(
            _config(shards=3), version=2, backend=store
        )
        engine.close()
        with pytest.raises(StorageError, match="3 shards"):
            StorageEngine.open(_config(shards=2), backend=store)

    def test_legacy_shard_count_check_still_fires(self, tmp_path):
        engine = StorageEngine.create(_config(tmp_path, shards=2))
        _fill(engine)
        engine.close()
        (tmp_path / "data" / "meta" / "engine.json").unlink()
        with pytest.raises(StorageError, match="2 shard directories"):
            StorageEngine.open(_config(tmp_path, shards=3))


class TestMetaCodec:
    def test_roundtrip(self):
        meta = EngineMeta(version=2, backend="memory", shards=4)
        assert decode_meta(encode_meta(meta)) == meta

    @pytest.mark.parametrize(
        "blob",
        [
            b"",
            b"\xff\xfe garbage",
            b"WRONGMAGIC\n00000000\n{}\n",
            b"REPROMETA1\nnothex\n{}\n",
            b"REPROMETA1\n00000000\n{}",  # missing trailing newline
            b"REPROMETA1\ndeadbeef\n{}\n",  # CRC mismatch
        ],
    )
    def test_structural_damage_is_corruption(self, blob):
        with pytest.raises(MetaCorruptionError):
            decode_meta(blob)

    def test_supported_versions(self):
        check_supported_version(1)
        check_supported_version(2)
        with pytest.raises(StorageError, match="supported: 1, 2"):
            check_supported_version(3)
