"""Hypothesis round-trips of the TsFile format over arbitrary typed columns."""

from __future__ import annotations

import io

from hypothesis import given, settings, strategies as st

from repro.iotdb import TSDataType, TsFileReader, TsFileWriter

_ENCODINGS_BY_TYPE = {
    TSDataType.INT64: ("plain", "ts2diff", "rle"),
    TSDataType.DOUBLE: ("plain", "gorilla"),
    TSDataType.BOOLEAN: ("plain", "rle"),
    TSDataType.TEXT: ("plain",),
}

_VALUES_BY_TYPE = {
    TSDataType.INT64: st.integers(-(2**50), 2**50),
    TSDataType.DOUBLE: st.floats(allow_nan=False, allow_infinity=False),
    TSDataType.BOOLEAN: st.booleans(),
    TSDataType.TEXT: st.text(max_size=20),
}


@st.composite
def _typed_column(draw):
    dtype = draw(st.sampled_from(list(_VALUES_BY_TYPE)))
    n = draw(st.integers(1, 80))
    # Strictly increasing timestamps, as the writer requires.
    deltas = draw(st.lists(st.integers(1, 50), min_size=n, max_size=n))
    ts = []
    acc = draw(st.integers(0, 1000))
    for d in deltas:
        acc += d
        ts.append(acc)
    vs = draw(st.lists(_VALUES_BY_TYPE[dtype], min_size=n, max_size=n))
    encoding = draw(st.sampled_from(_ENCODINGS_BY_TYPE[dtype]))
    page_size = draw(st.sampled_from([3, 16, 1024]))
    return dtype, ts, vs, encoding, page_size


@settings(max_examples=60, deadline=None)
@given(column=_typed_column())
def test_roundtrip_any_typed_column(column):
    dtype, ts, vs, encoding, page_size = column
    buf = io.BytesIO()
    writer = TsFileWriter(buf)
    writer.write_chunk(
        "dev", "sen", dtype, ts, vs, value_encoding=encoding, page_size=page_size
    )
    writer.close()
    reader = TsFileReader(buf)
    out_t, out_v = reader.read_chunk("dev", "sen")
    assert out_t == ts
    assert out_v == vs


@settings(max_examples=40, deadline=None)
@given(column=_typed_column(), lo=st.integers(0, 3000), width=st.integers(1, 3000))
def test_query_range_matches_filter(column, lo, width):
    dtype, ts, vs, encoding, page_size = column
    buf = io.BytesIO()
    writer = TsFileWriter(buf)
    writer.write_chunk(
        "dev", "sen", dtype, ts, vs, value_encoding=encoding, page_size=page_size
    )
    writer.close()
    reader = TsFileReader(buf)
    hi = lo + width
    out_t, out_v = reader.query_range("dev", "sen", lo, hi)
    expected = [(t, v) for t, v in zip(ts, vs) if lo <= t < hi]
    assert list(zip(out_t, out_v)) == expected
