"""Aggregation queries: statistics fast path vs raw scan, always equal."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.iotdb import IoTDBConfig, StorageEngine
from repro.iotdb.aggregation import AGGREGATIONS, aggregate_from_points, is_close
from tests.conftest import make_delayed_stream


def _engine(threshold=500, page_size=64):
    return StorageEngine.create(
        IoTDBConfig(memtable_flush_threshold=threshold, page_size=page_size)
    )


class TestAggregationBasics:
    def test_known_values(self):
        engine = _engine()
        for t in range(10):
            engine.write("d", "s", t, float(t))
        agg = engine.aggregate("d", "s", 2, 7)  # values 2..6
        assert agg.count == 5
        assert agg.sum == 20.0
        assert agg.avg == 4.0
        assert agg.min_value == 2.0
        assert agg.max_value == 6.0
        assert agg.first == 2.0
        assert agg.last == 6.0

    def test_empty_range_result(self):
        engine = _engine()
        engine.write("d", "s", 1, 1.0)
        agg = engine.aggregate("d", "s", 100, 200)
        assert agg.count == 0
        assert agg.sum is None and agg.avg is None
        assert agg.first is None and agg.last is None

    def test_invalid_range_rejected(self):
        engine = _engine()
        with pytest.raises(QueryError):
            engine.aggregate("d", "s", 5, 5)

    def test_get_accessor(self):
        engine = _engine()
        engine.write("d", "s", 1, 2.0)
        agg = engine.aggregate("d", "s", 0, 10)
        for name in AGGREGATIONS:
            agg.get(name)
        with pytest.raises(QueryError):
            agg.get("median")

    def test_non_numeric_column(self):
        engine = _engine()
        engine.write("d", "s", 1, "a")
        engine.write("d", "s", 2, "b")
        agg = engine.aggregate("d", "s", 0, 10)
        assert agg.count == 2
        assert agg.sum is None and agg.avg is None
        assert agg.first == "a" and agg.last == "b"


class TestFastPath:
    def test_sealed_only_range_skips_pages(self):
        engine = _engine(threshold=1_000, page_size=100)
        for t in range(1_000):
            engine.write("d", "s", t, float(t))
        # Everything flushed (threshold hit exactly); memtable now empty.
        agg = engine.aggregate("d", "s", 0, 1_000)
        assert agg.count == 1_000
        assert agg.sum == float(sum(range(1_000)))
        assert agg.pages_skipped == 10
        assert agg.pages_decoded == 0

    def test_partial_pages_decoded(self):
        engine = _engine(threshold=1_000, page_size=100)
        for t in range(1_000):
            engine.write("d", "s", t, float(t))
        agg = engine.aggregate("d", "s", 50, 950)
        assert agg.count == 900
        assert agg.pages_skipped == 8
        assert agg.pages_decoded == 2
        assert agg.sum == float(sum(range(50, 950)))

    def test_fast_path_spans_multiple_seq_files(self):
        engine = _engine(threshold=200, page_size=50)
        for t in range(600):
            engine.write("d", "s", t, 1.0)
        agg = engine.aggregate("d", "s", 0, 600)
        assert agg.count == 600
        assert agg.pages_skipped == 12

    def test_live_memtable_blocks_fast_path(self):
        engine = _engine(threshold=1_000, page_size=100)
        for t in range(1_000):
            engine.write("d", "s", t, float(t))
        engine.write("d", "s", 1_500, 5.0)  # live point outside range though?
        # The live point's range [1500,1501) does not overlap [0,1000): fast
        # path must still apply.
        agg = engine.aggregate("d", "s", 0, 1_000)
        assert agg.pages_skipped == 10
        # A live point inside the range forces the raw scan...
        engine.write("d", "s", 500, 999.0)
        agg = engine.aggregate("d", "s", 0, 1_000)
        assert agg.pages_skipped == 0
        # ... and the overwrite is honoured.
        assert agg.max_value == 999.0

    def test_unseq_overwrite_not_double_counted(self):
        engine = _engine(threshold=100, page_size=10)
        for t in range(100):
            engine.write("d", "s", t, 1.0)  # sealed seq file, watermark 99
        for t in range(50):
            engine.write("d", "s", t, 2.0)  # unseq rewrites
        engine.flush_all()
        agg = engine.aggregate("d", "s", 0, 100)
        assert agg.count == 100
        assert agg.sum == 50 * 2.0 + 50 * 1.0


class TestFastSlowEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        start=st.integers(0, 900),
        width=st.integers(1, 900),
        threshold=st.sampled_from([150, 400, 2_000]),
    )
    def test_aggregate_equals_scan(self, start, width, threshold):
        stream = make_delayed_stream(1_000, lam=0.2, seed=31)
        engine = _engine(threshold=threshold, page_size=64)
        for t, v in zip(stream.timestamps, stream.values):
            engine.write("d", "s", t, v)
        end = start + width
        fast = engine.aggregate("d", "s", start, end)
        slow = aggregate_from_points(engine.query("d", "s", start, end))
        assert fast.count == slow.count
        assert is_close(fast.sum, slow.sum)
        assert is_close(fast.avg, slow.avg)
        assert fast.first == slow.first
        assert fast.last == slow.last
        if fast.count:
            assert fast.min_value == pytest.approx(slow.min_value)
            assert fast.max_value == pytest.approx(slow.max_value)


class TestWindowedAggregation:
    def test_group_by_time(self):
        engine = _engine()
        for t in range(60):
            engine.write("d", "s", t, float(t % 10))
        buckets = engine.aggregate_windows("d", "s", 0, 60, window=10)
        assert len(buckets) == 6
        for b in buckets:
            assert b.result.count == 10
            assert b.result.avg == pytest.approx(4.5)
        assert buckets[0].start == 0 and buckets[0].end == 10
        assert buckets[-1].start == 50 and buckets[-1].end == 60

    def test_empty_buckets_reported(self):
        engine = _engine()
        engine.write("d", "s", 5, 1.0)
        engine.write("d", "s", 25, 2.0)
        buckets = engine.aggregate_windows("d", "s", 0, 30, window=10)
        assert [b.result.count for b in buckets] == [1, 0, 1]

    def test_partial_final_bucket(self):
        engine = _engine()
        for t in range(25):
            engine.write("d", "s", t, 1.0)
        buckets = engine.aggregate_windows("d", "s", 0, 25, window=10)
        assert [(b.start, b.end) for b in buckets] == [(0, 10), (10, 20), (20, 25)]
        assert [b.result.count for b in buckets] == [10, 10, 5]

    def test_windows_respect_overwrites(self):
        engine = _engine(threshold=50)
        for t in range(50):
            engine.write("d", "s", t, 1.0)  # flushed
        engine.write("d", "s", 5, 100.0)  # unseq rewrite
        buckets = engine.aggregate_windows("d", "s", 0, 50, window=10)
        assert buckets[0].result.sum == pytest.approx(9 * 1.0 + 100.0)
        assert buckets[1].result.sum == pytest.approx(10.0)

    def test_bad_window_rejected(self):
        engine = _engine()
        engine.write("d", "s", 1, 1.0)
        with pytest.raises(QueryError):
            engine.aggregate_windows("d", "s", 0, 10, window=0)

    def test_buckets_sum_to_total(self):
        stream = make_delayed_stream(500, lam=0.2, seed=17)
        engine = _engine(threshold=120)
        for t, v in zip(stream.timestamps, stream.values):
            engine.write("d", "s", t, v)
        total = engine.aggregate("d", "s", 0, 500)
        buckets = engine.aggregate_windows("d", "s", 0, 500, window=37)
        assert sum(b.result.count for b in buckets) == total.count
        assert sum(b.result.sum or 0.0 for b in buckets) == pytest.approx(total.sum)
