"""Crash recovery from disk: StorageEngine.open over a data directory."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.iotdb import IoTDBConfig, Space, StorageEngine
from tests.conftest import make_delayed_stream


def _config(tmp_path, **kw):
    defaults = dict(
        data_dir=tmp_path / "data",
        wal_enabled=True,
        memtable_flush_threshold=200,
    )
    defaults.update(kw)
    return IoTDBConfig(**defaults)


class TestDiskRecovery:
    def test_reopen_recovers_sealed_and_unflushed_data(self, tmp_path):
        config = _config(tmp_path)
        engine = StorageEngine.create(config)
        stream = make_delayed_stream(650, lam=0.3, seed=1)
        for t, v in zip(stream.timestamps, stream.values):
            engine.write("d", "s", t, v)
        # 3 flushes happened (600 pts sealed); 50 pts only in WAL.  Crash:
        # the engine object is dropped without flush_all/close.
        assert engine.describe()["flushes"]["seq"] == 3
        del engine

        reborn = StorageEngine.open(_config(tmp_path))
        assert reborn.sealed_file_count()[Space.SEQUENCE] == 3
        result = reborn.query("d", "s", 0, 650)
        assert result.timestamps == list(range(650))

    def test_watermark_restored(self, tmp_path):
        config = _config(tmp_path, memtable_flush_threshold=100)
        engine = StorageEngine.create(config)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        del engine

        reborn = StorageEngine.open(_config(tmp_path, memtable_flush_threshold=100))
        assert reborn.separation.watermark("d") == 99
        reborn.write("d", "s", 5, 0.5)  # must route unseq, not seq
        assert reborn.separation.routed_counts()[Space.UNSEQUENCE] == 1

    def test_new_writes_after_recovery_work(self, tmp_path):
        config = _config(tmp_path, memtable_flush_threshold=100)
        engine = StorageEngine.create(config)
        for t in range(150):
            engine.write("d", "s", t, float(t))
        del engine

        reborn = StorageEngine.open(_config(tmp_path, memtable_flush_threshold=100))
        for t in range(150, 300):
            reborn.write("d", "s", t, float(t))
        reborn.flush_all()
        result = reborn.query("d", "s", 0, 300)
        assert result.timestamps == list(range(300))
        reborn.close()

    def test_file_counter_resumes(self, tmp_path):
        config = _config(tmp_path, memtable_flush_threshold=100)
        engine = StorageEngine.create(config)
        for t in range(200):
            engine.write("d", "s", t, float(t))
        del engine
        reborn = StorageEngine.open(_config(tmp_path, memtable_flush_threshold=100))
        for t in range(200, 300):
            reborn.write("d", "s", t, float(t))
        files = sorted((tmp_path / "data").rglob("*.tsfile"))
        assert len(files) == len({f.name for f in files}) == 3  # no overwrites

    def test_open_requires_data_dir(self):
        with pytest.raises(StorageError):
            StorageEngine.open(IoTDBConfig())

    def test_fresh_constructor_truncates_wal(self, tmp_path):
        config = _config(tmp_path, memtable_flush_threshold=10_000)
        engine = StorageEngine.create(config)
        engine.write("d", "s", 1, 1.0)
        del engine
        # A *fresh* engine (not open()) wipes the WAL: fresh-start semantics.
        fresh = StorageEngine.create(_config(tmp_path, memtable_flush_threshold=10_000))
        assert len(fresh.query("d", "s", 0, 10)) == 0

    def test_unrecognised_tsfile_name_rejected(self, tmp_path):
        config = _config(tmp_path)
        StorageEngine.create(config)  # creates the directory
        (tmp_path / "data" / "shard-00" / "bogus.tsfile").write_bytes(b"junk")
        with pytest.raises(StorageError):
            StorageEngine.open(_config(tmp_path))
