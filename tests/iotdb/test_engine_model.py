"""Model-based integration test: the engine vs a last-write-wins dict.

Hypothesis drives random interleavings of writes (including duplicate and
far-past timestamps), flushes, and queries against the full StorageEngine;
a plain dict per column is the reference model.  Whatever the operation
order, every query must return exactly the model's points sorted by time.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.iotdb import IoTDBConfig, StorageEngine

_DEVICES = ("d1", "d2")
_SENSOR = "s"

_write = st.tuples(
    st.just("write"),
    st.sampled_from(_DEVICES),
    st.integers(0, 300),  # timestamp: small range to force duplicates/late points
    st.floats(-100, 100, allow_nan=False),
)
_flush = st.tuples(st.just("flush"), st.none(), st.none(), st.none())
_query = st.tuples(
    st.just("query"),
    st.sampled_from(_DEVICES),
    st.integers(0, 250),
    st.integers(1, 100),  # window width
)

_ops = st.lists(st.one_of(_write, _flush, _query), min_size=1, max_size=120)


@settings(max_examples=40, deadline=None)
@given(ops=_ops, sorter=st.sampled_from(("backward", "tim", "quick")))
def test_engine_matches_reference_model(ops, sorter):
    engine = StorageEngine.create(
        IoTDBConfig(sorter=sorter, memtable_flush_threshold=25)
    )
    model: dict[str, dict[int, float]] = {d: {} for d in _DEVICES}
    for kind, device, a, b in ops:
        if kind == "write":
            engine.write(device, _SENSOR, a, b)
            model[device][a] = b
        elif kind == "flush":
            engine.flush_all()
        else:
            start, width = a, b
            result = engine.query(device, _SENSOR, start, start + width)
            expected = sorted(
                (t, v) for t, v in model[device].items() if start <= t < start + width
            )
            assert result.timestamps == [t for t, _ in expected]
            assert result.values == [v for _, v in expected]
    # Final full-range check for both devices.
    for device in _DEVICES:
        result = engine.query(device, _SENSOR, 0, 301)
        expected = sorted(model[device].items())
        assert result.timestamps == [t for t, _ in expected]
        assert result.values == [v for _, v in expected]
