"""Differential testing: index-driven pruning must be invisible to readers.

Engines differing only in ``index_enabled`` (and shard count) ingest the
identical workload; every query and aggregation must return byte-identical
results — before compaction, after overlap-driven compaction, and after a
crash/reopen recovery.  The index may change *which files a query opens*
(the deterministic test at the bottom pins that it actually does), never
what the query answers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iotdb import IoTDBConfig, StorageEngine

DEVICES = [f"root.sg.d{i}" for i in range(6)]
SENSORS = ["s0", "s1"]

# One op: (device index, sensor index, timestamp lateness, integer value).
_ops = st.lists(
    st.tuples(
        st.integers(0, len(DEVICES) - 1),
        st.integers(0, len(SENSORS) - 1),
        st.integers(0, 30),
        st.integers(-1000, 1000),
    ),
    min_size=1,
    max_size=120,
)


def _configs(tmp_path, threshold):
    """The differential pair per shard count: index off (reference,
    scans every file) vs index on (candidate, prunes)."""
    for shards in (1, 4):
        for index_enabled, name in ((False, "scan"), (True, "indexed")):
            yield IoTDBConfig(
                data_dir=tmp_path / f"{name}-{shards}-{threshold}",
                wal_enabled=True,
                memtable_flush_threshold=threshold,
                shards=shards,
                index_enabled=index_enabled,
                compaction_policy="overlap",
            )


def _ingest(engine, ops):
    next_t = {d: 0 for d in DEVICES}
    horizon = 1
    for device_i, sensor_i, lateness, value in ops:
        device = DEVICES[device_i]
        t = max(0, next_t[device] - lateness)
        next_t[device] += 2
        horizon = max(horizon, t + 1)
        engine.write(device, SENSORS[sensor_i], t, float(value))
    return horizon


def _assert_identical(engines, horizon):
    reference, *candidates = engines
    for candidate in candidates:
        for device in DEVICES:
            for sensor in SENSORS:
                ranges = [(0, horizon), (horizon // 3, 2 * horizon // 3 + 1)]
                for start, end in ranges:
                    a = reference.query(device, sensor, start, end)
                    b = candidate.query(device, sensor, start, end)
                    assert a.timestamps == b.timestamps
                    assert a.values == b.values
                agg_a = reference.aggregate(device, sensor, 0, horizon)
                agg_b = candidate.aggregate(device, sensor, 0, horizon)
                for field in (
                    "count", "sum", "min_value", "max_value", "first", "last"
                ):
                    assert agg_a.get(field) == agg_b.get(field), field


@settings(max_examples=25, deadline=None)
@given(ops=_ops, threshold=st.sampled_from([7, 25, 10_000]))
def test_index_is_reader_invisible(tmp_path_factory, ops, threshold):
    tmp_path = tmp_path_factory.mktemp("index-diff")
    engines = []
    horizon = 1
    for config in _configs(tmp_path, threshold):
        engine = StorageEngine.create(config)
        horizon = _ingest(engine, ops)
        engines.append(engine)
    _assert_identical(engines, horizon)
    # After overlap-driven compaction the surviving file sets differ from
    # the pre-compaction ones; answers must not.
    for engine in engines:
        engine.compact()
    _assert_identical(engines, horizon)
    for engine in engines:
        engine.close()


def test_index_recovery_is_reader_invisible(tmp_path):
    # Same equivalence across a crash/reopen: the rebuilt-or-validated
    # index must answer exactly like the scan-everything reference.
    ops = [
        (i % len(DEVICES), i % len(SENSORS), (i * 7) % 30, i - 50)
        for i in range(300)
    ]
    engines = []
    horizon = 1
    for config in _configs(tmp_path, threshold=20):
        engine = StorageEngine.create(config)
        horizon = _ingest(engine, ops)
        del engine  # crash: no close(), recovery must replay the WAL tails
        engines.append(StorageEngine.open(config))
    _assert_identical(engines, horizon)
    for engine in engines:
        engine.compact()
    _assert_identical(engines, horizon)
    for engine in engines:
        engine.close()


def test_index_actually_prunes_file_opens(tmp_path):
    # The payoff the bench gate enforces, pinned deterministically here:
    # many disjoint sealed sequence files, a narrow query, and the indexed
    # engine opens strictly fewer files while answering identically.
    def build(index_enabled):
        config = IoTDBConfig(
            data_dir=tmp_path / ("on" if index_enabled else "off"),
            memtable_flush_threshold=10,
            index_enabled=index_enabled,
        )
        engine = StorageEngine.create(config)
        for t in range(100):  # 10 sealed files of 10 points each
            engine.write("root.sg.d0", "s0", t, float(t))
        return engine

    on, off = build(True), build(False)
    try:
        a = on.query("root.sg.d0", "s0", 42, 48)
        b = off.query("root.sg.d0", "s0", 42, 48)
        assert a.timestamps == b.timestamps
        assert a.values == b.values
        assert a.stats.files_opened < b.stats.files_opened
        assert a.stats.files_pruned > 0
        assert b.stats.files_pruned == 0
        assert (
            a.stats.files_opened + a.stats.files_pruned == b.stats.files_opened
        )
    finally:
        on.close()
        off.close()
