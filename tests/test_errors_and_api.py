"""Exception hierarchy and top-level public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_storage_family(self):
        for cls in (
            errors.MemTableFlushedError,
            errors.TsFileCorruptionError,
            errors.EncodingError,
            errors.WalCorruptionError,
            errors.QueryError,
        ):
            assert issubclass(cls, errors.StorageError)

    def test_invalid_parameter_is_value_error(self):
        assert issubclass(errors.InvalidParameterError, ValueError)

    def test_length_mismatch_carries_context(self):
        err = errors.LengthMismatchError(3, 2)
        assert err.n_times == 3
        assert err.n_values == 2
        assert "3" in str(err) and "2" in str(err)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_flow(self):
        # The README's three-line pitch must actually work.
        ts = [3, 1, 4, 1, 5]
        stats = repro.BackwardSorter().sort(ts)
        assert repro.is_sorted(ts)
        assert stats.comparisons > 0

    def test_paper_algorithms_all_registered(self):
        available = repro.available_sorters()
        for name in repro.PAPER_ALGORITHMS:
            assert name in available

    def test_subpackages_importable(self):
        import repro.bench
        import repro.core
        import repro.downstream
        import repro.experiments
        import repro.iotdb
        import repro.metrics
        import repro.sorting
        import repro.theory
        import repro.workloads
