"""Property test: every registered sorter passes the runtime sanitizer.

Hypothesis generates delay-only workloads (each point arrives at its
generation time plus a non-negative delay, matching the paper's §II-B
arrival model) and every sorter in the registry must survive the sanitizer's
post-conditions on them: sorted output, exact pair permutation, monotone
stats, and moves consistent with the observed element writes.

Backward-Sort additionally runs at its degenerate block sizes ``L = 1``
(straight Insertion-Sort) and ``L = N`` (plain Quicksort), per Proposition 5.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sanitizer import SanitizingSorter
from repro.core.backward_sort import BackwardSorter
from repro.sorting.registry import available_sorters, get_sorter

#: Non-negative per-point delays; a delay of d shifts the arrival of the
#: point d generation intervals into the future.
delay_lists = st.lists(st.integers(min_value=0, max_value=50), max_size=80)


def delay_only_stream(delays: list[int]) -> tuple[list[int], list[str]]:
    """Arrival-order (timestamps, values) for a delay-only workload."""
    n = len(delays)
    generation = [10 * i for i in range(n)]
    order = sorted(range(n), key=lambda i: (generation[i] + 10 * delays[i], i))
    ts = [generation[i] for i in order]
    vs = [f"point-{i}" for i in order]
    return ts, vs


def assert_sanitized_roundtrip(sorter, delays: list[int]) -> None:
    ts, vs = delay_only_stream(delays)
    expected = sorted(ts)
    SanitizingSorter(sorter).sort(ts, vs)
    assert ts == expected


@pytest.mark.parametrize("name", available_sorters())
@given(delays=delay_lists)
@settings(max_examples=25, deadline=None)
def test_every_registry_sorter_passes_the_sanitizer(name, delays):
    assert_sanitized_roundtrip(get_sorter(name, sanitize=False), delays)


@pytest.mark.parametrize("block_sort", sorted(["quick", "insertion", "tim", "run-adaptive"]))
@given(delays=delay_lists)
@settings(max_examples=15, deadline=None)
def test_backward_block_sort_variants_pass_the_sanitizer(block_sort, delays):
    assert_sanitized_roundtrip(BackwardSorter(block_sort=block_sort), delays)


@given(delays=delay_lists.filter(lambda d: len(d) >= 1))
@settings(max_examples=25, deadline=None)
def test_backward_degenerate_block_sizes_pass_the_sanitizer(delays):
    n = len(delays)
    # L = 1: straight Insertion-Sort; L = N: plain Quicksort (Prop. 5).
    assert_sanitized_roundtrip(BackwardSorter(fixed_block_size=1), list(delays))
    assert_sanitized_roundtrip(BackwardSorter(fixed_block_size=n), list(delays))
