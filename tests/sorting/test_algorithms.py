"""Algorithm-specific behaviour: the properties each baseline is chosen for."""

from __future__ import annotations

import random

import pytest

from repro.core.instrumentation import SortStats
from repro.errors import InvalidParameterError
from repro.sorting import (
    CKSorter,
    InsertionSorter,
    PatienceSorter,
    QuickSorter,
    TimSorter,
    YSorter,
    compute_minrun,
    get_sorter,
    register_sorter,
)
from tests.conftest import make_delayed_stream


class TestInsertion:
    def test_sorted_input_linear_comparisons(self):
        ts = list(range(1000))
        stats = InsertionSorter().sort(ts, list(ts))
        assert stats.comparisons == 999
        assert stats.moves == 0

    def test_moves_equal_inversions(self):
        from repro.metrics import count_inversions

        rng = random.Random(3)
        ts = rng.sample(range(200), 200)
        inv = count_inversions(ts)
        stats = InsertionSorter().sort(ts, list(range(200)))
        # Straight insertion performs Inv shifts plus one placement per
        # element that actually moved.
        assert stats.moves >= inv
        assert stats.moves <= inv + 200


class TestQuicksort:
    def test_middle_pivot_handles_sorted_input(self):
        # First-element-pivot quicksort would go quadratic here; middle
        # pivot must stay shallow.  We just assert comparison count is
        # O(n log n)-ish, far below the ~n²/2 of the pathological case.
        n = 4096
        ts = list(range(n))
        stats = QuickSorter().sort(ts, list(ts))
        assert stats.comparisons < 40 * n

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            QuickSorter(insertion_cutoff=0)


class TestTimsort:
    def test_minrun_range(self):
        for n in (1, 31, 63, 64, 65, 640, 2**20, 2**20 + 1):
            mr = compute_minrun(n)
            if n < 64:
                assert mr == n
            else:
                assert 32 <= mr <= 64

    def test_sorted_input_linear(self):
        n = 4096
        ts = list(range(n))
        stats = TimSorter().sort(ts, list(ts))
        assert stats.comparisons <= 2 * n
        assert stats.runs == 1

    def test_reverse_input_single_reversed_run(self):
        n = 4096
        ts = list(range(n, 0, -1))
        stats = TimSorter().sort(ts, list(range(n)))
        assert ts == sorted(range(1, n + 1))
        assert stats.runs == 1  # one strictly descending run, reversed

    def test_galloping_exploits_block_structure(self):
        # Two long pre-sorted halves: galloping should keep comparisons far
        # below one-per-element-pair merging.
        n = 8192
        ts = list(range(0, n, 2)) + list(range(1, n, 2))
        stats = TimSorter().sort(ts, list(range(n)))
        assert ts == list(range(n))
        assert stats.comparisons < 3 * n


class TestPatience:
    def test_sorted_input_single_pile(self):
        ts = list(range(500))
        stats = PatienceSorter().sort(ts, list(ts))
        assert stats.runs == 1

    def test_pile_count_tracks_disorder(self):
        mild = make_delayed_stream(2000, lam=2.0, seed=1)
        wild_ts = random.Random(1).sample(range(2000), 2000)
        mild_ts, mild_vs = mild.sort_input()
        s1 = PatienceSorter().sort(mild_ts, mild_vs)
        s2 = PatienceSorter().sort(wild_ts, list(range(2000)))
        assert s1.runs < s2.runs


class TestCKSort:
    def test_sorted_input_no_overflow(self):
        ts = list(range(300))
        stats = CKSorter().sort(ts, list(ts))
        # One merge of kept + empty overflow; no quicksort work.
        assert stats.merges == 1

    def test_uses_linear_extra_space(self):
        stream = make_delayed_stream(1000, lam=0.2, seed=2)
        ts, vs = stream.sort_input()
        stats = CKSorter().sort(ts, vs)
        assert stats.extra_space >= len(ts)


class TestYSort:
    def test_sorted_input_detected_in_one_scan(self):
        n = 2000
        ts = list(range(n))
        stats = YSorter().sort(ts, list(ts))
        # One sortedness scan: ~3 comparisons per element, no moves.
        assert stats.moves == 0
        assert stats.comparisons <= 4 * n

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            YSorter(insertion_cutoff=0)


class TestRegistry:
    def test_unknown_sorter_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_sorter("definitely-not-a-sorter")

    def test_kwargs_forwarded(self):
        sorter = get_sorter("backward", theta=0.1, l0=8)
        assert sorter.theta == 0.1
        assert sorter.l0 == 8

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_sorter(QuickSorter, "quick")
