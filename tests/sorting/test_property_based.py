"""Hypothesis property tests for every sorter and the merge primitives."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.instrumentation import SortStats
from repro.sorting import available_sorters, get_sorter, merge_into
from repro.sorting.mergesort import straight_block_merge

timestamps = st.lists(st.integers(min_value=-(2**40), max_value=2**40), max_size=300)
float_timestamps = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=200
)


@settings(max_examples=30, deadline=None)
@given(ts=timestamps, name=st.sampled_from(available_sorters()))
def test_sort_matches_builtin(ts, name):
    vs = list(range(len(ts)))
    expected = sorted(ts)
    get_sorter(name).sort(ts, vs)
    assert ts == expected
    assert sorted(vs) == list(range(len(vs)))


@settings(max_examples=20, deadline=None)
@given(ts=float_timestamps, name=st.sampled_from(available_sorters()))
def test_sort_handles_floats(ts, name):
    expected = sorted(ts)
    get_sorter(name).sort(ts)
    assert ts == expected


@settings(max_examples=30, deadline=None)
@given(
    ts=st.lists(st.integers(0, 50), max_size=200),
    name=st.sampled_from([n for n in available_sorters() if get_sorter(n).stable]),
)
def test_stable_sorters_property(ts, name):
    vs = list(range(len(ts)))
    expected = sorted(zip(ts, vs), key=lambda p: (p[0], p[1]))
    get_sorter(name).sort(ts, vs)
    assert list(zip(ts, vs)) == expected


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(st.integers(0, 100), max_size=50),
    right=st.lists(st.integers(0, 100), max_size=50),
)
def test_merge_into_merges_sorted_runs(left, right):
    left.sort()
    right.sort()
    src_t = left + right
    src_v = list(range(len(src_t)))
    dst_t = [None] * len(src_t)
    dst_v = [None] * len(src_t)
    merge_into(src_t, src_v, 0, len(left), len(src_t), dst_t, dst_v, 0, SortStats())
    assert dst_t == sorted(src_t)
    assert sorted(dst_v) == list(range(len(src_t)))


@settings(max_examples=50, deadline=None)
@given(
    blocks=st.lists(st.lists(st.integers(0, 100), min_size=1, max_size=30), min_size=1, max_size=6)
)
def test_straight_block_merge_sorts_presorted_blocks(blocks):
    for b in blocks:
        b.sort()
    ts = [t for b in blocks for t in b]
    vs = list(range(len(ts)))
    bounds = [0]
    for b in blocks:
        bounds.append(bounds[-1] + len(b))
    straight_block_merge(ts, vs, bounds, SortStats())
    assert ts == sorted(ts)
    assert sorted(vs) == list(range(len(vs)))
