"""Correctness of every registered sorter across input shapes.

Each sorter must produce a non-decreasing timestamp array that is a
permutation of its input, with values tracking their timestamps, for sorted,
reverse-sorted, random, all-equal, sawtooth, and delay-only inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.sorting import available_sorters, get_sorter
from tests.conftest import assert_sorted_permutation, make_delayed_stream

ALL_SORTERS = available_sorters()
SIZES = (0, 1, 2, 3, 4, 7, 16, 17, 64, 100, 257, 1000)


def _shapes(n: int, rng: random.Random):
    yield "sorted", list(range(n))
    yield "reversed", list(range(n - 1, -1, -1))
    yield "random", rng.sample(range(n * 2), n) if n else []
    yield "all_equal", [42] * n
    yield "sawtooth", [i % 10 for i in range(n)]
    yield "two_runs", list(range(n // 2)) + list(range(n - n // 2))
    yield "negatives", [((-1) ** i) * i for i in range(n)]


@pytest.mark.parametrize("name", ALL_SORTERS)
@pytest.mark.parametrize("n", SIZES)
def test_sorts_all_shapes(name, n):
    rng = random.Random(1000 + n)
    for shape, ts in _shapes(n, rng):
        vs = [f"v{i}" for i in range(len(ts))]
        original = list(zip(ts, vs))
        sorter = get_sorter(name)
        sorter.sort(ts, vs)
        assert_sorted_permutation(ts, vs, original)


@pytest.mark.parametrize("name", ALL_SORTERS)
def test_sorts_delay_only_stream(name):
    stream = make_delayed_stream(2_000, lam=0.4, seed=5)
    ts, vs = stream.sort_input()
    original = list(zip(ts, vs))
    get_sorter(name).sort(ts, vs)
    assert_sorted_permutation(ts, vs, original)


@pytest.mark.parametrize("name", ALL_SORTERS)
def test_values_optional(name):
    ts = [5, 3, 8, 1, 9, 2]
    get_sorter(name).sort(ts)
    assert ts == [1, 2, 3, 5, 8, 9]


@pytest.mark.parametrize("name", ALL_SORTERS)
def test_length_mismatch_rejected(name):
    from repro.errors import LengthMismatchError

    with pytest.raises(LengthMismatchError):
        get_sorter(name).sort([1, 2, 3], ["a", "b"])


@pytest.mark.parametrize("name", ALL_SORTERS)
def test_duplicate_heavy_input(name):
    rng = random.Random(99)
    ts = [rng.randrange(4) for _ in range(500)]
    vs = list(range(500))
    original = list(zip(ts, vs))
    get_sorter(name).sort(ts, vs)
    assert all(ts[i] <= ts[i + 1] for i in range(len(ts) - 1))
    assert sorted(zip(ts, vs)) == sorted(original)


@pytest.mark.parametrize("name", ALL_SORTERS)
def test_timed_sort_reports_duration(name):
    stream = make_delayed_stream(1_000, seed=3)
    ts, vs = stream.sort_input()
    result = get_sorter(name).timed_sort(ts, vs)
    assert result.seconds >= 0.0
    assert all(ts[i] <= ts[i + 1] for i in range(len(ts) - 1))


@pytest.mark.parametrize("name", ALL_SORTERS)
def test_stats_counters_populated(name):
    stream = make_delayed_stream(1_000, seed=4)
    ts, vs = stream.sort_input()
    stats = get_sorter(name).sort(ts, vs)
    # Any real sort of a 1000-point disordered array must compare something.
    assert stats.comparisons > 0
