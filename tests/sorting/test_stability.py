"""Stability guarantees: sorters that claim stability must keep tie order."""

from __future__ import annotations

import random

import pytest

from repro.core.backward_sort import BackwardSorter
from repro.sorting import available_sorters, get_sorter

STABLE = [n for n in available_sorters() if get_sorter(n).stable]
UNSTABLE = [n for n in available_sorters() if not get_sorter(n).stable]


def _tie_heavy_input(n: int, seed: int):
    rng = random.Random(seed)
    ts = [rng.randrange(8) for _ in range(n)]
    vs = list(range(n))  # arrival index as payload
    return ts, vs


@pytest.mark.parametrize("name", STABLE)
@pytest.mark.parametrize("n", (10, 100, 1000))
def test_stable_sorters_preserve_tie_order(name, n):
    ts, vs = _tie_heavy_input(n, seed=n)
    expected = sorted(zip(ts, vs), key=lambda p: (p[0], p[1]))
    get_sorter(name).sort(ts, vs)
    assert list(zip(ts, vs)) == expected


def test_backward_sort_stable_with_stable_block_sort():
    for block_sort in ("insertion", "tim"):
        sorter = BackwardSorter(block_sort=block_sort)
        assert sorter.stable
        ts, vs = _tie_heavy_input(800, seed=17)
        expected = sorted(zip(ts, vs), key=lambda p: (p[0], p[1]))
        sorter.sort(ts, vs)
        assert list(zip(ts, vs)) == expected


def test_backward_sort_default_declared_unstable():
    assert not BackwardSorter().stable


def test_stability_flags_declared():
    # The registry must expose at least Timsort and merge sort as stable —
    # IoTDB's incumbent is Timsort precisely for its stability (§VII-B).
    assert "tim" in STABLE
    assert "merge" in STABLE
    assert "insertion" in STABLE
    assert "quick" in UNSTABLE
