"""Experiment drivers: every figure regenerates with the paper's shape.

These are integration tests at "tiny" scale: they assert the qualitative
findings the paper reports for each figure, not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    delay_pdf,
    downstream_forecast,
    merge_moves,
    parameter_tuning,
    sort_time_array_size,
    sort_time_realworld,
    sort_time_sigma,
    system_flush,
    system_latency,
    system_throughput,
)


def _mean_time(rows, algorithm, **filters):
    picked = [
        r
        for r in rows
        if r.algorithm == algorithm
        and all(getattr(r, k) == v for k, v in filters.items())
    ]
    assert picked, f"no rows for {algorithm} with {filters}"
    return sum(r.mean_seconds for r in picked) / len(picked)


class TestFig2MergeMoves:
    def test_rows_and_shape(self):
        rows = merge_moves.run(block_lengths=(4, 64))
        assert len(rows) == 2
        for r in rows:
            assert r.backward_moves < r.straight_moves
            assert r.model_straight == 4 * r.m + 4
            assert r.model_backward == 3 * r.m + 7


class TestFig5DelayPdf:
    def test_pdf_agreement_and_symmetry(self):
        rows = delay_pdf.run_pdf_curves(lambdas=(2.0,), ts=(-1.0, 0.0, 1.0))
        by_t = {r.t: r for r in rows}
        assert by_t[0.0].closed_form == pytest.approx(1.0)
        for r in rows:
            assert r.numeric == pytest.approx(r.closed_form, rel=1e-3)
        assert by_t[1.0].numeric == pytest.approx(by_t[-1.0].numeric, rel=1e-3)

    def test_example6_alpha(self):
        rows = delay_pdf.run_alpha_check(n=100_000, seed=1)
        for r in rows:
            assert r.empirical == pytest.approx(r.theoretical, rel=0.25, abs=5e-5)


class TestFig8Tuning:
    def test_iir_profiles_separate_datasets(self):
        rows = parameter_tuning.run_iir_profiles(scale="tiny", seed=1)
        samsung_big_l = [
            r.alpha
            for r in rows
            if r.dataset.startswith("samsung") and r.interval >= 64
        ]
        assert all(alpha == 0.0 for alpha in samsung_big_l)
        citibike_small_l = [
            r.alpha
            for r in rows
            if r.dataset == "citibike-201808" and r.interval <= 4
        ]
        assert all(alpha > 0.05 for alpha in citibike_small_l)

    def test_block_size_sweep_has_interior_optimum_for_mild_disorder(self):
        rows = parameter_tuning.run_block_size_sweep(
            scale="tiny", seed=1, repeats=2, datasets=("samsung-s10",)
        )
        best = parameter_tuning.best_block_size(rows, "samsung-s10")
        sizes = sorted({r.block_size for r in rows})
        assert best not in (sizes[0], sizes[-1])  # strictly between extremes


class TestSortTimeFigures:
    def test_fig9_time_grows_with_sigma_and_backward_wins(self):
        rows = sort_time_sigma.run(
            family="absnormal",
            scale="tiny",
            mus=(1.0,),
            sigmas=(0.5, 4.0),
            algorithms=("backward", "quick"),
            repeats=2,
            seed=3,
        )
        calm = _mean_time(rows, "quick", dataset="absnormal(1,0.5)")
        rough = _mean_time(rows, "quick", dataset="absnormal(1,4)")
        assert rough > calm
        assert _mean_time(rows, "backward") < _mean_time(rows, "quick")

    def test_fig10_lognormal_runs(self):
        rows = sort_time_sigma.run(
            family="lognormal",
            scale="tiny",
            mus=(1.0,),
            sigmas=(1.0,),
            algorithms=("backward", "tim"),
            repeats=2,
            seed=3,
        )
        assert len(rows) == 2
        assert all(r.mean_seconds > 0 for r in rows)

    def test_fig11_backward_beats_quick_on_mild_disorder(self):
        rows = sort_time_realworld.run(
            scale="small",
            datasets=("samsung-d5", "samsung-s10"),
            algorithms=("backward", "quick"),
            repeats=2,
            seed=3,
        )
        for dataset in ("samsung-d5", "samsung-s10"):
            assert _mean_time(rows, "backward", dataset=dataset) < _mean_time(
                rows, "quick", dataset=dataset
            )

    def test_fig12_time_grows_with_array_size(self):
        rows = sort_time_array_size.run(
            scale="small", algorithms=("backward",), repeats=2, seed=3
        )
        for dataset in {r.dataset for r in rows}:
            sizes = sorted(r.n for r in rows if r.dataset == dataset)
            small = _mean_time(rows, "backward", dataset=dataset, n=sizes[0])
            large = _mean_time(rows, "backward", dataset=dataset, n=sizes[-1])
            assert large > small


class TestSystemFigures:
    def test_fig13_throughput_rows(self):
        rows = system_throughput.run(family="realworld", scale="tiny", seed=4)
        assert {r.sorter for r in rows} >= {"backward", "quick", "tim"}
        queried = [r for r in rows if r.queries_executed > 0]
        assert queried, "no cell of the sweep executed a query"
        assert all(r.query_throughput > 0 for r in queried)

    def test_fig16_flush_time_includes_wp_one(self):
        rows = system_flush.run(family="absnormal", scale="tiny", seed=4)
        assert 1.0 in {r.write_percentage for r in rows}
        assert all(r.mean_flush_seconds > 0 for r in rows)
        assert all(r.flush_sort_seconds <= r.mean_flush_seconds * 1.01 for r in rows)

    def test_fig19_latency_rows(self):
        rows = system_latency.run(family="lognormal", scale="tiny", seed=4)
        assert all(r.total_seconds > 0 for r in rows)

    def test_unknown_family_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            system_latency.run(family="nope", scale="tiny")


class TestFig22Downstream:
    def test_loss_grows_with_sigma(self):
        rows = downstream_forecast.run(scale="tiny", seed=5)
        assert rows[0].sigma == 0.0
        assert rows[-1].test_mse > rows[0].test_mse

    def test_unknown_scale_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            downstream_forecast.run(scale="galactic")


class TestRunnerCLI:
    def test_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "fig22" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig99"]) == 2

    def test_run_one(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "backward" in out

    def test_output_dir(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["fig2", "--scale", "tiny", "--output-dir", str(tmp_path)]) == 0
        saved = tmp_path / "fig2.txt"
        assert saved.exists()
        assert "backward" in saved.read_text()


class TestOutageExperiment:
    def test_rows_and_burst_scaling(self):
        from repro.experiments import outage_robustness

        rows = outage_robustness.run(
            scale="tiny", algorithms=("backward", "quick"), repeats=2, seed=7
        )
        assert len(rows) == 6  # 3 outage lengths x 2 algorithms
        # Heavier outages cost more for the quicksort baseline.
        quick = [r for r in rows if r.algorithm == "quick"]
        assert quick[-1].comparisons > quick[0].comparisons


class TestProp6Experiment:
    def test_regimes_and_exponents(self):
        from repro.experiments import complexity_check

        rows = complexity_check.run(scale="tiny", seed=11)
        assert len(rows) == 16  # 2 regimes x 2 algorithms x 4 rungs
        # Mild disorder: Backward's op count grows ~linearly and stays far
        # below Quicksort's.
        mild_b = [r for r in rows if r.regime.startswith("mild") and r.algorithm == "backward"]
        mild_q = [r for r in rows if r.regime.startswith("mild") and r.algorithm == "quick"]
        assert mild_b[-1].operations < mild_q[-1].operations / 2
        exps = [r.local_exponent for r in mild_b if r.local_exponent is not None]
        assert all(0.8 <= e <= 1.25 for e in exps)
        # Heavy disorder: degenerate regime - same order of magnitude as quick.
        heavy_b = [r for r in rows if r.regime.startswith("heavy") and r.algorithm == "backward"][-1]
        heavy_q = [r for r in rows if r.regime.startswith("heavy") and r.algorithm == "quick"][-1]
        assert heavy_b.operations < heavy_q.operations * 1.5

    def test_unknown_scale(self):
        from repro.errors import InvalidParameterError
        from repro.experiments import complexity_check

        with pytest.raises(InvalidParameterError):
            complexity_check.run(scale="galactic")
