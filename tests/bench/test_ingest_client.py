"""The concurrent ingest client: determinism, shard accounting, throughput."""

from __future__ import annotations

import pytest

from repro.bench import SystemWorkloadConfig, run_ingest_benchmark
from repro.errors import BenchmarkError
from repro.iotdb import IoTDBConfig


def _workload(**kw):
    defaults = dict(
        total_points=4_000,
        batch_size=250,
        write_percentage=1.0,
        device="root.ingest.d",
        n_devices=8,
        dataset="lognormal",
        dataset_params={"mu": 1.0, "sigma": 1.0},
        seed=3,
    )
    defaults.update(kw)
    return SystemWorkloadConfig(**defaults)


def _engine_config(shards):
    return IoTDBConfig(
        shards=shards, flush_workers=2 if shards > 1 else 0,
        memtable_flush_threshold=500,
    )


class TestIngestBenchmark:
    def test_metrics_are_coherent(self):
        result = run_ingest_benchmark(
            _workload(), engine_config=_engine_config(shards=4), writers=4
        )
        assert result.total_points == 4_000
        assert result.batches_written == 16
        assert result.elapsed_seconds > 0
        assert result.points_per_second > 0
        assert result.flush_count > 0
        assert sum(
            entry["points_written"] for entry in result.per_shard.values()
        ) == 4_000

    def test_per_shard_points_are_schedule_independent(self):
        # The shard point totals depend only on device routing, so two runs
        # with different writer counts (different thread interleavings)
        # agree.  Flush *counts* may differ: watermarks advance at flush
        # time, and flush timing follows arrival order.
        runs = [
            run_ingest_benchmark(
                _workload(), engine_config=_engine_config(shards=4), writers=w
            )
            for w in (1, 4)
        ]
        for shard_id, entry in runs[0].per_shard.items():
            assert (
                entry["points_written"]
                == runs[1].per_shard[shard_id]["points_written"]
            )

    def test_single_writer_single_shard_still_works(self):
        result = run_ingest_benchmark(
            _workload(), engine_config=_engine_config(shards=1), writers=1
        )
        assert result.shards == 1
        assert list(result.per_shard) == [0]
        assert result.per_shard[0]["points_written"] == 4_000

    def test_writers_must_be_positive(self):
        with pytest.raises(BenchmarkError):
            run_ingest_benchmark(_workload(), writers=0)

    def test_row_is_flat_and_complete(self):
        result = run_ingest_benchmark(
            _workload(), engine_config=_engine_config(shards=2), writers=2
        )
        row = result.row()
        assert row["shards"] == 2
        assert row["writers"] == 2
        assert row["total_points"] == 4_000
        assert row["points_per_second"] == result.points_per_second
