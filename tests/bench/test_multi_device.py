"""Multi-device workloads: round-robin batching and per-device streams."""

from __future__ import annotations

import pytest

from repro.bench import (
    QueryOp,
    SystemWorkloadConfig,
    WriteOp,
    build_operations,
    build_stream,
    run_system_benchmark,
)
from repro.errors import BenchmarkError
from repro.iotdb import IoTDBConfig


def _config(**kw):
    defaults = dict(total_points=6_000, batch_size=500, seed=1)
    defaults.update(kw)
    return SystemWorkloadConfig(**defaults)


class TestMultiDeviceWorkload:
    def test_device_names(self):
        assert _config(n_devices=1).devices() == ["root.bench.d1"]
        assert _config(n_devices=3).devices() == [
            "root.bench.d1-0",
            "root.bench.d1-1",
            "root.bench.d1-2",
        ]

    def test_round_robin_batches(self):
        ops = build_operations(_config(n_devices=3, write_percentage=1.0))
        writes = [op for op in ops if isinstance(op, WriteOp)]
        assert [w.device[-1] for w in writes[:6]] == ["0", "1", "2", "0", "1", "2"]
        # 6000 points / 3 devices / 500 batch = 4 batches per device.
        assert len(writes) == 12

    def test_each_device_has_independent_stream(self):
        config = _config(n_devices=2)
        a = build_stream(config, 0)
        b = build_stream(config, 1)
        assert a.timestamps != b.timestamps  # different seeds

    def test_queries_round_robin_devices(self):
        ops = build_operations(_config(n_devices=2, write_percentage=0.5))
        queries = [op for op in ops if isinstance(op, QueryOp)]
        assert len(queries) == 12
        assert {q.device[-1] for q in queries} == {"0", "1"}

    def test_rejects_too_many_devices(self):
        with pytest.raises(BenchmarkError):
            _config(total_points=600, batch_size=500, n_devices=2)
        with pytest.raises(BenchmarkError):
            _config(n_devices=0)

    def test_end_to_end_multi_device_run(self):
        result = run_system_benchmark(
            _config(n_devices=3, write_percentage=0.75),
            sorter="backward",
            engine_config=IoTDBConfig(memtable_flush_threshold=2_000),
        )
        assert result.queries_executed == 4
        assert result.points_returned > 0
        assert result.flush_count >= 2
