"""Sorter-ops baseline: determinism, write/check roundtrip, regression gate."""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.baseline import (
    BACKENDS,
    DELAY_MODELS,
    INGEST_SHARD_COUNTS,
    check_baseline,
    check_invariants,
    collect_baseline,
    main,
)
from repro.sorting import PAPER_ALGORITHMS

_N = 400  # small streams keep the test fast; determinism is size-independent


def test_collect_is_deterministic():
    first = collect_baseline(n=_N, seed=7)
    second = collect_baseline(n=_N, seed=7)
    assert first == second
    sorter_cells = {
        f"{algorithm}/{model}"
        for algorithm in PAPER_ALGORITHMS
        for model, _ in DELAY_MODELS
    }
    ingest_cells = {f"ingest/shards={shards}" for shards in INGEST_SHARD_COUNTS}
    index_cells = {"query/index=on", "query/index=off"}
    wal_cells = {"wal_bytes/frame=single", "wal_bytes/frame=batch"}
    path_cells = {"ingest/path=point", "ingest/path=batch"}
    flush_cells = {"flush/lcache=on", "flush/lcache=off"}
    backend_cells = {f"ingest/backend={backend}" for backend in BACKENDS}
    assert set(first["cells"]) == (
        sorter_cells
        | ingest_cells
        | index_cells
        | wal_cells
        | path_cells
        | flush_cells
        | backend_cells
    )
    for name in sorter_cells:
        cell = first["cells"][name]
        assert cell["comparisons"] > 0 and cell["moves"] > 0
    for name in ingest_cells:
        cell = first["cells"][name]
        assert 0 < cell["critical_path_ops"] <= cell["total_ops"]
    for name in index_cells:
        assert first["cells"][name]["files_opened"] > 0
    for name in wal_cells | path_cells:
        cell = first["cells"][name]
        assert cell["bytes_appended"] > 0 and cell["flushes"] > 0
    for name in flush_cells:
        assert first["cells"][name]["sort_ops"] > 0
    for name in backend_cells:
        cell = first["cells"][name]
        assert cell["wal_bytes"] > 0 and cell["sealed_bytes"] > 0


def test_sharded_ingest_critical_path_never_exceeds_unsharded():
    # The throughput gate: under the op-count proxy, the four-shard
    # engine's busiest shard does at most the single shard's whole work.
    cells = collect_baseline(n=_N, seed=7)["cells"]
    assert (
        cells["ingest/shards=4"]["critical_path_ops"]
        <= cells["ingest/shards=1"]["critical_path_ops"]
    )


def test_write_then_check_roundtrip(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert main(["--write", "--path", str(path), "--n", str(_N)]) == 0
    assert main(["--check", str(path), "--n", str(_N)]) == 0
    assert "within" in capsys.readouterr().out


def test_check_fails_on_an_ops_regression(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert main(["--write", "--path", str(path), "--n", str(_N)]) == 0
    baseline = json.loads(path.read_text(encoding="utf-8"))
    # Shrink every pinned cell: the (unchanged) current counts now look
    # like a >2x regression against the doctored baseline.
    for cell in baseline["cells"].values():
        for key in cell:
            cell[key] //= 3
    path.write_text(json.dumps(baseline), encoding="utf-8")
    capsys.readouterr()
    assert main(["--check", str(path), "--n", str(_N)]) == 1
    err = capsys.readouterr().err
    assert "budget" in err


def test_check_rejects_mismatched_parameters(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert main(["--write", "--path", str(path), "--n", str(_N)]) == 0
    assert main(["--check", str(path), "--n", str(_N * 2)]) == 2
    assert "baseline was collected with" in capsys.readouterr().err


def test_check_rejects_missing_baseline(tmp_path, capsys):
    assert main(["--check", str(tmp_path / "nope.json"), "--n", str(_N)]) == 2
    assert "no such baseline" in capsys.readouterr().err


def test_check_reports_cell_set_drift():
    baseline = {"cells": {"backward/exponential": {"comparisons": 1, "moves": 1}}}
    current = {"cells": {"quick/exponential": {"comparisons": 1, "moves": 1}}}
    problems = check_baseline(baseline, current, max_ratio=2.0)
    assert len(problems) == 1
    assert "cell sets differ" in problems[0]


def test_index_on_opens_strictly_fewer_files():
    # The CI-enforced payoff: on the high-disorder LogNormal workload the
    # interval index must prune, not merely not regress.
    cells = collect_baseline(n=_N, seed=7)["cells"]
    assert (
        cells["query/index=on"]["files_opened"]
        < cells["query/index=off"]["files_opened"]
    )


def test_invariant_catches_a_non_pruning_index():
    current = {
        "cells": {
            "query/index=on": {"files_opened": 10},
            "query/index=off": {"files_opened": 10},
        }
    }
    problems = check_invariants(current)
    assert len(problems) == 1
    assert "strictly fewer" in problems[0]
    # And the full checker surfaces it even when every ratio is in budget.
    assert check_baseline(current, current, max_ratio=2.0) == problems


def test_committed_baseline_matches_the_current_tree():
    committed = Path(__file__).resolve().parents[2] / "BENCH_sorter.json"
    baseline = json.loads(committed.read_text(encoding="utf-8"))
    current = collect_baseline(n=baseline["n"], seed=baseline["seed"])
    assert check_baseline(baseline, current, max_ratio=2.0) == []
