"""Sorter-ops baseline: determinism, write/check roundtrip, regression gate."""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.baseline import (
    DELAY_MODELS,
    check_baseline,
    collect_baseline,
    main,
)
from repro.sorting import PAPER_ALGORITHMS

_N = 400  # small streams keep the test fast; determinism is size-independent


def test_collect_is_deterministic():
    first = collect_baseline(n=_N, seed=7)
    second = collect_baseline(n=_N, seed=7)
    assert first == second
    assert set(first["cells"]) == {
        f"{algorithm}/{model}"
        for algorithm in PAPER_ALGORITHMS
        for model, _ in DELAY_MODELS
    }
    assert all(
        cell["comparisons"] > 0 and cell["moves"] > 0
        for cell in first["cells"].values()
    )


def test_write_then_check_roundtrip(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert main(["--write", "--path", str(path), "--n", str(_N)]) == 0
    assert main(["--check", str(path), "--n", str(_N)]) == 0
    assert "within" in capsys.readouterr().out


def test_check_fails_on_an_ops_regression(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert main(["--write", "--path", str(path), "--n", str(_N)]) == 0
    baseline = json.loads(path.read_text(encoding="utf-8"))
    # Shrink every pinned cell: the (unchanged) current counts now look
    # like a >2x regression against the doctored baseline.
    for cell in baseline["cells"].values():
        cell["comparisons"] //= 3
        cell["moves"] //= 3
    path.write_text(json.dumps(baseline), encoding="utf-8")
    capsys.readouterr()
    assert main(["--check", str(path), "--n", str(_N)]) == 1
    err = capsys.readouterr().err
    assert "budget" in err


def test_check_rejects_mismatched_parameters(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    assert main(["--write", "--path", str(path), "--n", str(_N)]) == 0
    assert main(["--check", str(path), "--n", str(_N * 2)]) == 2
    assert "baseline was collected with" in capsys.readouterr().err


def test_check_rejects_missing_baseline(tmp_path, capsys):
    assert main(["--check", str(tmp_path / "nope.json"), "--n", str(_N)]) == 2
    assert "no such baseline" in capsys.readouterr().err


def test_check_reports_cell_set_drift():
    baseline = {"cells": {"backward/exponential": {"comparisons": 1, "moves": 1}}}
    current = {"cells": {"quick/exponential": {"comparisons": 1, "moves": 1}}}
    problems = check_baseline(baseline, current, max_ratio=2.0)
    assert len(problems) == 1
    assert "cell sets differ" in problems[0]


def test_committed_baseline_matches_the_current_tree():
    committed = Path(__file__).resolve().parents[2] / "BENCH_sorter.json"
    baseline = json.loads(committed.read_text(encoding="utf-8"))
    current = collect_baseline(n=baseline["n"], seed=baseline["seed"])
    assert check_baseline(baseline, current, max_ratio=2.0) == []
