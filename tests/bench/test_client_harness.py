"""System benchmark client and sweep harness: metrics must be coherent."""

from __future__ import annotations

import pytest

from repro.bench import (
    SweepConfig,
    SystemWorkloadConfig,
    format_table,
    result_rows,
    run_sweep,
    run_system_benchmark,
    series_by_key,
    to_csv,
)
from repro.iotdb import IoTDBConfig


def _small_config(**kw):
    defaults = dict(
        total_points=3_000,
        batch_size=500,
        write_percentage=0.75,
        dataset="lognormal",
        dataset_params={"mu": 1.0, "sigma": 1.0},
        seed=2,
    )
    defaults.update(kw)
    return SystemWorkloadConfig(**defaults)


class TestRunSystemBenchmark:
    def test_metrics_populated(self):
        result = run_system_benchmark(
            _small_config(),
            sorter="backward",
            engine_config=IoTDBConfig(memtable_flush_threshold=1_000),
        )
        assert result.total_seconds > 0
        assert result.write_seconds > 0
        assert result.queries_executed == 2  # 6 batches, wp .75 -> 2 queries
        assert result.points_returned > 0
        assert result.query_throughput > 0
        assert result.flush_count >= 3
        assert result.mean_flush_seconds > 0
        assert 0.0 <= result.flush_sort_fraction <= 1.0

    def test_write_only_run_has_no_queries(self):
        result = run_system_benchmark(
            _small_config(write_percentage=1.0),
            sorter="tim",
            engine_config=IoTDBConfig(memtable_flush_threshold=1_000),
        )
        assert result.queries_executed == 0
        assert result.query_throughput == 0.0

    def test_row_export(self):
        result = run_system_benchmark(
            _small_config(),
            sorter="quick",
            engine_config=IoTDBConfig(memtable_flush_threshold=1_000),
        )
        row = result.row()
        assert row["sorter"] == "quick"
        assert row["write_pct"] == 0.75
        assert row["flushes"] == result.flush_count


class TestSweep:
    def test_grid_dimensions(self):
        sweep = SweepConfig(
            base=_small_config(),
            sorters=("backward", "tim"),
            write_percentages=(0.5, 0.9),
            memtable_flush_threshold=1_000,
        )
        results = run_sweep(sweep)
        assert len(results) == 4
        combos = {(r.sorter, r.write_percentage) for r in results}
        assert combos == {("backward", 0.5), ("backward", 0.9), ("tim", 0.5), ("tim", 0.9)}

    def test_include_write_only_adds_wp_1(self):
        sweep = SweepConfig(
            base=_small_config(),
            sorters=("backward",),
            write_percentages=(0.9,),
            include_write_only=True,
            memtable_flush_threshold=1_000,
        )
        results = run_sweep(sweep)
        assert {r.write_percentage for r in results} == {0.9, 1.0}

    def test_result_rows(self):
        sweep = SweepConfig(
            base=_small_config(),
            sorters=("backward",),
            write_percentages=(0.9,),
            memtable_flush_threshold=1_000,
        )
        rows = result_rows(run_sweep(sweep))
        assert rows[0]["sorter"] == "backward"


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ("name", "value"), [("a", 1.5), ("bbbb", 22.125)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_small_floats_scientific(self):
        table = format_table(("x",), [(1.2e-7,)])
        assert "e-07" in table

    def test_to_csv(self):
        csv_text = to_csv(("a", "b"), [(1, 2), (3, 4)])
        assert csv_text.splitlines() == ["a,b", "1,2", "3,4"]

    def test_series_by_key(self):
        rows = [
            {"alg": "x", "n": 1, "t": 0.1},
            {"alg": "x", "n": 2, "t": 0.2},
            {"alg": "y", "n": 1, "t": 0.3},
        ]
        series = series_by_key(rows, "alg", "n", "t")
        assert series == {"x": [(1, 0.1), (2, 0.2)], "y": [(1, 0.3)]}
