"""Timing utilities: aggregation, setup exclusion, validation."""

from __future__ import annotations

import time

import pytest

from repro.bench import Timer, TimingResult, measure
from repro.errors import BenchmarkError


class TestTimingResult:
    def test_statistics(self):
        r = TimingResult(runs=[1.0, 2.0, 3.0])
        assert r.mean == pytest.approx(2.0)
        assert r.minimum == 1.0
        assert r.maximum == 3.0
        assert r.std == pytest.approx(1.0)

    def test_single_run_has_zero_std(self):
        assert TimingResult(runs=[0.5]).std == 0.0


class TestMeasure:
    def test_counts_runs_and_warmup(self):
        calls = []
        result = measure(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(result.runs) == 3

    def test_setup_excluded_from_timing(self):
        def slow_setup():
            time.sleep(0.02)
            return 1

        result = measure(lambda arg: None, repeats=2, setup=slow_setup)
        assert result.mean < 0.01  # setup's 20ms must not be counted

    def test_setup_value_passed_to_fn(self):
        seen = []
        measure(seen.append, repeats=2, setup=lambda: "payload")
        assert seen == ["payload", "payload"]

    def test_rejects_zero_repeats(self):
        with pytest.raises(BenchmarkError):
            measure(lambda: None, repeats=0)


class TestTimer:
    def test_measures_span(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.seconds < 0.5
