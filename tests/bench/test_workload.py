"""Workload construction: batching, write-percentage interleaving."""

from __future__ import annotations

import pytest

from repro.bench import (
    QueryOp,
    SystemWorkloadConfig,
    WriteOp,
    build_operations,
    build_stream,
)
from repro.errors import BenchmarkError


def _config(**kw):
    defaults = dict(total_points=5_000, batch_size=500, seed=1)
    defaults.update(kw)
    return SystemWorkloadConfig(**defaults)


class TestConfigValidation:
    def test_rejects_bad_write_percentage(self):
        with pytest.raises(BenchmarkError):
            _config(write_percentage=0.0)
        with pytest.raises(BenchmarkError):
            _config(write_percentage=1.5)

    def test_rejects_bad_batching(self):
        with pytest.raises(BenchmarkError):
            _config(batch_size=0)
        with pytest.raises(BenchmarkError):
            _config(total_points=100, batch_size=500)
        with pytest.raises(BenchmarkError):
            _config(query_window=0)


class TestBuildOperations:
    def test_batches_cover_stream_exactly(self):
        config = _config(write_percentage=1.0)
        ops = build_operations(config)
        assert all(isinstance(op, WriteOp) for op in ops)
        total = sum(len(op.timestamps) for op in ops)
        assert total == config.total_points
        assert len(ops) == 10  # 5000 / 500

    def test_write_percentage_controls_query_count(self):
        for wp, expected_queries in ((0.5, 10), (0.25, 30), (0.9, 1)):
            ops = build_operations(_config(write_percentage=wp))
            queries = sum(isinstance(op, QueryOp) for op in ops)
            assert queries == expected_queries

    def test_no_query_before_first_write(self):
        ops = build_operations(_config(write_percentage=0.25))
        assert isinstance(ops[0], WriteOp)

    def test_deterministic(self):
        a = build_operations(_config(write_percentage=0.5))
        b = build_operations(_config(write_percentage=0.5))
        assert a == b

    def test_stream_matches_dataset(self):
        config = _config(dataset="samsung-d5", dataset_params={})
        stream = build_stream(config)
        assert stream.name == "samsung-d5"
        assert len(stream) == config.total_points

    def test_batch_contents_follow_arrival_order(self):
        config = _config(write_percentage=1.0)
        stream = build_stream(config)
        ops = build_operations(config)
        flattened = [t for op in ops for t in op.timestamps]
        assert flattened == stream.timestamps
