"""ASCII series rendering and the ablation experiment driver."""

from __future__ import annotations

from repro.bench.reporting import ascii_series
from repro.experiments import ablation


class TestAsciiSeries:
    def test_renders_markers_and_legend(self):
        chart = ascii_series(
            {"backward": [(1, 2.0), (2, 3.0)], "quick": [(1, 5.0), (2, 9.0)]},
            width=20,
            height=5,
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert any("b" in line for line in lines[2:-2])
        assert any("q" in line for line in lines[2:-2])
        assert "b=backward" in lines[-1]
        assert "q=quick" in lines[-1]

    def test_log_scale(self):
        chart = ascii_series({"x": [(1, 1.0), (2, 1e6)]}, log_y=True, height=4)
        assert "log10(y)" in chart

    def test_empty(self):
        assert ascii_series({}) == "(no data)"

    def test_constant_series_does_not_divide_by_zero(self):
        chart = ascii_series({"flat": [(1, 2.0), (5, 2.0)]}, width=10, height=3)
        assert "f" in chart


class TestAblationDriver:
    def test_rows_cover_all_variants(self):
        rows = ablation.run(scale="tiny", repeats=1)
        assert len(rows) == len(ablation.VARIANTS)
        labels = {r.variant for r in rows}
        assert "paper L0=4" in labels
        assert any("quicksort" in label for label in labels)
        for r in rows:
            assert r.mean_seconds > 0
            assert r.comparisons > 0

    def test_degenerate_variants_hit_expected_block_sizes(self):
        rows = {r.variant: r for r in ablation.run(scale="tiny", repeats=1)}
        assert rows["fixed L=64"].block_size == 64
        assert rows["fixed L=N (quicksort)"].block_size == 2_000
