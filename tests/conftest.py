"""Shared fixtures and helpers for the Backward-Sort reproduction tests."""

from __future__ import annotations

import random

import pytest

from repro.workloads import TimeSeriesGenerator
from repro.theory import ExponentialDelay


def make_delayed_stream(n: int, lam: float = 0.5, seed: int = 0):
    """A delay-only arrival stream: exponential delays over n points."""
    return TimeSeriesGenerator(ExponentialDelay(lam)).generate(n, seed=seed)


def assert_sorted_permutation(ts, vs, original_pairs):
    """Assert ts is non-decreasing and (ts, vs) is a permutation of the input."""
    assert all(ts[i] <= ts[i + 1] for i in range(len(ts) - 1)), "output not sorted"
    assert sorted(zip(ts, vs)) == sorted(original_pairs), "output not a permutation"


@pytest.fixture
def rng():
    return random.Random(20230611)


@pytest.fixture
def small_stream():
    return make_delayed_stream(500, lam=0.5, seed=7)


@pytest.fixture
def medium_stream():
    return make_delayed_stream(5_000, lam=0.3, seed=11)
