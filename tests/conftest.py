"""Shared fixtures and helpers for the Backward-Sort reproduction tests."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings as hypothesis_settings

from repro.workloads import TimeSeriesGenerator
from repro.theory import ExponentialDelay

# Property-test profiles: "ci" is derandomized so every CI run explores the
# same examples (failures reproduce locally with HYPOTHESIS_PROFILE=ci);
# "dev" keeps hypothesis's randomized exploration for local runs.
hypothesis_settings.register_profile("ci", derandomize=True, deadline=None)
hypothesis_settings.register_profile("dev", deadline=None)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def make_delayed_stream(n: int, lam: float = 0.5, seed: int = 0):
    """A delay-only arrival stream: exponential delays over n points."""
    return TimeSeriesGenerator(ExponentialDelay(lam)).generate(n, seed=seed)


def assert_sorted_permutation(ts, vs, original_pairs):
    """Assert ts is non-decreasing and (ts, vs) is a permutation of the input."""
    assert all(ts[i] <= ts[i + 1] for i in range(len(ts) - 1)), "output not sorted"
    assert sorted(zip(ts, vs)) == sorted(original_pairs), "output not a permutation"


@pytest.fixture
def rng():
    return random.Random(20230611)


@pytest.fixture
def small_stream():
    return make_delayed_stream(500, lam=0.5, seed=7)


@pytest.fixture
def medium_stream():
    return make_delayed_stream(5_000, lam=0.3, seed=11)
