"""Delay-difference and overlap estimators against theory (Props 2 and 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics import (
    check_delay_only,
    delay_difference_samples,
    empirical_delay_difference_tail,
    expected_nonnegative_delay_difference,
    max_overhang,
    mean_overhang,
)
from repro.theory import DiscreteUniformDelay, ExponentialDelay, expected_overlap


class TestDelayDifferenceSamples:
    def test_shape_and_symmetry(self):
        rng = np.random.default_rng(0)
        delays = ExponentialDelay(1.0).sample(10_000, rng)
        diffs = delay_difference_samples(delays, pairs=50_000, seed=1)
        assert diffs.shape == (50_000,)
        # Proposition 1: Δτ symmetric around zero.
        assert abs(float(np.mean(diffs))) < 0.05

    def test_needs_two_delays(self):
        with pytest.raises(InvalidParameterError):
            delay_difference_samples([1.0])


class TestEmpiricalTail:
    def test_matches_closed_form_exponential(self):
        rng = np.random.default_rng(2)
        dist = ExponentialDelay(2.0)
        delays = dist.sample(100_000, rng)
        for length in (0.5, 1.0, 2.0):
            emp = empirical_delay_difference_tail(delays, length)
            assert emp == pytest.approx(dist.delay_difference_tail(length), rel=0.05)

    def test_tail_at_zero_below_half(self):
        rng = np.random.default_rng(3)
        delays = ExponentialDelay(1.0).sample(50_000, rng)
        # P(Δτ > 0) = 1/2 minus the (zero-measure) tie mass.
        assert empirical_delay_difference_tail(delays, 0.0) == pytest.approx(0.5, abs=0.01)


class TestExpectedNonnegativeDelayDifference:
    def test_example7_discrete_uniform(self):
        # Exact: all 16 delay pairs from {0,1,2,3}² — E(Δτ⁺) = 10/16.
        delays = np.array([0.0, 1.0, 2.0, 3.0])
        assert expected_nonnegative_delay_difference(delays) == pytest.approx(10 / 16)

    def test_matches_theory_bound(self):
        rng = np.random.default_rng(4)
        dist = ExponentialDelay(2.0)
        delays = dist.sample(50_000, rng)
        emp = expected_nonnegative_delay_difference(delays)
        assert emp == pytest.approx(expected_overlap(dist), rel=0.05)


class TestOverhang:
    def test_sorted_zero(self):
        assert mean_overhang(list(range(50))) == 0.0
        assert max_overhang(list(range(50))) == 0

    def test_single_delayed_point(self):
        # Point 5 delayed past 3 successors: each of the 3 sees one overhang.
        ts = [1, 2, 6, 3, 4, 5, 7]
        assert max_overhang(ts) == 1
        assert mean_overhang(ts) == pytest.approx(3 / 7)

    def test_mean_overhang_bounded_by_expected_overlap(self):
        # Proposition 4: E(Q) <= E(Δτ⁺).
        from repro.workloads import TimeSeriesGenerator

        dist = DiscreteUniformDelay(4)
        stream = TimeSeriesGenerator(dist).generate(50_000, seed=5)
        measured = mean_overhang(stream.timestamps)
        assert measured <= expected_overlap(dist) * 1.05

    def test_empty(self):
        assert mean_overhang([]) == 0.0
        assert max_overhang([]) == 0


class TestCheckDelayOnly:
    def test_accepts_nonnegative(self):
        assert check_delay_only([0, 1, 2], [0.0, 3.5, 0.1])

    def test_rejects_negative(self):
        assert not check_delay_only([0, 1, 2], [0.0, -0.1, 0.2])

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            check_delay_only([0, 1], [0.0])
