"""Disorder profiling report: fitting, predictions, recommendations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.metrics.report import DisorderReport, fit_delay_model, profile_stream
from repro.theory import ExponentialDelay, LogNormalDelay
from repro.workloads import TimeSeriesGenerator


class TestFitDelayModel:
    def test_exponential_recovered(self):
        rng = np.random.default_rng(0)
        delays = ExponentialDelay(0.5).sample(50_000, rng)
        model = fit_delay_model(delays)
        assert isinstance(model, ExponentialDelay)
        assert model.lam == pytest.approx(0.5, rel=0.05)

    def test_lognormal_recovered(self):
        rng = np.random.default_rng(1)
        delays = LogNormalDelay(1.0, 1.5).sample(50_000, rng)
        model = fit_delay_model(delays)
        assert isinstance(model, LogNormalDelay)
        assert model.mu == pytest.approx(1.0, abs=0.1)
        assert model.sigma == pytest.approx(1.5, abs=0.1)

    def test_zero_delays(self):
        model = fit_delay_model(np.zeros(100))
        assert model.mean() < 1e-6

    def test_needs_samples(self):
        with pytest.raises(InvalidParameterError):
            fit_delay_model([1.0])


class TestProfileStream:
    def test_full_report_with_delays(self):
        stream = TimeSeriesGenerator(ExponentialDelay(0.1)).generate(30_000, seed=2)
        report = profile_stream(stream.timestamps, stream.delays)
        assert report.n == 30_000
        assert report.fitted_model == "Exponential"
        # Prediction vs search: same order of magnitude.
        assert report.predicted_block_size is not None
        assert report.searched_block_size >= 2
        assert report.measured_overlap > 0
        assert "Backward-Sort" in report.recommendation

    def test_report_without_delays(self):
        stream = TimeSeriesGenerator(ExponentialDelay(1.0)).generate(5_000, seed=3)
        report = profile_stream(stream.timestamps)
        assert report.fitted_model is None
        assert report.predicted_overlap is None

    def test_sorted_stream_recommendation(self):
        report = profile_stream(list(range(1_000)))
        assert "already sorted" in report.recommendation

    def test_heavy_disorder_degenerate_recommendation(self):
        import random

        rng = random.Random(4)
        ts = rng.sample(range(5_000), 5_000)
        report = profile_stream(ts)
        assert "Quicksort" in report.recommendation

    def test_render_is_textual(self):
        stream = TimeSeriesGenerator(ExponentialDelay(0.5)).generate(2_000, seed=5)
        report = profile_stream(stream.timestamps, stream.delays)
        text = report.render()
        assert "disorder report" in text
        assert "recommendation" in text
        assert isinstance(report, DisorderReport)

    def test_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            profile_stream([1])
