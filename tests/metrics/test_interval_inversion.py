"""Interval inversion ratio: Definition 3/4 semantics and the IIR profile."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidParameterError
from repro.metrics import (
    count_interval_inversions,
    iir_profile,
    iir_truncation_point,
    interval_inversion_ratio,
)


# A 15-point array in the spirit of Figure 3 / Example 4, with hand-counted
# interval inversions at L = 1, 3, 5.
EXAMPLE_ARRAY = [4, 3, 9, 8, 5, 6, 11, 1, 12, 7, 10, 13, 2, 14, 15]


class TestCountIntervalInversions:
    def test_example_distance_1(self):
        # Adjacent inversions: (4,3), (9,8), (8,5), (11,1), (12,7), (13,2).
        assert count_interval_inversions(EXAMPLE_ARRAY, 1) == 6
        assert interval_inversion_ratio(EXAMPLE_ARRAY, 1) == pytest.approx(6 / 14)

    def test_example_distance_3(self):
        # Pairs (i, i+3): (4,8)no (3,5)no (9,6)YES (8,11)no (5,1)YES (6,12)no
        # (11,7)YES (1,10)no (12,13)no (7,2)YES (10,14)no (13,15)no -> 4.
        assert count_interval_inversions(EXAMPLE_ARRAY, 3) == 4
        assert interval_inversion_ratio(EXAMPLE_ARRAY, 3) == pytest.approx(4 / 12)

    def test_example_distance_5(self):
        # Pairs (i, i+5): (4,6)(3,11)(9,1)YES(8,12)(5,7)(6,10)(11,13)(1,2)
        # (12,14)(7,15) -> 1.
        assert count_interval_inversions(EXAMPLE_ARRAY, 5) == 1
        assert interval_inversion_ratio(EXAMPLE_ARRAY, 5) == pytest.approx(1 / 10)

    def test_denominator_is_n_minus_l(self):
        # Definition 4: α = C / (N - L).
        ts = [2, 1] * 10
        n = len(ts)
        for interval in (1, 3, 7):
            c = count_interval_inversions(ts, interval)
            assert interval_inversion_ratio(ts, interval) == c / (n - interval)

    def test_interval_at_least_length(self):
        assert count_interval_inversions([3, 1], 2) == 0
        assert interval_inversion_ratio([3, 1], 2) == 0.0

    def test_rejects_zero_interval(self):
        with pytest.raises(InvalidParameterError):
            count_interval_inversions([1, 2], 0)

    def test_object_dtype_fallback(self):
        # Non-numeric comparable keys exercise the pure-Python path.
        ts = ["b", "a", "d", "c"]
        assert count_interval_inversions(ts, 1) == 2

    @settings(max_examples=40, deadline=None)
    @given(ts=st.lists(st.integers(0, 50), min_size=2, max_size=80), interval=st.integers(1, 20))
    def test_matches_bruteforce(self, ts, interval):
        brute = sum(
            1 for i in range(len(ts) - interval) if ts[i] > ts[i + interval]
        )
        assert count_interval_inversions(ts, interval) == brute


class TestIIRProfile:
    def test_default_powers_of_two(self):
        profile = iir_profile(list(range(100)))
        assert [interval for interval, _ in profile] == [1, 2, 4, 8, 16, 32, 64]
        assert all(alpha == 0.0 for _, alpha in profile)

    def test_profile_decreases_for_delay_only_stream(self):
        from tests.conftest import make_delayed_stream

        ts = make_delayed_stream(20_000, lam=0.2, seed=5).timestamps
        profile = dict(iir_profile(ts, intervals=[1, 8, 64, 512]))
        assert profile[1] > profile[64] >= profile[512]

    def test_truncation_point(self):
        from tests.conftest import make_delayed_stream

        ts = make_delayed_stream(20_000, lam=0.5, seed=5).timestamps
        trunc = iir_truncation_point(ts, threshold=1e-3)
        assert 1 <= trunc < len(ts)
        assert interval_inversion_ratio(ts, trunc) < 1e-3

    def test_truncation_never_reached(self):
        ts = list(range(64, 0, -1))
        assert iir_truncation_point(ts, threshold=1e-6) == 64
