"""Inversion counting: exact values, cross-check, Fenwick tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import count_inversions, count_inversions_merge, inversion_ratio
from repro.metrics.inversions import FenwickTree


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(10)
        for i in (3, 3, 7, 0):
            tree.add(i)
        assert tree.prefix_sum(-1) == 0
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(2) == 1
        assert tree.prefix_sum(3) == 3
        assert tree.prefix_sum(9) == 4
        assert tree.total() == 4

    def test_weighted_updates(self):
        tree = FenwickTree(4)
        tree.add(1, 5)
        tree.add(2, -2)
        assert tree.prefix_sum(3) == 3


class TestCountInversions:
    @pytest.mark.parametrize(
        "ts,expected",
        [
            ([], 0),
            ([1], 0),
            ([1, 2, 3], 0),
            ([3, 2, 1], 3),
            ([2, 1, 3], 1),
            ([1, 3, 2, 4], 1),
            ([5, 5, 5], 0),  # ties are not inversions (strict >)
            ([2, 1, 1], 2),
        ],
    )
    def test_known_values(self, ts, expected):
        assert count_inversions(ts) == expected
        assert count_inversions_merge(ts) == expected

    def test_reverse_is_maximal(self):
        n = 100
        assert count_inversions(list(range(n, 0, -1))) == n * (n - 1) // 2

    @settings(max_examples=60, deadline=None)
    @given(ts=st.lists(st.integers(-50, 50), max_size=150))
    def test_implementations_agree(self, ts):
        assert count_inversions(ts) == count_inversions_merge(ts)

    @settings(max_examples=30, deadline=None)
    @given(ts=st.lists(st.integers(0, 20), max_size=60))
    def test_matches_bruteforce(self, ts):
        brute = sum(
            1
            for i in range(len(ts))
            for j in range(i + 1, len(ts))
            if ts[i] > ts[j]
        )
        assert count_inversions(ts) == brute

    def test_insertion_sort_moves_track_inversions(self):
        # Inv is exactly insertion sort's shift count — the adaptivity the
        # paper leans on for the L=1 degenerate case.
        from repro.core.sorter import insertion_sort_range
        from repro.core.instrumentation import SortStats

        rng = random.Random(8)
        ts = rng.sample(range(300), 300)
        inv = count_inversions(ts)
        stats = SortStats()
        insertion_sort_range(ts, list(range(300)), 0, 300, stats)
        # shifts == Inv; placements add at most n.
        assert inv <= stats.moves <= inv + 300


class TestInversionRatio:
    def test_bounds(self):
        assert inversion_ratio(list(range(10))) == 0.0
        assert inversion_ratio(list(range(10, 0, -1))) == 1.0
        assert inversion_ratio([]) == 0.0
        assert inversion_ratio([1]) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(ts=st.lists(st.integers(0, 100), max_size=100))
    def test_in_unit_interval(self, ts):
        assert 0.0 <= inversion_ratio(ts) <= 1.0
