"""Classic presortedness measures: Runs, Dis, Exc, Rem."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import dis, disorder_summary, exc, rem, runs


class TestRuns:
    @pytest.mark.parametrize(
        "ts,expected",
        [
            ([], 0),
            ([5], 1),
            ([1, 2, 3], 1),
            ([3, 2, 1], 3),
            ([1, 3, 2, 4], 2),
            ([1, 1, 1], 1),  # non-decreasing counts as one run
        ],
    )
    def test_known_values(self, ts, expected):
        assert runs(ts) == expected


class TestDis:
    @pytest.mark.parametrize(
        "ts,expected",
        [
            ([], 0),
            ([1], 0),
            ([1, 2, 3], 0),
            ([2, 1], 1),
            ([3, 1, 2], 2),
            ([2, 2, 2], 0),  # stable order: no displacement for ties
        ],
    )
    def test_known_values(self, ts, expected):
        assert dis(ts) == expected


class TestExc:
    @pytest.mark.parametrize(
        "ts,expected",
        [
            ([1, 2, 3], 0),
            ([2, 1], 1),
            ([3, 1, 2], 2),  # one 3-cycle: two exchanges
            ([2, 1, 4, 3], 2),  # two transpositions
        ],
    )
    def test_known_values(self, ts, expected):
        assert exc(ts) == expected

    @settings(max_examples=30, deadline=None)
    @given(ts=st.lists(st.integers(0, 30), max_size=50))
    def test_bounded_by_n_minus_1(self, ts):
        assert 0 <= exc(ts) <= max(0, len(ts) - 1)


class TestRem:
    @pytest.mark.parametrize(
        "ts,expected",
        [
            ([1, 2, 3], 0),
            ([3, 2, 1], 2),
            ([1, 5, 2, 3], 1),
            ([1, 1, 1], 0),  # non-decreasing LIS covers ties
        ],
    )
    def test_known_values(self, ts, expected):
        assert rem(ts) == expected

    def test_delay_only_rem_counts_delayed_points(self):
        # One point delayed past three successors: removing it sorts the rest.
        assert rem([2, 3, 4, 1, 5, 6]) == 1


class TestSummary:
    def test_summary_keys_and_consistency(self):
        ts = [4, 1, 3, 2]
        summary = disorder_summary(ts)
        assert summary["n"] == 4
        assert summary["inversions"] == 4
        assert summary["runs"] == runs(ts)
        assert summary["dis"] == dis(ts)
        assert summary["exc"] == exc(ts)
        assert summary["rem"] == rem(ts)

    @settings(max_examples=30, deadline=None)
    @given(ts=st.lists(st.integers(0, 50), max_size=60))
    def test_sorted_iff_all_zero(self, ts):
        summary = disorder_summary(ts)
        is_sorted = all(ts[i] <= ts[i + 1] for i in range(len(ts) - 1))
        zeroed = (
            summary["inversions"] == 0
            and summary["dis"] == 0
            and summary["exc"] == 0
            and summary["rem"] == 0
        )
        assert is_sorted == zeroed
