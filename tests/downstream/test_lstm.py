"""LSTM: gradient correctness, learning ability, forecast pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.downstream import (
    LSTMForecaster,
    disorder_impact,
    make_windows,
    train_and_evaluate,
)
from repro.errors import InvalidParameterError


class TestGradients:
    def test_bptt_matches_numerical_gradients(self):
        model = LSTMForecaster(input_size=2, hidden_size=3, seed=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 4, 2))
        y = rng.normal(size=5)
        _, cache = model._forward(x)
        _, grads = model._backward(cache, y)

        def loss():
            pred, _ = model._forward(x)
            return float(np.mean((pred - y) ** 2))

        eps = 1e-6
        for tensor, grad in zip(model.params.tensors(), grads.tensors()):
            flat = tensor.reshape(-1)
            grad_flat = grad.reshape(-1)
            for idx in range(0, flat.size, max(1, flat.size // 5)):
                orig = flat[idx]
                flat[idx] = orig + eps
                lp = loss()
                flat[idx] = orig - eps
                lm = loss()
                flat[idx] = orig
                numeric = (lp - lm) / (2 * eps)
                assert numeric == pytest.approx(grad_flat[idx], rel=1e-4, abs=1e-7)


class TestLearning:
    def test_loss_decreases_on_sine(self):
        values = np.sin(np.arange(800) * 2 * np.pi / 40)
        x, y = make_windows(values, window=10)
        model = LSTMForecaster(hidden_size=2, seed=0)
        history = model.fit(x, y, epochs=8, seed=0)
        assert history[-1] < history[0] / 2

    def test_forecast_accuracy_on_clean_sine(self):
        values = np.sin(np.arange(1_200) * 2 * np.pi / 60)
        outcome = train_and_evaluate(values, epochs=10, seed=1)
        assert outcome.test_mse < 0.05

    def test_deterministic_by_seed(self):
        values = np.sin(np.arange(400) * 2 * np.pi / 40)
        a = train_and_evaluate(values, epochs=3, seed=5)
        b = train_and_evaluate(values, epochs=3, seed=5)
        assert a.test_mse == b.test_mse

    def test_predict_shape(self):
        model = LSTMForecaster(seed=0)
        x = np.zeros((7, 10, 1))
        assert model.predict(x).shape == (7,)


class TestValidation:
    def test_bad_construction(self):
        with pytest.raises(InvalidParameterError):
            LSTMForecaster(input_size=0)
        with pytest.raises(InvalidParameterError):
            LSTMForecaster(hidden_size=0)
        with pytest.raises(InvalidParameterError):
            LSTMForecaster(learning_rate=0.0)

    def test_make_windows_shapes(self):
        x, y = make_windows(np.arange(20.0), window=5)
        assert x.shape == (15, 5, 1)
        assert y.shape == (15,)
        assert list(x[0, :, 0]) == [0, 1, 2, 3, 4]
        assert y[0] == 5.0

    def test_make_windows_needs_enough_data(self):
        with pytest.raises(InvalidParameterError):
            make_windows(np.arange(5.0), window=10)
        with pytest.raises(InvalidParameterError):
            make_windows(np.arange(20.0), window=0)

    def test_fit_length_mismatch(self):
        model = LSTMForecaster(seed=0)
        with pytest.raises(InvalidParameterError):
            model.fit(np.zeros((4, 10, 1)), np.zeros(3), epochs=1)

    def test_train_fraction_validated(self):
        with pytest.raises(InvalidParameterError):
            train_and_evaluate(np.arange(100.0), train_fraction=1.0)


class TestDisorderImpact:
    def test_figure22_shape(self):
        rows = disorder_impact(sigmas=(0.0, 1.0, 4.0), n=1_200, epochs=6, seed=2)
        assert [r.sigma for r in rows] == [0.0, 1.0, 4.0]
        assert rows[0].test_ratio == pytest.approx(1.0)
        # The paper's finding: loss grows with the disorder degree.
        assert rows[-1].test_mse > rows[0].test_mse
        assert rows[-1].train_mse > rows[0].train_mse
