"""Outage workloads: correlated delay-only disorder and sorter robustness."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.metrics import check_delay_only, rem, runs
from repro.sorting import PAPER_ALGORITHMS, get_sorter
from repro.workloads import outage_stream


class TestOutageStream:
    def test_delay_only_preserved(self):
        stream = outage_stream(5_000, outage_every=500, outage_length=50, seed=1)
        assert check_delay_only(stream.generation_times, stream.delays)

    def test_disorder_concentrated_in_bursts(self):
        calm = outage_stream(5_000, outage_every=500, outage_length=2, seed=1)
        stormy = outage_stream(5_000, outage_every=500, outage_length=200, seed=1)
        assert (
            stormy.disorder_summary()["inversions"]
            > 5 * calm.disorder_summary()["inversions"]
        )

    def test_backlog_points_form_runs(self):
        # The burst arrives as one sorted backlog: Rem counts roughly the
        # buffered points, while Runs stays far below Rem (few long runs,
        # not scattered singletons).
        stream = outage_stream(10_000, outage_every=1_000, outage_length=100, seed=2)
        assert rem(stream.timestamps) >= 500  # ~10 outages x 100 buffered
        assert runs(stream.timestamps) < rem(stream.timestamps)

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            outage_stream(-1)
        with pytest.raises(WorkloadError):
            outage_stream(100, outage_every=0)
        with pytest.raises(WorkloadError):
            outage_stream(100, outage_every=10, outage_length=0)
        with pytest.raises(WorkloadError):
            outage_stream(100, outage_every=10, outage_length=10)

    def test_deterministic(self):
        a = outage_stream(1_000, seed=5)
        b = outage_stream(1_000, seed=5)
        assert a.timestamps == b.timestamps

    @pytest.mark.parametrize("name", PAPER_ALGORITHMS)
    def test_all_paper_sorters_handle_bursts(self, name):
        stream = outage_stream(5_000, outage_every=500, outage_length=100, seed=3)
        ts, vs = stream.sort_input()
        get_sorter(name).sort(ts, vs)
        assert ts == sorted(ts)

    def test_backward_sort_block_size_adapts_to_outage_span(self):
        # The search must pick L at least on the order of the backlog size,
        # since inversions reach across the whole outage window.
        stream = outage_stream(20_000, outage_every=1_000, outage_length=100, seed=4)
        stats = get_sorter("backward").sort(*stream.sort_input())
        assert stats.block_size >= 32
        assert stats.mean_overlap < stats.block_size * 2
