"""Dataset simulators: the IIR shapes of Figure 8(a) must hold."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.metrics import iir_truncation_point, interval_inversion_ratio
from repro.workloads import (
    REAL_WORLD_DATASETS,
    abs_normal,
    citibike_like,
    exponential,
    load_dataset,
    log_normal,
    samsung_like,
)

N = 30_000


class TestSyntheticFamilies:
    def test_absnormal_sigma_controls_disorder(self):
        calm = abs_normal(N, mu=1.0, sigma=0.25, seed=1)
        rough = abs_normal(N, mu=1.0, sigma=4.0, seed=1)
        assert calm.disorder_summary()["inversions"] < rough.disorder_summary()["inversions"]

    def test_lognormal_sigma_controls_disorder(self):
        calm = log_normal(N, mu=1.0, sigma=0.25, seed=1)
        rough = log_normal(N, mu=1.0, sigma=2.0, seed=1)
        assert calm.disorder_summary()["inversions"] < rough.disorder_summary()["inversions"]

    def test_exponential_matches_example6(self):
        stream = exponential(200_000, lam=2.0, seed=2)
        a1 = interval_inversion_ratio(stream.timestamps, 1)
        assert a1 == pytest.approx(0.067668, rel=0.05)

    def test_names_embedded(self):
        assert abs_normal(100, 1, 2).name == "absnormal(1,2)"
        assert log_normal(100, 0, 1).name == "lognormal(0,1)"


class TestRealWorldSimulators:
    def test_samsung_truncates_early(self):
        # Figure 8(a): α_L = 0 for L >= 2^5 on Samsung.
        for device in ("d5", "s10"):
            stream = samsung_like(N, device=device, seed=3)
            assert iir_truncation_point(stream.timestamps, threshold=1e-4) <= 32

    def test_citibike_reaches_far(self):
        # Figure 8(a): CitiBike disorder persists to intervals ~n/16 and beyond.
        for month in ("201808", "201902"):
            stream = citibike_like(N, month=month, seed=3)
            assert iir_truncation_point(stream.timestamps, threshold=1e-3) >= N / 64

    def test_201808_more_disordered_than_201902(self):
        a = citibike_like(N, month="201808", seed=4)
        b = citibike_like(N, month="201902", seed=4)
        assert a.disorder_summary()["inversions"] > b.disorder_summary()["inversions"]

    def test_citibike_heavier_than_samsung(self):
        cb = citibike_like(N, seed=5)
        sam = samsung_like(N, seed=5)
        assert cb.disorder_summary()["inversions"] > 10 * sam.disorder_summary()["inversions"]

    def test_unknown_variants_rejected(self):
        with pytest.raises(WorkloadError):
            citibike_like(100, month="202501")
        with pytest.raises(WorkloadError):
            samsung_like(100, device="s99")


class TestLoadDataset:
    @pytest.mark.parametrize("name", REAL_WORLD_DATASETS)
    def test_real_world_labels(self, name):
        stream = load_dataset(name, 1_000, seed=6)
        assert stream.name == name
        assert len(stream) == 1_000

    def test_synthetic_with_params(self):
        stream = load_dataset("absnormal", 500, seed=7, mu=4.0, sigma=2.0)
        assert stream.name == "absnormal(4,2)"
        stream = load_dataset("lognormal", 500, seed=7, sigma=0.5)
        assert "lognormal" in stream.name
        stream = load_dataset("exponential", 500, seed=7, lam=3.0)
        assert "exponential" in stream.name

    def test_unknown_dataset(self):
        with pytest.raises(WorkloadError):
            load_dataset("mystery", 100)

    def test_delay_only_everywhere(self):
        from repro.metrics import check_delay_only

        for name in REAL_WORLD_DATASETS:
            stream = load_dataset(name, 2_000, seed=8)
            assert check_delay_only(stream.generation_times, stream.delays)
