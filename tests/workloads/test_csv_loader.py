"""CSV ingestion: file order is arrival order; errors are located."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads import load_csv, stream_from_rows


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text(
        "timestamp,value\n"
        "3,1.5\n"
        "1,2.5\n"
        "2,3.5\n"
    )
    return path


class TestLoadCsv:
    def test_file_order_preserved(self, csv_file):
        stream = load_csv(csv_file)
        assert stream.timestamps == [3, 1, 2]
        assert stream.values == [1.5, 2.5, 3.5]
        assert stream.name == "trace"

    def test_custom_columns_and_name(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("ts,temp,other\n5,1.0,x\n4,2.0,y\n")
        stream = load_csv(path, time_column="ts", value_column="temp", name="sensor")
        assert stream.timestamps == [5, 4]
        assert stream.name == "sensor"

    def test_metrics_apply(self, csv_file):
        stream = load_csv(csv_file)
        assert stream.disorder_summary()["inversions"] == 2

    def test_sortable(self, csv_file):
        from repro import get_sorter

        stream = load_csv(csv_file)
        ts, vs = stream.sort_input()
        get_sorter("backward").sort(ts, vs)
        assert ts == [1, 2, 3]
        assert vs == [2.5, 3.5, 1.5]

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_csv(tmp_path / "ghost.csv")

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(WorkloadError, match="timestamp"):
            load_csv(path)
        with pytest.raises(WorkloadError, match="value"):
            load_csv(path, time_column="a")

    def test_malformed_row_located(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,value\n1,2.0\nnope,3.0\n")
        with pytest.raises(WorkloadError, match="bad.csv:3"):
            load_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("timestamp,value\n")
        with pytest.raises(WorkloadError, match="no rows"):
            load_csv(path)


class TestStreamFromRows:
    def test_builds_stream(self):
        stream = stream_from_rows([(2, 1.0), (1, 2.0)], name="mem")
        assert stream.timestamps == [2, 1]
        assert list(stream.generation_times) == [1, 2]

    def test_rejects_non_int_timestamp(self):
        with pytest.raises(WorkloadError):
            stream_from_rows([(1.5, 1.0)])
