"""Arrival-stream generation: delay-only, determinism, stream anatomy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.metrics import check_delay_only
from repro.theory import ConstantDelay, DelayDistribution, ExponentialDelay
from repro.workloads import ArrivalStream, TimeSeriesGenerator, stream_from_delays


class TestTimeSeriesGenerator:
    def test_stream_anatomy(self):
        stream = TimeSeriesGenerator(ExponentialDelay(0.5)).generate(1_000, seed=0)
        assert len(stream) == 1_000
        assert len(stream.timestamps) == len(stream.values) == 1_000
        assert sorted(stream.timestamps) == list(range(1_000))
        assert check_delay_only(stream.generation_times, stream.delays)

    def test_deterministic_by_seed(self):
        gen = TimeSeriesGenerator(ExponentialDelay(0.5))
        a = gen.generate(500, seed=42)
        b = gen.generate(500, seed=42)
        c = gen.generate(500, seed=43)
        assert a.timestamps == b.timestamps
        assert a.values == b.values
        assert a.timestamps != c.timestamps

    def test_zero_delay_yields_sorted_stream(self):
        stream = TimeSeriesGenerator(ConstantDelay(0.0)).generate(200, seed=1)
        assert stream.timestamps == list(range(200))

    def test_interval_scales_timestamps(self):
        stream = TimeSeriesGenerator(ConstantDelay(0.0), interval=10).generate(5)
        assert stream.timestamps == [0, 10, 20, 30, 40]

    def test_arrival_ties_broken_by_generation_order(self):
        stream = TimeSeriesGenerator(ConstantDelay(3.0)).generate(100, seed=2)
        # Identical delays: arrival order == generation order.
        assert stream.timestamps == list(range(100))

    def test_disorder_grows_with_delay_scale(self):
        mild = TimeSeriesGenerator(ExponentialDelay(2.0)).generate(20_000, seed=3)
        wild = TimeSeriesGenerator(ExponentialDelay(0.05)).generate(20_000, seed=3)
        assert mild.disorder_summary()["inversions"] < wild.disorder_summary()["inversions"]

    def test_disorder_summary_cached(self):
        stream = TimeSeriesGenerator(ExponentialDelay(1.0)).generate(1_000, seed=4)
        assert stream.disorder_summary() is stream.disorder_summary()

    def test_sort_input_returns_copies(self):
        stream = TimeSeriesGenerator(ExponentialDelay(1.0)).generate(100, seed=5)
        ts, vs = stream.sort_input()
        ts.sort()
        assert stream.timestamps != ts or ts == sorted(stream.timestamps)
        ts2, _ = stream.sort_input()
        assert ts2 == stream.timestamps

    def test_negative_n_rejected(self):
        with pytest.raises(WorkloadError):
            TimeSeriesGenerator(ExponentialDelay(1.0)).generate(-1)

    def test_bad_interval_rejected(self):
        with pytest.raises(WorkloadError):
            TimeSeriesGenerator(ExponentialDelay(1.0), interval=0)

    def test_negative_delay_model_rejected(self):
        class BrokenDelay(DelayDistribution):
            def sample(self, n, rng):
                return np.full(n, -1.0)

            def pdf(self, t):
                return 0.0

            def cdf(self, t):
                return 0.0

            def mean(self):
                return -1.0

        with pytest.raises(WorkloadError):
            TimeSeriesGenerator(BrokenDelay()).generate(10)

    def test_custom_value_fn(self):
        def constant_values(times, rng):
            return np.full(times.size, 7.0)

        stream = TimeSeriesGenerator(
            ExponentialDelay(1.0), value_fn=constant_values
        ).generate(50, seed=6)
        assert stream.values == [7.0] * 50


class TestStreamFromDelays:
    def test_explicit_delays(self):
        # Delays engineered so point 0 arrives after points 1 and 2.
        stream = stream_from_delays(np.array([2.5, 0.0, 0.0, 0.0]))
        assert stream.timestamps == [1, 2, 0, 3]

    def test_rejects_negative_delays(self):
        with pytest.raises(WorkloadError):
            stream_from_delays(np.array([0.0, -1.0]))

    def test_values_length_checked(self):
        with pytest.raises(WorkloadError):
            stream_from_delays(np.zeros(3), values=np.zeros(2))

    def test_empty(self):
        stream = stream_from_delays(np.array([]))
        assert len(stream) == 0
        assert isinstance(stream, ArrivalStream)
