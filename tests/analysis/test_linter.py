"""Linter framework + rule tests: seeded violations must be detected.

Each rule gets a fixture tree with a deliberate violation (written under a
``sorting/`` or ``core/`` directory so hot-path scoping applies) and a
compliant twin that must stay clean.  The final test runs the full rule set
over the real source tree — the guarantee CI enforces.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.analysis.linter import dotted_module_name, run_linter
from repro.analysis.rules import all_rules, available_rules, get_rules
from repro.errors import InvalidParameterError


def write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def rule_ids(findings) -> set[str]:
    return {finding.rule_id for finding in findings}


# ---------------------------------------------------------------- framework


def test_available_rules_cover_the_documented_set():
    assert set(available_rules()) == {
        "parallel-arrays",
        "stats-accounting",
        "lazy-import-cycle",
        "wall-clock",
        "quadratic-list-op",
        "no-direct-metrics-mutation",
        "guarded-by",
        "lock-order",
        "shared-state-escape",
    }


def test_get_rules_rejects_unknown_ids():
    with pytest.raises(InvalidParameterError):
        get_rules(["no-such-rule"])


def test_run_linter_rejects_missing_paths(tmp_path):
    with pytest.raises(InvalidParameterError):
        run_linter([tmp_path / "missing"])


def test_syntax_errors_become_findings(tmp_path):
    path = write(tmp_path, "sorting/broken.py", "def f(:\n")
    findings = run_linter([path])
    assert rule_ids(findings) == {"syntax-error"}


def test_dotted_module_name_walks_packages(tmp_path):
    write(tmp_path, "pkg/__init__.py", "")
    write(tmp_path, "pkg/sub/__init__.py", "")
    path = write(tmp_path, "pkg/sub/mod.py", "x = 1\n")
    assert dotted_module_name(path) == "pkg.sub.mod"


# --------------------------------------------------------- parallel-arrays


_DESYNC = """
def shift_left(ts, vs, stats):
    moves = 0
    for i in range(1, len(ts)):
        ts[i - 1] = ts[i]
        moves += 1
    stats.moves += moves
"""

_DESYNC_CALLS = """
def spill(buf_t, buf_v, ts, vs, stats):
    moves = 0
    for i in range(len(ts)):
        buf_t.append(ts[i])
        moves += 1
    stats.moves += moves
"""

_LOCKSTEP = """
def shift_left(ts, vs, stats):
    moves = 0
    for i in range(1, len(ts)):
        ts[i - 1] = ts[i]
        vs[i - 1] = vs[i]
        moves += 2
    stats.moves += moves
"""


def test_parallel_arrays_detects_subscript_desync(tmp_path):
    path = write(tmp_path, "sorting/bad.py", _DESYNC)
    findings = run_linter([path], get_rules(["parallel-arrays"]))
    assert len(findings) == 1
    assert findings[0].rule_id == "parallel-arrays"
    assert "'ts'" in findings[0].message and "'vs'" in findings[0].message


def test_parallel_arrays_detects_unmirrored_method_calls(tmp_path):
    path = write(tmp_path, "sorting/bad_calls.py", _DESYNC_CALLS)
    findings = run_linter([path], get_rules(["parallel-arrays"]))
    assert len(findings) == 1
    assert "buf_t" in findings[0].message


def test_parallel_arrays_accepts_lockstep_mutation(tmp_path):
    path = write(tmp_path, "sorting/good.py", _LOCKSTEP)
    assert run_linter([path], get_rules(["parallel-arrays"])) == []


def test_parallel_arrays_ignores_cold_paths(tmp_path):
    path = write(tmp_path, "workloads/bad.py", _DESYNC)
    assert run_linter([path], get_rules(["parallel-arrays"])) == []


# -------------------------------------------------------- stats-accounting


_UNCOUNTED_MOVES = """
def reverse_pairs(ts, vs):
    for i in range(len(ts) // 2):
        j = len(ts) - 1 - i
        ts[i], ts[j] = ts[j], ts[i]
        vs[i], vs[j] = vs[j], vs[i]
"""

_UNCOUNTED_COMPARISONS = """
def count_descents(ts, stats):
    descents = 0
    for i in range(1, len(ts)):
        if ts[i - 1] > ts[i]:
            descents += 1
    return descents
"""

_COUNTED = """
def reverse_pairs(ts, vs, stats):
    for i in range(len(ts) // 2):
        j = len(ts) - 1 - i
        stats.comparisons += 1
        if ts[i] > ts[j]:
            ts[i], ts[j] = ts[j], ts[i]
            vs[i], vs[j] = vs[j], vs[i]
            stats.moves += 3
"""


def test_stats_accounting_detects_uncounted_moves(tmp_path):
    path = write(tmp_path, "core/bad_moves.py", _UNCOUNTED_MOVES)
    findings = run_linter([path], get_rules(["stats-accounting"]))
    assert len(findings) == 1
    assert "moves" in findings[0].message


def test_stats_accounting_detects_uncounted_comparisons(tmp_path):
    path = write(tmp_path, "core/bad_cmp.py", _UNCOUNTED_COMPARISONS)
    findings = run_linter([path], get_rules(["stats-accounting"]))
    assert len(findings) == 1
    assert "comparisons" in findings[0].message


def test_stats_accounting_accepts_counted_code(tmp_path):
    path = write(tmp_path, "core/good.py", _COUNTED)
    assert run_linter([path], get_rules(["stats-accounting"])) == []


def test_stats_accounting_accepts_local_tally_idiom(tmp_path):
    path = write(tmp_path, "sorting/good_tally.py", _LOCKSTEP)
    assert run_linter([path], get_rules(["stats-accounting"])) == []


# ------------------------------------------------------- lazy-import-cycle


def _write_cycle(tmp_path, lazy: bool) -> list[Path]:
    write(tmp_path, "pkg/__init__.py", "")
    write(tmp_path, "pkg/core/__init__.py", "")
    write(tmp_path, "pkg/sorting/__init__.py", "")
    a = write(
        tmp_path,
        "pkg/core/alg.py",
        (
            "def run():\n    from pkg.sorting.reg import REG\n    return REG\n"
            if lazy
            else "from pkg.sorting.reg import REG\n\ndef run():\n    return REG\n"
        ),
    )
    b = write(
        tmp_path,
        "pkg/sorting/reg.py",
        "from pkg.core.alg import run\n\nREG = {'run': run}\n",
    )
    return [tmp_path / "pkg"]


def test_lazy_import_cycle_detects_module_level_cycle(tmp_path):
    paths = _write_cycle(tmp_path, lazy=False)
    findings = run_linter(paths, get_rules(["lazy-import-cycle"]))
    assert findings, "top-level import cycle not detected"
    assert rule_ids(findings) == {"lazy-import-cycle"}
    assert any("pkg.core.alg" in f.message for f in findings)


def test_lazy_import_cycle_accepts_lazy_pattern(tmp_path):
    paths = _write_cycle(tmp_path, lazy=True)
    assert run_linter(paths, get_rules(["lazy-import-cycle"])) == []


def test_package_self_imports_are_not_cycles(tmp_path):
    write(tmp_path, "pkg/__init__.py", "from pkg import mod\n")
    write(tmp_path, "pkg/mod.py", "x = 1\n")
    assert run_linter([tmp_path / "pkg"], get_rules(["lazy-import-cycle"])) == []


# -------------------------------------------------------------- wall-clock


_CLOCKED = """
import time


def timed_pass(ts):
    start = time.perf_counter()
    total = sum(ts)
    return total, time.perf_counter() - start
"""

_CLOCKED_DIRECT = """
from time import perf_counter


def timed_pass(ts):
    start = perf_counter()
    return sum(ts), perf_counter() - start
"""


def test_wall_clock_detects_time_module_calls(tmp_path):
    path = write(tmp_path, "core/bad_clock.py", _CLOCKED)
    findings = run_linter([path], get_rules(["wall-clock"]))
    assert len(findings) == 2
    assert rule_ids(findings) == {"wall-clock"}


def test_wall_clock_detects_directly_imported_clocks(tmp_path):
    path = write(tmp_path, "sorting/bad_clock.py", _CLOCKED_DIRECT)
    findings = run_linter([path], get_rules(["wall-clock"]))
    assert len(findings) == 2


def test_wall_clock_ignores_cold_paths(tmp_path):
    path = write(tmp_path, "bench/client.py", _CLOCKED)
    assert run_linter([path], get_rules(["wall-clock"])) == []


# ------------------------------------------------------- quadratic-list-op


_QUADRATIC = """
def build(ts, stats):
    piles = []
    seen = []
    for t in ts:
        piles.insert(0, t)
        if t in seen:
            continue
        seen.append(t)
    while piles:
        piles.pop(0)
    return piles
"""


def test_quadratic_list_op_detects_all_three_idioms(tmp_path):
    path = write(tmp_path, "sorting/bad_quad.py", _QUADRATIC)
    findings = run_linter([path], get_rules(["quadratic-list-op"]))
    messages = " | ".join(f.message for f in findings)
    assert "insert" in messages
    assert "pop" in messages
    assert "membership" in messages
    assert len(findings) == 3


def test_quadratic_list_op_allows_append_and_set_membership(tmp_path):
    source = (
        "def build(ts):\n"
        "    piles = []\n"
        "    seen = set()\n"
        "    for t in ts:\n"
        "        piles.append(t)\n"
        "        if t in seen:\n"
        "            continue\n"
        "        seen.add(t)\n"
        "    return piles\n"
    )
    path = write(tmp_path, "sorting/good_quad.py", source)
    assert run_linter([path], get_rules(["quadratic-list-op"])) == []


def test_quadratic_list_op_ignores_ops_outside_loops(tmp_path):
    source = "def once(piles):\n    piles.insert(0, 42)\n    return piles.pop(0)\n"
    path = write(tmp_path, "sorting/no_loop.py", source)
    assert run_linter([path], get_rules(["quadratic-list-op"])) == []


# --------------------------------------------- no-direct-metrics-mutation


_METRICS_WRITES = """
def record(engine, report):
    engine.metrics.points_written += 10
    engine.metrics.seq_flushes = 3
    engine.metrics.flush_reports.append(report)
"""

_METRICS_READS = """
def describe(engine):
    total = engine.metrics.points_written
    return {"points": total, "reports": list(engine.metrics.flush_reports)}
"""

_REGISTRY_WRITES = """
def record(engine, report):
    engine._instruments.points_written.inc(10)
    engine.flush_reports.append(report)
"""


def test_metrics_mutation_flags_direct_writes(tmp_path):
    path = write(tmp_path, "iotdb/bad_metrics.py", _METRICS_WRITES)
    findings = run_linter([path], get_rules(["no-direct-metrics-mutation"]))
    assert len(findings) == 3
    assert rule_ids(findings) == {"no-direct-metrics-mutation"}
    messages = " | ".join(f.message for f in findings)
    assert "points_written" in messages
    assert "flush_reports.append" in messages


def test_metrics_mutation_allows_reads(tmp_path):
    path = write(tmp_path, "iotdb/read_metrics.py", _METRICS_READS)
    assert run_linter([path], get_rules(["no-direct-metrics-mutation"])) == []


def test_metrics_mutation_allows_registry_instruments(tmp_path):
    path = write(tmp_path, "iotdb/good_metrics.py", _REGISTRY_WRITES)
    assert run_linter([path], get_rules(["no-direct-metrics-mutation"])) == []


def test_metrics_mutation_flags_the_old_facade_module_too(tmp_path):
    # The EngineMetrics façade is gone; nothing is exempt by module name.
    write(tmp_path, "repro/__init__.py", "")
    write(tmp_path, "repro/iotdb/__init__.py", "")
    path = write(tmp_path, "repro/iotdb/engine_metrics.py", _METRICS_WRITES)
    findings = run_linter([path], get_rules(["no-direct-metrics-mutation"]))
    assert len(findings) == 3


# ------------------------------------------------------------------ pragma


def test_allow_pragma_suppresses_findings_on_the_line(tmp_path):
    source = _CLOCKED.replace(
        "start = time.perf_counter()",
        "start = time.perf_counter()  # repro: allow(wall-clock)",
    )
    path = write(tmp_path, "core/allowed_clock.py", source)
    findings = run_linter([path], get_rules(["wall-clock"]))
    # Only the un-pragma'd second call remains.
    assert len(findings) == 1


def test_allow_pragma_is_rule_specific(tmp_path):
    source = _CLOCKED.replace(
        "start = time.perf_counter()",
        "start = time.perf_counter()  # repro: allow(quadratic-list-op)",
    )
    path = write(tmp_path, "core/wrong_pragma.py", source)
    findings = run_linter([path], get_rules(["wall-clock"]))
    assert len(findings) == 2


# ------------------------------------------------------------- whole tree


def test_real_source_tree_is_clean():
    source_root = Path(repro.__file__).parent
    findings = run_linter([source_root], all_rules())
    assert findings == [], "\n".join(f.render() for f in findings)
