"""Runtime concurrency sanitizer: InstrumentedLock, @holds, guarded proxies.

The static rules catch what the *source* admits; these tests exercise what
the *process* does — the ABBA that raises deterministically instead of
deadlocking, and the unguarded dict poke that raises instead of racing.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.concurrency import (
    LOCK_ORDER_GRAPH,
    InstrumentedLock,
    apply_guards,
    create_lock,
    holds,
    reset_lock_order_graph,
    set_enforcement,
)
from repro.errors import ConcurrencyError, GuardViolation, LockOrderViolation


@pytest.fixture
def enforced():
    """Turn runtime checking on, with a clean lock-order graph, for one test."""
    previous = set_enforcement(True)
    reset_lock_order_graph()
    yield
    set_enforcement(previous)
    reset_lock_order_graph()


# -------------------------------------------------------- lock-order graph


def test_abba_raises_instead_of_deadlocking(enforced):
    a = InstrumentedLock("test.A")
    b = InstrumentedLock("test.B")
    with a:
        with b:
            pass
    # The reverse ordering closes the cycle the moment it is *attempted* —
    # no second thread, no timing, no actual deadlock required.
    with b:
        with pytest.raises(LockOrderViolation) as excinfo:
            a.acquire()
    message = str(excinfo.value)
    assert "test.A" in message and "test.B" in message
    assert "first ordering" in message and "this ordering" in message


def test_abba_across_two_threads_is_deterministic(enforced):
    a = InstrumentedLock("test.A")
    b = InstrumentedLock("test.B")

    def order_ab():
        with a:
            with b:
                pass

    caught: list[BaseException] = []

    def order_ba():
        try:
            with b:
                with a:
                    pass
        except LockOrderViolation as exc:
            caught.append(exc)

    first = threading.Thread(target=order_ab)
    first.start()
    first.join()
    second = threading.Thread(target=order_ba)
    second.start()
    second.join()
    assert len(caught) == 1
    assert "test.A" in str(caught[0])


def test_consistent_order_and_reentrancy_are_silent(enforced):
    a = InstrumentedLock("test.A")
    b = InstrumentedLock("test.B")
    for _ in range(3):
        with a:
            with a:  # re-entrant: no self-edge
                with b:
                    pass
    assert LOCK_ORDER_GRAPH.edges() == [("test.A", "test.B")]


def test_transitive_cycles_are_detected(enforced):
    a = InstrumentedLock("test.A")
    b = InstrumentedLock("test.B")
    c = InstrumentedLock("test.C")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with pytest.raises(LockOrderViolation):
            a.acquire()


def test_release_by_non_owner_raises(enforced):
    lock = InstrumentedLock("test.A")
    with pytest.raises(ConcurrencyError):
        lock.release()


def test_create_lock_is_plain_when_enforcement_is_off():
    previous = set_enforcement(False)
    try:
        assert not isinstance(create_lock("test.Off"), InstrumentedLock)
    finally:
        set_enforcement(previous)


# ------------------------------------------------------------------ @holds


class _Holder:
    GUARDED_BY = {"_items": "_lock"}

    def __init__(self):
        self._lock = create_lock("test.Holder._lock")
        self._items: dict = {}
        apply_guards(self)

    @holds("_lock")
    def _merge_locked(self, other):
        self._items.update(other)

    def merge(self, other):
        with self._lock:
            self._merge_locked(other)


def test_holds_asserts_the_lock_is_held(enforced):
    holder = _Holder()
    with pytest.raises(GuardViolation, match="_merge_locked"):
        holder._merge_locked({"a": 1})
    holder.merge({"a": 1})  # the locked path is fine
    with holder._lock:
        assert holder._items == {"a": 1}


# ------------------------------------------------------- guarded proxies


def test_unguarded_dict_access_raises(enforced):
    holder = _Holder()
    with pytest.raises(GuardViolation, match="Holder._items"):
        holder._items["a"] = 1
    with pytest.raises(GuardViolation):
        len(holder._items)
    with holder._lock:
        holder._items["a"] = 1
        assert holder._items["a"] == 1


def test_apply_guards_is_idempotent_and_rewraps_rebinds(enforced):
    holder = _Holder()
    wrapped = type(holder.__dict__["_items"])
    apply_guards(holder)
    assert type(holder.__dict__["_items"]) is wrapped  # not double-wrapped
    with holder._lock:
        holder._items = {"fresh": True}  # rebind drops the proxy
    apply_guards(holder)
    with pytest.raises(GuardViolation):
        holder._items["fresh"]


def test_apply_guards_is_a_noop_when_enforcement_is_off():
    previous = set_enforcement(False)
    try:
        holder = _Holder()
        holder._items["a"] = 1  # plain dict, no assertion
        assert holder._items == {"a": 1}
    finally:
        set_enforcement(previous)


# ----------------------------------------------------- engine smoke test


def test_engine_survives_two_writer_threads_under_enforcement(enforced):
    from repro.iotdb import IoTDBConfig, StorageEngine

    engine = StorageEngine.create(IoTDBConfig(memtable_flush_threshold=200))
    errors: list[BaseException] = []

    def writer(device: str) -> None:
        try:
            for t in range(300):
                engine.write(device, "s", t, float(t))
        except BaseException as exc:  # noqa: BLE001 - surface to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(f"d{i}",), name=f"writer-{i}")
        for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    engine.flush_all()
    for i in range(2):
        result = engine.query(f"d{i}", "s", 0, 300)
        assert result.timestamps == list(range(300))


def test_sharded_engine_survives_concurrent_writers_under_enforcement(enforced):
    # Four writer threads against a four-shard engine with a flush pool:
    # the full engine -> shard -> {memtable, wal} lock order is exercised
    # with real overlap, and the sanitizer must observe no violation.
    from repro.iotdb import IoTDBConfig, StorageEngine

    engine = StorageEngine.create(
        IoTDBConfig(memtable_flush_threshold=100, shards=4, flush_workers=2)
    )
    errors: list[BaseException] = []

    def writer(index: int) -> None:
        try:
            device = f"root.sg.d{index}"
            for lo in range(0, 300, 50):
                engine.write_batch(
                    device,
                    "s",
                    list(range(lo, lo + 50)),
                    [float(t) for t in range(lo, lo + 50)],
                )
        except BaseException as exc:  # noqa: BLE001 - surface to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(i,), name=f"shard-writer-{i}")
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    engine.flush_all()
    for i in range(4):
        result = engine.query(f"root.sg.d{i}", "s", 0, 300)
        assert result.timestamps == list(range(300))
    engine.close()
