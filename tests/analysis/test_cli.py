"""``repro-analyze`` CLI tests: exit codes, formats, rule selection."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.rules import available_rules

_VIOLATION = (
    "import time\n"
    "\n"
    "def timed(ts):\n"
    "    return time.perf_counter()\n"
)


def write_fixture(tmp_path: Path) -> Path:
    path = tmp_path / "core" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text(_VIOLATION, encoding="utf-8")
    return path


def test_clean_tree_exits_zero(tmp_path, capsys):
    path = tmp_path / "sorting" / "ok.py"
    path.parent.mkdir(parents=True)
    path.write_text("x = 1\n", encoding="utf-8")
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_findings_exit_nonzero_and_render_locations(tmp_path, capsys):
    path = write_fixture(tmp_path)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}:4" in out
    assert "[wall-clock]" in out


def test_json_format_is_machine_readable(tmp_path, capsys):
    write_fixture(tmp_path)
    assert main(["--format", "json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "wall-clock"
    assert payload["findings"][0]["line"] == 4
    assert set(payload["rules"]) == set(available_rules())


def test_rules_flag_limits_the_run(tmp_path, capsys):
    write_fixture(tmp_path)
    # The violation is a wall-clock one; running only the quadratic rule
    # must come back clean.
    assert main(["--rules", "quadratic-list-op", str(tmp_path)]) == 0
    assert main(["--rules", "quadratic-list-op,wall-clock", str(tmp_path)]) == 1
    capsys.readouterr()


def test_unknown_rule_is_a_usage_error(tmp_path, capsys):
    assert main(["--rules", "bogus", str(tmp_path)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_exclude_rule_skips_the_named_rule(tmp_path, capsys):
    write_fixture(tmp_path)
    # The fixture violates wall-clock; excluding that rule leaves a clean run.
    assert main(["--exclude-rule", "wall-clock", str(tmp_path)]) == 0
    assert main(["--exclude-rule", "quadratic-list-op", str(tmp_path)]) == 1
    capsys.readouterr()


def test_exclude_rule_composes_with_rules(tmp_path, capsys):
    write_fixture(tmp_path)
    assert (
        main(
            [
                "--rules",
                "wall-clock,quadratic-list-op",
                "--exclude-rule",
                "wall-clock",
                str(tmp_path),
            ]
        )
        == 0
    )
    capsys.readouterr()


def test_exclude_rule_is_repeatable_and_comma_separated(tmp_path, capsys):
    write_fixture(tmp_path)
    assert (
        main(
            [
                "--exclude-rule",
                "wall-clock,quadratic-list-op",
                "--exclude-rule",
                "parallel-arrays",
                str(tmp_path),
            ]
        )
        == 0
    )
    payload_rules = None
    capsys.readouterr()
    assert main(["--format", "json", "--exclude-rule", "wall-clock", str(tmp_path)]) == 0
    payload_rules = json.loads(capsys.readouterr().out)["rules"]
    assert "wall-clock" not in payload_rules
    assert set(payload_rules) == set(available_rules()) - {"wall-clock"}


def test_exclude_unknown_rule_is_a_usage_error(tmp_path, capsys):
    assert main(["--exclude-rule", "bogus", str(tmp_path)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in available_rules():
        assert rule_id in out
