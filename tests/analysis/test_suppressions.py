"""Per-rule pragma coverage: ``# repro: allow(<id>)`` suppresses exactly
the named rule, for EVERY registered rule.

The fixtures below seed one violation per rule; the tests run the rule,
append the pragma to each reported line, and require (a) the named pragma
silences the rule and (b) a pragma naming a *different* rule does not.
A final test pins the fixture map to the registry, so adding a rule
without a suppression fixture fails here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.linter import run_linter
from repro.analysis.rules import available_rules, get_rules

#: rule id -> [(relative path, source)] seeding at least one finding.
FIXTURES: dict[str, list[tuple[str, str]]] = {
    "parallel-arrays": [
        (
            "sorting/desync.py",
            "def shift_left(ts, vs, stats):\n"
            "    moves = 0\n"
            "    for i in range(1, len(ts)):\n"
            "        ts[i - 1] = ts[i]\n"
            "        moves += 1\n"
            "    stats.moves += moves\n",
        )
    ],
    "stats-accounting": [
        (
            "sorting/uncounted.py",
            "def reverse_pairs(ts, vs):\n"
            "    for i in range(len(ts) // 2):\n"
            "        j = len(ts) - 1 - i\n"
            "        ts[i], ts[j] = ts[j], ts[i]\n"
            "        vs[i], vs[j] = vs[j], vs[i]\n",
        )
    ],
    "lazy-import-cycle": [
        ("pkg/__init__.py", ""),
        ("pkg/core/__init__.py", ""),
        (
            "pkg/core/alg.py",
            "from pkg.sorting.reg import REG\n\n\ndef run():\n    return REG\n",
        ),
        ("pkg/sorting/__init__.py", ""),
        (
            "pkg/sorting/reg.py",
            "from pkg.core.alg import run\n\nREG = {'run': run}\n",
        ),
    ],
    "wall-clock": [
        (
            "core/clocked.py",
            "import time\n\n\ndef timed(ts):\n    return time.perf_counter()\n",
        )
    ],
    "quadratic-list-op": [
        (
            "sorting/quadratic.py",
            "def drain(piles):\n"
            "    while piles:\n"
            "        piles.pop(0)\n"
            "    return piles\n",
        )
    ],
    "no-direct-metrics-mutation": [
        (
            "iotdb/poke.py",
            "def record(engine):\n    engine.metrics.points_written += 10\n",
        )
    ],
    "guarded-by": [
        (
            "iotdb/table.py",
            "class Table:\n"
            "    GUARDED_BY = {'_chunks': '_lock'}\n"
            "\n"
            "    def __init__(self):\n"
            "        self._lock = object()\n"
            "        self._chunks = {}\n"
            "\n"
            "    def size(self):\n"
            "        return len(self._chunks)\n",
        )
    ],
    "lock-order": [
        (
            "iotdb/abba.py",
            "class Engine:\n"
            "    def seal(self):\n"
            "        with self._table_lock:\n"
            "            with self._wal_lock:\n"
            "                pass\n"
            "\n"
            "    def replay(self):\n"
            "        with self._wal_lock:\n"
            "            with self._table_lock:\n"
            "                pass\n",
        )
    ],
    "shared-state-escape": [("core/state.py", "cache = {}\n")],
}


def _materialise(tmp_path: Path, files: list[tuple[str, str]]) -> Path:
    for relpath, source in files:
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def _annotate(findings, pragma: str) -> None:
    """Append ``pragma`` to every (file, line) a finding points at."""
    seen: set[tuple[str, int]] = set()
    for finding in findings:
        key = (finding.path, finding.line)
        if key in seen:
            continue
        seen.add(key)
        path = Path(finding.path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[finding.line - 1] = f"{lines[finding.line - 1]}  {pragma}"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_allow_pragma_suppresses_the_named_rule(rule_id, tmp_path):
    root = _materialise(tmp_path, FIXTURES[rule_id])
    rules = get_rules([rule_id])
    findings = run_linter([root], rules)
    assert findings, f"fixture for {rule_id} seeded no finding"
    assert {f.rule_id for f in findings} == {rule_id}
    _annotate(findings, f"# repro: allow({rule_id})")
    assert run_linter([root], rules) == []


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_allow_pragma_for_another_rule_does_not_suppress(rule_id, tmp_path):
    root = _materialise(tmp_path, FIXTURES[rule_id])
    rules = get_rules([rule_id])
    findings = run_linter([root], rules)
    assert findings
    other = next(r for r in sorted(available_rules()) if r != rule_id)
    _annotate(findings, f"# repro: allow({other})")
    still = run_linter([root], rules)
    assert len(still) == len(findings), (
        f"allow({other}) must not silence {rule_id}"
    )


def test_every_registered_rule_has_a_suppression_fixture():
    assert set(FIXTURES) == set(available_rules())
