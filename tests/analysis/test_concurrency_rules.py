"""Static concurrency rules: guarded-by, lock-order, shared-state-escape.

Each fixture seeds one deliberate discipline violation plus a compliant
twin, mirroring the retrofit idioms the real tree uses (GUARDED_BY maps,
``# repro: guarded_by(...)`` pragmas, ``@holds`` helpers, with-nesting).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.linter import run_linter
from repro.analysis.rules import get_rules


def write(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def rule_ids(findings) -> set[str]:
    return {finding.rule_id for finding in findings}


# -------------------------------------------------------------- guarded-by


_UNGUARDED_READ = """
class Table:
    GUARDED_BY = {"_chunks": "_lock"}

    def __init__(self):
        self._lock = object()
        self._chunks = {}

    def size(self):
        return len(self._chunks)

    def reset(self):
        with self._lock:
            self._chunks.clear()
"""

_HOLDS_HELPER = """
from repro.analysis.concurrency import holds


class Table:
    GUARDED_BY = {"_chunks": "_lock"}

    def __init__(self):
        self._lock = object()
        self._chunks = {}

    @holds("_lock")
    def _merge_locked(self, other):
        self._chunks.update(other)

    def merge(self, other):
        with self._lock:
            self._merge_locked(other)
"""

_PRAGMA_DECLARED = """
class Wal:
    def __init__(self):
        self._lock = object()
        self._next_id = 1  # repro: guarded_by(_lock)

    def bump(self):
        self._next_id += 1

    def bump_safely(self):
        with self._lock:
            self._next_id += 1
"""


def test_guarded_by_flags_access_outside_the_lock(tmp_path):
    path = write(tmp_path, "iotdb/table.py", _UNGUARDED_READ)
    findings = run_linter([path], get_rules(["guarded-by"]))
    assert len(findings) == 1
    assert findings[0].rule_id == "guarded-by"
    assert "Table._chunks" in findings[0].message
    assert "with self._lock" in findings[0].message


def test_guarded_by_accepts_holds_annotated_helpers(tmp_path):
    path = write(tmp_path, "iotdb/holds.py", _HOLDS_HELPER)
    assert run_linter([path], get_rules(["guarded-by"])) == []


def test_guarded_by_honours_the_attribute_pragma(tmp_path):
    path = write(tmp_path, "iotdb/wal.py", _PRAGMA_DECLARED)
    findings = run_linter([path], get_rules(["guarded-by"]))
    assert len(findings) == 1
    assert "Wal._next_id" in findings[0].message
    # bump_safely (same mutation, under the lock) produced no finding.
    assert all("bump_safely" not in f.message for f in findings)


def test_guarded_by_exempts_constructors(tmp_path):
    # The fixtures assign guarded attrs in __init__ freely; a clean run of
    # the compliant twin is the explicit form of that guarantee.
    path = write(tmp_path, "iotdb/ctor.py", _HOLDS_HELPER)
    assert run_linter([path], get_rules(["guarded-by"])) == []


# -------------------------------------------------------------- lock-order


_AB_ORDER = """
class Engine:
    def seal(self):
        with self._table_lock:
            with self._wal_lock:
                pass
"""

_BA_ORDER = """
class Engine:
    def replay(self):
        with self._wal_lock:
            with self._table_lock:
                pass
"""

_NON_LOCK_NESTING = """
class Engine:
    def export(self, path):
        with self._table_lock:
            with open(path) as handle:
                return handle.read()
"""


def test_lock_order_detects_a_cross_module_abba_cycle(tmp_path):
    write(tmp_path, "iotdb/seal.py", _AB_ORDER)
    write(tmp_path, "iotdb/replay.py", _BA_ORDER)
    findings = run_linter([tmp_path], get_rules(["lock-order"]))
    assert len(findings) == 1
    assert "lock-order cycle" in findings[0].message
    assert "Engine._table_lock" in findings[0].message
    assert "Engine._wal_lock" in findings[0].message


def test_lock_order_accepts_a_consistent_global_order(tmp_path):
    write(tmp_path, "iotdb/seal.py", _AB_ORDER)
    write(tmp_path, "iotdb/seal_again.py", _AB_ORDER.replace("seal", "seal2"))
    assert run_linter([tmp_path], get_rules(["lock-order"])) == []


def test_lock_order_ignores_non_lock_context_managers(tmp_path):
    write(tmp_path, "iotdb/export.py", _NON_LOCK_NESTING)
    write(tmp_path, "iotdb/replay.py", _BA_ORDER)
    # open() nested under _table_lock is not a lock edge; only the single
    # wal->table edge exists, so there is no cycle.
    assert run_linter([tmp_path], get_rules(["lock-order"])) == []


# ------------------------------------------------------ shared-state-escape


def test_escape_flags_lowercase_module_globals(tmp_path):
    path = write(tmp_path, "core/state.py", "cache = {}\n")
    findings = run_linter([path], get_rules(["shared-state-escape"]))
    assert len(findings) == 1
    assert "cache" in findings[0].message


def test_escape_accepts_frozen_constant_tables(tmp_path):
    path = write(tmp_path, "core/tables.py", "_CODECS = {'plain': None}\n")
    assert run_linter([path], get_rules(["shared-state-escape"])) == []


def test_escape_flags_constant_tables_the_module_mutates(tmp_path):
    source = "_CODECS = {}\n\ndef register(name, codec):\n    _CODECS[name] = codec\n"
    path = write(tmp_path, "core/mutable_table.py", source)
    findings = run_linter([path], get_rules(["shared-state-escape"]))
    assert len(findings) == 1
    assert "is mutated in this module" in findings[0].message


def test_escape_flags_global_rebinds(tmp_path):
    source = "_count = 0\n\ndef bump():\n    global _count\n    _count += 1\n"
    path = write(tmp_path, "core/rebind.py", source)
    findings = run_linter([path], get_rules(["shared-state-escape"]))
    assert any("global _count" in f.message for f in findings)


def test_escape_flags_mutable_class_attributes(tmp_path):
    source = "class C:\n    cache = {}\n"
    path = write(tmp_path, "core/classattr.py", source)
    findings = run_linter([path], get_rules(["shared-state-escape"]))
    assert len(findings) == 1
    assert "C.cache" in findings[0].message


def test_escape_exempts_the_guarded_by_declaration(tmp_path):
    source = "class C:\n    GUARDED_BY = {'_items': '_lock'}\n"
    path = write(tmp_path, "core/decl.py", source)
    assert run_linter([path], get_rules(["shared-state-escape"])) == []


_LEAKY = """
class Store:
    GUARDED_BY = {"_items": "_lock"}

    def __init__(self):
        self._lock = object()
        self._items = {}

    def items(self):
        with self._lock:
            return self._items
"""

_COPYING = """
class Store:
    GUARDED_BY = {"_items": "_lock"}

    def __init__(self):
        self._lock = object()
        self._items = {}

    def items(self):
        with self._lock:
            return dict(self._items)
"""

_SCALAR_GUARDED = """
class Counter:
    GUARDED_BY = {"_total": "_lock"}

    def __init__(self):
        self._lock = object()
        self._total = 0

    def total(self):
        with self._lock:
            return self._total
"""


def test_escape_flags_methods_leaking_guarded_collections(tmp_path):
    path = write(tmp_path, "core/leaky.py", _LEAKY)
    findings = run_linter([path], get_rules(["shared-state-escape"]))
    assert len(findings) == 1
    assert "Store.items" in findings[0].message
    assert "_items" in findings[0].message


def test_escape_accepts_copies_of_guarded_collections(tmp_path):
    path = write(tmp_path, "core/copying.py", _COPYING)
    assert run_linter([path], get_rules(["shared-state-escape"])) == []


def test_escape_ignores_guarded_scalars(tmp_path):
    # GUARDED_BY may cover ints/enums (guarded, but not aliasable);
    # returning them is not an escape.
    path = write(tmp_path, "core/scalar.py", _SCALAR_GUARDED)
    assert run_linter([path], get_rules(["shared-state-escape"])) == []
