"""The docs-link checker: unit behaviour and the repo-wide gate."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.doclinks import (
    check_file,
    check_tree,
    extract_links,
    main,
    markdown_files,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExtraction:
    def test_inline_links_with_lines(self):
        text = "intro\nsee [spec](docs/STORAGE.md) and [api](docs/API.md#anchor)\n"
        assert extract_links(text) == [
            (2, "docs/STORAGE.md"),
            (2, "docs/API.md#anchor"),
        ]

    def test_titles_and_images(self):
        text = '![shot](img.png "a title") and [x](a.md)'
        assert [t for _, t in extract_links(text)] == ["img.png", "a.md"]


class TestChecking:
    def test_reports_missing_relative_target(self, tmp_path):
        (tmp_path / "a.md").write_text("[gone](missing.md)\n")
        broken = check_tree(tmp_path)
        assert len(broken) == 1
        assert broken[0].target == "missing.md"
        assert broken[0].line == 1

    def test_resolves_relative_to_linking_file(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "a.md").write_text("[up](../README.md)\n[peer](b.md)\n")
        (docs / "b.md").write_text("ok\n")
        (tmp_path / "README.md").write_text("[down](docs/a.md)\n")
        assert check_tree(tmp_path) == []

    def test_ignores_external_and_anchor_links(self, tmp_path):
        (tmp_path / "a.md").write_text(
            "[w](https://example.com/x.md) [m](mailto:a@b.c) [anchor](#local)\n"
        )
        assert check_tree(tmp_path) == []

    def test_anchor_suffix_stripped_before_resolution(self, tmp_path):
        (tmp_path / "a.md").write_text("[ok](b.md#section)\n[bad](c.md#s)\n")
        (tmp_path / "b.md").write_text("## section\n")
        broken = check_file(tmp_path / "a.md", tmp_path)
        assert [b.target for b in broken] == ["c.md#s"]

    def test_skips_git_and_cache_dirs(self, tmp_path):
        hidden = tmp_path / ".git" / "x"
        hidden.mkdir(parents=True)
        (hidden / "junk.md").write_text("[gone](nowhere.md)\n")
        assert markdown_files(tmp_path) == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        (tmp_path / "ok.md").write_text("plain\n")
        assert main([str(tmp_path)]) == 0
        (tmp_path / "bad.md").write_text("[x](gone.md)\n")
        assert main([str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "bad.md:1" in err and "gone.md" in err


class TestRepositoryDocs:
    def test_every_relative_link_in_this_repo_resolves(self):
        broken = check_tree(REPO_ROOT)
        assert broken == [], "\n".join(str(b) for b in broken)

    def test_storage_spec_is_linked_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/STORAGE.md" in readme
