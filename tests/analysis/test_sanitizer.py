"""Runtime sort-sanitizer tests: injected bugs must be caught.

The two headline cases from the acceptance criteria — an injected stats
undercount and an injected ts/vs desync — plus the remaining post-conditions
(sortedness, length preservation, monotone stats) and the activation
surfaces (``REPRO_SANITIZE``, the ``Sorter.sort`` hook, the registry's
``sanitize=`` knob).
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    SanitizerViolation,
    SanitizingSorter,
    TracingList,
    install,
    run_sanitized,
    sanitize_enabled,
    uninstall,
)
from repro.core import sorter as sorter_module
from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter, insertion_sort_range
from repro.sorting.registry import get_sorter


@pytest.fixture
def hook_state():
    """Snapshot and restore the global sanitize-hook state around a test."""
    saved = sorter_module._HOOK_STATE.hook
    yield
    sorter_module._HOOK_STATE.hook = saved


class HonestSorter(Sorter):
    """Correct insertion sort with full stats accounting."""

    name = "honest"
    stable = True

    def _sort(self, ts, vs, stats):
        insertion_sort_range(ts, vs, 0, len(ts), stats)


class DesyncSorter(Sorter):
    """Sorts timestamps but leaves the values behind (pair desync)."""

    name = "desync"

    def _sort(self, ts, vs, stats):
        ts.sort()
        stats.comparisons += len(ts)
        stats.moves += len(ts)


class UndercountSorter(Sorter):
    """Moves pairs correctly but forgets to count the moves."""

    name = "undercount"

    def _sort(self, ts, vs, stats):
        for i in range(1, len(ts)):
            j = i
            while j > 0 and ts[j - 1] > ts[j]:
                stats.comparisons += 1
                ts[j - 1], ts[j] = ts[j], ts[j - 1]
                vs[j - 1], vs[j] = vs[j], vs[j - 1]
                j -= 1
            stats.comparisons += 1


class LazySorter(Sorter):
    """Does nothing at all (output stays unsorted)."""

    name = "lazy"

    def _sort(self, ts, vs, stats):
        stats.comparisons += 1


class ShrinkingSorter(Sorter):
    """Drops an element (length change)."""

    name = "shrinking"

    def _sort(self, ts, vs, stats):
        ts.sort()
        ts.pop()
        vs.pop()
        stats.comparisons += len(ts)
        stats.moves += 3 * len(ts)


class RewindingSorter(Sorter):
    """Sorts correctly but rewinds a counter (non-monotone stats)."""

    name = "rewinding"

    def _sort(self, ts, vs, stats):
        insertion_sort_range(ts, vs, 0, len(ts), stats)
        stats.comparisons = -1


def unsorted_input():
    ts = [5, 1, 4, 2, 3]
    vs = ["a", "b", "c", "d", "e"]
    return ts, vs


def test_honest_sorter_passes():
    ts, vs = unsorted_input()
    stats = HonestSorter().sort(ts, vs)
    run_sanitized(HonestSorter(), *unsorted_input(), SortStats())
    assert ts == sorted(ts)
    assert stats.moves > 0


def test_sanitizer_catches_pair_desync():
    ts, vs = unsorted_input()
    with pytest.raises(SanitizerViolation, match="did not permute"):
        run_sanitized(DesyncSorter(), ts, vs, SortStats())


def test_sanitizer_catches_stats_undercount():
    ts, vs = unsorted_input()
    with pytest.raises(SanitizerViolation, match="under-counted moves"):
        run_sanitized(UndercountSorter(), ts, vs, SortStats())


def test_sanitizer_catches_unsorted_output():
    ts, vs = unsorted_input()
    with pytest.raises(SanitizerViolation, match="not sorted"):
        run_sanitized(LazySorter(), ts, vs, SortStats())


def test_sanitizer_catches_length_change():
    ts, vs = unsorted_input()
    with pytest.raises(SanitizerViolation, match="changed array lengths"):
        run_sanitized(ShrinkingSorter(), ts, vs, SortStats())


def test_sanitizer_catches_non_monotone_stats():
    ts, vs = unsorted_input()
    with pytest.raises(SanitizerViolation, match="decreased stats.comparisons"):
        run_sanitized(RewindingSorter(), ts, vs, SortStats())


def test_sanitized_sort_still_mutates_caller_lists():
    ts, vs = unsorted_input()
    pairs = sorted(zip(ts, vs))
    run_sanitized(HonestSorter(), ts, vs, SortStats())
    assert list(zip(ts, vs)) == pairs


# ------------------------------------------------------------- activation


def test_sanitize_enabled_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize_enabled()
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitize_enabled(), value
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitize_enabled()


def test_install_routes_sorter_sort_through_sanitizer(hook_state):
    install()
    try:
        with pytest.raises(SanitizerViolation):
            DesyncSorter().sort(*unsorted_input())
        # Honest sorters keep working through the hook.
        ts, vs = unsorted_input()
        HonestSorter().sort(ts, vs)
        assert ts == sorted(ts)
    finally:
        uninstall()
    # After uninstall the broken sorter passes silently again: timestamps
    # sorted, values left behind in arrival order (the desync undetected).
    ts, vs = unsorted_input()
    DesyncSorter().sort(ts, vs)
    assert ts == sorted(ts)
    assert vs == ["a", "b", "c", "d", "e"]


def test_env_var_activates_hook_on_first_sort(hook_state, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sorter_module._HOOK_STATE.hook = sorter_module._UNRESOLVED
    with pytest.raises(SanitizerViolation):
        DesyncSorter().sort(*unsorted_input())


def test_registry_sanitize_flag_wraps_sorter():
    wrapped = get_sorter("backward", sanitize=True)
    assert isinstance(wrapped, SanitizingSorter)
    ts, vs = unsorted_input()
    stats = wrapped.sort(ts, vs)
    assert ts == sorted(ts)
    assert stats.moves > 0
    # Inner-sorter attributes stay reachable through the wrapper.
    assert wrapped.last_block_size is not None
    assert get_sorter("backward", sanitize=False).name == "backward"


def test_sanitizing_sorter_timed_sort():
    wrapped = SanitizingSorter(HonestSorter())
    ts, vs = unsorted_input()
    result = wrapped.timed_sort(ts, vs)
    assert ts == sorted(ts)
    assert result.seconds >= 0.0
    assert result.stats.moves > 0


def test_nested_sorts_are_not_double_sanitized():
    class OuterSorter(Sorter):
        name = "outer"

        def _sort(self, ts, vs, stats):
            # The inner sort sees the depth guard and runs unsanitized —
            # an inner desync surfaces as the OUTER sorter's violation.
            DesyncSorter().sort(ts, vs, stats)

    with pytest.raises(SanitizerViolation, match="'outer'"):
        run_sanitized(OuterSorter(), *unsorted_input(), SortStats())


# ------------------------------------------------------------ tracing list


def test_tracing_list_counts_writes():
    traced = TracingList([3, 1, 2])
    traced[0] = 9
    assert traced.writes == 1
    traced[0:2] = [7, 8]
    assert traced.writes == 3
    traced.append(1)
    traced.extend([2, 3])
    traced.insert(0, 0)
    assert traced.writes == 7
    traced.pop()
    traced.remove(0)
    assert traced.writes == 9
    length = len(traced)
    traced.sort()
    assert traced.writes == 9 + length
    traced.reverse()
    assert traced.writes == 9 + 2 * length


def test_tracing_list_slices_are_plain_lists():
    traced = TracingList([3, 1, 2])
    assert type(traced[0:2]) is list
