"""S1: property tests — the WAL round-trips and tolerates any truncation.

Two properties the crash harness leans on:

* **Round-trip**: any sequence of records (all supported value types)
  replays exactly as written.
* **Prefix under truncation**: chopping the encoded log at *every* byte
  offset yields a clean prefix of the written records — non-strict replay
  never raises, and ``strict=True`` raises exactly when the tail is torn
  (i.e. the cut is not on a record boundary).
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WalCorruptionError
from repro.iotdb import WriteAheadLog

_names = st.text(alphabet="abcdef_.0123456789", min_size=1, max_size=8)
_values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**60), max_value=2**60),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_records = st.lists(
    st.tuples(
        _names, _names, st.integers(min_value=-(2**60), max_value=2**60), _values
    ),
    min_size=0,
    max_size=5,
)


def _encode(records) -> tuple[bytes, list[int]]:
    """Encode records; returns the log bytes and each record's end offset."""
    buf = io.BytesIO()
    wal = WriteAheadLog(buf)
    boundaries = [0]
    for record in records:
        wal.append(*record)
        boundaries.append(buf.tell())
    return buf.getvalue(), boundaries


@settings(max_examples=80)
@given(records=_records)
def test_roundtrip(records):
    data, _ = _encode(records)
    wal = WriteAheadLog(io.BytesIO(data))
    assert list(wal.replay()) == records
    assert list(wal.replay(strict=True)) == records


@settings(max_examples=25)
@given(records=_records.filter(bool))
def test_truncation_at_every_byte_offset_replays_a_clean_prefix(records):
    data, boundaries = _encode(records)
    for offset in range(len(data) + 1):
        truncated = WriteAheadLog(io.BytesIO(data[:offset]))
        replayed = list(truncated.replay())  # non-strict: must never raise
        # Exactly the records whose bytes fully fit before the cut.
        complete = max(i for i, end in enumerate(boundaries) if end <= offset)
        assert replayed == records[:complete]

        strict = WriteAheadLog(io.BytesIO(data[:offset]))
        if offset in boundaries:
            # Cut on a record boundary: a clean (shorter) log, not a torn one.
            assert list(strict.replay(strict=True)) == records[:complete]
        else:
            with pytest.raises(WalCorruptionError):
                list(strict.replay(strict=True))


@settings(max_examples=40)
@given(records=_records.filter(bool), data=st.data())
def test_strict_errors_name_the_failing_record(records, data):
    encoded, boundaries = _encode(records)
    offset = data.draw(
        st.integers(min_value=1, max_value=len(encoded) - 1).filter(
            lambda o: o not in boundaries
        ),
        label="cut offset",
    )
    torn = WriteAheadLog(io.BytesIO(encoded[:offset]))
    failing = max(i for i, end in enumerate(boundaries) if end <= offset)
    with pytest.raises(WalCorruptionError, match=f"at record {failing}"):
        list(torn.replay(strict=True))
