"""The in-memory oracle the differential and crash tests share.

Re-exported from :mod:`repro.faults.oracle` so test code imports it from
one place; the crash harness uses the same model as its ground truth.
"""

from repro.faults.oracle import OracleModel

__all__ = ["OracleModel"]
