"""Tests for repro.faults: fault injection and crash consistency."""
