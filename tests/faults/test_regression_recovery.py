"""Pinned regressions: recovery bugs the crash harness exposed in the seed.

Each test encodes a specific pre-existing write-path bug and the behaviour
that fixes it:

1. **WAL buffered acknowledged writes** — ``WriteAheadLog.append`` never
   flushed, so a crash right after an acknowledged write lost it to the
   user-space buffer (pinned in ``test_memtable_wal.py`` at the codec
   level; here end-to-end through the engine).
2. **Shared-WAL truncate lost acked writes** — the flush path truncated
   one shared WAL per space, destroying coverage for every point
   acknowledged after the memtable retired (deferred mode, or simply the
   points routed to the *new* working memtable while flushing).  Fixed by
   per-memtable WAL segments dropped only after their memtable seals.
3. **Torn TsFile broke recovery** — a crash mid-flush left a partial
   ``.tsfile`` that made ``StorageEngine.open`` raise while parsing.
   Fixed by writing sinks under ``.part`` and renaming only after the
   bytes are flushed.
4. **Failed flush wedged the memtable** — an I/O failure during flush had
   no handling: the partial sink stayed registered and the points were
   neither queryable nor retryable.  Fixed: the memtable stays queued,
   the sink is discarded, and a later drain retries cleanly.
5. **Compaction crash between unlinks** — overlapping sequence files
   survive a crash mid-swap; queries must stay exact and the aggregation
   statistics fast path must not double-count them.
6. **Unstable sort lost overwrites** — duplicate timestamps in one
   memtable went through the (unstable) default sorter before dedupe, so
   "keep the last of the tie group" picked an arbitrary arrival; the
   older value could shadow the newer one.  Fixed by collapsing
   duplicates in arrival order *before* the sort (``dedupe_arrival``).
7. **Damaged interval index must rebuild, never mislead** — a torn, stale,
   or missing ``interval-index.json`` (crash at ``index.write`` /
   ``index.swap``, or plain disk damage) must be detected on open and
   rebuilt from the sealed TsFiles; believing it would let queries prune
   files that actually hold in-range points.
"""

from __future__ import annotations

import pytest

from repro.errors import InjectedCrashError, InjectedFaultError
from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.faults.crash import CrashSimulator
from repro.iotdb import IoTDBConfig, Space, StorageEngine


def _config(tmp_path, **kw):
    defaults = dict(
        data_dir=tmp_path / "data",
        wal_enabled=True,
        memtable_flush_threshold=50,
    )
    defaults.update(kw)
    return IoTDBConfig(**defaults)


def _recover(tmp_path, config):
    simulator = CrashSimulator(tmp_path / "data", tmp_path / "snapshot")
    simulator.snapshot()
    return simulator.reopen(config)


class TestAckedWritesSurvive:
    def test_acknowledged_write_survives_immediate_crash(self, tmp_path):
        # Bug 1: no flush-on-append meant this exact scenario lost t=1.
        config = _config(tmp_path)
        engine = StorageEngine.create(config)
        engine.write("d", "s", 1, 1.0)
        # No close, no flush: the process dies *now*.
        recovered = _recover(tmp_path, config)
        result = recovered.query("d", "s", 0, 10)
        assert (result.timestamps, result.values) == ([1], [1.0])
        recovered.close()

    def test_writes_acked_after_retire_survive_a_flush(self, tmp_path):
        # Bug 2: with one shared WAL per space, the truncate after this
        # drain destroyed coverage for the 30 post-retire writes.
        config = _config(tmp_path, deferred_flush=True)
        engine = StorageEngine.create(config)
        for t in range(50):
            engine.write("d", "s", t, float(t))  # retires at the threshold
        for t in range(50, 80):
            engine.write("d", "s", t, float(t))  # acked into the new memtable
        engine.drain_flushes()  # seals the first memtable, drops ITS segment
        shard = engine.shards[0]
        with shard._lock:
            seq_wal = shard._wals[Space.SEQUENCE]
        replayable = list(seq_wal.replay())
        assert [r[2] for r in replayable] == list(range(50, 80)), (
            "WAL no longer covers writes acknowledged after the retire"
        )
        recovered = _recover(tmp_path, config)
        assert recovered.query("d", "s", 0, 80).timestamps == list(range(80))
        recovered.close()

    def test_wal_segment_dropped_only_after_its_memtable_seals(self, tmp_path):
        config = _config(tmp_path, deferred_flush=True)
        engine = StorageEngine.create(config)
        for t in range(50):
            engine.write("d", "s", t, float(t))
        assert engine.pending_flushes() == 1
        # Crash while the flush is queued: the rotated segment must still
        # cover the retired memtable.
        recovered = _recover(tmp_path, config)
        assert recovered.query("d", "s", 0, 50).timestamps == list(range(50))
        recovered.close()


class TestTornSinkRecovery:
    def test_torn_tsfile_part_does_not_break_open(self, tmp_path):
        # Bug 3: the torn sink used to be a torn `.tsfile` that made
        # open() raise while parsing the footer.
        config = _config(tmp_path)
        plan = FaultPlan([FaultRule(site="sink.write", kind="torn", nth=3, arg=0.5)])
        engine = StorageEngine.create(config, faults=FaultInjector(plan))
        with pytest.raises(InjectedCrashError):
            for t in range(60):
                engine.write("d", "s", t, float(t))
        data_dir = tmp_path / "data"
        assert list(data_dir.rglob("*.tsfile.part")), "expected a torn sink"
        assert not list(data_dir.rglob("*.tsfile")), "no sealed file yet"

        recovered = _recover(tmp_path, config)
        assert recovered.query("d", "s", 0, 60).timestamps == list(range(50)), (
            "every acknowledged write must come back from the WAL"
        )
        recovered.close()

    def test_leftover_part_file_is_cleaned_up(self, tmp_path):
        config = _config(tmp_path)
        engine = StorageEngine.create(config)
        for t in range(60):
            engine.write("d", "s", t, float(t))
        engine.close()
        junk = tmp_path / "data" / "shard-00" / "seq-000099.tsfile.part"
        junk.write_bytes(b"partial garbage")
        reopened = StorageEngine.open(config)
        assert not junk.exists()
        assert reopened.query("d", "s", 0, 60).timestamps == list(range(60))
        reopened.close()


class TestFailedFlushRequeues:
    def test_flush_failure_keeps_memtable_queued_and_retryable(self, tmp_path):
        # Bug 4: a failing flush left no retry path and a dangling sink.
        config = _config(tmp_path)
        plan = FaultPlan([FaultRule(site="flush.perform", kind="fail", nth=1)])
        engine = StorageEngine.create(config, faults=FaultInjector(plan))
        with pytest.raises(InjectedFaultError):
            for t in range(60):
                engine.write("d", "s", t, float(t))
        assert engine.pending_flushes() == 1
        assert engine.sealed_file_count()[Space.SEQUENCE] == 0

        reports = engine.drain_flushes()  # the retry succeeds
        assert len(reports) == 1
        assert engine.pending_flushes() == 0
        assert engine.sealed_file_count()[Space.SEQUENCE] == 1
        assert engine.query("d", "s", 0, 60).timestamps == list(range(50))
        engine.close()

    def test_sink_failure_discards_partial_file_and_retries(self, tmp_path):
        config = _config(tmp_path)
        plan = FaultPlan([FaultRule(site="sink.write", kind="fail", nth=2)])
        engine = StorageEngine.create(config, faults=FaultInjector(plan))
        with pytest.raises(InjectedFaultError):
            for t in range(60):
                engine.write("d", "s", t, float(t))
        data_dir = tmp_path / "data"
        assert not list(data_dir.rglob("*.part")), "partial sink must be discarded"
        assert engine.pending_flushes() == 1
        engine.drain_flushes()
        assert engine.query("d", "s", 0, 60).timestamps == list(range(50))
        engine.close()


class TestCompactionCrash:
    def _build(self, tmp_path, faults=None):
        config = _config(tmp_path, memtable_flush_threshold=30)
        engine = StorageEngine.create(config, faults=faults)
        for t in range(90):
            engine.write("d", "s", t, float(t))
        for t in range(0, 30, 3):
            engine.write("d", "s", t, -float(t))  # late overwrites → unseq
        engine.flush_all()
        return config, engine

    def test_crash_before_unlinks_leaves_old_files_readable(self, tmp_path):
        plan = FaultPlan([FaultRule(site="compact.unlink", nth=1)])
        config, engine = self._build(tmp_path, faults=FaultInjector(plan))
        with pytest.raises(InjectedCrashError):
            engine.compact()
        # Bug 5: the compacted file AND the old files coexist on disk now.
        recovered = _recover(tmp_path, config)
        result = recovered.query("d", "s", 0, 90)
        assert result.timestamps == list(range(90))
        expected = {t: (-float(t) if t < 30 and t % 3 == 0 else float(t))
                    for t in range(90)}
        assert result.values == [expected[t] for t in range(90)]
        recovered.close()

    def test_overlapping_seq_files_do_not_double_count_aggregates(self, tmp_path):
        plan = FaultPlan([FaultRule(site="compact.unlink", nth=1)])
        config, engine = self._build(tmp_path, faults=FaultInjector(plan))
        with pytest.raises(InjectedCrashError):
            engine.compact()
        recovered = _recover(tmp_path, config)
        agg = recovered.aggregate("d", "s", 0, 90)
        assert agg.count == 90, "overlapping sequence files were double-counted"
        recovered.close()

    def test_crash_mid_unlinks_still_recovers_exact_data(self, tmp_path):
        plan = FaultPlan([FaultRule(site="compact.unlink", nth=3)])
        config, engine = self._build(tmp_path, faults=FaultInjector(plan))
        with pytest.raises(InjectedCrashError):
            engine.compact()
        recovered = _recover(tmp_path, config)
        result = recovered.query("d", "s", 0, 90)
        assert result.timestamps == list(range(90))
        assert recovered.aggregate("d", "s", 0, 90).count == 90
        recovered.close()


class TestTornIndexRebuilds:
    """Bug 7: any index damage is rebuilt on open — never believed."""

    def _build(self, tmp_path, faults=None, **kw):
        config = _config(tmp_path, memtable_flush_threshold=20, **kw)
        engine = StorageEngine.create(config, faults=faults)
        for t in range(60):
            engine.write("d", "s", t, float(t))
        for t in range(0, 20, 2):
            engine.write("d", "s", t, -float(t))  # late → unseq files
        return config, engine

    def _assert_exact(self, recovered):
        result = recovered.query("d", "s", 0, 60)
        assert result.timestamps == list(range(60))
        expected = {t: (-float(t) if t < 20 and t % 2 == 0 else float(t))
                    for t in range(60)}
        assert result.values == [expected[t] for t in range(60)]

    def _outcomes(self, engine):
        counter = engine._instruments.index_recoveries
        return {
            labels.get("outcome"): child.value
            for labels, child in counter.children()
        }

    def test_torn_index_file_rebuilds_on_open(self, tmp_path):
        config, engine = self._build(tmp_path)
        engine.close()
        index_path = tmp_path / "data" / "shard-00" / "interval-index.json"
        blob = index_path.read_bytes()
        index_path.write_bytes(blob[: len(blob) // 2])  # torn in half
        recovered = StorageEngine.open(config)
        self._assert_exact(recovered)
        assert self._outcomes(recovered).get("rebuilt-corrupt") == 1
        # The rebuild was persisted: the on-disk file parses again.
        from repro.iotdb import IntervalIndex

        assert len(IntervalIndex.load(index_path)) > 0
        recovered.close()

    def test_missing_index_file_rebuilds_on_open(self, tmp_path):
        config, engine = self._build(tmp_path)
        engine.close()
        index_path = tmp_path / "data" / "shard-00" / "interval-index.json"
        index_path.unlink()
        recovered = StorageEngine.open(config)
        self._assert_exact(recovered)
        assert self._outcomes(recovered).get("rebuilt-missing") == 1
        assert index_path.exists(), "rebuild must be persisted"
        recovered.close()

    def _build_unflushed(self, tmp_path, faults):
        # Threshold above the workload: every write is acknowledged and
        # WAL-covered before the crash is provoked via flush_all().
        config = _config(tmp_path, memtable_flush_threshold=500)
        engine = StorageEngine.create(config, faults=faults)
        for t in range(60):
            engine.write("d", "s", t, float(t))
        for t in range(0, 20, 2):
            engine.write("d", "s", t, -float(t))  # late → unseq memtable
        return config, engine

    def test_crash_at_index_swap_recovers_exact(self, tmp_path):
        # The .part is fully written but never renamed: the published
        # index is behind the sealed files (stale) or absent.
        plan = FaultPlan([FaultRule(site="index.swap", nth=1)])
        config, engine = self._build_unflushed(tmp_path, FaultInjector(plan))
        with pytest.raises(InjectedCrashError):
            engine.flush_all()
        recovered = _recover(tmp_path, config)
        self._assert_exact(recovered)
        outcomes = self._outcomes(recovered)
        assert outcomes.get("rebuilt-missing", 0) + outcomes.get(
            "rebuilt-stale", 0
        ) >= 1
        # The crash left an orphaned .part; the recovered engine (running
        # over the snapshot) must have discarded its copy.
        assert (
            tmp_path / "data" / "shard-00" / "interval-index.json.part"
        ).exists(), "expected the crash to leave a .part behind"
        part = tmp_path / "snapshot" / "shard-00" / "interval-index.json.part"
        assert not part.exists(), "recovery must discard the orphaned .part"
        recovered.close()

    def test_torn_index_write_recovers_exact(self, tmp_path):
        # The second persist (the unseq seal) tears mid-write: the .part
        # holds half an index while the published file is one seal behind.
        plan = FaultPlan([FaultRule(site="index.write", kind="torn", nth=2, arg=0.5)])
        config, engine = self._build_unflushed(tmp_path, FaultInjector(plan))
        engine.flush_all()  # persist #1: the sealed sequence file
        for t in range(0, 20, 2):
            engine.write("d", "s", t, -float(t))  # late → unseq memtable
        with pytest.raises(InjectedCrashError):
            engine.flush_all()  # persist #2 (the unseq seal) tears
        recovered = _recover(tmp_path, config)
        self._assert_exact(recovered)
        outcomes = self._outcomes(recovered)
        assert outcomes.get("rebuilt-stale", 0) >= 1
        recovered.close()

    def test_clean_shutdown_validates_without_rebuilding(self, tmp_path):
        config, engine = self._build(tmp_path)
        engine.close()
        recovered = StorageEngine.open(config)
        self._assert_exact(recovered)
        assert self._outcomes(recovered).get("validated") == 1
        recovered.close()


class TestUnstableSortOverwrites:
    """Bug 6: last-write-wins lost to the unstable sorter's tie reordering.

    Found fault-free by the ``--faults`` bench mode: two late writes to the
    same timestamp landed in one memtable, Backward-Sort's block quicksort
    reordered the tie group, and flush-time dedupe kept the *older* value.
    Duplicates are now collapsed in arrival order before the sort
    (``dedupe_arrival``).
    """

    def test_late_overwrite_wins_through_flush(self, tmp_path):
        config = _config(tmp_path, memtable_flush_threshold=200)
        engine = StorageEngine.create(config)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        # Overwrite every timestamp, still inside the same memtable.
        for t in range(100):
            engine.write("d", "s", t, float(t) + 1000.0)
        engine.flush_all()
        result = engine.query("d", "s", 0, 100)
        assert result.timestamps == list(range(100))
        assert result.values == [float(t) + 1000.0 for t in range(100)]
        engine.close()

    def test_late_overwrite_wins_through_crash_recovery(self, tmp_path):
        config = _config(tmp_path, memtable_flush_threshold=500)
        engine = StorageEngine.create(config)
        for t in range(100):
            engine.write("d", "s", t, float(t))
        for t in range(100):
            engine.write("d", "s", t, float(t) + 1000.0)
        # Crash before any flush: recovery replays the WAL in arrival order
        # and the recovered memtable must resolve overwrites the same way.
        recovered = _recover(tmp_path, config)
        recovered.flush_all()
        result = recovered.query("d", "s", 0, 100)
        assert result.values == [float(t) + 1000.0 for t in range(100)]
        recovered.close()
