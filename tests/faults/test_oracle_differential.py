"""S3: differential testing — StorageEngine.query vs the in-memory oracle.

A seeded fault-free workload (in-order and late writes, flushes,
compaction, deferred drains) runs against both the engine and
:class:`OracleModel`; random time-range queries must agree point-for-point.
The same oracle is the crash harness's ground truth, so this test is what
earns it that role.
"""

from __future__ import annotations

import random

import pytest

from repro.iotdb import IoTDBConfig, StorageEngine
from tests.faults.oracle import OracleModel


def _run_workload(engine, oracle, *, n, seed, compact_every=0, drain_every=0):
    rng = random.Random(seed)
    devices = ["d0", "d1"]
    sensors = ["s0", "s1"]
    next_t = {d: 0 for d in devices}
    for i in range(n):
        device = rng.choice(devices)
        sensor = rng.choice(sensors)
        if next_t[device] > 25 and rng.random() < 0.2:
            t = rng.randrange(next_t[device] - 25, next_t[device])
        else:
            t = next_t[device]
            next_t[device] += rng.randrange(1, 3)
        value = round(rng.uniform(-100, 100), 3)
        engine.write(device, sensor, t, value)
        oracle.write(device, sensor, t, value)
        if compact_every and (i + 1) % compact_every == 0:
            engine.compact()
        if drain_every and (i + 1) % drain_every == 0:
            engine.drain_flushes()
    return devices, sensors, max(next_t.values()) + 1


def _assert_agrees(engine, oracle, devices, sensors, horizon, seed):
    rng = random.Random(seed + 1)
    for device in devices:
        for sensor in sensors:
            # The full column plus random sub-ranges.
            ranges = [(0, horizon)] + [
                tuple(sorted(rng.sample(range(horizon + 5), 2)))
                for _ in range(15)
            ]
            for start, end in ranges:
                if start == end:
                    end += 1
                result = engine.query(device, sensor, start, end)
                expect_ts, expect_vs = oracle.query(device, sensor, start, end)
                assert result.timestamps == expect_ts, (
                    f"{device}.{sensor} [{start},{end}) timestamps diverge"
                )
                assert result.values == expect_vs, (
                    f"{device}.{sensor} [{start},{end}) values diverge"
                )


@pytest.mark.parametrize("seed", [3, 17])
@pytest.mark.parametrize(
    "mode",
    ["inline", "deferred", "compacting"],
)
def test_query_agrees_with_oracle(tmp_path, seed, mode):
    config = IoTDBConfig(
        data_dir=tmp_path / "data",
        wal_enabled=True,
        memtable_flush_threshold=50,
        deferred_flush=(mode == "deferred"),
    )
    engine = StorageEngine.create(config)
    oracle = OracleModel()
    devices, sensors, horizon = _run_workload(
        engine,
        oracle,
        n=400,
        seed=seed,
        compact_every=150 if mode == "compacting" else 0,
        drain_every=70 if mode == "deferred" else 0,
    )
    _assert_agrees(engine, oracle, devices, sensors, horizon, seed)
    engine.close()


def test_aggregate_count_matches_oracle(tmp_path):
    config = IoTDBConfig(
        data_dir=tmp_path / "data", wal_enabled=True, memtable_flush_threshold=40
    )
    engine = StorageEngine.create(config)
    oracle = OracleModel()
    devices, sensors, horizon = _run_workload(engine, oracle, n=300, seed=5)
    for device in devices:
        for sensor in sensors:
            expect_ts, _ = oracle.query(device, sensor, 0, horizon)
            assert engine.aggregate(device, sensor, 0, horizon).count == len(expect_ts)
    engine.close()
