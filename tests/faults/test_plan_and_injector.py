"""Unit tests for the fault-injection primitives (plan, injector, file, clock)."""

from __future__ import annotations

import io

import pytest

from repro.errors import (
    InjectedCrashError,
    InjectedFaultError,
    InvalidParameterError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    FaultyClock,
    FaultyFile,
    NOOP_INJECTOR,
)
from repro.obs import Observability
from repro.obs.clock import FakeClock


class TestFaultPlan:
    def test_nth_trigger_is_exact(self):
        plan = FaultPlan([FaultRule(site="wal.write", nth=3)])
        assert plan.decide("wal.write") is None
        assert plan.decide("wal.write") is None
        assert plan.decide("wal.write") is not None
        assert plan.decide("wal.write") is None  # max_fires=1 by default

    def test_calls_counted_even_without_rules(self):
        plan = FaultPlan()
        for _ in range(4):
            plan.decide("sink.write")
        plan.decide("flush.seal")
        assert plan.calls == {"sink.write": 4, "flush.seal": 1}

    def test_probability_is_seed_deterministic(self):
        def fires(seed):
            plan = FaultPlan(
                [FaultRule(site="s", probability=0.3, max_fires=None)], seed=seed
            )
            return [plan.decide("s") is not None for _ in range(50)]

        assert fires(11) == fires(11)
        assert fires(11) != fires(12)

    def test_predicate_sees_context(self):
        plan = FaultPlan(
            [FaultRule(site="s", predicate=lambda ctx: ctx.get("space") == "unseq")]
        )
        assert plan.decide("s", {"space": "seq"}) is None
        assert plan.decide("s", {"space": "unseq"}) is not None

    def test_glob_site_matching(self):
        plan = FaultPlan([FaultRule(site="compact.*", nth=1, max_fires=None)])
        assert plan.decide("compact.swap") is not None
        assert plan.decide("wal.write") is None

    def test_reset_restores_initial_state(self):
        plan = FaultPlan([FaultRule(site="s", nth=2)], seed=5)
        plan.decide("s")
        plan.decide("s")
        plan.reset()
        assert plan.calls == {}
        assert plan.decide("s") is None
        assert plan.decide("s") is not None  # fires again after reset

    def test_parse_spec(self):
        plan = FaultPlan.parse(
            "wal.write:nth=3:torn:arg=0.25, flush.perform:p=0.5:kind=fail:fires=inf"
        )
        first, second = plan.rules
        assert (first.site, first.nth, first.kind, first.arg) == (
            "wal.write", 3, "torn", 0.25,
        )
        assert (second.site, second.probability, second.kind, second.max_fires) == (
            "flush.perform", 0.5, "fail", None,
        )

    @pytest.mark.parametrize(
        "spec",
        ["", "  ,  ", "site:bogus", "site:kind=nope", "site:nth=x", "site:unknown=1"],
    )
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(InvalidParameterError):
            FaultPlan.parse(spec)

    def test_rule_validation(self):
        with pytest.raises(InvalidParameterError):
            FaultRule(site="s", kind="explode")
        with pytest.raises(InvalidParameterError):
            FaultRule(site="s", nth=0)
        with pytest.raises(InvalidParameterError):
            FaultRule(site="s", probability=1.5)


class TestFaultInjector:
    def test_crash_point_raises_injected_crash(self):
        injector = FaultInjector(FaultPlan([FaultRule(site="flush.seal", nth=1)]))
        with pytest.raises(InjectedCrashError) as err:
            injector.crash_point("flush.seal", space="seq")
        assert err.value.site == "flush.seal"
        assert err.value.call == 1

    def test_injected_crash_is_not_an_exception(self):
        # Simulated process death must bypass `except Exception` cleanup.
        assert not issubclass(InjectedCrashError, Exception)

    def test_fail_point_raises_recoverable_error(self):
        injector = FaultInjector(
            FaultPlan([FaultRule(site="flush.perform", kind="fail", nth=1)])
        )
        with pytest.raises(InjectedFaultError):
            injector.fail_point("flush.perform")
        injector.fail_point("flush.perform")  # max_fires exhausted: no-op

    def test_on_write_torn_keeps_prefix(self):
        injector = FaultInjector(
            FaultPlan([FaultRule(site="w", kind="torn", nth=1, arg=0.5)])
        )
        keep, crash = injector.on_write("w", 10)
        assert (keep, crash) == (5, True)

    def test_torn_write_never_keeps_everything(self):
        injector = FaultInjector(
            FaultPlan([FaultRule(site="w", kind="torn", nth=1, arg=1.0)])
        )
        keep, _ = injector.on_write("w", 10)
        assert keep == 9  # a torn write is torn: at least one byte lost

    def test_fired_faults_recorded_and_counted(self):
        obs = Observability()
        injector = FaultInjector(
            FaultPlan([FaultRule(site="flush.seal", nth=2)]), obs=obs
        )
        injector.crash_point("flush.seal")
        with pytest.raises(InjectedCrashError):
            injector.crash_point("flush.seal")
        assert [(f.site, f.call, f.kind) for f in injector.fired] == [
            ("flush.seal", 2, "crash")
        ]
        counter = obs.registry.counter(
            "faults_injected_total", "", ("site", "kind")
        )
        assert counter.labels(site="flush.seal", kind="crash").value == 1
        span = obs.tracer.find("fault.injected")
        assert span is not None
        assert span.attributes == {"site": "flush.seal", "call": 2, "kind": "crash"}

    def test_disarm_silences_every_hook_but_keeps_history(self):
        plan = FaultPlan(
            [FaultRule(site="*", kind="fail", probability=1.0, max_fires=None)]
        )
        injector = FaultInjector(plan)
        with pytest.raises(InjectedFaultError):
            injector.fail_point("flush.perform")
        assert len(injector.fired) == 1
        injector.disarm()
        injector.fail_point("flush.perform")  # no raise
        injector.crash_point("flush.seal")
        assert injector.on_write("wal.write", 9) == (9, False)
        assert injector.clock_offset() == 0.0
        assert len(injector.fired) == 1  # history survives
        assert not injector.armed

    def test_noop_injector_is_inert(self):
        NOOP_INJECTOR.crash_point("anything")
        NOOP_INJECTOR.fail_point("anything")
        assert NOOP_INJECTOR.on_write("w", 7) == (7, False)
        assert NOOP_INJECTOR.clock_offset() == 0.0
        sentinel = io.BytesIO()
        assert NOOP_INJECTOR.wrap_file(sentinel, site="w") is sentinel
        assert not NOOP_INJECTOR.enabled


class TestFaultyFile:
    def test_pending_bytes_are_not_durable_until_flush(self):
        inner = io.BytesIO()
        f = FaultyFile(inner, NOOP_INJECTOR, "w")
        f.write(b"abc")
        assert inner.getvalue() == b""
        assert f.pending_bytes() == 3
        f.flush()
        assert inner.getvalue() == b"abc"
        assert f.pending_bytes() == 0

    def test_reads_force_a_commit(self):
        inner = io.BytesIO()
        f = FaultyFile(inner, NOOP_INJECTOR, "w")
        f.write(b"abc")
        f.seek(0)
        assert f.read() == b"abc"

    def test_torn_write_commits_prefix_then_crashes(self):
        injector = FaultInjector(
            FaultPlan([FaultRule(site="w", kind="torn", nth=2, arg=0.5)])
        )
        inner = io.BytesIO()
        f = FaultyFile(inner, injector, "w")
        f.write(b"aaaa")  # survives (pending)
        with pytest.raises(InjectedCrashError):
            f.write(b"bbbb")
        # Pending bytes committed, then half of the torn write, then death.
        assert inner.getvalue() == b"aaaabb"

    def test_crash_write_loses_pending_tail(self):
        injector = FaultInjector(FaultPlan([FaultRule(site="w", nth=2)]))
        inner = io.BytesIO()
        f = FaultyFile(inner, injector, "w")
        f.write(b"aaaa")
        with pytest.raises(InjectedCrashError):
            f.write(b"bbbb")
        assert inner.getvalue() == b"aaaa"  # crash commits pending, drops b's

    def test_clean_close_commits(self):
        class Recorder(io.BytesIO):
            def close(self):
                self.final = self.getvalue()
                super().close()

        inner = Recorder()
        f = FaultyFile(inner, NOOP_INJECTOR, "w")
        f.write(b"abc")
        f.close()
        assert inner.final == b"abc"
        assert f.closed


class TestFaultyClock:
    def test_jump_applies_once_and_persists(self):
        injector = FaultInjector(
            FaultPlan([FaultRule(site="clock", kind="jump", nth=2, arg=30.0)])
        )
        base = FakeClock(100.0)
        clock = FaultyClock(base, injector)
        assert clock.now() == 100.0
        assert clock.now() == 130.0  # the jump
        base.advance(1.0)
        assert clock.now() == 131.0  # skew persists
        assert clock.offset == 30.0

    def test_negative_jump_stalls_instead_of_reversing(self):
        injector = FaultInjector(
            FaultPlan([FaultRule(site="clock", kind="jump", nth=2, arg=-10.0)])
        )
        base = FakeClock(100.0)
        clock = FaultyClock(base, injector)
        assert clock.now() == 100.0
        assert clock.now() == 100.0  # clamped: never goes backwards
        base.advance(20.0)
        assert clock.now() == 110.0  # resumes once real time catches up
