"""Differential testing: a sharded engine must be invisible to readers.

A ``shards=4`` engine and a ``shards=1`` engine ingest the identical
workload; every query and aggregation must return byte-identical results.
Sharding only moves *where* a column's pipeline lives — never what it
answers — across flush boundaries, deferred drains, compaction, and
recovery.  Values are integer-valued floats so aggregation sums are exact
regardless of how the points split across flush units.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iotdb import IoTDBConfig, StorageEngine

DEVICES = [f"root.sg.d{i}" for i in range(6)]
SENSORS = ["s0", "s1"]

# One op: (device index, sensor index, timestamp lateness, integer value).
_ops = st.lists(
    st.tuples(
        st.integers(0, len(DEVICES) - 1),
        st.integers(0, len(SENSORS) - 1),
        st.integers(0, 30),
        st.integers(-1000, 1000),
    ),
    min_size=1,
    max_size=120,
)


def _configs(tmp_path, threshold):
    for shards, name in ((1, "unsharded"), (4, "sharded")):
        yield IoTDBConfig(
            data_dir=tmp_path / f"{name}-{threshold}",
            wal_enabled=True,
            memtable_flush_threshold=threshold,
            shards=shards,
        )


def _ingest(engine, ops):
    next_t = {d: 0 for d in DEVICES}
    horizon = 1
    for device_i, sensor_i, lateness, value in ops:
        device = DEVICES[device_i]
        t = max(0, next_t[device] - lateness)
        next_t[device] += 2
        horizon = max(horizon, t + 1)
        engine.write(device, SENSORS[sensor_i], t, float(value))
    return horizon


def _assert_identical(engines, horizon):
    reference, candidate = engines
    for device in DEVICES:
        for sensor in SENSORS:
            ranges = [(0, horizon), (horizon // 3, 2 * horizon // 3 + 1)]
            for start, end in ranges:
                a = reference.query(device, sensor, start, end)
                b = candidate.query(device, sensor, start, end)
                assert a.timestamps == b.timestamps
                assert a.values == b.values
            agg_a = reference.aggregate(device, sensor, 0, horizon)
            agg_b = candidate.aggregate(device, sensor, 0, horizon)
            for field in ("count", "sum", "min_value", "max_value", "first", "last"):
                assert agg_a.get(field) == agg_b.get(field), field


@settings(max_examples=25, deadline=None)
@given(ops=_ops, threshold=st.sampled_from([7, 25, 10_000]))
def test_sharded_engine_is_reader_invisible(tmp_path_factory, ops, threshold):
    tmp_path = tmp_path_factory.mktemp("shard-diff")
    engines = []
    horizon = 1
    for config in _configs(tmp_path, threshold):
        engine = StorageEngine.create(config)
        horizon = _ingest(engine, ops)
        engines.append(engine)
    _assert_identical(engines, horizon)
    for engine in engines:
        engine.close()


def test_sharded_recovery_is_reader_invisible(tmp_path):
    # Same equivalence across a crash/reopen of both engines: sealed files,
    # WAL tails, and watermarks all recover per shard.
    ops = [
        (i % len(DEVICES), i % len(SENSORS), (i * 7) % 30, i - 50)
        for i in range(300)
    ]
    engines = []
    horizon = 1
    for config in _configs(tmp_path, threshold=20):
        engine = StorageEngine.create(config)
        horizon = _ingest(engine, ops)
        del engine  # crash: no close(), recovery must replay the WAL tails
        engines.append(StorageEngine.open(config))
    _assert_identical(engines, horizon)
    for engine in engines:
        engine.compact()
    _assert_identical(engines, horizon)
    for engine in engines:
        engine.close()
