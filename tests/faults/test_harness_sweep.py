"""The crash-consistency harness itself: sweep + canary tests.

The canaries are the harness's own proof of usefulness: they feed
``check_points`` (and a real end-to-end recovery with sabotaged state)
known losses, phantoms, duplicates and wrong values, and assert the
harness *reports* them.  A checker that passes everything would pass a
broken engine too.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan, FaultRule
from repro.faults.harness import (
    FaultWorkload,
    check_points,
    discover_sites,
    run_crash_case,
    run_crash_sweep,
    run_fault_plan,
    _nth_positions,
)


class TestCheckPointsCanaries:
    ACKED = {1: 1.0, 2: 2.0, 5: 5.0}

    def test_consistent_state_passes(self):
        assert check_points(dict(self.ACKED), dict(self.ACKED)) == []

    def test_lost_acknowledged_point_detected(self):
        recovered = {1: 1.0, 5: 5.0}  # t=2 gone
        violations = check_points(recovered, dict(self.ACKED))
        assert any("lost acknowledged point t=2" in v for v in violations)

    def test_phantom_point_detected(self):
        recovered = {**self.ACKED, 9: 9.0}
        violations = check_points(recovered, dict(self.ACKED))
        assert any("phantom point t=9" in v for v in violations)

    def test_wrong_value_detected(self):
        recovered = {**self.ACKED, 2: -2.0}
        violations = check_points(recovered, dict(self.ACKED))
        assert any("wrong value at t=2" in v for v in violations)

    def test_inflight_point_may_be_present_or_absent(self):
        inflight = {9: 9.0}
        assert check_points(dict(self.ACKED), dict(self.ACKED), inflight) == []
        assert (
            check_points({**self.ACKED, 9: 9.0}, dict(self.ACKED), inflight) == []
        )

    def test_inflight_point_with_corrupted_value_detected(self):
        violations = check_points(
            {**self.ACKED, 9: -1.0}, dict(self.ACKED), {9: 9.0}
        )
        assert any("in-flight point t=9" in v for v in violations)

    def test_acknowledged_overwrite_beats_inflight_duplicate(self):
        # The in-flight write hit an already-acknowledged timestamp: the
        # acknowledged value must win.
        violations = check_points(dict(self.ACKED), dict(self.ACKED), {2: 99.0})
        assert violations == []
        violations = check_points(
            {**self.ACKED, 2: 99.0}, dict(self.ACKED), {2: 99.0}
        )
        assert any("wrong value at t=2" in v for v in violations)


class TestSweep:
    def test_small_exhaustive_sweep_is_clean(self, tmp_path):
        workload = FaultWorkload(points=90, flush_threshold=30, seed=7)
        report = run_crash_sweep(workload, tmp_path, max_nth=2)
        assert report.violations == []
        assert report.fired_cases >= 8
        for site in ("wal.write", "sink.write", "flush.seal", "wal.drop"):
            assert site in report.sites, f"sweep never reached {site}"

    def test_sweep_covers_compaction_sites(self, tmp_path):
        workload = FaultWorkload(
            points=100, flush_threshold=30, compact_every=50, seed=7
        )
        sites = discover_sites(workload, tmp_path)
        assert "compact.swap" in sites
        assert "compact.unlink" in sites
        for nth in _nth_positions(sites["compact.unlink"], 2):
            result = run_crash_case(workload, "compact.unlink", nth, tmp_path)
            assert result.fired
            assert result.ok, result.violations

    def test_torn_wal_write_recovers_cleanly(self, tmp_path):
        workload = FaultWorkload(points=80, flush_threshold=30, seed=7)
        result = run_crash_case(
            workload, "wal.write", 40, tmp_path, kind="torn", arg=0.5
        )
        assert result.fired
        assert result.ok, result.violations

    def test_harness_detects_sabotaged_recovery(self, tmp_path):
        # End-to-end canary: crash with unflushed acknowledged writes, then
        # delete a WAL segment from the snapshot before recovery — the
        # harness must report lost acknowledged points.
        import shutil

        from repro.faults.crash import CrashSimulator
        from repro.faults.harness import check_recovery, run_ops
        from repro.faults import FaultInjector
        from repro.iotdb.engine import StorageEngine

        workload = FaultWorkload(points=80, flush_threshold=30, seed=7)
        data_dir = tmp_path / "data"
        plan = FaultPlan([FaultRule(site="wal.write", nth=200)], seed=7)
        injector = FaultInjector(plan)
        engine = StorageEngine.create(workload.config(data_dir), faults=injector)
        acked, inflight = run_ops(engine, workload.ops())
        assert injector.fired, "canary workload never reached the fault"

        simulator = CrashSimulator(data_dir, tmp_path / "snapshot")
        simulator.snapshot()
        sabotaged = [p for p in simulator.snapshot_dir.rglob("wal-*.log") if p.stat().st_size]
        assert sabotaged, "no WAL segment with acknowledged bytes to sabotage"
        for path in sabotaged:
            path.unlink()
        recovered = simulator.reopen(workload.config(data_dir))
        violations = check_recovery(recovered, acked, inflight)
        recovered.close()
        shutil.rmtree(tmp_path / "snapshot", ignore_errors=True)
        assert any("lost acknowledged point" in v for v in violations)

    def test_nth_positions_spread_includes_ends(self):
        assert _nth_positions(3, 5) == [1, 2, 3]
        spread = _nth_positions(100, 5)
        assert len(spread) == 5
        assert spread[0] == 1 and spread[-1] == 100


class TestFaultPlanRuns:
    def test_recoverable_flush_failures_do_not_lose_data(self, tmp_path):
        workload = FaultWorkload(points=120, flush_threshold=30, seed=7)
        plan = FaultPlan.parse("flush.perform:kind=fail:nth=1", seed=7)
        result = run_fault_plan(workload, plan, tmp_path)
        assert result.fired
        assert result.kind == "fail"
        assert result.ok, result.violations
        assert result.recovered_points == result.acked_points

    def test_crash_plan_recovers_prefix_consistently(self, tmp_path):
        workload = FaultWorkload(points=120, flush_threshold=30, seed=7)
        plan = FaultPlan.parse("sink.write:kind=torn:nth=3:arg=0.3", seed=7)
        result = run_fault_plan(workload, plan, tmp_path)
        assert result.fired
        assert result.ok, result.violations


class TestShardedSweep:
    def test_small_sharded_sweep_is_clean(self, tmp_path):
        # Two storage groups: a crash in one shard's pipeline must leave
        # the other shard's acknowledged points recoverable too (the
        # checker verifies the union across shards).
        workload = FaultWorkload(points=90, flush_threshold=30, shards=2, seed=7)
        report = run_crash_sweep(workload, tmp_path, max_nth=2)
        assert report.violations == []
        assert report.fired_cases >= 8
        for site in ("wal.write", "sink.write", "flush.seal"):
            assert site in report.sites, f"sweep never reached {site}"

    def test_sharded_fault_context_labels_the_shard(self, tmp_path):
        # Every engine-side fault site reports which shard it fired in.
        workload = FaultWorkload(points=90, flush_threshold=30, shards=2, seed=7)
        result = run_crash_case(workload, "flush.perform", 1, tmp_path)
        assert result.fired
        assert result.ok, result.violations
