"""Downstream application (Figure 22): LSTM forecasting on (dis)ordered data."""

from repro.downstream.forecast import (
    DisorderImpact,
    ForecastOutcome,
    disorder_impact,
    make_windows,
    train_and_evaluate,
)
from repro.downstream.lstm import LSTMForecaster, LSTMParams

__all__ = [
    "DisorderImpact",
    "ForecastOutcome",
    "LSTMForecaster",
    "LSTMParams",
    "disorder_impact",
    "make_windows",
    "train_and_evaluate",
]
