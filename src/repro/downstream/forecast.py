"""The Figure 22 pipeline: forecast ordered vs disordered series.

"We apply the deep network LSTM to forecast the time series ... multiple
out-of-order datasets are prepared by adding the delay time of
LogNormal(1, σ).  The first 70 % data are used for training, with the last
30 % for testing.  The input size and hidden size are set to 10 and 2."

The disordered variant feeds the LSTM the values *in arrival order* (the
sequence a consumer reading an unsorted store would see); the ordered
variant feeds generation order.  Training windows slide over whichever
sequence was handed in, so disorder corrupts the temporal structure the
model must learn — exactly the effect plotted in Figure 22(b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.downstream.lstm import LSTMForecaster
from repro.errors import InvalidParameterError
from repro.theory import LogNormalDelay
from repro.workloads import TimeSeriesGenerator


def make_windows(values: np.ndarray, window: int = 10) -> tuple[np.ndarray, np.ndarray]:
    """Sliding lookback windows: X (n, window, 1), y (n,)."""
    values = np.asarray(values, dtype=float)
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if values.size <= window:
        raise InvalidParameterError(
            f"need more than window={window} values, got {values.size}"
        )
    n = values.size - window
    x = np.empty((n, window, 1))
    y = np.empty(n)
    for i in range(n):
        x[i, :, 0] = values[i : i + window]
        y[i] = values[i + window]
    return x, y


@dataclass
class ForecastOutcome:
    """Train/test MSE of one model fit."""

    train_mse: float
    test_mse: float
    epochs: int


def train_and_evaluate(
    values: np.ndarray,
    window: int = 10,
    hidden_size: int = 2,
    train_fraction: float = 0.7,
    epochs: int = 15,
    seed: int = 0,
) -> ForecastOutcome:
    """Fit the paper's forecaster on one value sequence; 70/30 split."""
    if not 0.0 < train_fraction < 1.0:
        raise InvalidParameterError(f"train_fraction must be in (0,1), got {train_fraction}")
    x, y = make_windows(values, window)
    split = int(len(x) * train_fraction)
    if split < 1 or split >= len(x):
        raise InvalidParameterError("not enough samples for the requested split")
    model = LSTMForecaster(input_size=1, hidden_size=hidden_size, seed=seed)
    model.fit(x[:split], y[:split], epochs=epochs, seed=seed)
    return ForecastOutcome(
        train_mse=model.mse(x[:split], y[:split]),
        test_mse=model.mse(x[split:], y[split:]),
        epochs=epochs,
    )


@dataclass
class DisorderImpact:
    """One σ point of Figure 22(b), ordered-normalised."""

    sigma: float
    train_mse: float
    test_mse: float
    ordered_train_mse: float
    ordered_test_mse: float

    @property
    def train_ratio(self) -> float:
        """Disordered / ordered train MSE (paper's y-axis is ~this ratio)."""
        return self.train_mse / self.ordered_train_mse

    @property
    def test_ratio(self) -> float:
        return self.test_mse / self.ordered_test_mse


def disorder_impact(
    sigmas: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
    n: int = 3_000,
    window: int = 10,
    epochs: int = 15,
    seed: int = 0,
) -> list[DisorderImpact]:
    """Sweep σ of LogNormal(1, σ) delays and fit on arrival-order values.

    σ = 0 gives constant delays — "exactly ordered by time" — so its fit
    doubles as the ordered baseline all other points are normalised by.
    """
    generator_ordered = TimeSeriesGenerator(LogNormalDelay(1.0, 0.0))
    ordered_stream = generator_ordered.generate(n, seed=seed)
    ordered = train_and_evaluate(
        np.asarray(ordered_stream.values), window=window, epochs=epochs, seed=seed
    )
    out: list[DisorderImpact] = []
    for sigma in sigmas:
        if sigma == 0.0:
            outcome = ordered
        else:
            stream = TimeSeriesGenerator(LogNormalDelay(1.0, sigma)).generate(n, seed=seed)
            outcome = train_and_evaluate(
                np.asarray(stream.values), window=window, epochs=epochs, seed=seed
            )
        out.append(
            DisorderImpact(
                sigma=sigma,
                train_mse=outcome.train_mse,
                test_mse=outcome.test_mse,
                ordered_train_mse=ordered.train_mse,
                ordered_test_mse=ordered.test_mse,
            )
        )
    return out
