"""A from-scratch NumPy LSTM for the downstream experiment (Figure 22).

The paper trains an LSTM [18] to forecast a series ingested with and
without ordering, showing that disorder degrades train and test MSE.  No
deep-learning framework is available offline, so this is a complete
implementation: fused-gate forward pass, full backpropagation through time,
and an Adam optimiser.  Dimensions follow the paper's setup — "the input
size and hidden size are set to 10 and 2" — interpreted as a lookback
window of 10 values fed one per timestep into an LSTM with hidden size 2,
followed by a linear head predicting the next value.

Gradients are validated against numerical differentiation in
``tests/downstream/test_lstm.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class LSTMParams:
    """All trainable tensors, gate-fused: rows ordered [i, f, g, o]."""

    w_x: np.ndarray  # (4H, D) input weights
    w_h: np.ndarray  # (4H, H) recurrent weights
    b: np.ndarray  # (4H,) gate biases
    w_y: np.ndarray  # (1, H) readout weights
    b_y: np.ndarray  # (1,) readout bias

    @classmethod
    def init(cls, input_size: int, hidden_size: int, rng: np.random.Generator) -> "LSTMParams":
        scale_x = 1.0 / np.sqrt(max(input_size, 1))
        scale_h = 1.0 / np.sqrt(max(hidden_size, 1))
        params = cls(
            w_x=rng.normal(0.0, scale_x, size=(4 * hidden_size, input_size)),
            w_h=rng.normal(0.0, scale_h, size=(4 * hidden_size, hidden_size)),
            b=np.zeros(4 * hidden_size),
            w_y=rng.normal(0.0, scale_h, size=(1, hidden_size)),
            b_y=np.zeros(1),
        )
        # Classic trick: positive forget-gate bias stabilises early training.
        h = hidden_size
        params.b[h : 2 * h] = 1.0
        return params

    def tensors(self) -> list[np.ndarray]:
        return [self.w_x, self.w_h, self.b, self.w_y, self.b_y]


@dataclass
class _Grads:
    w_x: np.ndarray
    w_h: np.ndarray
    b: np.ndarray
    w_y: np.ndarray
    b_y: np.ndarray

    def tensors(self) -> list[np.ndarray]:
        return [self.w_x, self.w_h, self.b, self.w_y, self.b_y]


class LSTMForecaster:
    """Sequence-to-one LSTM regressor with BPTT + Adam.

    Args:
        input_size: features per timestep (1 for univariate forecasting).
        hidden_size: LSTM state width (paper: 2).
        learning_rate: Adam step size.
        seed: parameter-init determinism.
    """

    def __init__(
        self,
        input_size: int = 1,
        hidden_size: int = 2,
        learning_rate: float = 0.01,
        seed: int = 0,
    ) -> None:
        if input_size < 1 or hidden_size < 1:
            raise InvalidParameterError("input_size and hidden_size must be >= 1")
        if learning_rate <= 0:
            raise InvalidParameterError(f"learning_rate must be > 0, got {learning_rate}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        rng = np.random.default_rng(seed)
        self.params = LSTMParams.init(input_size, hidden_size, rng)
        self._adam_m = [np.zeros_like(t) for t in self.params.tensors()]
        self._adam_v = [np.zeros_like(t) for t in self.params.tensors()]
        self._adam_t = 0

    # -- forward -------------------------------------------------------------

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, dict]:
        """Batched forward pass.

        Args:
            x: (batch, seq_len, input_size).

        Returns:
            predictions (batch,) and the cache needed for BPTT.
        """
        p = self.params
        batch, seq_len, _ = x.shape
        hsz = self.hidden_size
        h = np.zeros((batch, hsz))
        c = np.zeros((batch, hsz))
        cache: dict = {"x": x, "h": [h], "c": [c], "gates": []}
        for t in range(seq_len):
            z = x[:, t, :] @ p.w_x.T + h @ p.w_h.T + p.b
            i = _sigmoid(z[:, 0:hsz])
            f = _sigmoid(z[:, hsz : 2 * hsz])
            g = np.tanh(z[:, 2 * hsz : 3 * hsz])
            o = _sigmoid(z[:, 3 * hsz : 4 * hsz])
            c = f * c + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            cache["gates"].append((i, f, g, o, tanh_c))
            cache["h"].append(h)
            cache["c"].append(c)
        y = (h @ p.w_y.T + p.b_y)[:, 0]
        cache["y"] = y
        return y, cache

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict the next value for each window in ``x`` (batch, T, D)."""
        y, _ = self._forward(np.asarray(x, dtype=float))
        return y

    def mse(self, x: np.ndarray, targets: np.ndarray) -> float:
        """Mean squared error of predictions against ``targets``."""
        preds = self.predict(x)
        return float(np.mean((preds - np.asarray(targets, dtype=float)) ** 2))

    # -- backward ------------------------------------------------------------

    def _backward(self, cache: dict, targets: np.ndarray) -> tuple[float, _Grads]:
        """Full BPTT for the MSE loss; returns (loss, grads)."""
        p = self.params
        x = cache["x"]
        batch, seq_len, _ = x.shape
        hsz = self.hidden_size
        y = cache["y"]
        diff = (y - targets) / batch  # d(mean sq)/dy, folded factor 2 below
        loss = float(np.mean((y - targets) ** 2))
        d_y = 2.0 * diff  # (batch,)

        g = _Grads(
            w_x=np.zeros_like(p.w_x),
            w_h=np.zeros_like(p.w_h),
            b=np.zeros_like(p.b),
            w_y=np.zeros_like(p.w_y),
            b_y=np.zeros_like(p.b_y),
        )
        h_last = cache["h"][-1]
        g.w_y += d_y[:, None].T @ h_last
        g.b_y += d_y.sum(keepdims=True)
        d_h = d_y[:, None] * p.w_y  # (batch, H)
        d_c = np.zeros((batch, hsz))
        for t in range(seq_len - 1, -1, -1):
            i, f, gg, o, tanh_c = cache["gates"][t]
            c_prev = cache["c"][t]
            h_prev = cache["h"][t]
            d_o = d_h * tanh_c
            d_c = d_c + d_h * o * (1.0 - tanh_c**2)
            d_i = d_c * gg
            d_g = d_c * i
            d_f = d_c * c_prev
            d_c = d_c * f
            dz = np.concatenate(
                [
                    d_i * i * (1.0 - i),
                    d_f * f * (1.0 - f),
                    d_g * (1.0 - gg**2),
                    d_o * o * (1.0 - o),
                ],
                axis=1,
            )  # (batch, 4H)
            g.w_x += dz.T @ x[:, t, :]
            g.w_h += dz.T @ h_prev
            g.b += dz.sum(axis=0)
            d_h = dz @ p.w_h
        return loss, g

    # -- optimisation ----------------------------------------------------------

    def train_step(self, x: np.ndarray, targets: np.ndarray) -> float:
        """One Adam step on a minibatch; returns the batch loss."""
        x = np.asarray(x, dtype=float)
        targets = np.asarray(targets, dtype=float)
        _, cache = self._forward(x)
        loss, grads = self._backward(cache, targets)
        self._adam_t += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        lr_t = self.learning_rate * (
            np.sqrt(1.0 - beta2**self._adam_t) / (1.0 - beta1**self._adam_t)
        )
        for tensor, grad, m, v in zip(
            self.params.tensors(), grads.tensors(), self._adam_m, self._adam_v
        ):
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad**2
            tensor -= lr_t * m / (np.sqrt(v) + eps)
        return loss

    def fit(
        self,
        x: np.ndarray,
        targets: np.ndarray,
        epochs: int = 20,
        batch_size: int = 64,
        seed: int = 0,
        verbose: bool = False,
    ) -> list[float]:
        """Minibatch training; returns the per-epoch mean loss curve."""
        x = np.asarray(x, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if x.shape[0] != targets.shape[0]:
            raise InvalidParameterError("x and targets must have matching sample counts")
        rng = np.random.default_rng(seed)
        history: list[float] = []
        n = x.shape[0]
        for epoch in range(epochs):
            order = rng.permutation(n)
            losses = []
            for lo in range(0, n, batch_size):
                idx = order[lo : lo + batch_size]
                losses.append(self.train_step(x[idx], targets[idx]))
            history.append(float(np.mean(losses)))
            if verbose:  # pragma: no cover - console noise
                print(f"epoch {epoch + 1}: loss={history[-1]:.5f}")
        return history
