"""The benchmark client: executes a workload and collects the paper's metrics.

Three metrics, matching §VI-A1:

* **query throughput** — points returned per second of query time
  ("the number of points queried by IoTDB per second", client side);
* **total test latency** — wall-clock for the whole operation sequence
  ("the average execution time of the test", client side);
* **flush time** — mean memtable flush duration, taken from the engine's
  flush reports ("the performance indicator ... from the server side"),
  with the sort share broken out separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.workload import SystemWorkloadConfig, WriteOp, build_operations
from repro.iotdb import IoTDBConfig, StorageEngine
from repro.obs import Observability


@dataclass
class SystemBenchResult:
    """All client- and server-side metrics of one benchmark run."""

    sorter: str
    dataset: str
    write_percentage: float
    total_points: int
    # client side
    total_seconds: float = 0.0
    write_seconds: float = 0.0
    query_seconds: float = 0.0
    queries_executed: int = 0
    points_returned: int = 0
    # server side
    flush_count: int = 0
    mean_flush_seconds: float = 0.0
    mean_flush_sort_seconds: float = 0.0
    query_sort_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def query_throughput(self) -> float:
        """Queried points per second of query wall-clock (0 when no queries)."""
        if self.query_seconds <= 0.0:
            return 0.0
        return self.points_returned / self.query_seconds

    @property
    def flush_sort_fraction(self) -> float:
        if self.mean_flush_seconds <= 0.0:
            return 0.0
        return self.mean_flush_sort_seconds / self.mean_flush_seconds

    def row(self) -> dict:
        """Flat dict for reporting tables / CSV export."""
        return {
            "sorter": self.sorter,
            "dataset": self.dataset,
            "write_pct": self.write_percentage,
            "total_s": self.total_seconds,
            "query_throughput": self.query_throughput,
            "mean_flush_s": self.mean_flush_seconds,
            "flush_sort_s": self.mean_flush_sort_seconds,
            "queries": self.queries_executed,
            "flushes": self.flush_count,
        }


def run_system_benchmark(
    config: SystemWorkloadConfig,
    sorter: str = "backward",
    engine_config: IoTDBConfig | None = None,
    *,
    obs: Observability | None = None,
) -> SystemBenchResult:
    """Execute one full workload against a fresh engine and report metrics.

    ``obs`` is handed to the engine: inject a fully-enabled
    :class:`~repro.obs.Observability` to get the span tree and registry
    exports of the whole benchmark run; the default keeps the engine's
    metrics-only behaviour.
    """
    if engine_config is None:
        engine_config = IoTDBConfig(sorter=sorter)
    else:
        engine_config.sorter = sorter
    engine = StorageEngine(engine_config, obs=obs)
    clock = engine.obs.clock
    ops = build_operations(config)

    result = SystemBenchResult(
        sorter=sorter,
        dataset=config.dataset,
        write_percentage=config.write_percentage,
        total_points=config.total_points,
    )
    run_start = clock.now()
    for op in ops:
        if isinstance(op, WriteOp):
            start = clock.now()
            engine.write_batch(op.device, config.sensor, op.timestamps, op.values)
            result.write_seconds += clock.now() - start
        else:
            latest = engine.latest_time(op.device, config.sensor)
            if latest is None:
                continue
            start_t = max(0, latest - op.window)
            began = clock.now()
            query_result = engine.query(op.device, config.sensor, start_t, latest + 1)
            result.query_seconds += clock.now() - began
            result.queries_executed += 1
            result.points_returned += len(query_result)
            result.query_sort_seconds += query_result.stats.sort_seconds
    engine.flush_all()
    result.total_seconds = clock.now() - run_start
    reports = engine.flush_reports
    result.flush_count = len(reports)
    if reports:
        result.mean_flush_seconds = sum(r.total_seconds for r in reports) / len(reports)
        result.mean_flush_sort_seconds = sum(r.sort_seconds for r in reports) / len(
            reports
        )
    result.extra["routed"] = {
        space.value: count for space, count in engine.separation.routed_counts().items()
    }
    return result
