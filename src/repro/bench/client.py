"""The benchmark client: executes a workload and collects the paper's metrics.

Three metrics, matching §VI-A1:

* **query throughput** — points returned per second of query time
  ("the number of points queried by IoTDB per second", client side);
* **total test latency** — wall-clock for the whole operation sequence
  ("the average execution time of the test", client side);
* **flush time** — mean memtable flush duration, taken from the engine's
  flush reports ("the performance indicator ... from the server side"),
  with the sort share broken out separately.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.bench.workload import SystemWorkloadConfig, WriteOp, build_operations
from repro.errors import BenchmarkError
from repro.iotdb import IoTDBConfig, StorageEngine
from repro.obs import Observability


@dataclass
class SystemBenchResult:
    """All client- and server-side metrics of one benchmark run."""

    sorter: str
    dataset: str
    write_percentage: float
    total_points: int
    # client side
    total_seconds: float = 0.0
    write_seconds: float = 0.0
    query_seconds: float = 0.0
    queries_executed: int = 0
    points_returned: int = 0
    # server side
    flush_count: int = 0
    mean_flush_seconds: float = 0.0
    mean_flush_sort_seconds: float = 0.0
    query_sort_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def query_throughput(self) -> float:
        """Queried points per second of query wall-clock (0 when no queries)."""
        if self.query_seconds <= 0.0:
            return 0.0
        return self.points_returned / self.query_seconds

    @property
    def flush_sort_fraction(self) -> float:
        if self.mean_flush_seconds <= 0.0:
            return 0.0
        return self.mean_flush_sort_seconds / self.mean_flush_seconds

    def row(self) -> dict:
        """Flat dict for reporting tables / CSV export."""
        return {
            "sorter": self.sorter,
            "dataset": self.dataset,
            "write_pct": self.write_percentage,
            "total_s": self.total_seconds,
            "query_throughput": self.query_throughput,
            "mean_flush_s": self.mean_flush_seconds,
            "flush_sort_s": self.mean_flush_sort_seconds,
            "queries": self.queries_executed,
            "flushes": self.flush_count,
        }


def run_system_benchmark(
    config: SystemWorkloadConfig,
    sorter: str = "backward",
    engine_config: IoTDBConfig | None = None,
    *,
    obs: Observability | None = None,
) -> SystemBenchResult:
    """Execute one full workload against a fresh engine and report metrics.

    ``obs`` is handed to the engine: inject a fully-enabled
    :class:`~repro.obs.Observability` to get the span tree and registry
    exports of the whole benchmark run; the default keeps the engine's
    metrics-only behaviour.
    """
    if engine_config is None:
        engine_config = IoTDBConfig(sorter=sorter)
    else:
        engine_config.sorter = sorter
    engine = StorageEngine.create(engine_config, obs=obs)
    clock = engine.obs.clock
    ops = build_operations(config)

    result = SystemBenchResult(
        sorter=sorter,
        dataset=config.dataset,
        write_percentage=config.write_percentage,
        total_points=config.total_points,
    )
    run_start = clock.now()
    for op in ops:
        if isinstance(op, WriteOp):
            start = clock.now()
            engine.write_batch(op.device, config.sensor, op.timestamps, op.values)
            result.write_seconds += clock.now() - start
        else:
            latest = engine.latest_time(op.device, config.sensor)
            if latest is None:
                continue
            start_t = max(0, latest - op.window)
            began = clock.now()
            query_result = engine.query(op.device, config.sensor, start_t, latest + 1)
            result.query_seconds += clock.now() - began
            result.queries_executed += 1
            result.points_returned += len(query_result)
            result.query_sort_seconds += query_result.stats.sort_seconds
    engine.flush_all()
    result.total_seconds = clock.now() - run_start
    reports = engine.flush_reports
    result.flush_count = len(reports)
    if reports:
        result.mean_flush_seconds = sum(r.total_seconds for r in reports) / len(reports)
        result.mean_flush_sort_seconds = sum(r.sort_seconds for r in reports) / len(
            reports
        )
    result.extra["routed"] = {
        space.value: count for space, count in engine.separation.routed_counts().items()
    }
    return result


@dataclass
class IngestBenchResult:
    """Client- and server-side metrics of one concurrent ingestion run."""

    sorter: str
    shards: int
    writers: int
    batch_size: int
    total_points: int
    elapsed_seconds: float = 0.0
    batches_written: int = 0
    flush_count: int = 0
    #: ``shard_id -> {"points_written": ..., "flushes": ...}``; the shard
    #: totals depend only on the device→shard routing and each device's
    #: arrival stream, so they are identical across thread schedules.
    per_shard: dict = field(default_factory=dict)

    @property
    def points_per_second(self) -> float:
        """Ingested points per second of wall-clock (0 when instantaneous)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.total_points / self.elapsed_seconds

    def row(self) -> dict:
        """Flat dict for reporting tables / CSV export."""
        return {
            "sorter": self.sorter,
            "shards": self.shards,
            "writers": self.writers,
            "batch_size": self.batch_size,
            "total_points": self.total_points,
            "elapsed_s": self.elapsed_seconds,
            "points_per_second": self.points_per_second,
            "flushes": self.flush_count,
        }


def run_ingest_benchmark(
    config: SystemWorkloadConfig,
    sorter: str = "backward",
    engine_config: IoTDBConfig | None = None,
    *,
    writers: int = 4,
    obs: Observability | None = None,
) -> IngestBenchResult:
    """Drive a fresh engine with ``writers`` concurrent batched ingest threads.

    The workload's devices are partitioned across the writer threads
    (device ``i`` belongs to writer ``i % writers``), so each device's
    batches are sent in arrival order by exactly one thread — the per-device
    seq/unseq routing, and therefore every per-shard total, is independent
    of thread scheduling.  Only write operations are issued; interleaved
    queries belong to :func:`run_system_benchmark`.

    This is the client that makes ``config.shards > 1`` observable: with one
    shard every thread contends on the same shard lock, while a sharded
    engine lets batches for different storage groups proceed in parallel.

    A caveat on wall-clock numbers: sorting and encoding are pure Python,
    so under CPython's GIL sharding removes lock contention but cannot add
    CPU parallelism — expect wall-clock parity, not speedup, from this
    client on CPython.  The machine-independent form of the throughput
    guarantee is the deterministic ``ingest/shards=N`` baseline cells
    (:func:`repro.bench.baseline.collect_ingest_cells`): the sharded
    critical path in accounted operations is bounded by the unsharded one
    by construction, and CI enforces it.
    """
    if writers < 1:
        raise BenchmarkError(f"writers must be >= 1, got {writers}")
    if engine_config is None:
        engine_config = IoTDBConfig(sorter=sorter)
    else:
        engine_config.sorter = sorter
    engine = StorageEngine.create(engine_config, obs=obs)
    clock = engine.obs.clock

    write_ops = [op for op in build_operations(config) if isinstance(op, WriteOp)]
    devices = config.devices()
    writer_index = {device: i % writers for i, device in enumerate(devices)}
    lanes: list[list[WriteOp]] = [[] for _ in range(writers)]
    for op in write_ops:
        lanes[writer_index[op.device]].append(op)

    result = IngestBenchResult(
        sorter=engine_config.sorter,
        shards=engine_config.shards,
        writers=writers,
        batch_size=config.batch_size,
        total_points=sum(len(op.timestamps) for op in write_ops),
        batches_written=len(write_ops),
    )

    errors: list[BaseException] = []
    start_gate = threading.Barrier(writers + 1)

    def drain(lane: list[WriteOp]) -> None:
        start_gate.wait()
        try:
            for op in lane:
                engine.write_batch(
                    op.device, config.sensor, op.timestamps, op.values
                )
        except BaseException as exc:  # surfaced to the caller after join
            errors.append(exc)

    threads = [
        threading.Thread(target=drain, args=(lane,), name=f"repro-ingest-{i}")
        for i, lane in enumerate(lanes)
    ]
    for thread in threads:
        thread.start()
    start_gate.wait()
    run_start = clock.now()
    for thread in threads:
        thread.join()
    engine.flush_all()
    result.elapsed_seconds = clock.now() - run_start
    if errors:
        raise errors[0]

    result.flush_count = len(engine.flush_reports)
    for shard in engine.shards:
        snapshot = shard.snapshot()
        result.per_shard[shard.shard_id] = {
            "points_written": snapshot["points_written"],
            "flushes": len(shard.flush_reports),
        }
    engine.close()
    return result
