"""Sweep harness over (dataset × sorter × write-percentage) grids.

Figures 13-21 all share one experimental design: fix a dataset, sweep the
write percentage, and plot one series per sorting algorithm for a system
metric (query throughput / flush time / total latency).  This module runs
that grid once and lets each experiment driver extract its metric, so the
three figure families are consistent views of the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.bench.client import SystemBenchResult, run_system_benchmark
from repro.bench.workload import PAPER_WRITE_PERCENTAGES, SystemWorkloadConfig
from repro.iotdb import IoTDBConfig
from repro.obs import Observability
from repro.sorting import PAPER_ALGORITHMS


@dataclass
class SweepConfig:
    """One grid of system benchmark runs."""

    base: SystemWorkloadConfig = field(default_factory=SystemWorkloadConfig)
    sorters: Sequence[str] = PAPER_ALGORITHMS
    write_percentages: Sequence[float] = PAPER_WRITE_PERCENTAGES
    include_write_only: bool = False  # adds wp = 1.0 (flush-time figures)
    memtable_flush_threshold: int = 5_000


def run_sweep(
    config: SweepConfig, *, obs: Observability | None = None
) -> list[SystemBenchResult]:
    """Run every (sorter, write-percentage) cell; returns flat results.

    An injected ``obs`` is shared by every cell's engine, so one registry
    aggregates the whole sweep (per-sorter series distinguishable through
    the ``sorter``-labelled sort metrics).
    """
    percentages = list(config.write_percentages)
    if config.include_write_only and 1.0 not in percentages:
        percentages.append(1.0)
    results: list[SystemBenchResult] = []
    for sorter in config.sorters:
        for wp in percentages:
            workload = replace(config.base, write_percentage=wp)
            engine_config = IoTDBConfig(
                sorter=sorter,
                memtable_flush_threshold=config.memtable_flush_threshold,
            )
            results.append(
                run_system_benchmark(
                    workload, sorter=sorter, engine_config=engine_config, obs=obs
                )
            )
    return results


def result_rows(results: Sequence[SystemBenchResult]) -> list[dict]:
    """Flat dict rows for the reporting helpers."""
    return [r.row() for r in results]
