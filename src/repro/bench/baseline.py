"""Deterministic sorter-ops baseline: ``BENCH_sorter.json`` and its checker.

Wall-clock timing is too noisy to gate CI on, but the *operation counts* a
sorter performs on a fixed input are exactly reproducible: same stream,
same algorithm, same comparisons and moves.  This module pins those counts
for every paper algorithm on the three synthetic delay models (§VI-A3) and
fails when a change inflates any cell past a ratio — an algorithmic
regression (say, a cutoff change that degrades backward-sort to quadratic
behaviour) caught without ever measuring time.

Usage::

    python -m repro.bench.baseline --write             # refresh the baseline
    python -m repro.bench.baseline --check BENCH_sorter.json --max-ratio 2.0

Exit status: 0 when within budget, 1 on a regression or a baseline/current
cell mismatch, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.sorting import PAPER_ALGORITHMS, get_sorter
from repro.theory.distributions import (
    AbsNormalDelay,
    DelayDistribution,
    ExponentialDelay,
    LogNormalDelay,
)
from repro.workloads import TimeSeriesGenerator

#: The synthetic delay models of the paper's evaluation (§VI-A3).
DELAY_MODELS: tuple[tuple[str, DelayDistribution], ...] = (
    ("exponential", ExponentialDelay(lam=1.0)),
    ("absnormal", AbsNormalDelay(mu=1.0, sigma=1.0)),
    ("lognormal", LogNormalDelay(mu=1.0, sigma=1.0)),
)

DEFAULT_N = 4000
DEFAULT_SEED = 42
DEFAULT_PATH = "BENCH_sorter.json"
DEFAULT_MAX_RATIO = 2.0

#: Shard counts pinned by the ingest-throughput cells.
INGEST_SHARD_COUNTS = (1, 4)
#: Devices of the ingest workload (spread over the shards by the router).
INGEST_DEVICES = 8


def _ingest_shard_ops(n: int, seed: int, shards: int) -> dict[int, int]:
    """Per-shard work of one deterministic batched ingest run.

    A shard's work is the points it accepted (route + memtable insert)
    plus the comparisons and moves its flush sorts performed — all
    operation counts, never time, so the numbers are machine-independent.
    The ingest is driven single-threaded: shard totals depend only on the
    device→shard routing and each device's seeded arrival stream.
    """
    from repro.bench.workload import (
        SystemWorkloadConfig,
        WriteOp,
        build_operations,
    )
    from repro.iotdb import IoTDBConfig, StorageEngine

    workload = SystemWorkloadConfig(
        dataset="lognormal",
        total_points=n,
        batch_size=max(1, n // 40),
        write_percentage=1.0,
        device="root.baseline.d",
        n_devices=INGEST_DEVICES,
        seed=seed,
    )
    engine = StorageEngine.create(
        IoTDBConfig(
            sorter="backward",
            shards=shards,
            memtable_flush_threshold=max(2, n // 16),
        )
    )
    for op in build_operations(workload):
        if isinstance(op, WriteOp):
            engine.write_batch(op.device, workload.sensor, op.timestamps, op.values)
    engine.flush_all()
    per_shard: dict[int, int] = {}
    for shard in engine.shards:
        sort_ops = sum(
            chunk.sort_stats.comparisons + chunk.sort_stats.moves
            for report in shard.flush_reports
            for chunk in report.chunks
        )
        points = int(shard.snapshot()["points_written"])
        per_shard[shard.shard_id] = points + sort_ops
    engine.close()
    return per_shard


def collect_ingest_cells(
    n: int = DEFAULT_N, seed: int = DEFAULT_SEED
) -> dict[str, dict[str, int]]:
    """Ingest-throughput cells: critical-path op counts per shard count.

    ``critical_path_ops`` is the busiest shard's work — the run's length
    under perfect parallelism, the deterministic proxy for ingest
    throughput (lower = faster).  By construction the sharded cell's
    critical path cannot exceed the unsharded one, which pins "a sharded
    engine ingests at least as fast" without measuring wall-clock.
    ``total_ops`` guards against sharding inflating the *aggregate* work.
    """
    cells: dict[str, dict[str, int]] = {}
    for shards in INGEST_SHARD_COUNTS:
        per_shard = _ingest_shard_ops(n, seed, shards)
        cells[f"ingest/shards={shards}"] = {
            "critical_path_ops": max(per_shard.values()),
            "total_ops": sum(per_shard.values()),
        }
    return cells


def collect_wal_cells(
    n: int = DEFAULT_N, seed: int = DEFAULT_SEED
) -> dict[str, dict[str, int]]:
    """WAL framing cells: bytes and flushes for the same records, per frame kind.

    The identical seeded record set is appended once as N single-record
    frames and once as one batch frame.  Byte counts are exact (JSON payload
    plus the fixed per-frame header/CRC overhead) and flush counts are
    definitional (one per ``append``, one per ``append_batch``), so both
    cells are machine-independent.  The checker enforces — structurally,
    every run — that the batch frame spends strictly fewer bytes than
    single-record framing for the same points.
    """
    from repro.iotdb.wal import WriteAheadLog

    stream = TimeSeriesGenerator(LogNormalDelay(mu=1.0, sigma=1.0)).generate(
        n, seed=seed
    )
    records = [
        ("root.baseline.w", "s0", t, v)
        for t, v in zip(stream.timestamps, stream.values)
    ]
    single = WriteAheadLog()
    single_bytes = 0
    for record in records:
        single_bytes += single.append(*record)
    batch = WriteAheadLog()
    batch_bytes = batch.append_batch(records)
    return {
        "wal_bytes/frame=single": {
            "bytes_appended": single_bytes,
            "flushes": len(records),
        },
        "wal_bytes/frame=batch": {"bytes_appended": batch_bytes, "flushes": 1},
    }


def _ingest_path_wal_work(n: int, seed: int, batched: bool) -> dict[str, int]:
    """WAL work (bytes + flush syscalls) of one ingest run, point vs batch.

    The same seeded workload is driven through ``engine.write`` point by
    point or through ``engine.write_batch`` per generated batch; the WAL is
    enabled, so the difference between the two cells is exactly the framing
    and flush amortisation of the batch path.
    """
    from repro.bench.workload import (
        SystemWorkloadConfig,
        WriteOp,
        build_operations,
    )
    from repro.iotdb import IoTDBConfig, StorageEngine

    workload = SystemWorkloadConfig(
        dataset="lognormal",
        total_points=n,
        batch_size=max(1, n // 40),
        write_percentage=1.0,
        device="root.baseline.d",
        n_devices=INGEST_DEVICES,
        seed=seed,
    )
    engine = StorageEngine.create(
        IoTDBConfig(
            sorter="backward",
            wal_enabled=True,
            memtable_flush_threshold=max(2, n // 16),
        )
    )
    for op in build_operations(workload):
        if not isinstance(op, WriteOp):
            continue
        if batched:
            engine.write_batch(op.device, workload.sensor, op.timestamps, op.values)
        else:
            for t, v in zip(op.timestamps, op.values):
                engine.write(op.device, workload.sensor, t, v)
    engine.flush_all()
    stats = engine.wal_stats()
    engine.close()
    return stats


def collect_ingest_path_cells(
    n: int = DEFAULT_N, seed: int = DEFAULT_SEED
) -> dict[str, dict[str, int]]:
    """Batch-vs-point ingest cells, measured in WAL work.

    The checker enforces — structurally, every run — that the batch path's
    total (bytes + flushes) is strictly below the point path's: that is the
    whole reason the batch path exists.
    """
    return {
        f"ingest/path={name}": _ingest_path_wal_work(n, seed, batched)
        for name, batched in (("point", False), ("batch", True))
    }


#: The persistence stacks pinned by the backend cells.
BACKENDS = ("v1", "v2-local", "v2-memory")


def _backend_ingest_stats(n: int, seed: int, backend: str) -> dict[str, int]:
    """Persisted-byte accounting of one WAL-enabled ingest run per backend.

    The identical seeded batched workload runs over the v1 local layout,
    the v2 layout on a ``LocalDirStore``, and the v2 layout on a
    ``MemoryStore``; the cell records the WAL bytes/flushes the run
    appended and the total bytes of the sealed TsFiles it left behind.
    All three are exact byte/operation counts of deterministic encoders,
    so the three cells must be *identical* — v2-local is byte-for-byte
    the v1 tree, and the memory store runs the same code over a dict —
    which :func:`check_invariants` enforces as equalities every run.
    """
    import shutil
    import tempfile

    from repro.bench.workload import (
        SystemWorkloadConfig,
        WriteOp,
        build_operations,
    )
    from repro.iotdb import IoTDBConfig, MemoryStore, StorageEngine

    workload = SystemWorkloadConfig(
        dataset="lognormal",
        total_points=n,
        batch_size=max(1, n // 40),
        write_percentage=1.0,
        device="root.baseline.d",
        n_devices=INGEST_DEVICES,
        seed=seed,
    )
    tmp: str | None = None
    try:
        if backend == "v2-memory":
            store = MemoryStore()
            engine = StorageEngine.create(
                IoTDBConfig(
                    sorter="backward",
                    wal_enabled=True,
                    memtable_flush_threshold=max(2, n // 16),
                    engine_version=2,
                ),
                backend=store,
            )
        else:
            tmp = tempfile.mkdtemp(prefix="repro-bench-backend-")
            engine = StorageEngine.create(
                IoTDBConfig(
                    sorter="backward",
                    wal_enabled=True,
                    memtable_flush_threshold=max(2, n // 16),
                    data_dir=tmp,
                    engine_version=1 if backend == "v1" else 2,
                )
            )
            store = engine.store
        for op in build_operations(workload):
            if isinstance(op, WriteOp):
                engine.write_batch(
                    op.device, workload.sensor, op.timestamps, op.values
                )
        engine.flush_all()
        wal = engine.wal_stats()
        sealed_bytes = sum(
            len(store.get(key))
            for key in store.list("")
            if key.endswith(".tsfile")
        )
        engine.close()
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
    return {
        "wal_bytes": wal["bytes_appended"],
        "wal_flushes": wal["flushes"],
        "sealed_bytes": sealed_bytes,
    }


def collect_backend_cells(
    n: int = DEFAULT_N, seed: int = DEFAULT_SEED
) -> dict[str, dict[str, int]]:
    """Backend-parity cells: identical persisted work on every backend.

    The checker enforces — structurally, every run — that the
    ``v2-local`` cell equals the ``v1`` cell (the v2-local tree is
    byte-for-byte the v1 tree) and the ``v2-memory`` cell equals the
    ``v2-local`` cell (the same code path over an in-memory KV): the
    pluggable backend must cost nothing and change nothing.
    """
    return {
        f"ingest/backend={backend}": _backend_ingest_stats(n, seed, backend)
        for backend in BACKENDS
    }


def _flush_sort_ops(n: int, seed: int, cache_enabled: bool) -> int:
    """Flush-sort work of a steady multi-flush stream, L-cache on vs off.

    One device, small flush threshold: the same series flushes many times
    with the same arrival pattern, which is the block-size cache's target
    case.  The stream is a heavy-delay LogNormal (``mu=4.0``) whose
    converged ``L`` sits stably several doublings above ``L0`` — on a
    stream where the search converges at its first probe, a cache hit
    costs exactly one probe too and saves nothing.  The returned scalar
    sums comparisons + moves over every flushed chunk — the search's probe
    comparisons land in there, so a working cache shows up as fewer ops.
    """
    from repro.iotdb import IoTDBConfig, StorageEngine

    stream = TimeSeriesGenerator(LogNormalDelay(mu=4.0, sigma=1.0)).generate(
        n, seed=seed
    )
    engine = StorageEngine.create(
        IoTDBConfig(
            sorter="backward",
            sorter_options={"cache_block_sizes": cache_enabled},
            memtable_flush_threshold=max(2, n // 16),
        )
    )
    for t, v in zip(stream.timestamps, stream.values):
        engine.write("root.baseline.f", "s0", t, v)
    engine.flush_all()
    ops = sum(
        chunk.sort_stats.comparisons + chunk.sort_stats.moves
        for report in engine.flush_reports
        for chunk in report.chunks
    )
    engine.close()
    return ops


def collect_flush_cells(
    n: int = DEFAULT_N, seed: int = DEFAULT_SEED
) -> dict[str, dict[str, int]]:
    """Flush-sort cells for the per-series block-size cache, on vs off.

    The checker enforces — structurally, every run — that the cached run
    never performs *more* flush-sort ops than the uncached one; the strict
    saving on the default multi-doubling workload is pinned by the
    committed baseline values.
    """
    return {
        f"flush/lcache={name}": {"sort_ops": _flush_sort_ops(n, seed, enabled)}
        for name, enabled in (("on", True), ("off", False))
    }


def _query_index_files_opened(n: int, seed: int, index_enabled: bool) -> int:
    """Sealed files opened by a fixed query set, with or without the index.

    A high-disorder LogNormal stream (heavy-tailed delays spread late
    points across many unsequence files) is ingested with a small flush
    threshold, then a seeded set of narrow range queries runs; the result
    is the summed ``files_opened`` — an operation count, never time, so
    the cell is machine-independent.  The only difference between the two
    cells is ``config.index_enabled``.
    """
    import random

    from repro.iotdb import IoTDBConfig, StorageEngine

    stream = TimeSeriesGenerator(LogNormalDelay(mu=1.0, sigma=2.0)).generate(
        n, seed=seed
    )
    engine = StorageEngine.create(
        IoTDBConfig(
            sorter="backward",
            memtable_flush_threshold=max(2, n // 24),
            index_enabled=index_enabled,
        )
    )
    for t, v in zip(stream.timestamps, stream.values):
        engine.write("root.baseline.q", "s0", t, v)
    engine.flush_all()
    horizon = max(stream.timestamps) + 1
    width = max(1, horizon // 20)
    rng = random.Random(seed + 1)
    opened = 0
    for _ in range(32):
        start = rng.randrange(max(1, horizon - width))
        result = engine.query("root.baseline.q", "s0", start, start + width)
        opened += result.stats.files_opened
    engine.close()
    return opened


def collect_query_index_cells(
    n: int = DEFAULT_N, seed: int = DEFAULT_SEED
) -> dict[str, dict[str, int]]:
    """File-open cells for the interval index, on vs off.

    The checker enforces two things: each cell stays within the ratio
    budget of its pinned baseline, and — structurally, every run — the
    ``index=on`` cell opens *strictly fewer* files than ``index=off``
    (the index must actually prune on the high-disorder workload, not
    merely not regress).
    """
    return {
        f"query/index={name}": {
            "files_opened": _query_index_files_opened(n, seed, enabled)
        }
        for name, enabled in (("on", True), ("off", False))
    }


def collect_baseline(n: int = DEFAULT_N, seed: int = DEFAULT_SEED) -> dict:
    """Op counts for every (algorithm, delay model) and ingest cell.

    Deterministic: the streams are seeded and both the sorters and the
    ingest engine count operations, not time, so two runs on any machine
    produce identical numbers.
    """
    cells: dict[str, dict[str, int]] = {}
    for model_name, delay in DELAY_MODELS:
        stream = TimeSeriesGenerator(delay).generate(n, seed=seed)
        for algorithm in PAPER_ALGORITHMS:
            ts, vs = stream.sort_input()
            stats = get_sorter(algorithm).sort(ts, vs)
            cells[f"{algorithm}/{model_name}"] = {
                "comparisons": stats.comparisons,
                "moves": stats.moves,
            }
    cells.update(collect_ingest_cells(n=n, seed=seed))
    cells.update(collect_backend_cells(n=n, seed=seed))
    cells.update(collect_query_index_cells(n=n, seed=seed))
    cells.update(collect_wal_cells(n=n, seed=seed))
    cells.update(collect_ingest_path_cells(n=n, seed=seed))
    cells.update(collect_flush_cells(n=n, seed=seed))
    return {"n": n, "seed": seed, "cells": cells}


def _total(cell: dict[str, int]) -> int:
    """One scalar per cell: the sum of its operation counters."""
    return sum(int(value) for value in cell.values())


def check_invariants(current: dict) -> list[str]:
    """Structural invariants of the *current* run, independent of any
    pinned baseline.

    Each one asserts that an optimisation actually wins on its target
    workload, not merely that it doesn't regress: the interval index must
    open strictly fewer files, the batch WAL frame must spend strictly
    fewer bytes for the same records, the batch ingest path must do
    strictly less WAL work than the point path, and the block-size cache
    must save flush-sort ops on a steady stream.
    """
    cells = current.get("cells", {})
    problems: list[str] = []

    on = cells.get("query/index=on")
    off = cells.get("query/index=off")
    if on is not None and off is not None and _total(on) >= _total(off):
        problems.append(
            f"query/index=on opened {_total(on)} files but index=off opened "
            f"{_total(off)}: the interval index must open strictly fewer"
        )

    single = cells.get("wal_bytes/frame=single")
    batch = cells.get("wal_bytes/frame=batch")
    if single is not None and batch is not None:
        if batch["bytes_appended"] >= single["bytes_appended"]:
            problems.append(
                f"wal_bytes/frame=batch appended {batch['bytes_appended']} bytes "
                f"but frame=single appended {single['bytes_appended']}: the "
                "batch frame must spend strictly fewer bytes per point"
            )

    point = cells.get("ingest/path=point")
    batched = cells.get("ingest/path=batch")
    if point is not None and batched is not None and _total(batched) >= _total(point):
        problems.append(
            f"ingest/path=batch did {_total(batched)} units of WAL work but "
            f"path=point did {_total(point)}: the batch path must do strictly "
            "less"
        )

    v1 = cells.get("ingest/backend=v1")
    v2_local = cells.get("ingest/backend=v2-local")
    v2_memory = cells.get("ingest/backend=v2-memory")
    if v1 is not None and v2_local is not None and v2_local != v1:
        problems.append(
            f"ingest/backend=v2-local {v2_local} differs from backend=v1 "
            f"{v1}: the v2-local tree must be byte-for-byte the v1 tree"
        )
    if v2_local is not None and v2_memory is not None and v2_memory != v2_local:
        problems.append(
            f"ingest/backend=v2-memory {v2_memory} differs from "
            f"backend=v2-local {v2_local}: the memory store runs the same "
            "code path and must persist identical bytes"
        )

    cache_on = cells.get("flush/lcache=on")
    cache_off = cells.get("flush/lcache=off")
    if (
        cache_on is not None
        and cache_off is not None
        and _total(cache_on) > _total(cache_off)
    ):
        # Non-strict: on streams whose chunks converge at the first probe
        # (or are too small to search at all) a cache hit costs exactly one
        # probe — the same as the search — so equality is the correct
        # outcome there.  The cache must simply never cost extra; the
        # strict win on a multi-doubling stream is pinned by the committed
        # baseline values and the sorter's own cache unit tests.
        problems.append(
            f"flush/lcache=on performed {_total(cache_on)} flush-sort ops but "
            f"lcache=off performed {_total(cache_off)}: the block-size cache "
            "must never cost more than the full search"
        )

    return problems


def check_baseline(
    baseline: dict, current: dict, max_ratio: float
) -> list[str]:
    """Human-readable regression messages; empty when within budget."""
    problems: list[str] = list(check_invariants(current))
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    if set(base_cells) != set(cur_cells):
        missing = sorted(set(base_cells) - set(cur_cells))
        extra = sorted(set(cur_cells) - set(base_cells))
        problems.append(
            f"cell sets differ (missing={missing}, extra={extra}); "
            "refresh the baseline with --write"
        )
        return problems
    for key in sorted(base_cells):
        base_total = _total(base_cells[key])
        cur_total = _total(cur_cells[key])
        if base_total <= 0:
            problems.append(f"{key}: baseline total is {base_total}")
            continue
        ratio = cur_total / base_total
        if ratio > max_ratio:
            problems.append(
                f"{key}: {cur_total} ops vs baseline {base_total} "
                f"({ratio:.2f}x > {max_ratio:.2f}x budget)"
            )
    return problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench-baseline",
        description="Pin / check deterministic sorter operation counts.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--write",
        action="store_true",
        help="collect the counts and write the baseline file",
    )
    mode.add_argument(
        "--check",
        metavar="BASELINE",
        help="collect the counts and compare against BASELINE",
    )
    parser.add_argument(
        "--path",
        default=DEFAULT_PATH,
        help=f"baseline file to write (default: {DEFAULT_PATH})",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=DEFAULT_MAX_RATIO,
        help=f"fail when any cell exceeds baseline × ratio (default: {DEFAULT_MAX_RATIO})",
    )
    parser.add_argument("--n", type=int, default=DEFAULT_N, help="stream length")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="stream seed")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.max_ratio <= 0:
        print("repro-bench-baseline: --max-ratio must be > 0", file=sys.stderr)
        return 2

    current = collect_baseline(n=args.n, seed=args.seed)

    if args.write:
        problems = check_invariants(current)
        if problems:
            for problem in problems:
                print(f"repro-bench-baseline: {problem}", file=sys.stderr)
            return 1
        Path(args.path).write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"repro-bench-baseline: wrote {len(current['cells'])} cells to {args.path}")
        return 0

    baseline_path = Path(args.check)
    if not baseline_path.exists():
        print(
            f"repro-bench-baseline: no such baseline: {baseline_path}",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("n") != current["n"] or baseline.get("seed") != current["seed"]:
        print(
            "repro-bench-baseline: baseline was collected with "
            f"n={baseline.get('n')} seed={baseline.get('seed')}, current run "
            f"uses n={current['n']} seed={current['seed']}",
            file=sys.stderr,
        )
        return 2
    problems = check_baseline(baseline, current, args.max_ratio)
    if problems:
        for problem in problems:
            print(f"repro-bench-baseline: {problem}", file=sys.stderr)
        return 1
    print(
        f"repro-bench-baseline: {len(current['cells'])} cells within "
        f"{args.max_ratio:.2f}x of {baseline_path}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
