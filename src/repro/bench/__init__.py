"""IoTDB-benchmark analogue: workloads, client, sweeps, timing, reporting."""

from repro.bench.client import (
    IngestBenchResult,
    SystemBenchResult,
    run_ingest_benchmark,
    run_system_benchmark,
)
from repro.bench.harness import SweepConfig, result_rows, run_sweep
from repro.bench.reporting import (
    format_table,
    print_table,
    series_by_key,
    to_csv,
)
from repro.bench.timing import Timer, TimingResult, measure
from repro.bench.workload import (
    PAPER_WRITE_PERCENTAGES,
    QueryOp,
    SystemWorkloadConfig,
    WriteOp,
    build_operations,
    build_stream,
)

__all__ = [
    "IngestBenchResult",
    "PAPER_WRITE_PERCENTAGES",
    "QueryOp",
    "SweepConfig",
    "SystemBenchResult",
    "SystemWorkloadConfig",
    "Timer",
    "TimingResult",
    "WriteOp",
    "build_operations",
    "build_stream",
    "format_table",
    "measure",
    "print_table",
    "result_rows",
    "run_ingest_benchmark",
    "run_system_benchmark",
    "run_sweep",
    "series_by_key",
    "to_csv",
]
