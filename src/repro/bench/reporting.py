"""Plain-text tables and CSV export for experiment results.

Every experiment driver prints its figure/table through these helpers so
all output shares one format: a titled, aligned table with a fixed float
precision, mirroring how the paper reports each figure as a series per
algorithm over a swept parameter.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, Sequence


def format_cell(value, precision: int = 4) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 10_000 or abs(value) < 10 ** (-precision)):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned text table; right-aligns everything but column 0."""
    rendered = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) if i == 0 else h.rjust(w) for i, (h, w) in enumerate(zip(headers, widths))))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            "  ".join(
                cell.ljust(w) if i == 0 else cell.rjust(w)
                for i, (cell, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> None:
    print(format_table(headers, rows, title))
    print()


def to_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Serialise a result table as CSV (for EXPERIMENTS.md appendices)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def ascii_series(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    title: str | None = None,
    log_y: bool = False,
) -> str:
    """Render figure-style series as an ASCII scatter chart.

    Each series gets a marker (its name's first letter); x values are
    spread over ``width`` columns, y over ``height`` rows.  A terminal-only
    stand-in for the paper's matplotlib figures — good enough to eyeball a
    crossover.
    """
    import math

    points = [
        (float(x), float(y), name)
        for name, xy in series.items()
        for x, y in xy
        if y is not None
    ]
    if not points:
        return "(no data)"
    ys = [math.log10(max(p[1], 1e-12)) if log_y else p[1] for p in points]
    xs = [p[0] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (x, y, name), y_scaled in zip(points, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y_scaled - y_lo) / y_span * (height - 1))
        grid[row][col] = name[0]
    lines = []
    if title:
        lines.append(title)
    axis_label = "log10(y)" if log_y else "y"
    lines.append(f"{axis_label} in [{y_lo:.3g}, {y_hi:.3g}]  x in [{x_lo:.3g}, {x_hi:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    legend = "  ".join(f"{name[0]}={name}" for name in sorted(series))
    lines.append(legend)
    return "\n".join(lines)


def series_by_key(
    rows: Iterable[dict], series_key: str, x_key: str, y_key: str
) -> dict[str, list[tuple[object, object]]]:
    """Group flat result rows into per-series (x, y) lists — one series per
    algorithm, exactly the structure of each figure in the paper."""
    out: dict[str, list[tuple[object, object]]] = {}
    for row in rows:
        out.setdefault(str(row[series_key]), []).append((row[x_key], row[y_key]))
    return out
