"""Timing utilities shared by every experiment driver.

Pure-Python timings are noisy, so every reported number is the aggregate of
repeated runs with fresh inputs per run.  :func:`measure` is the single
entry point: it owns warmup, repetition, and dispersion statistics, so all
experiments report comparable numbers.

All clock reads go through :mod:`repro.obs.clock` — the one injectable time
source in the project.  :class:`Timer` takes a :class:`~repro.obs.clock.Clock`
so a test (or a traced pipeline) can substitute a deterministic
:class:`~repro.obs.clock.FakeClock`; the default is the shared monotonic
clock, which preserves the previous ``time.perf_counter`` behaviour exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import BenchmarkError
from repro.obs.clock import MONOTONIC, Clock


@dataclass
class TimingResult:
    """Aggregate of repeated timed runs (seconds)."""

    runs: list[float]

    @property
    def mean(self) -> float:
        return sum(self.runs) / len(self.runs)

    @property
    def minimum(self) -> float:
        return min(self.runs)

    @property
    def maximum(self) -> float:
        return max(self.runs)

    @property
    def std(self) -> float:
        if len(self.runs) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((r - mu) ** 2 for r in self.runs) / (len(self.runs) - 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimingResult(mean={self.mean:.6f}s ± {self.std:.6f}s, n={len(self.runs)})"


def measure(
    fn: Callable[[], object],
    repeats: int = 3,
    warmup: int = 0,
    setup: Callable[[], object] | None = None,
    clock: Clock | None = None,
) -> TimingResult:
    """Time ``fn`` over ``repeats`` runs (after ``warmup`` unrecorded ones).

    Args:
        fn: the workload; called with the value returned by ``setup`` when a
            setup callable is given, else with no arguments.
        repeats: recorded runs (must be >= 1).
        warmup: unrecorded runs executed first.
        setup: per-run input factory, excluded from the timed region — use
            it to hand each run a fresh unsorted copy.
        clock: time source; the shared monotonic clock when omitted.
    """
    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")
    if clock is None:
        clock = MONOTONIC

    def _run_once() -> float:
        if setup is not None:
            arg = setup()
            start = clock.now()
            fn(arg)
        else:
            start = clock.now()
            fn()
        return clock.now() - start

    for _ in range(warmup):
        _run_once()
    return TimingResult(runs=[_run_once() for _ in range(repeats)])


class Timer:
    """Context manager measuring one span of the injected clock."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else MONOTONIC
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = self._clock.now() - self._start
