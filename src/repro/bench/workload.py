"""System-benchmark workloads: the IoTDB-benchmark analogue (paper §VI-A2).

IoTDB-benchmark "can generate periodic time series data according to the
configuration ... the Benchmark begins to send the data batch by batch to
IoTDB-Server" with a configurable batch size (paper's optimum: 500), and
optionally issues time-range queries.  This module reproduces that client
behaviour in-process: a dataset's arrival stream is cut into write batches,
interleaved with tail time-range queries at a configured *write percentage*
(the x-axis of Figures 13-21), producing a deterministic operation sequence
the :mod:`repro.bench.client` executes against a storage engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BenchmarkError
from repro.workloads import ArrivalStream, load_dataset

#: The write percentages swept by the paper's system experiments (§VI-D).
PAPER_WRITE_PERCENTAGES = (0.25, 0.50, 0.75, 0.90, 0.95, 0.99)


@dataclass(frozen=True)
class WriteOp:
    """One batched ingestion: ``batch_size`` points for one device's column."""

    device: str
    timestamps: tuple[int, ...]
    values: tuple[float, ...]


@dataclass(frozen=True)
class QueryOp:
    """One tail time-range query: ``time > current - window`` (§VI-D).

    The window is resolved against the *latest ingested timestamp* at
    execution time, matching the paper's choice "to avoid querying data in
    the disk ... we limit the window of the query to the neighborhood of
    the latest timestamp (current)".
    """

    device: str
    window: int


@dataclass
class SystemWorkloadConfig:
    """Parameters of one system-benchmark run.

    Attributes:
        dataset: label understood by :func:`repro.workloads.load_dataset`.
        dataset_params: extra dataset parameters (``mu``/``sigma``/...).
        total_points: points ingested over the whole run.
        batch_size: points per write batch (paper optimum 500).
        write_percentage: fraction of operations that are writes, in (0, 1];
            1.0 means no queries (the paper notes "when the write
            percentage is 1, there is no query operation").
        query_window: width of the tail time-range query.
        device / sensor: the column written and queried; with
            ``n_devices > 1`` the devices are ``{device}-0 .. {device}-k``
            and each gets its own independent arrival stream (each sensor
            "corresponds to one TVList ... sorted separately", §V-B).
        n_devices: how many devices share the workload round-robin.
        seed: workload determinism.
    """

    dataset: str = "lognormal"
    dataset_params: dict = field(default_factory=lambda: {"mu": 1.0, "sigma": 1.0})
    total_points: int = 20_000
    batch_size: int = 500
    write_percentage: float = 0.95
    query_window: int = 1_000
    device: str = "root.bench.d1"
    sensor: str = "s1"
    n_devices: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.write_percentage <= 1.0:
            raise BenchmarkError(
                f"write_percentage must be in (0, 1], got {self.write_percentage}"
            )
        if self.batch_size < 1:
            raise BenchmarkError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_devices < 1:
            raise BenchmarkError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.total_points < self.batch_size * self.n_devices:
            raise BenchmarkError("total_points must be >= batch_size * n_devices")
        if self.query_window < 1:
            raise BenchmarkError(f"query_window must be >= 1, got {self.query_window}")

    def devices(self) -> list[str]:
        """The device identifiers this workload writes to."""
        if self.n_devices == 1:
            return [self.device]
        return [f"{self.device}-{i}" for i in range(self.n_devices)]


def build_stream(config: SystemWorkloadConfig, device_index: int = 0) -> ArrivalStream:
    """The arrival stream ingested for one device of the workload."""
    per_device = config.total_points // config.n_devices
    return load_dataset(
        config.dataset,
        per_device,
        seed=config.seed + device_index,
        **config.dataset_params,
    )


def build_operations(config: SystemWorkloadConfig) -> list[WriteOp | QueryOp]:
    """Deterministic interleaving of write batches and tail queries.

    Write batches round-robin across the devices (each device has its own
    independent arrival stream).  With ``W`` write batches the schedule
    contains ``Q = round(W (1 - wp) / wp)`` queries, spread evenly through
    the write sequence (never before the first batch, so a query always has
    data to scan) and likewise round-robin over the devices.
    """
    devices = config.devices()
    per_device_batches: list[list[WriteOp]] = []
    for index, device in enumerate(devices):
        stream = build_stream(config, index)
        batches = []
        for lo in range(0, len(stream), config.batch_size):
            hi = min(lo + config.batch_size, len(stream))
            batches.append(
                WriteOp(
                    device=device,
                    timestamps=tuple(stream.timestamps[lo:hi]),
                    values=tuple(stream.values[lo:hi]),
                )
            )
        per_device_batches.append(batches)
    # Round-robin interleave the devices' batch sequences.
    writes: list[WriteOp] = []
    for round_index in range(max(len(b) for b in per_device_batches)):
        for batches in per_device_batches:
            if round_index < len(batches):
                writes.append(batches[round_index])
    wp = config.write_percentage
    n_queries = int(round(len(writes) * (1.0 - wp) / wp)) if wp < 1.0 else 0
    ops: list[WriteOp | QueryOp] = list(writes)
    if n_queries:
        # Insert queries at evenly spaced positions, later ones first so
        # earlier insertion indices stay valid.
        positions = np.linspace(1, len(writes), n_queries, dtype=int)
        for q, pos in enumerate(sorted(positions, reverse=True)):
            ops.insert(int(pos), QueryOp(device=devices[q % len(devices)], window=config.query_window))
    return ops
