"""OracleModel: the trivially-correct in-memory twin of the storage engine.

One dict per (device, sensor) column mapping timestamp → freshest value —
exactly the overwrite semantics the engine implements with memtables,
sealed files, separation and compaction.  The differential test
(`tests/faults/test_oracle_differential.py`) pins ``StorageEngine.query``
point-for-point against this model on fault-free workloads; the crash
harness then reuses it as ground truth for what *must* survive a crash.
"""

from __future__ import annotations


class OracleModel:
    """Last-write-wins columns; the harness's ground truth."""

    def __init__(self) -> None:
        self._columns: dict[tuple[str, str], dict[int, object]] = {}

    def write(self, device: str, sensor: str, timestamp: int, value) -> None:
        self._columns.setdefault((device, sensor), {})[timestamp] = value

    def query(
        self, device: str, sensor: str, start: int, end: int
    ) -> tuple[list[int], list]:
        """``SELECT *`` over ``[start, end)``: sorted timestamps + values."""
        column = self._columns.get((device, sensor), {})
        ts = sorted(t for t in column if start <= t < end)
        return ts, [column[t] for t in ts]

    def column(self, device: str, sensor: str) -> dict[int, object]:
        """The raw timestamp → value map (a copy) for one column."""
        return dict(self._columns.get((device, sensor), {}))

    def columns(self) -> list[tuple[str, str]]:
        return sorted(self._columns)

    def total_points(self) -> int:
        return sum(len(c) for c in self._columns.values())

    def copy(self) -> "OracleModel":
        clone = OracleModel()
        clone._columns = {key: dict(col) for key, col in self._columns.items()}
        return clone
