"""FaultInjector: the object the write path consults at every fault site.

The engine (and compaction, and the WAL's file wrapper) hold one injector
and call it at named sites; the injector asks its :class:`~repro.faults.plan.FaultPlan`
whether to fire and, when it does, raises the matching exception —
:class:`repro.errors.InjectedCrashError` for simulated process death,
:class:`repro.errors.InjectedFaultError` for recoverable I/O failures —
after recording the event in the injected :class:`repro.obs.Observability`
(``faults_injected_total{site,kind}`` counter + a ``fault.injected`` span).

:data:`NOOP_INJECTOR` is the shared all-off twin the engine uses by
default: every hook is a cheap no-op and ``wrap_file`` returns the file
unchanged, so production paths pay one method call per site.
"""

from __future__ import annotations

from repro.analysis.concurrency import apply_guards, create_lock, holds
from repro.errors import InjectedCrashError, InjectedFaultError
from repro.faults.files import FaultyFile
from repro.faults.plan import FaultPlan, FaultRule, FiredFault
from repro.obs import NOOP, Observability


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named sites and injects faults.

    Concurrency discipline: ``_lock`` serialises the plan decision and the
    ``fired`` bookkeeping (``plan.decide`` mutates per-rule counters); it
    sits below the engine lock in the global order.
    """

    #: Lock discipline for the ``guarded-by`` rule and runtime sanitizer.
    GUARDED_BY = {"_fired": "_lock"}

    def __init__(self, plan: FaultPlan | None = None, *, obs: Observability = NOOP) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.obs = obs
        self._lock = create_lock("FaultInjector._lock")
        #: Every fault actually injected, in order.
        self._fired: list[FiredFault] = []
        #: While False every hook is inert (see :meth:`disarm`).
        self.armed = True
        self._counter = obs.registry.counter(
            "faults_injected_total",
            "faults injected by repro.faults, by site and kind",
            ("site", "kind"),
        )
        apply_guards(self)

    # -- bookkeeping -------------------------------------------------------

    @property
    def fired(self) -> list[FiredFault]:
        """Every fault actually injected, in order (a copy)."""
        with self._lock:
            return list(self._fired)

    @holds("_lock")
    def _record(self, site: str, rule: FaultRule) -> int:
        call = self.plan.calls[site]
        self._fired.append(FiredFault(site=site, call=call, kind=rule.kind, rule=rule))
        self._counter.labels(site=site, kind=rule.kind).inc()
        with self.obs.span("fault.injected", site=site, call=call, kind=rule.kind):
            pass
        return call

    def crash(self, site: str) -> None:
        """Unconditional simulated process death (used by FaultyFile)."""
        raise InjectedCrashError(site, self.plan.calls.get(site, 0))

    # -- site hooks --------------------------------------------------------

    def disarm(self) -> None:
        """Stop injecting; ``fired`` history survives.

        The harness calls this once the workload is over: plans describe
        faults *during* the run, while post-run verification and cleanup
        (drain, close) must execute on healthy machinery — otherwise a
        ``fires=inf`` rule fails the checker itself.
        """
        self.armed = False

    def crash_point(self, site: str, **context) -> None:
        """A place the process can die; fires only ``crash`` rules."""
        if not self.armed:
            return
        with self._lock:
            rule = self.plan.decide(site, context)
            if rule is not None and rule.kind in ("crash", "torn"):
                call = self._record(site, rule)
                raise InjectedCrashError(site, call)

    def fail_point(self, site: str, **context) -> None:
        """A place an operation can fail recoverably; ``fail`` rules raise
        :class:`InjectedFaultError`, ``crash`` rules still kill the process."""
        if not self.armed:
            return
        with self._lock:
            rule = self.plan.decide(site, context)
            if rule is None:
                return
            call = self._record(site, rule)
            if rule.kind == "fail":
                raise InjectedFaultError(
                    f"injected failure at fault site {site!r} (call #{call})"
                )
            if rule.kind in ("crash", "torn"):
                raise InjectedCrashError(site, call)

    def on_write(self, site: str, nbytes: int) -> tuple[int, bool]:
        """Decision for one file write: (bytes to keep, crash afterwards?)."""
        if not self.armed:
            return nbytes, False
        with self._lock:
            rule = self.plan.decide(site, {"nbytes": nbytes})
            if rule is None:
                return nbytes, False
            call = self._record(site, rule)
            if rule.kind == "fail":
                raise InjectedFaultError(
                    f"injected write failure at fault site {site!r} (call #{call})"
                )
            if rule.kind == "torn":
                keep = max(0, min(nbytes - 1, int(nbytes * rule.arg)))
                return keep, True
            return 0, True  # crash before any byte lands

    def clock_offset(self, site: str = "clock") -> float:
        """Extra seconds a fault-aware clock should jump forward right now."""
        if not self.armed:
            return 0.0
        with self._lock:
            rule = self.plan.decide(site, None)
            if rule is None or rule.kind != "jump":
                return 0.0
            self._record(site, rule)
            return rule.arg

    # -- wiring helpers ----------------------------------------------------

    def wrap_file(self, fileobj, site: str) -> FaultyFile:
        """Interpose this injector on every byte written to ``fileobj``."""
        return FaultyFile(fileobj, self, site)

    @property
    def enabled(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"<FaultInjector plan=[{self.plan.describe()}] "
                f"fired={len(self._fired)}>"
            )


class NoopInjector:
    """All-off twin: one no-op method call per fault site."""

    plan = None
    fired: tuple = ()
    armed = False

    def disarm(self) -> None:
        pass

    def crash_point(self, site: str, **context) -> None:
        pass

    def fail_point(self, site: str, **context) -> None:
        pass

    def on_write(self, site: str, nbytes: int) -> tuple[int, bool]:
        return nbytes, False

    def clock_offset(self, site: str = "clock") -> float:
        return 0.0

    def wrap_file(self, fileobj, site: str):
        return fileobj

    @property
    def enabled(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NoopInjector>"


#: Shared no-op injector; the engine's default when no faults are injected.
NOOP_INJECTOR = NoopInjector()
