"""FaultyClock: clock skew and jumps through the ``repro.obs.clock`` seam.

Every timed surface in the project reads time through an injectable
:class:`repro.obs.Clock` (see docs/OBSERVABILITY.md), which makes clock
misbehaviour a one-line fault to inject: wrap the base clock and hand the
wrapper to ``Observability(clock=...)``.  Each read consults the fault
plan at the ``clock`` site; a ``jump`` rule advances the clock by its
``arg`` seconds (an NTP step, a VM migration stall becoming visible at
once).  The result is clamped monotonic — the :class:`Clock` contract is
that readings are only meaningfully subtracted and never go backwards —
so negative ``arg`` values model a *stalled* clock (readings freeze until
real time catches up) rather than time travel.
"""

from __future__ import annotations

from repro.obs.clock import Clock


class FaultyClock(Clock):
    """Wraps a base clock, applying plan-driven jumps; never runs backwards."""

    def __init__(self, base: Clock, injector) -> None:
        self._base = base
        self._injector = injector
        self._offset = 0.0
        self._last = float("-inf")

    def now(self) -> float:
        self._offset += self._injector.clock_offset("clock")
        reading = self._base.now() + self._offset
        if reading < self._last:
            # A negative jump stalls the clock instead of reversing it.
            reading = self._last
        self._last = reading
        return reading

    @property
    def offset(self) -> float:
        """Cumulative injected skew in seconds."""
        return self._offset
