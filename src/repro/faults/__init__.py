"""repro.faults — deterministic fault injection + crash-consistency harness.

The paper's separation policy exists because real ingestion is messy
("extreme delays like system recovery from failure", §II); this package
is how the repo *provokes* that mess on demand instead of hand-crafting
corrupt byte strings:

* :class:`FaultPlan` / :class:`FaultRule` — seeded, deterministic trigger
  rules (nth-call, probability, predicate) for named fault sites;
* :class:`FaultInjector` — evaluated by the engine's write path at sites
  like ``wal.write``, ``sink.write``, ``flush.perform``, ``flush.seal``,
  ``wal.drop``, ``compact.swap``, ``compact.unlink``, ``clock``;
* :class:`FaultyFile` — fault-aware file wrapper with an explicit
  durable-vs-pending byte model (torn and partial writes);
* :class:`FaultyClock` — skew/jumps through the ``repro.obs.clock`` seam;
* :class:`CrashSimulator` — snapshot the on-disk state at the fault point
  and recover via ``StorageEngine.open``;
* :mod:`repro.faults.harness` — the crash-consistency harness: a seeded
  workload against an in-memory oracle, an exhaustive (bounded) nth-call
  crash sweep over every reachable site, and prefix-consistency checks
  (imported lazily here because it sits *above* the engine).

See docs/FAULTS.md for the site catalogue and the harness's guarantees.
"""

from repro.faults.clock import FaultyClock
from repro.faults.files import FaultyFile
from repro.faults.injector import NOOP_INJECTOR, FaultInjector, NoopInjector
from repro.faults.plan import KINDS, FaultPlan, FaultRule, FiredFault

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FiredFault",
    "KINDS",
    "FaultInjector",
    "NoopInjector",
    "NOOP_INJECTOR",
    "FaultyFile",
    "FaultyClock",
    "CrashSimulator",
    "OracleModel",
]


def __getattr__(name: str):
    # CrashSimulator/OracleModel import the engine layer; load them lazily
    # so `repro.iotdb.engine` can import this package without a cycle.
    if name == "CrashSimulator":
        from repro.faults.crash import CrashSimulator

        return CrashSimulator
    if name == "OracleModel":
        from repro.faults.oracle import OracleModel

        return OracleModel
    raise AttributeError(f"module 'repro.faults' has no attribute {name!r}")
