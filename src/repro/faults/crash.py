"""CrashSimulator: capture the on-disk state at a fault point, reopen from it.

When an :class:`repro.errors.InjectedCrashError` escapes the engine, the
process is — by simulation — dead: nothing it would have done next
happened, and the only truth left is what reached the filesystem.  The
simulator copies the engine's ``data_dir`` *as the filesystem sees it*
(bytes still pending in a :class:`repro.faults.files.FaultyFile` buffer
were never flushed and are naturally absent) into a snapshot directory,
then reopens a fresh engine over the snapshot with
:meth:`StorageEngine.open` — the exact code path a real restart takes.

Snapshotting instead of reopening in place keeps the crashed engine's
still-open file handles from interfering and lets one workload produce
many independent crash points.
"""

from __future__ import annotations

import shutil
from dataclasses import replace
from pathlib import Path


class CrashSimulator:
    """Snapshot ``data_dir`` at a fault point and recover an engine from it."""

    def __init__(self, data_dir: str | Path, snapshot_dir: str | Path) -> None:
        self.data_dir = Path(data_dir)
        self.snapshot_dir = Path(snapshot_dir)

    def snapshot(self) -> Path:
        """Copy the current on-disk state; returns the snapshot directory.

        The copy is recursive: a sharded engine keeps each storage group's
        files under its own ``shard-NN/`` subdirectory, and all of them are
        part of the crashed process's durable state.
        """
        if self.snapshot_dir.exists():
            shutil.rmtree(self.snapshot_dir)
        self.snapshot_dir.mkdir(parents=True)
        for path in sorted(self.data_dir.rglob("*")):
            relative = path.relative_to(self.data_dir)
            if path.is_dir():
                (self.snapshot_dir / relative).mkdir(parents=True, exist_ok=True)
            elif path.is_file():
                target = self.snapshot_dir / relative
                target.parent.mkdir(parents=True, exist_ok=True)
                shutil.copyfile(path, target)
        return self.snapshot_dir

    def reopen(self, config, *, sorter=None, obs=None, faults=None):
        """``StorageEngine.open`` over the snapshot (crash-recovery path).

        ``config`` is the crashed engine's config; its ``data_dir`` is
        re-pointed at the snapshot.  Call :meth:`snapshot` first.
        """
        from repro.iotdb.engine import StorageEngine

        if not self.snapshot_dir.exists():
            self.snapshot()
        recovered_config = replace(config, data_dir=self.snapshot_dir)
        return StorageEngine.open(
            recovered_config, sorter=sorter, obs=obs, faults=faults
        )
