"""FaultyFile: a fault-aware file wrapper with explicit durability.

Wraps a real binary file and models the write path the way crash
consistency actually works: bytes passed to :meth:`write` sit in a
*pending* buffer and only become durable when something calls
:meth:`flush` (or reads/seeks, which force a commit, as an OS would make
buffered bytes visible to readers).  A simulated crash simply abandons
the wrapper — pending bytes never reach the file, exactly like a process
dying with a dirty user-space buffer.  This makes torn-write experiments
deterministic across platforms and Python buffer sizes.

The wrapper is for *append-structured* files (WAL segments, TsFile
sinks): pending bytes always commit at the end of the file, so reads may
seek freely in between without corrupting the append position.

On every write the wrapper consults its injector at the wrapped site
(e.g. ``wal.write``, ``sink.write``); a ``torn`` rule commits only a
prefix of the in-flight bytes before crashing, a ``crash`` rule crashes
before any byte lands, a ``fail`` rule raises a recoverable error.
"""

from __future__ import annotations

import io


class FaultyFile:
    """Binary file wrapper routing writes through a fault injector."""

    def __init__(self, inner, injector, site: str) -> None:
        self._inner = inner
        self._injector = injector
        self._site = site
        self._pending = bytearray()

    # -- durability model --------------------------------------------------

    def _commit(self) -> None:
        """Append pending bytes to the real file and flush them to the OS."""
        if self._pending:
            self._inner.seek(0, io.SEEK_END)
            self._inner.write(bytes(self._pending))
            self._pending.clear()
        self._inner.flush()

    def write(self, data) -> int:
        data = bytes(data)
        keep, crash = self._injector.on_write(self._site, len(data))
        if keep >= len(data) and not crash:
            self._pending.extend(data)
            return len(data)
        # Torn write: the kept prefix reached the disk (commit it), the
        # rest never did; then the process dies.
        self._pending.extend(data[:keep])
        self._commit()
        self._injector.crash(self._site)
        return keep  # pragma: no cover - crash() always raises

    def flush(self) -> None:
        self._commit()

    # -- read side (used by TsFileReader after seal, replay after rotate) --

    def read(self, size: int = -1):
        self._commit()
        return self._inner.read(size)

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        self._commit()
        return self._inner.seek(offset, whence)

    def tell(self) -> int:
        self._commit()
        return self._inner.tell()

    def truncate(self, size: int | None = None) -> int:
        self._commit()
        return self._inner.truncate(size)

    def close(self) -> None:
        """A *clean* close commits pending bytes (normal process exit)."""
        self._commit()
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    def pending_bytes(self) -> int:
        """Bytes written but not yet durable (lost if a crash happens now)."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultyFile site={self._site!r} pending={len(self._pending)}B>"
