"""FaultPlan: deterministic, seeded trigger rules for named fault sites.

A plan is a list of :class:`FaultRule` objects plus a seeded
``random.Random``.  Every visit to a fault site asks the plan to
:meth:`~FaultPlan.decide`; the plan counts the call (the per-site call
counters are what the crash sweep enumerates) and returns the first rule
that triggers, if any.  Trigger modes:

* ``nth`` — fire on exactly the nth visit to the site (1-based);
* ``probability`` — fire with probability p per visit, drawn from the
  plan's seeded RNG, so a given seed reproduces the same fault sequence;
* ``predicate`` — fire when a callable over the site's context says so.

What *happens* when a rule fires is its ``kind``:

* ``crash`` — simulated process death (:class:`repro.errors.InjectedCrashError`);
* ``torn`` — commit only a prefix of the in-flight file write, then crash
  (``arg`` is the fraction of bytes kept);
* ``fail`` — a recoverable I/O error (:class:`repro.errors.InjectedFaultError`);
* ``jump`` — advance the fault-aware clock by ``arg`` seconds.

Plans parse from compact command-line specs (see :meth:`FaultPlan.parse`)::

    wal.write:nth=3:kind=torn:arg=0.5
    flush.perform:p=0.01:kind=fail:fires=inf
    sink.write:nth=7,clock:nth=2:kind=jump:arg=30
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Callable

from repro.errors import InvalidParameterError

KINDS = ("crash", "torn", "fail", "jump")


@dataclass
class FaultRule:
    """One trigger rule: when to fire at a site, and what fault to inject."""

    site: str
    kind: str = "crash"
    nth: int | None = None
    probability: float | None = None
    predicate: Callable[[dict], bool] | None = None
    arg: float = 0.5
    max_fires: int | None = 1
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidParameterError(
                f"fault kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.nth is not None and self.nth < 1:
            raise InvalidParameterError(f"nth is 1-based, got {self.nth}")
        if self.probability is not None and not (0.0 <= self.probability <= 1.0):
            raise InvalidParameterError(
                f"probability must be in [0, 1], got {self.probability}"
            )

    def matches_site(self, site: str) -> bool:
        """Exact match, or glob-style (``sink.*`` matches ``sink.write``)."""
        return self.site == site or fnmatchcase(site, self.site)

    def describe(self) -> str:
        trigger = (
            f"nth={self.nth}"
            if self.nth is not None
            else f"p={self.probability}"
            if self.probability is not None
            else "predicate"
            if self.predicate is not None
            else "always"
        )
        return f"{self.site}:{trigger}:kind={self.kind}"


@dataclass
class FiredFault:
    """Record of one injected fault (kept by the injector for assertions)."""

    site: str
    call: int
    kind: str
    rule: FaultRule


class FaultPlan:
    """Seeded rule set deciding, per fault-site visit, whether to inject."""

    def __init__(self, rules: list[FaultRule] | tuple = (), seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = seed
        self.rng = random.Random(seed)
        #: Visits per site — populated even with no rules, which is how the
        #: crash sweep discovers every reachable site and its call count.
        self.calls: dict[str, int] = {}

    def decide(self, site: str, context: dict | None = None) -> FaultRule | None:
        """Count this visit and return the rule that fires, if any."""
        n = self.calls.get(site, 0) + 1
        self.calls[site] = n
        for rule in self.rules:
            if not rule.matches_site(site):
                continue
            if rule.max_fires is not None and rule.fired >= rule.max_fires:
                continue
            if rule.nth is not None and n != rule.nth:
                continue
            if rule.probability is not None and self.rng.random() >= rule.probability:
                continue
            if rule.predicate is not None and not rule.predicate(context or {}):
                continue
            rule.fired += 1
            return rule
        return None

    def reset(self) -> None:
        """Back to the initial state (counters, RNG, per-rule fire counts)."""
        self.calls = {}
        self.rng = random.Random(self.seed)
        for rule in self.rules:
            rule.fired = 0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a compact spec string.

        ``spec`` is a comma-separated list of rules; each rule is a site
        name followed by colon-separated options: ``nth=N``, ``p=F``,
        ``kind=K`` (or a bare kind name), ``arg=F``, ``fires=N|inf``.
        """
        rules: list[FaultRule] = []
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            site, options = parts[0].strip(), parts[1:]
            if not site:
                raise InvalidParameterError(f"empty fault site in rule {chunk!r}")
            kwargs: dict = {"site": site}
            for option in options:
                option = option.strip()
                if option in KINDS:
                    kwargs["kind"] = option
                    continue
                key, sep, value = option.partition("=")
                if not sep:
                    raise InvalidParameterError(
                        f"bad fault option {option!r} in rule {chunk!r}"
                    )
                try:
                    if key == "nth":
                        kwargs["nth"] = int(value)
                    elif key in ("p", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "kind":
                        kwargs["kind"] = value
                    elif key == "arg":
                        kwargs["arg"] = float(value)
                    elif key == "fires":
                        kwargs["max_fires"] = None if value == "inf" else int(value)
                    else:
                        raise InvalidParameterError(
                            f"unknown fault option {key!r} in rule {chunk!r}"
                        )
                except ValueError:
                    raise InvalidParameterError(
                        f"bad value {value!r} for {key!r} in rule {chunk!r}"
                    ) from None
            rules.append(FaultRule(**kwargs))
        if not rules:
            raise InvalidParameterError(f"fault plan spec {spec!r} contains no rules")
        return cls(rules, seed=seed)

    def describe(self) -> str:
        return "; ".join(rule.describe() for rule in self.rules) or "<no rules>"
