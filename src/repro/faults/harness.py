"""Crash-consistency harness: seeded workload, exhaustive crash sweep, checks.

The contract being verified (the one a WAL exists to provide):

* **No lost writes** — every point whose ``StorageEngine.write`` returned
  (was *acknowledged*) is present, with the right value, after recovery.
* **No phantoms** — recovery produces no point that was never written; at
  most the single *in-flight* write interrupted by the crash may appear
  (it reached the WAL but was never acknowledged — either outcome is
  legal), and any non-acknowledged write may legally be missing.
* **No duplicates / wrong values** — last-write-wins semantics survive:
  each timestamp maps to exactly the freshest acknowledged value.
* **Coherent watermarks** — after recovery the sequence memtable holds no
  point at or below its device's separation watermark.
* **Coherent interval index** — after recovery every shard's in-memory
  interval index holds exactly one entry per non-empty sealed file, with
  the file's true time range (a torn or stale ``interval-index.json`` must
  have been rebuilt, never believed).

The sweep enumerates every fault site the workload actually reaches (an
empty :class:`FaultPlan` counts site visits), then replays the workload
once per (site, nth-call) pair with a crash injected there, snapshots the
durable state, recovers with ``StorageEngine.open``, and checks the
contract against the in-memory :class:`OracleModel`.  ``python -m
repro.faults.harness`` runs the sweep standalone (CI's ``faults`` job
does exactly this).

The whole sweep is backend-parametric (``FaultWorkload.backend`` /
``--backend``): ``v1`` is the historical local directory layout, snapshot
by directory copy (:class:`CrashSimulator`); ``v2-local`` the same bytes
created as engine version 2; ``v2-memory`` runs over a
:class:`~repro.iotdb.backends.MemoryStore`, snapshot by
``store.snapshot()`` at the crash point — in every case the snapshot is
taken *before* the crashed engine is abandoned, so bytes still pending in
a :class:`~repro.faults.files.FaultyFile` buffer are absent from it, on
every backend, through the same code path.  A crash can also fire inside
``StorageEngine.create`` itself (the ``meta.*`` stamp sites), leaving an
unversioned or torn-stamp tree; the sweep recovers those too.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import InjectedCrashError
from repro.faults.crash import CrashSimulator
from repro.faults.injector import FaultInjector
from repro.faults.oracle import OracleModel
from repro.faults.plan import FaultPlan, FaultRule


@dataclass
class FaultWorkload:
    """A deterministic, seeded write workload for the crash harness.

    Small by design: the sweep replays it once per crash case, so its
    size multiplies the number of reachable (site, call) pairs.
    """

    points: int = 400
    devices: int = 2
    sensors: int = 2
    #: Fraction of writes sent to an already-flushed (old) timestamp —
    #: exercises the unsequence space and the overwrite rule.
    late_fraction: float = 0.15
    flush_threshold: int = 60
    deferred: bool = False
    #: Issue a compact op after every N writes (0 = never).
    compact_every: int = 0
    #: Issue a drain op after every N writes (0 = never; deferred mode).
    drain_every: int = 0
    #: Storage groups inside the engine; each shard's pipeline is swept
    #: independently (a crash in one shard's flush must not corrupt the
    #: others' recovery).  Flushes stay inline (``flush_workers=0``) so
    #: the sweep's (site, nth) enumeration is deterministic.
    shards: int = 1
    #: Which persistence stack the sweep runs over: ``"v1"`` (the local
    #: directory layout), ``"v2-local"`` (the same bytes, created as
    #: engine version 2), or ``"v2-memory"`` (engine version 2 over a
    #: :class:`~repro.iotdb.backends.MemoryStore`).
    backend: str = "v1"
    seed: int = 7

    def config(self, data_dir):
        from repro.iotdb.config import IoTDBConfig

        if self.backend not in ("v1", "v2-local", "v2-memory"):
            raise ValueError(f"unknown harness backend {self.backend!r}")
        return IoTDBConfig(
            data_dir=None if self.backend == "v2-memory" else data_dir,
            wal_enabled=True,
            memtable_flush_threshold=self.flush_threshold,
            deferred_flush=self.deferred,
            shards=self.shards,
            engine_version=1 if self.backend == "v1" else 2,
        )

    def ops(self) -> list[tuple]:
        """The op sequence: ``("write", d, s, t, v)``, ``("compact",)``,
        ``("drain",)`` — identical for a given workload, every time."""
        import random

        rng = random.Random(self.seed)
        next_t = {f"d{i}": 0 for i in range(self.devices)}
        ops: list[tuple] = []
        for n in range(self.points):
            device = f"d{rng.randrange(self.devices)}"
            sensor = f"s{rng.randrange(self.sensors)}"
            if next_t[device] > 20 and rng.random() < self.late_fraction:
                t = rng.randrange(max(1, next_t[device] - 20))
            else:
                t = next_t[device]
                next_t[device] += rng.randrange(1, 4)
            ops.append(("write", device, sensor, t, float(n)))
            if self.compact_every and (n + 1) % self.compact_every == 0:
                ops.append(("compact",))
            if self.drain_every and (n + 1) % self.drain_every == 0:
                ops.append(("drain",))
        return ops


@dataclass
class CrashCaseResult:
    """Outcome of one crash case of the sweep."""

    site: str
    nth: int
    kind: str
    #: Did the planned fault actually fire?  (A site may be unreachable at
    #: that call count for this workload variant.)
    fired: bool
    #: Writes acknowledged before the crash.
    acked_points: int
    #: Points visible after recovery.
    recovered_points: int
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class SweepReport:
    """All cases of one crash sweep."""

    sites: dict[str, int]
    cases: list[CrashCaseResult] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        return [
            f"{case.site}:nth={case.nth}:{case.kind}: {violation}"
            for case in self.cases
            for violation in case.violations
        ]

    @property
    def fired_cases(self) -> int:
        return sum(1 for case in self.cases if case.fired)

    def summary(self) -> dict:
        return {
            "sites": dict(self.sites),
            "cases": len(self.cases),
            "fired": self.fired_cases,
            "violations": self.violations,
        }


def run_ops(engine, ops, oracle: OracleModel | None = None):
    """Execute ``ops`` against ``engine``, recording acknowledged writes.

    Returns ``(acked, inflight)``: the oracle of acknowledged writes and
    the op in flight when a simulated crash struck (``None`` if the
    workload ran to completion).  The in-flight write may or may not
    survive recovery; everything in ``acked`` must.
    """
    acked = oracle if oracle is not None else OracleModel()
    for op in ops:
        try:
            if op[0] == "write":
                _, device, sensor, t, v = op
                engine.write(device, sensor, t, v)
                acked.write(device, sensor, t, v)
            elif op[0] == "compact":
                engine.compact()
            elif op[0] == "drain":
                engine.drain_flushes()
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown op {op!r}")
        except InjectedCrashError:
            return acked, op
    return acked, None


def check_points(recovered: dict, acked: dict, allowed_extra=None) -> list[str]:
    """Pure prefix-consistency check for one column.

    ``recovered`` and ``acked`` map timestamp → value; ``allowed_extra``
    maps timestamps of *unacknowledged but legally possible* points (the
    write in flight at the crash) to the value they were written with —
    each may be present or absent, but if present must carry that value,
    unless an acknowledged write at the same timestamp supersedes it.
    Returns human-readable violations (empty = consistent).
    """
    violations: list[str] = []
    for t, v in sorted(acked.items()):
        if t not in recovered:
            violations.append(f"lost acknowledged point t={t} v={v!r}")
        elif recovered[t] != v:
            violations.append(
                f"wrong value at t={t}: expected {v!r}, got {recovered[t]!r}"
            )
    allowed = {
        t: v for t, v in (allowed_extra or {}).items() if t not in acked
    }
    for t, v in sorted(recovered.items()):
        if t in acked:
            continue
        if t in allowed:
            if v != allowed[t]:
                violations.append(
                    f"in-flight point t={t} recovered with value {v!r}, "
                    f"expected {allowed[t]!r}"
                )
            continue
        violations.append(f"phantom point t={t} v={v!r}")
    return violations


def check_recovery(engine, acked: OracleModel, inflight_op=None) -> list[str]:
    """Check a recovered engine against the acknowledged-write oracle."""
    violations: list[str] = []
    inflight_key = None
    inflight_point = None
    if inflight_op is not None and inflight_op[0] == "write":
        _, device, sensor, t, v = inflight_op
        inflight_key = (device, sensor)
        inflight_point = (t, v)

    columns = set(acked.columns())
    if inflight_key is not None:
        columns.add(inflight_key)
    for device, sensor in sorted(columns):
        acked_col = acked.column(device, sensor)
        times = list(acked_col)
        if inflight_key == (device, sensor):
            times.append(inflight_point[0])
        horizon = max(times) + 1 if times else 1
        result = engine.query(device, sensor, 0, horizon)
        recovered = dict(zip(result.timestamps, result.values))
        if len(recovered) != len(result.timestamps):
            violations.append(f"{device}.{sensor}: duplicated timestamps in query")
        allowed = (
            {inflight_point[0]: inflight_point[1]}
            if inflight_key == (device, sensor)
            else None
        )
        violations.extend(
            f"{device}.{sensor}: {v}"
            for v in check_points(recovered, acked_col, allowed)
        )

    # Watermark coherence: every shard's recovered sequence memtable must
    # hold no point at or below its device's watermark.
    from repro.iotdb.interval_index import build_entries
    from repro.iotdb.separation import Space

    for shard in engine.shards:
        with shard._lock:
            seq_memtable = shard._working[Space.SEQUENCE]
            index_entries = sorted(shard._index.entries())
            expected_entries = sorted(build_entries(shard._sealed))
        if index_entries != expected_entries:
            violations.append(
                f"shard {shard.shard_id}: interval index diverges from the "
                f"sealed files: index={index_entries!r} "
                f"expected={expected_entries!r}"
            )
        for device, sensor, tvlist in seq_memtable.iter_chunks():
            watermark = shard.separation.watermark(device)
            if watermark is None:
                continue
            min_time = min(tvlist.timestamps())
            if min_time <= watermark:
                violations.append(
                    f"{device}.{sensor} (shard {shard.shard_id}): sequence "
                    f"memtable holds t={min_time} at or below watermark "
                    f"{watermark}"
                )
    return violations


def _count_recovered(engine, acked: OracleModel, inflight_op=None) -> int:
    total = 0
    columns = set(acked.columns())
    if inflight_op is not None and inflight_op[0] == "write":
        columns.add((inflight_op[1], inflight_op[2]))
    for device, sensor in sorted(columns):
        result = engine.query(device, sensor, 0, 1 << 60)
        total += len(result.timestamps)
    return total


def _abandon(engine) -> None:
    """Drop a crashed engine's OS handles without committing anything new.

    Called only *after* the snapshot is taken, so any pending bytes a
    close might flush land in the abandoned directory, never the snapshot.
    """
    for shard in engine.shards:
        with shard._lock:
            for sealed in shard._sealed:
                if sealed.buffer is not None and not isinstance(
                    sealed.buffer, io.BytesIO
                ):
                    try:
                        sealed.buffer.close()
                    except Exception:
                        pass
            if shard._wals:
                for wal in shard._wals.values():
                    try:
                        wal.close()
                    except Exception:
                        pass


def _make_store(workload: FaultWorkload):
    """The explicit store a workload backend needs (``None`` = data_dir).

    Constructed *before* the engine so it survives a crash injected
    inside ``create`` itself (the caller snapshots it either way).
    """
    if workload.backend == "v2-memory":
        from repro.iotdb.backends import MemoryStore

        return MemoryStore()
    return None


def _create_engine(workload: FaultWorkload, data_dir, injector, store=None):
    """``StorageEngine.create`` over the workload's backend.

    A crash during create propagates — the caller owns the try/except.
    """
    from repro.iotdb.engine import StorageEngine

    config = workload.config(data_dir)
    return StorageEngine.create(config, faults=injector, backend=store)


def _reopen_memory(workload: FaultWorkload, snapshot: dict):
    """``StorageEngine.open`` over a MemoryStore crash snapshot."""
    from repro.iotdb.backends import MemoryStore
    from repro.iotdb.engine import StorageEngine

    return StorageEngine.open(
        workload.config(None), backend=MemoryStore.from_snapshot(snapshot)
    )


def discover_sites(workload: FaultWorkload, root: Path) -> dict[str, int]:
    """Run the workload fault-free and return every visited site's call count."""
    root = Path(root)
    data_dir = root / "discover"
    injector = FaultInjector(FaultPlan())
    engine = _create_engine(workload, data_dir, injector, _make_store(workload))
    run_ops(engine, workload.ops())
    engine.close()
    return dict(injector.plan.calls)


def run_crash_case(
    workload: FaultWorkload,
    site: str,
    nth: int,
    root: Path,
    *,
    kind: str = "crash",
    arg: float = 0.5,
) -> CrashCaseResult:
    """Crash the workload at the nth visit of ``site``, recover, and check."""
    import shutil

    root = Path(root)
    case_dir = root / f"{site.replace('.', '_')}-{nth}-{kind}"
    if case_dir.exists():
        shutil.rmtree(case_dir)
    data_dir = case_dir / "data"

    plan = FaultPlan(
        [FaultRule(site=site, kind=kind, nth=nth, arg=arg)], seed=workload.seed
    )
    injector = FaultInjector(plan)
    store = _make_store(workload)
    engine = None
    try:
        engine = _create_engine(workload, data_dir, injector, store)
    except InjectedCrashError:
        # create() itself crashed (a meta.* stamp site): zero acknowledged
        # writes, and the tree on disk may be unversioned or carry a torn
        # stamp — recovery below must still open it.
        pass
    if engine is not None:
        acked, inflight = run_ops(engine, workload.ops())
    else:
        acked, inflight = OracleModel(), None

    if not injector.fired:
        # The workload finished without reaching (site, nth); shutdown
        # still flushes and can legitimately hit the fault site.
        try:
            engine.close()
        except InjectedCrashError:
            pass
    if not injector.fired:
        # Unreachable (site, nth) for this workload: nothing to check.
        shutil.rmtree(case_dir, ignore_errors=True)
        return CrashCaseResult(
            site=site, nth=nth, kind=kind, fired=False,
            acked_points=acked.total_points(), recovered_points=0,
        )

    # Snapshot the durable state BEFORE abandoning the crashed engine:
    # closing its handles would commit FaultyFile-pending bytes the
    # simulated crash never flushed.
    if workload.backend == "v2-memory":
        snapshot = store.snapshot()
        if engine is not None:
            _abandon(engine)
        recovered = _reopen_memory(workload, snapshot)
    else:
        simulator = CrashSimulator(data_dir, case_dir / "snapshot")
        simulator.snapshot()
        if engine is not None:
            _abandon(engine)
        recovered = simulator.reopen(workload.config(data_dir))
    try:
        violations = check_recovery(recovered, acked, inflight)
        recovered_points = _count_recovered(recovered, acked, inflight)
    finally:
        recovered.close()
    result = CrashCaseResult(
        site=site,
        nth=nth,
        kind=kind,
        fired=True,
        acked_points=acked.total_points(),
        recovered_points=recovered_points,
        violations=violations,
    )
    if result.ok:
        shutil.rmtree(case_dir, ignore_errors=True)
    return result


def _nth_positions(calls: int, max_nth: int) -> list[int]:
    """Which call numbers to crash at: all of them when they fit the
    budget, otherwise ``max_nth`` positions spread across the range
    (always including the first and last call)."""
    if calls <= max_nth:
        return list(range(1, calls + 1))
    positions = {
        1 + round(i * (calls - 1) / (max_nth - 1)) for i in range(max_nth)
    }
    return sorted(positions)


#: Sites whose faults model torn *file writes*: sweep them with a torn
#: (prefix-keeping) variant as well as a clean pre-write crash.
WRITE_SITES = ("wal.write", "sink.write", "index.write", "meta.write")


def run_crash_sweep(
    workload: FaultWorkload,
    root: Path,
    *,
    max_nth: int = 5,
    torn_writes: bool = True,
) -> SweepReport:
    """Exhaustive (bounded) crash sweep over every reachable fault site."""
    root = Path(root)
    sites = discover_sites(workload, root)
    report = SweepReport(sites=sites)
    for site in sorted(sites):
        if site == "clock":
            continue  # jump faults do not kill the process
        for nth in _nth_positions(sites[site], max_nth):
            report.cases.append(run_crash_case(workload, site, nth, root))
            if torn_writes and site in WRITE_SITES:
                report.cases.append(
                    run_crash_case(workload, site, nth, root, kind="torn", arg=0.5)
                )
    return report


def run_fault_plan(
    workload: FaultWorkload, plan: FaultPlan, root: Path
) -> CrashCaseResult:
    """Run the workload under an arbitrary plan (the ``--faults`` CLI path).

    If a crash fires, recover and check; if only recoverable faults fire
    (or none), finish the workload, then verify the surviving engine
    agrees with the oracle exactly.
    """
    import shutil

    from repro.errors import InjectedFaultError

    root = Path(root)
    case_dir = root / "plan-run"
    if case_dir.exists():
        shutil.rmtree(case_dir)
    data_dir = case_dir / "data"

    injector = FaultInjector(plan)
    store = _make_store(workload)
    engine = None
    crashed = False
    try:
        engine = _create_engine(workload, data_dir, injector, store)
    except InjectedCrashError:
        crashed = True
    acked = OracleModel()
    inflight = None
    ops = workload.ops() if engine is not None else []
    for op in ops:
        try:
            if op[0] == "write":
                _, device, sensor, t, v = op
                engine.write(device, sensor, t, v)
                acked.write(device, sensor, t, v)
            elif op[0] == "compact":
                engine.compact()
            elif op[0] == "drain":
                engine.drain_flushes()
        except InjectedFaultError:
            # Recoverable: the op failed, the engine lives on.  A failing
            # *write* is ambiguous (e.g. the point landed durably but the
            # flush it triggered failed), so probe the surviving engine to
            # settle whether the point counts as written.
            if op[0] == "write":
                _, device, sensor, t, v = op
                probe = engine.query(device, sensor, t, t + 1)
                if probe.timestamps == [t] and probe.values == [v]:
                    acked.write(device, sensor, t, v)
            continue
        except InjectedCrashError:
            crashed = True
            inflight = op
            break

    kind = injector.fired[-1].kind if injector.fired else "none"
    site = injector.fired[-1].site if injector.fired else "<none>"
    nth = injector.fired[-1].call if injector.fired else 0
    # The plan covers the workload; verification and shutdown run healthy.
    injector.disarm()
    if crashed:
        if workload.backend == "v2-memory":
            snapshot = store.snapshot()
            if engine is not None:
                _abandon(engine)
            checked = _reopen_memory(workload, snapshot)
        else:
            simulator = CrashSimulator(data_dir, case_dir / "snapshot")
            simulator.snapshot()
            if engine is not None:
                _abandon(engine)
            checked = simulator.reopen(workload.config(data_dir))
    else:
        engine.drain_flushes()
        checked = engine
    try:
        violations = check_recovery(checked, acked, inflight)
        recovered_points = _count_recovered(checked, acked, inflight)
    finally:
        checked.close()
    return CrashCaseResult(
        site=site, nth=nth, kind=kind, fired=bool(injector.fired),
        acked_points=acked.total_points(), recovered_points=recovered_points,
        violations=violations,
    )


def main(argv=None) -> int:
    """CLI: run the crash sweep and exit non-zero on any violation."""
    import argparse
    import json
    import tempfile

    parser = argparse.ArgumentParser(
        description="repro.faults crash-consistency sweep"
    )
    parser.add_argument("--points", type=int, default=400)
    parser.add_argument("--flush-threshold", type=int, default=60)
    parser.add_argument("--max-nth", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--deferred", action="store_true")
    parser.add_argument("--compact-every", type=int, default=0)
    parser.add_argument("--drain-every", type=int, default=0)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--backend",
        choices=("v1", "v2-local", "v2-memory"),
        default="v1",
        help="persistence stack to sweep (engine version / blob store)",
    )
    parser.add_argument("--root", type=Path, default=None,
                        help="work directory (default: a fresh temp dir)")
    args = parser.parse_args(argv)

    workload = FaultWorkload(
        points=args.points,
        flush_threshold=args.flush_threshold,
        seed=args.seed,
        deferred=args.deferred,
        compact_every=args.compact_every,
        drain_every=args.drain_every,
        shards=args.shards,
        backend=args.backend,
    )
    root = args.root if args.root is not None else Path(tempfile.mkdtemp(prefix="repro-faults-"))
    report = run_crash_sweep(workload, root, max_nth=args.max_nth)
    print(json.dumps(report.summary(), indent=2))
    return 1 if report.violations else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
