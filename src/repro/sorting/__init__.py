"""Baseline sorting algorithms implemented from scratch for the evaluation."""

from repro.sorting.cksort import CKSorter
from repro.sorting.dualpivot import DualPivotQuickSorter
from repro.sorting.impatience import ImpatienceSorter
from repro.sorting.insertion import BinaryInsertionSorter, InsertionSorter
from repro.sorting.mergesort import MergeSorter, merge_into, straight_block_merge
from repro.sorting.patience import PatienceSorter
from repro.sorting.quicksort import QuickSorter, quicksort_range
from repro.sorting.registry import (
    PAPER_ALGORITHMS,
    available_sorters,
    get_sorter,
    register_sorter,
)
from repro.sorting.smoothsort import SmoothSorter
from repro.sorting.timsort import TimSorter, compute_minrun
from repro.sorting.ysort import YSorter

__all__ = [
    "BinaryInsertionSorter",
    "CKSorter",
    "DualPivotQuickSorter",
    "ImpatienceSorter",
    "InsertionSorter",
    "MergeSorter",
    "PAPER_ALGORITHMS",
    "PatienceSorter",
    "QuickSorter",
    "SmoothSorter",
    "TimSorter",
    "YSorter",
    "available_sorters",
    "compute_minrun",
    "get_sorter",
    "merge_into",
    "quicksort_range",
    "register_sorter",
    "straight_block_merge",
]
