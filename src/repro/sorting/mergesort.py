"""Bottom-up Merge-Sort and the straight block-merge baseline of Figure 2.

Two roles in the reproduction:

* :class:`MergeSorter` is the textbook stable baseline.
* :func:`straight_block_merge` is the "Straight Merge" of the paper's
  Example 3 / Figure 2: pre-sorted blocks are merged left-to-right, so early
  blocks are copied again on every later merge ("the first block is moved
  again, causing redundant moves").  Backward merge (in
  :mod:`repro.core.backward_merge`) is evaluated against this.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter


def merge_into(
    src_t: list,
    src_v: list,
    lo: int,
    mid: int,
    hi: int,
    dst_t: list,
    dst_v: list,
    dst_lo: int,
    stats: SortStats,
) -> None:
    """Stable two-way merge of ``src[lo:mid]`` and ``src[mid:hi]`` into ``dst``.

    Output occupies ``dst[dst_lo : dst_lo + (hi - lo)]``.  Every element lands
    in ``dst`` exactly once, so the merge costs ``hi - lo`` moves plus at most
    ``hi - lo - 1`` comparisons.
    """
    i, j, k = lo, mid, dst_lo
    comparisons = 0
    while i < mid and j < hi:
        comparisons += 1
        if src_t[j] < src_t[i]:
            dst_t[k] = src_t[j]
            dst_v[k] = src_v[j]
            j += 1
        else:
            dst_t[k] = src_t[i]
            dst_v[k] = src_v[i]
            i += 1
        k += 1
    while i < mid:
        dst_t[k] = src_t[i]
        dst_v[k] = src_v[i]
        i += 1
        k += 1
    while j < hi:
        dst_t[k] = src_t[j]
        dst_v[k] = src_v[j]
        j += 1
        k += 1
    stats.comparisons += comparisons
    stats.moves += hi - lo


class MergeSorter(Sorter):
    """Stable bottom-up merge sort with a full-size auxiliary buffer."""

    name = "merge"
    stable = True

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        n = len(ts)
        buf_t: list = [None] * n
        buf_v: list = [None] * n
        stats.note_extra_space(n)
        src_t, src_v = ts, vs
        dst_t, dst_v = buf_t, buf_v
        width = 1
        while width < n:
            for lo in range(0, n, 2 * width):
                mid = min(lo + width, n)
                hi = min(lo + 2 * width, n)
                if mid >= hi:
                    # Lone tail run: carry it over unmerged.
                    dst_t[lo:hi] = src_t[lo:hi]
                    dst_v[lo:hi] = src_v[lo:hi]
                    stats.moves += hi - lo
                else:
                    merge_into(src_t, src_v, lo, mid, hi, dst_t, dst_v, lo, stats)
            src_t, dst_t = dst_t, src_t
            src_v, dst_v = dst_v, src_v
            width *= 2
        if src_t is not ts:
            ts[:] = src_t
            vs[:] = src_v
            stats.moves += n


def straight_block_merge(
    ts: list,
    vs: list,
    block_bounds: list[int],
    stats: SortStats,
) -> None:
    """Left-to-right merge of pre-sorted consecutive blocks (Figure 2, "I").

    ``block_bounds`` holds half-open boundaries ``[b0, b1, ..., bk]`` with
    ``b0 == 0`` and ``bk == len(ts)``; each ``ts[b_i:b_{i+1}]`` must already
    be sorted.  The running prefix is merged with each next block through an
    auxiliary buffer and copied back.  The prefix is re-moved on every merge,
    which is exactly the redundancy the paper's Example 3 charges straight
    merge for (``4M + 4`` moves on its three-block example).
    """
    if len(block_bounds) < 3:
        return
    for b in range(1, len(block_bounds) - 1):
        lo, mid, hi = block_bounds[0], block_bounds[b], block_bounds[b + 1]
        width = hi - lo
        buf_t: list = [None] * width
        buf_v: list = [None] * width
        stats.note_extra_space(width)
        merge_into(ts, vs, lo, mid, hi, buf_t, buf_v, 0, stats)
        ts[lo:hi] = buf_t
        vs[lo:hi] = buf_v
        stats.moves += width  # copy-back from the auxiliary buffer
        stats.merges += 1
