"""CKSort (Cook & Kim, CACM 1980) — "best sorting algorithm for nearly sorted lists".

The paper describes it as "a hybrid sorting algorithm of Quicksort, Insertion
Sort and Merge Sort.  It extracts the unordered pairs into another array,
then sorts and merges the two arrays.  The downside of CKSort is that it
requires O(n) extra space and may bring multiple redundant moves."

Phase 1 extracts *pairs*: scanning left to right with a kept-prefix, whenever
the incoming element is smaller than the tail of the kept prefix, both
elements of the inverted pair (the kept tail and the newcomer) are moved to
the overflow array.  The kept prefix therefore stays sorted by construction.
Phase 2 sorts the overflow with Quicksort (Insertion-Sort when it is tiny).
Phase 3 merges the two sorted sequences back into the input.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter, insertion_sort_range
from repro.sorting.mergesort import merge_into
from repro.sorting.quicksort import quicksort_range

# Below this overflow size, insertion sort beats quicksort on the overflow.
_SMALL_OVERFLOW = 32


class CKSorter(Sorter):
    """Extract inverted pairs, sort them, merge back; O(n) extra space."""

    name = "ck"
    stable = False

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        n = len(ts)
        kept_t: list = []
        kept_v: list = []
        over_t: list = []
        over_v: list = []
        comparisons = 0
        moves = 0
        for i in range(n):
            t = ts[i]
            if kept_t:
                comparisons += 1
                if kept_t[-1] > t:
                    # Inverted pair: evict both to the overflow array.
                    over_t.append(kept_t.pop())
                    over_v.append(kept_v.pop())
                    over_t.append(t)
                    over_v.append(vs[i])
                    moves += 2
                    continue
            kept_t.append(t)
            kept_v.append(vs[i])
            moves += 1
        stats.comparisons += comparisons
        stats.moves += moves
        stats.note_extra_space(n + len(over_t))

        if len(over_t) <= _SMALL_OVERFLOW:
            insertion_sort_range(over_t, over_v, 0, len(over_t), stats)
        else:
            quicksort_range(over_t, over_v, 0, len(over_t), stats)

        # Merge kept + overflow back into the caller's arrays.
        src_t = kept_t + over_t
        src_v = kept_v + over_v
        merge_into(src_t, src_v, 0, len(kept_t), n, ts, vs, 0, stats)
        stats.merges += 1
