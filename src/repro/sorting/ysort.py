"""YSort (Wainwright, CACM 1985) — a quicksort variation with min/max anchoring.

The paper: "YSort, a variation of Quicksort, ensures that the minimum and
maximum elements of each sublist are located on the left and right.
Therefore, it requires fewer partitioning steps."  And in the evaluation:
"YSort performs well when the degree of out-of-order is small ... However,
it is not effective when the out-of-order degree gets large."

Each call scans its sublist once, locating the minimum and the maximum and
detecting whether the sublist is already sorted.  An already-sorted sublist
returns immediately (the nearly-sorted fast path).  Otherwise the min is
swapped to the left end and the max to the right end, and the interior is
partitioned around the middle element; recursion excludes the anchored ends,
shaving one element per side per level.  The per-call scan is exactly what
makes YSort degrade when disorder is high — the scans stop paying for
themselves — which reproduces the paper's observed crossover.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter, insertion_sort_range

_INSERTION_CUTOFF = 16


class YSorter(Sorter):
    """Min/max-anchored quicksort with a sortedness fast path."""

    name = "y"
    stable = False

    def __init__(self, insertion_cutoff: int = _INSERTION_CUTOFF) -> None:
        if insertion_cutoff < 1:
            raise ValueError("insertion_cutoff must be >= 1")
        self._cutoff = insertion_cutoff

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        comparisons = 0
        moves = 0
        stack = [(0, len(ts) - 1)]
        cutoff = self._cutoff
        while stack:
            lo, hi = stack.pop()
            if hi - lo + 1 <= cutoff:
                if hi > lo:
                    stats.comparisons += comparisons
                    stats.moves += moves
                    comparisons = 0
                    moves = 0
                    insertion_sort_range(ts, vs, lo, hi + 1, stats)
                continue
            # Single scan: min index, max index, sortedness check.
            min_i = max_i = lo
            is_sorted = True
            prev = ts[lo]
            for i in range(lo + 1, hi + 1):
                cur = ts[i]
                comparisons += 1
                if cur < prev:
                    is_sorted = False
                comparisons += 2
                if cur < ts[min_i]:
                    min_i = i
                elif cur > ts[max_i]:
                    max_i = i
                prev = cur
            if is_sorted:
                continue
            # Anchor min at lo and max at hi (order matters when they collide).
            if min_i != lo:
                ts[lo], ts[min_i] = ts[min_i], ts[lo]
                vs[lo], vs[min_i] = vs[min_i], vs[lo]
                moves += 3
                if max_i == lo:
                    max_i = min_i
            if max_i != hi:
                ts[hi], ts[max_i] = ts[max_i], ts[hi]
                vs[hi], vs[max_i] = vs[max_i], vs[hi]
                moves += 3
            # Partition the interior around its middle element (Hoare).
            left, right = lo + 1, hi - 1
            if left >= right:
                continue
            pivot = ts[(left + right) >> 1]
            i, j = left - 1, right + 1
            while True:
                i += 1
                comparisons += 1
                while ts[i] < pivot:
                    i += 1
                    comparisons += 1
                j -= 1
                comparisons += 1
                while ts[j] > pivot:
                    j -= 1
                    comparisons += 1
                if i >= j:
                    break
                ts[i], ts[j] = ts[j], ts[i]
                vs[i], vs[j] = vs[j], vs[i]
                moves += 3
            stack.append((left, j))
            stack.append((j + 1, right))
        stats.comparisons += comparisons
        stats.moves += moves
