"""Name-based registry of every sorter in the library.

Mirrors the paper's Section V-C design, where all compared algorithms sit
behind one interface so the TVList sort call sites (flush and query) can be
switched by configuration.  The storage engine, the benchmark harness, and
the experiment drivers all resolve sorters through this registry.
"""

from __future__ import annotations

from typing import Callable

from repro.core.backward_sort import BackwardSorter
from repro.core.sorter import Sorter
from repro.errors import InvalidParameterError
from repro.sorting.cksort import CKSorter
from repro.sorting.dualpivot import DualPivotQuickSorter
from repro.sorting.impatience import ImpatienceSorter
from repro.sorting.insertion import BinaryInsertionSorter, InsertionSorter
from repro.sorting.mergesort import MergeSorter
from repro.sorting.patience import PatienceSorter
from repro.sorting.quicksort import QuickSorter
from repro.sorting.smoothsort import SmoothSorter
from repro.sorting.timsort import TimSorter
from repro.sorting.ysort import YSorter

# Mutated only by register_sorter (a config-time extension hook expected to
# run before threads start).  Catalogued in docs/ANALYSIS.md.
_FACTORIES: dict[str, Callable[[], Sorter]] = {  # repro: allow(shared-state-escape)
    BackwardSorter.name: BackwardSorter,
    QuickSorter.name: QuickSorter,
    TimSorter.name: TimSorter,
    PatienceSorter.name: PatienceSorter,
    ImpatienceSorter.name: ImpatienceSorter,
    CKSorter.name: CKSorter,
    DualPivotQuickSorter.name: DualPivotQuickSorter,
    YSorter.name: YSorter,
    InsertionSorter.name: InsertionSorter,
    BinaryInsertionSorter.name: BinaryInsertionSorter,
    MergeSorter.name: MergeSorter,
    SmoothSorter.name: SmoothSorter,
}

#: The six algorithms compared throughout the paper's evaluation (§VI-A1).
PAPER_ALGORITHMS = ("backward", "quick", "tim", "patience", "ck", "y")


def available_sorters() -> tuple[str, ...]:
    """Names of every registered sorter, sorted alphabetically."""
    return tuple(sorted(_FACTORIES))


def get_sorter(
    name: str, *, sanitize: bool | None = None, obs=None, **kwargs
) -> Sorter:
    """Instantiate a sorter by registry name — the one sorter entry point.

    Args:
        name: a key from :func:`available_sorters`.
        sanitize: wrap the sorter in the runtime sanitizer
            (:class:`repro.analysis.sanitizer.SanitizingSorter`), which
            asserts sortedness, pair permutation, and stats consistency after
            every sort.  ``None`` (the default) defers to the
            ``REPRO_SANITIZE`` environment variable.
        obs: an :class:`repro.obs.Observability` the sorter's
            :meth:`~repro.core.sorter.Sorter.timed_sort` reports into by
            default.  ``None`` leaves the sorter unobserved unless a call
            site injects its own.
        **kwargs: forwarded to the sorter constructor (e.g. ``theta`` or
            ``fixed_block_size`` for ``"backward"``).

    Raises:
        InvalidParameterError: for an unknown name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown sorter {name!r}; available: {', '.join(available_sorters())}"
        ) from None
    sorter = factory(**kwargs)
    if sanitize is None:
        # Lazy import: the analysis package is only needed when sanitizing.
        from repro.analysis.sanitizer import sanitize_enabled

        sanitize = sanitize_enabled()
    if sanitize:
        from repro.analysis.sanitizer import SanitizingSorter

        sorter = SanitizingSorter(sorter)
    if obs is not None:
        sorter.obs = obs
    return sorter


def register_sorter(factory: Callable[[], Sorter], name: str) -> None:
    """Register a custom sorter factory under ``name`` (extension hook)."""
    if name in _FACTORIES:
        raise InvalidParameterError(f"sorter name {name!r} is already registered")
    _FACTORIES[name] = factory
