"""Smoothsort (Dijkstra, 1982) — adaptive heapsort over Leonardo heaps.

Included because the paper's related-work section singles it out:
"Smoothsort is inspired by heapsort, and maintains a priority queue to
extract the maximum.  Though its upper bound is O(n log n), it is unstable."
On already-sorted input it runs in O(n), which makes it an interesting
adaptive reference point next to Backward-Sort.

The implementation follows Dijkstra's original structure: the array is
maintained as a string of Leonardo-tree max-heaps whose roots ascend left to
right.  ``_sift`` restores a single heap, ``_trinkle`` restores the root
string.  The build phase grows the string one element at a time; the shrink
phase pops the global maximum off the right and re-exposes children heaps.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter


def _leonardo_numbers(limit: int) -> list[int]:
    """Leonardo numbers 1, 1, 3, 5, 9, 15, ... up to at least ``limit``."""
    nums = [1, 1]
    while nums[-1] < limit:
        nums.append(nums[-1] + nums[-2] + 1)
    return nums


class SmoothSorter(Sorter):
    """In-place, unstable, adaptive O(n log n) smoothsort."""

    name = "smooth"
    stable = False

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        n = len(ts)
        leo = _leonardo_numbers(n)
        orders: list[int] = []  # heap orders, leftmost heap first

        def sift(pos: int, order: int) -> None:
            root_t = ts[pos]
            root_v = vs[pos]
            while order >= 2:
                right = pos - 1
                left = pos - 1 - leo[order - 2]
                stats.comparisons += 1
                if ts[left] >= ts[right]:
                    child, child_order = left, order - 1
                else:
                    child, child_order = right, order - 2
                stats.comparisons += 1
                if ts[child] <= root_t:
                    break
                ts[pos] = ts[child]
                vs[pos] = vs[child]
                stats.moves += 1
                pos, order = child, child_order
            ts[pos] = root_t
            vs[pos] = root_v
            stats.moves += 1

        def trinkle(pos: int, heap_idx: int) -> None:
            """Restore ascending roots ending at heap ``heap_idx`` (root at pos)."""
            order = orders[heap_idx]
            while heap_idx > 0:
                prev_pos = pos - leo[order]
                stats.comparisons += 1
                if ts[prev_pos] <= ts[pos]:
                    break
                if order >= 2:
                    # Only hoist the previous root if it also dominates the
                    # current heap's children; otherwise sifting suffices.
                    right = pos - 1
                    left = pos - 1 - leo[order - 2]
                    stats.comparisons += 2
                    if ts[prev_pos] < ts[left] or ts[prev_pos] < ts[right]:
                        break
                ts[pos], ts[prev_pos] = ts[prev_pos], ts[pos]
                vs[pos], vs[prev_pos] = vs[prev_pos], vs[pos]
                stats.moves += 3
                pos = prev_pos
                heap_idx -= 1
                order = orders[heap_idx]
            sift(pos, order)

        # Build phase: grow the heap string over the whole array.
        for i in range(n):
            if len(orders) >= 2 and orders[-2] == orders[-1] + 1:
                orders.pop()
                orders[-1] += 1
            elif orders and orders[-1] == 1:
                orders.append(0)
            else:
                orders.append(1)
            trinkle(i, len(orders) - 1)

        # Shrink phase: repeatedly remove the maximum from the right end.
        for i in range(n - 1, 0, -1):
            order = orders.pop()
            if order >= 2:
                # Expose the two child heaps and restore the root string for
                # each newly exposed root (left child first, then right).
                orders.append(order - 1)
                orders.append(order - 2)
                left_root = i - 1 - leo[order - 2]
                trinkle(left_root, len(orders) - 2)
                trinkle(i - 1, len(orders) - 1)
