"""Quicksort with middle-element pivot, as used in the paper's evaluation.

The paper (Section VI-A1) implements "Quicksort ... where the pivot is always
chosen as the middle element of arrays due to time series": on nearly sorted
input the middle element is close to the median, so the partition stays
balanced even though the data is almost ordered — the classic
first-element-pivot pathology never triggers.

The implementation is iterative (explicit stack) so arrays of millions of
points do not hit the interpreter recursion limit, and in place (no auxiliary
buffer), which the paper cites as Quicksort's system-friendliness.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter, insertion_sort_range

# Partitions at or below this size are finished with insertion sort; the
# classic engineering cutoff (CLRS) that every practical quicksort uses.
_INSERTION_CUTOFF = 16


class QuickSorter(Sorter):
    """In-place, unstable quicksort with middle pivot (paper baseline)."""

    name = "quick"
    stable = False

    def __init__(self, insertion_cutoff: int = _INSERTION_CUTOFF) -> None:
        if insertion_cutoff < 1:
            raise ValueError("insertion_cutoff must be >= 1")
        self._cutoff = insertion_cutoff

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        quicksort_range(ts, vs, 0, len(ts), stats, self._cutoff)


def quicksort_range(
    ts: list,
    vs: list,
    lo: int,
    hi: int,
    stats: SortStats,
    cutoff: int = _INSERTION_CUTOFF,
) -> None:
    """Sort the half-open range ``ts[lo:hi]`` (and ``vs``) in place.

    Exposed as a function because Backward-Sort reuses it to sort each block
    (Algorithm 1, line 11: "Quicksort(block_i)").
    """
    comparisons = 0
    moves = 0
    stack = [(lo, hi - 1)]
    while stack:
        left, right = stack.pop()
        while right - left + 1 > cutoff:
            # Hoare partition around the middle element.
            pivot = ts[(left + right) >> 1]
            i, j = left - 1, right + 1
            while True:
                i += 1
                comparisons += 1
                while ts[i] < pivot:
                    i += 1
                    comparisons += 1
                j -= 1
                comparisons += 1
                while ts[j] > pivot:
                    j -= 1
                    comparisons += 1
                if i >= j:
                    break
                ts[i], ts[j] = ts[j], ts[i]
                vs[i], vs[j] = vs[j], vs[i]
                moves += 3
            # Recurse into the smaller side first to bound stack depth.
            if j - left < right - j - 1:
                stack.append((j + 1, right))
                right = j
            else:
                stack.append((left, j))
                left = j + 1
        if right > left:
            stats.comparisons += comparisons
            stats.moves += moves
            comparisons = 0
            moves = 0
            insertion_sort_range(ts, vs, left, right + 1, stats)
    stats.comparisons += comparisons
    stats.moves += moves
