"""Dual-pivot Quicksort (Yaroslavskiy) — Java's primitive-array default.

The paper benchmarks against "Java's default sort algorithm Timsort", which
is the default for *object* arrays; primitive arrays (like a timestamp
``long[]``) go through dual-pivot Quicksort instead.  Including it closes
that gap: it is the strongest generic unstable baseline a Java engineer
would reach for on numeric data.

Classic scheme: two pivots ``p1 <= p2`` partition the range into three
parts (< p1, between, > p2); recursion (via an explicit stack) handles each
part, with an insertion-sort cutoff for small ranges.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter, insertion_sort_range

_INSERTION_CUTOFF = 32


class DualPivotQuickSorter(Sorter):
    """In-place, unstable dual-pivot quicksort."""

    name = "dual-pivot"
    stable = False

    def __init__(self, insertion_cutoff: int = _INSERTION_CUTOFF) -> None:
        if insertion_cutoff < 2:
            raise ValueError("insertion_cutoff must be >= 2")
        self._cutoff = insertion_cutoff

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        comparisons = 0
        moves = 0
        stack = [(0, len(ts) - 1)]
        cutoff = self._cutoff
        while stack:
            lo, hi = stack.pop()
            if hi - lo + 1 <= cutoff:
                if hi > lo:
                    stats.comparisons += comparisons
                    stats.moves += moves
                    comparisons = 0
                    moves = 0
                    insertion_sort_range(ts, vs, lo, hi + 1, stats)
                continue
            # Pivots from the 1/3 and 2/3 positions, ordered.
            third = (hi - lo + 1) // 3
            m1, m2 = lo + third, hi - third
            comparisons += 1
            if ts[m1] > ts[m2]:
                ts[m1], ts[m2] = ts[m2], ts[m1]
                vs[m1], vs[m2] = vs[m2], vs[m1]
                moves += 3
            ts[lo], ts[m1] = ts[m1], ts[lo]
            vs[lo], vs[m1] = vs[m1], vs[lo]
            ts[hi], ts[m2] = ts[m2], ts[hi]
            vs[hi], vs[m2] = vs[m2], vs[hi]
            moves += 6
            p1, p2 = ts[lo], ts[hi]

            lt = lo + 1  # ts[lo+1:lt) < p1
            gt = hi - 1  # ts(gt:hi] > p2
            i = lt
            while i <= gt:
                comparisons += 1
                if ts[i] < p1:
                    ts[i], ts[lt] = ts[lt], ts[i]
                    vs[i], vs[lt] = vs[lt], vs[i]
                    moves += 3
                    lt += 1
                    i += 1
                else:
                    comparisons += 1
                    if ts[i] > p2:
                        ts[i], ts[gt] = ts[gt], ts[i]
                        vs[i], vs[gt] = vs[gt], vs[i]
                        moves += 3
                        gt -= 1
                    else:
                        i += 1
            # Settle the pivots into their final slots.
            lt -= 1
            gt += 1
            ts[lo], ts[lt] = ts[lt], ts[lo]
            vs[lo], vs[lt] = vs[lt], vs[lo]
            ts[hi], ts[gt] = ts[gt], ts[hi]
            vs[hi], vs[gt] = vs[gt], vs[hi]
            moves += 6
            stack.append((lo, lt - 1))
            stack.append((lt + 1, gt - 1))
            stack.append((gt + 1, hi))
        stats.comparisons += comparisons
        stats.moves += moves
