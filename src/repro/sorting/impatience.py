"""Impatience Sort (Chandramouli & Goldstein, ICDE 2018) — simplified.

The paper's related work lists Impatience Sort beside Patience Sort as
"state-of-the-art algorithms specifically designed for nearly sorted data",
noting it "also takes advantage of some modern processors".  The SIMD tricks
have no Python analogue; what this implementation keeps is the algorithmic
content that distinguishes it from plain Patience Sort:

* the same pile dealing (reused from :mod:`repro.sorting.patience`), but
* a *cost-aware merge order* — shortest two runs merged first (Huffman
  order), so long runs are copied as few times as possible, and
* *galloping* merges: runs from nearly sorted data barely interleave, so
  each merge binary-searches run boundaries and moves whole segments with
  slice copies instead of element-by-element comparison.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter
from repro.sorting.patience import _deal_into_piles


def _galloping_merge(
    at: list, av: list, bt: list, bv: list, stats: SortStats
) -> tuple[list, list]:
    """Merge two sorted runs by alternating galloped segment copies."""
    n = len(at) + len(bt)
    out_t: list = []
    out_v: list = []
    i = j = 0
    comparisons = 0
    while i < len(at) and j < len(bt):
        if at[i] <= bt[j]:
            # Take the whole prefix of `a` that is <= bt[j] in one slice.
            split = bisect_right(at, bt[j], i)
            comparisons += max(1, (split - i).bit_length())
            out_t.extend(at[i:split])
            out_v.extend(av[i:split])
            i = split
        else:
            split = bisect_right(bt, at[i], j)
            comparisons += max(1, (split - j).bit_length())
            out_t.extend(bt[j:split])
            out_v.extend(bv[j:split])
            j = split
    out_t.extend(at[i:])
    out_v.extend(av[i:])
    out_t.extend(bt[j:])
    out_v.extend(bv[j:])
    stats.comparisons += comparisons
    stats.moves += n
    stats.note_extra_space(n)
    return out_t, out_v


class ImpatienceSorter(Sorter):
    """Pile dealing + Huffman-ordered galloping merges."""

    name = "impatience"
    stable = False

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        piles = _deal_into_piles(ts, vs, stats)
        stats.runs += len(piles)
        # Min-heap of (length, tiebreaker, run) — merge the two shortest.
        heap = [
            (len(pt), idx, (pt, pv)) for idx, (pt, pv) in enumerate(piles)
        ]
        heapq.heapify(heap)
        counter = len(heap)
        while len(heap) > 1:
            _, _, (at, av) = heapq.heappop(heap)
            _, _, (bt, bv) = heapq.heappop(heap)
            merged = _galloping_merge(at, av, bt, bv, stats)
            stats.merges += 1
            heapq.heappush(heap, (len(merged[0]), counter, merged))
            counter += 1
        if heap:
            out_t, out_v = heap[0][2]
            ts[:] = out_t
            vs[:] = out_v
            stats.moves += len(ts)
