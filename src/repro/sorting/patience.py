"""Patience Sort (Chandramouli & Goldstein, SIGMOD 2014) — run-based baseline.

The paper calls Patience Sort "the most recently proposed algorithm for
nearly sorted data" and observes that it is unstable across workloads in
IoTDB because "the cost of moves (TV pairs) is higher in IoTDB than that in
general arrays.  Thereby, the constructions of sorted runs consume more
time."  This implementation keeps the two phases explicit so those costs are
measurable:

1. *Run generation* — deal elements onto sorted piles.  Pile tails are kept
   in ascending order; each element lands on the rightmost pile whose tail is
   ``<=`` the element (binary search, with a fast path for the most recently
   used pile).  Nearly sorted input yields very few piles.
2. *Merge* — ping-pong pairwise merge rounds over the piles, the memory trick
   the original paper uses to avoid repeated allocation.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter
from repro.sorting.mergesort import merge_into


class PatienceSorter(Sorter):
    """Two-phase patience sort: pile dealing + ping-pong merge."""

    name = "patience"
    stable = False

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        piles = _deal_into_piles(ts, vs, stats)
        stats.runs += len(piles)
        merged_t, merged_v = _pingpong_merge(piles, stats)
        ts[:] = merged_t
        vs[:] = merged_v
        stats.moves += len(ts)


def _deal_into_piles(
    ts: list, vs: list, stats: SortStats
) -> list[tuple[list, list]]:
    """Deal the input into ascending piles; returns (times, values) per pile.

    Piles are held with their tails in *descending* order (largest tail
    first), so an element below every tail opens its new pile with an O(1)
    append at the end.  The ascending layout would need a front insertion
    there — O(piles) per element, quadratic on reversed input.
    """
    pile_ts: list[list] = []
    pile_vs: list[list] = []
    last_used = -1
    comparisons = 0
    moves = 0
    for idx in range(len(ts)):
        t = ts[idx]
        v = vs[idx]
        # Fast path: nearly sorted data almost always extends the
        # largest-tail pile, which the descending layout keeps at index 0.
        if last_used == 0:
            comparisons += 1
            if pile_ts[0][-1] <= t:
                pile_ts[0].append(t)
                pile_vs[0].append(v)
                moves += 1
                continue
        # Binary search the leftmost pile with tail <= t (tails descending):
        # that is the pile with the largest tail not exceeding t.
        lo, hi = 0, len(pile_ts)
        while lo < hi:
            mid = (lo + hi) >> 1
            comparisons += 1
            if pile_ts[mid][-1] <= t:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(pile_ts):
            pile_ts.append([t])
            pile_vs.append([v])
        else:
            pile_ts[lo].append(t)
            pile_vs[lo].append(v)
        last_used = lo
        moves += 1
    stats.comparisons += comparisons
    stats.moves += moves
    stats.note_extra_space(len(ts))
    return list(zip(pile_ts, pile_vs))


def _pingpong_merge(
    piles: list[tuple[list, list]], stats: SortStats
) -> tuple[list, list]:
    """Merge piles pairwise in rounds until one sorted run remains."""
    if not piles:
        return [], []
    runs = piles
    while len(runs) > 1:
        next_runs: list[tuple[list, list]] = []
        for i in range(0, len(runs) - 1, 2):
            at, av = runs[i]
            bt, bv = runs[i + 1]
            out_t: list = [None] * (len(at) + len(bt))
            out_v: list = [None] * (len(at) + len(bt))
            src_t = at + bt
            src_v = av + bv
            merge_into(
                src_t, src_v, 0, len(at), len(src_t), out_t, out_v, 0, stats
            )
            stats.merges += 1
            next_runs.append((out_t, out_v))
        if len(runs) % 2:
            next_runs.append(runs[-1])
        runs = next_runs
    return runs[0]
