"""Straight Insertion-Sort — the ``L = 1`` degenerate case of Backward-Sort.

Proposition 5 of the paper: "Backward-Sort becomes Straight Insertion-Sort
with the worst case complexity O(n^2) given L = 1."  Insertion sort is
adaptive with respect to the inversion count ``Inv`` (it performs exactly
``Inv`` element shifts), which makes it the natural lower anchor for the
block-size trade-off the paper studies.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter, binary_insertion_sort_range, insertion_sort_range


class InsertionSorter(Sorter):
    """Stable, in-place straight insertion sort; O(n + Inv) time."""

    name = "insertion"
    stable = True

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        insertion_sort_range(ts, vs, 0, len(ts), stats)


class BinaryInsertionSorter(Sorter):
    """Insertion sort that locates positions by binary search.

    Saves comparisons (O(n log n) of them) while keeping the O(n + Inv) move
    count; included because the move/comparison split matters in TVLists,
    where the paper notes pair moves are the expensive operation.
    """

    name = "binary-insertion"
    stable = True

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        binary_insertion_sort_range(ts, vs, 0, len(ts), 1, stats)
