"""Timsort — Apache IoTDB's incumbent sorter, reimplemented from scratch.

The paper notes "The Apache IoTDB's current method is Timsort" and uses
Java's default sort as a baseline.  This is a faithful from-scratch
implementation of the algorithm (Peters, 2002): natural-run detection with
descending-run reversal, extension of short runs to ``minrun`` via binary
insertion, a run stack maintaining the classic invariants, and galloping-mode
merges that exploit pre-sorted structure.

Timsort is the strongest generic competitor on nearly sorted data, which is
why beating it is the paper's headline algorithmic claim.
"""

from __future__ import annotations

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter, binary_insertion_sort_range

_MIN_GALLOP = 7


class TimSorter(Sorter):
    """Stable natural merge sort with galloping (Timsort)."""

    name = "tim"
    stable = True

    def _sort(self, ts: list, vs: list, stats: SortStats) -> None:
        _TimsortRun(ts, vs, stats).sort()


def compute_minrun(n: int) -> int:
    """Timsort's minrun: n reduced to [32, 64] by halving, +1 if bits dropped."""
    r = 0
    while n >= 64:
        r |= n & 1
        n >>= 1
    return n + r


class _TimsortRun:
    """One sort invocation; holds the run stack and galloping state."""

    def __init__(self, ts: list, vs: list, stats: SortStats) -> None:
        self.ts = ts
        self.vs = vs
        self.stats = stats
        self.min_gallop = _MIN_GALLOP
        # Stack of (base, length) for pending runs.
        self.pending: list[tuple[int, int]] = []

    def sort(self) -> None:
        ts = self.ts
        n = len(ts)
        minrun = compute_minrun(n)
        lo = 0
        while lo < n:
            run_len = self._count_run_and_make_ascending(lo, n)
            if run_len < minrun:
                force = min(minrun, n - lo)
                binary_insertion_sort_range(
                    ts, self.vs, lo, lo + force, lo + run_len, self.stats
                )
                run_len = force
            self.pending.append((lo, run_len))
            self.stats.runs += 1
            self._merge_collapse()
            lo += run_len
        self._merge_force_collapse()

    def _count_run_and_make_ascending(self, lo: int, hi: int) -> int:
        """Length of the natural run at ``lo``; descending runs are reversed.

        Only *strictly* descending runs are reversed, preserving stability.
        """
        ts, vs = self.ts, self.vs
        run_hi = lo + 1
        if run_hi == hi:
            return 1
        self.stats.comparisons += 1
        if ts[run_hi] < ts[lo]:
            while run_hi + 1 < hi:
                self.stats.comparisons += 1
                if ts[run_hi + 1] < ts[run_hi]:
                    run_hi += 1
                else:
                    break
            run_hi += 1
            left, right = lo, run_hi - 1
            while left < right:
                ts[left], ts[right] = ts[right], ts[left]
                vs[left], vs[right] = vs[right], vs[left]
                self.stats.moves += 3
                left += 1
                right -= 1
        else:
            while run_hi + 1 < hi:
                self.stats.comparisons += 1
                if ts[run_hi + 1] >= ts[run_hi]:
                    run_hi += 1
                else:
                    break
            run_hi += 1
        return run_hi - lo

    def _merge_collapse(self) -> None:
        """Restore the run-stack invariants by merging adjacent runs."""
        pending = self.pending
        while len(pending) > 1:
            n = len(pending) - 2
            if n > 0 and pending[n - 1][1] <= pending[n][1] + pending[n + 1][1]:
                if pending[n - 1][1] < pending[n + 1][1]:
                    self._merge_at(n - 1)
                else:
                    self._merge_at(n)
            elif pending[n][1] <= pending[n + 1][1]:
                self._merge_at(n)
            else:
                break

    def _merge_force_collapse(self) -> None:
        pending = self.pending
        while len(pending) > 1:
            n = len(pending) - 2
            if n > 0 and pending[n - 1][1] < pending[n + 1][1]:
                n -= 1
            self._merge_at(n)

    def _merge_at(self, i: int) -> None:
        base1, len1 = self.pending[i]
        base2, len2 = self.pending[i + 1]
        self.pending[i] = (base1, len1 + len2)
        del self.pending[i + 1]
        ts = self.ts
        # Skip elements of run1 already <= run2's head, and of run2 already
        # >= run1's tail (gallop over the pre-sorted fringes).
        k = self._gallop_right(ts[base2], base1, len1, 0)
        base1 += k
        len1 -= k
        if len1 == 0:
            return
        len2 = self._gallop_left(ts[base1 + len1 - 1], base2, len2, len2 - 1)
        if len2 == 0:
            return
        if len1 <= len2:
            self._merge_lo(base1, len1, base2, len2)
        else:
            self._merge_hi(base1, len1, base2, len2)

    def _gallop_left(self, key, base: int, length: int, hint: int) -> int:
        """Leftmost insertion point of ``key`` in sorted ``ts[base:base+length]``."""
        ts = self.ts
        last_ofs, ofs = 0, 1
        self.stats.comparisons += 1
        if key > ts[base + hint]:
            max_ofs = length - hint
            while ofs < max_ofs:
                self.stats.comparisons += 1
                if key > ts[base + hint + ofs]:
                    last_ofs = ofs
                    ofs = (ofs << 1) + 1
                else:
                    break
            ofs = min(ofs, max_ofs)
            last_ofs += hint
            ofs += hint
        else:
            max_ofs = hint + 1
            while ofs < max_ofs:
                self.stats.comparisons += 1
                if key > ts[base + hint - ofs]:
                    break
                last_ofs = ofs
                ofs = (ofs << 1) + 1
            ofs = min(ofs, max_ofs)
            last_ofs, ofs = hint - ofs, hint - last_ofs
        last_ofs += 1
        while last_ofs < ofs:
            mid = (last_ofs + ofs) >> 1
            self.stats.comparisons += 1
            if key > ts[base + mid]:
                last_ofs = mid + 1
            else:
                ofs = mid
        return ofs

    def _gallop_right(self, key, base: int, length: int, hint: int) -> int:
        """Rightmost insertion point of ``key`` in sorted ``ts[base:base+length]``."""
        ts = self.ts
        last_ofs, ofs = 0, 1
        self.stats.comparisons += 1
        if key < ts[base + hint]:
            max_ofs = hint + 1
            while ofs < max_ofs:
                self.stats.comparisons += 1
                if key < ts[base + hint - ofs]:
                    last_ofs = ofs
                    ofs = (ofs << 1) + 1
                else:
                    break
            ofs = min(ofs, max_ofs)
            last_ofs, ofs = hint - ofs, hint - last_ofs
        else:
            max_ofs = length - hint
            while ofs < max_ofs:
                self.stats.comparisons += 1
                if key < ts[base + hint + ofs]:
                    break
                last_ofs = ofs
                ofs = (ofs << 1) + 1
            ofs = min(ofs, max_ofs)
            last_ofs += hint
            ofs += hint
        last_ofs += 1
        while last_ofs < ofs:
            mid = (last_ofs + ofs) >> 1
            self.stats.comparisons += 1
            if key < ts[base + mid]:
                ofs = mid
            else:
                last_ofs = mid + 1
        return ofs

    def _merge_lo(self, base1: int, len1: int, base2: int, len2: int) -> None:
        """Merge with run1 buffered (run1 is the shorter, left run)."""
        ts, vs, stats = self.ts, self.vs, self.stats
        tmp_t = ts[base1 : base1 + len1]
        tmp_v = vs[base1 : base1 + len1]
        stats.moves += len1
        stats.note_extra_space(len1)
        i, j, dest = 0, base2, base1
        min_gallop = self.min_gallop
        while True:
            count1 = count2 = 0
            # One-pair-at-a-time mode.
            while True:
                stats.comparisons += 1
                if ts[j] < tmp_t[i]:
                    ts[dest] = ts[j]
                    vs[dest] = vs[j]
                    stats.moves += 1
                    dest += 1
                    j += 1
                    len2 -= 1
                    count2 += 1
                    count1 = 0
                    if len2 == 0:
                        break
                else:
                    ts[dest] = tmp_t[i]
                    vs[dest] = tmp_v[i]
                    stats.moves += 1
                    dest += 1
                    i += 1
                    len1 -= 1
                    count1 += 1
                    count2 = 0
                    if len1 == 1:
                        break
                if count1 >= min_gallop or count2 >= min_gallop:
                    break
            if len2 == 0 or len1 == 1:
                break
            # Galloping mode.
            while count1 >= _MIN_GALLOP or count2 >= _MIN_GALLOP:
                count1 = self._gallop_right_list(ts[j], tmp_t, i, len1)
                if count1:
                    ts[dest : dest + count1] = tmp_t[i : i + count1]
                    vs[dest : dest + count1] = tmp_v[i : i + count1]
                    stats.moves += count1
                    dest += count1
                    i += count1
                    len1 -= count1
                    if len1 <= 1:
                        break
                ts[dest] = ts[j]
                vs[dest] = vs[j]
                stats.moves += 1
                dest += 1
                j += 1
                len2 -= 1
                if len2 == 0:
                    break
                count2 = self._gallop_left(tmp_t[i], j, len2, 0)
                if count2:
                    ts[dest : dest + count2] = ts[j : j + count2]
                    vs[dest : dest + count2] = vs[j : j + count2]
                    stats.moves += count2
                    dest += count2
                    j += count2
                    len2 -= count2
                    if len2 == 0:
                        break
                ts[dest] = tmp_t[i]
                vs[dest] = tmp_v[i]
                stats.moves += 1
                dest += 1
                i += 1
                len1 -= 1
                if len1 == 1:
                    break
                min_gallop -= 1
            if len2 == 0 or len1 <= 1:
                break
            min_gallop = max(min_gallop, 0) + 2  # penalize leaving gallop mode
        self.min_gallop = max(min_gallop, 1)
        if len1 == 1:
            ts[dest : dest + len2] = ts[j : j + len2]
            vs[dest : dest + len2] = vs[j : j + len2]
            ts[dest + len2] = tmp_t[i]
            vs[dest + len2] = tmp_v[i]
            stats.moves += len2 + 1
        elif len1 > 1:
            ts[dest : dest + len1] = tmp_t[i : i + len1]
            vs[dest : dest + len1] = tmp_v[i : i + len1]
            stats.moves += len1

    def _merge_hi(self, base1: int, len1: int, base2: int, len2: int) -> None:
        """Merge with run2 buffered (run2 is the shorter, right run)."""
        ts, vs, stats = self.ts, self.vs, self.stats
        tmp_t = ts[base2 : base2 + len2]
        tmp_v = vs[base2 : base2 + len2]
        stats.moves += len2
        stats.note_extra_space(len2)
        i = base1 + len1 - 1
        j = len2 - 1
        dest = base2 + len2 - 1
        min_gallop = self.min_gallop
        while True:
            count1 = count2 = 0
            while True:
                stats.comparisons += 1
                if tmp_t[j] < ts[i]:
                    ts[dest] = ts[i]
                    vs[dest] = vs[i]
                    stats.moves += 1
                    dest -= 1
                    i -= 1
                    len1 -= 1
                    count1 += 1
                    count2 = 0
                    if len1 == 0:
                        break
                else:
                    ts[dest] = tmp_t[j]
                    vs[dest] = tmp_v[j]
                    stats.moves += 1
                    dest -= 1
                    j -= 1
                    len2 -= 1
                    count2 += 1
                    count1 = 0
                    if len2 == 1:
                        break
                if count1 >= min_gallop or count2 >= min_gallop:
                    break
            if len1 == 0 or len2 == 1:
                break
            while count1 >= _MIN_GALLOP or count2 >= _MIN_GALLOP:
                k = self._gallop_right(tmp_t[j], base1, len1, len1 - 1)
                count1 = len1 - k
                if count1:
                    dest -= count1
                    i -= count1
                    ts[dest + 1 : dest + 1 + count1] = ts[i + 1 : i + 1 + count1]
                    vs[dest + 1 : dest + 1 + count1] = vs[i + 1 : i + 1 + count1]
                    stats.moves += count1
                    len1 -= count1
                    if len1 == 0:
                        break
                ts[dest] = tmp_t[j]
                vs[dest] = tmp_v[j]
                stats.moves += 1
                dest -= 1
                j -= 1
                len2 -= 1
                if len2 == 1:
                    break
                k = self._gallop_left_list(ts[i], tmp_t, 0, len2)
                count2 = len2 - k
                if count2:
                    dest -= count2
                    j -= count2
                    ts[dest + 1 : dest + 1 + count2] = tmp_t[j + 1 : j + 1 + count2]
                    vs[dest + 1 : dest + 1 + count2] = tmp_v[j + 1 : j + 1 + count2]
                    stats.moves += count2
                    len2 -= count2
                    if len2 <= 1:
                        break
                ts[dest] = ts[i]
                vs[dest] = vs[i]
                stats.moves += 1
                dest -= 1
                i -= 1
                len1 -= 1
                if len1 == 0:
                    break
                min_gallop -= 1
            if len1 == 0 or len2 <= 1:
                break
            min_gallop = max(min_gallop, 0) + 2
        self.min_gallop = max(min_gallop, 1)
        if len2 == 1:
            dest -= len1
            i -= len1
            ts[dest + 1 : dest + 1 + len1] = ts[i + 1 : i + 1 + len1]
            vs[dest + 1 : dest + 1 + len1] = vs[i + 1 : i + 1 + len1]
            ts[dest] = tmp_t[j]
            vs[dest] = tmp_v[j]
            stats.moves += len1 + 1
        elif len2 > 1:
            ts[dest - len2 + 1 : dest + 1] = tmp_t[:len2]
            vs[dest - len2 + 1 : dest + 1] = tmp_v[:len2]
            stats.moves += len2

    def _gallop_right_list(self, key, arr: list, base: int, length: int) -> int:
        """:meth:`_gallop_right` against an auxiliary python list."""
        lo, hi = 0, length
        while lo < hi:
            mid = (lo + hi) >> 1
            self.stats.comparisons += 1
            if key < arr[base + mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _gallop_left_list(self, key, arr: list, base: int, length: int) -> int:
        """:meth:`_gallop_left` against an auxiliary python list."""
        lo, hi = 0, length
        while lo < hi:
            mid = (lo + hi) >> 1
            self.stats.comparisons += 1
            if key > arr[base + mid]:
                lo = mid + 1
            else:
                hi = mid
        return lo
