"""repro — reproduction of "Backward-Sort for Time Series in Apache IoTDB".

Public API highlights:

* :class:`repro.BackwardSorter` / :func:`repro.get_sorter` — the paper's
  algorithm and every baseline behind one interface.
* :mod:`repro.metrics` — inversion / interval-inversion disorder measures.
* :mod:`repro.theory` — delay distributions and the paper's analytical
  predictions (Propositions 2-6).
* :mod:`repro.workloads` — delay-only arrival-stream generators and the
  synthetic / simulated datasets of the evaluation.
* :mod:`repro.iotdb` — the IoTDB write-path substrate (TVList, MemTable,
  separation policy, flush pipeline, TsFile-like storage, query engine).
* :mod:`repro.bench` — the IoTDB-benchmark analogue for system experiments.
* :mod:`repro.experiments` — one driver per paper figure.
"""

from repro.core import BackwardSorter, SortStats, Sorter, is_sorted
from repro.sorting import PAPER_ALGORITHMS, available_sorters, get_sorter

__version__ = "1.0.0"

__all__ = [
    "BackwardSorter",
    "PAPER_ALGORITHMS",
    "SortStats",
    "Sorter",
    "__version__",
    "available_sorters",
    "get_sorter",
    "is_sorted",
]
