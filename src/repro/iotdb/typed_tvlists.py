"""Typed TVList variants, one per column type (paper §V-A).

"In the real implementation of IoTDB, in order to reduce the time-consuming
of Java template conversion, IoTDB implements a separate class for each
custom basic type such as DoubleTVList."  Python has no template-erasure
cost, so the per-type classes here earn their keep through *validation*:
each rejects values that its on-disk encoders could not round-trip, failing
at ingestion time instead of at flush time.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.iotdb.config import TSDataType
from repro.iotdb.tvlist import TVList

_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


class IntTVList(TVList):
    """32-bit integer values (IoTDB INT32)."""

    dtype = TSDataType.INT32

    def _validate_value(self, value) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise InvalidParameterError(f"INT32 TVList requires int, got {type(value).__name__}")
        if not _INT32_MIN <= value <= _INT32_MAX:
            raise InvalidParameterError(f"value {value} out of INT32 range")


class LongTVList(TVList):
    """64-bit integer values (IoTDB INT64)."""

    dtype = TSDataType.INT64

    def _validate_value(self, value) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise InvalidParameterError(f"INT64 TVList requires int, got {type(value).__name__}")
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise InvalidParameterError(f"value {value} out of INT64 range")


class FloatTVList(TVList):
    """Single-precision float values (IoTDB FLOAT); stored as Python float."""

    dtype = TSDataType.FLOAT

    def _validate_value(self, value) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise InvalidParameterError(f"FLOAT TVList requires float, got {type(value).__name__}")


class DoubleTVList(TVList):
    """Double-precision float values (IoTDB DOUBLE)."""

    dtype = TSDataType.DOUBLE

    def _validate_value(self, value) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise InvalidParameterError(f"DOUBLE TVList requires float, got {type(value).__name__}")


class BooleanTVList(TVList):
    """Boolean values (IoTDB BOOLEAN)."""

    dtype = TSDataType.BOOLEAN

    def _validate_value(self, value) -> None:
        if not isinstance(value, bool):
            raise InvalidParameterError(f"BOOLEAN TVList requires bool, got {type(value).__name__}")


class TextTVList(TVList):
    """String values (IoTDB TEXT)."""

    dtype = TSDataType.TEXT

    def _validate_value(self, value) -> None:
        if not isinstance(value, str):
            raise InvalidParameterError(f"TEXT TVList requires str, got {type(value).__name__}")


_TVLIST_CLASSES: dict[TSDataType, type[TVList]] = {
    TSDataType.INT32: IntTVList,
    TSDataType.INT64: LongTVList,
    TSDataType.FLOAT: FloatTVList,
    TSDataType.DOUBLE: DoubleTVList,
    TSDataType.BOOLEAN: BooleanTVList,
    TSDataType.TEXT: TextTVList,
}


def tvlist_for(dtype: TSDataType, array_size: int = 32) -> TVList:
    """Instantiate the typed TVList for a column type."""
    try:
        cls = _TVLIST_CLASSES[dtype]
    except KeyError:
        raise InvalidParameterError(f"no TVList class for {dtype!r}") from None
    return cls(array_size=array_size)


def infer_dtype(value) -> TSDataType:
    """Infer a column type from the first written value (schema-on-write)."""
    if isinstance(value, bool):
        return TSDataType.BOOLEAN
    if isinstance(value, int):
        return TSDataType.INT64
    if isinstance(value, float):
        return TSDataType.DOUBLE
    if isinstance(value, str):
        return TSDataType.TEXT
    raise InvalidParameterError(f"cannot infer TSDataType for {type(value).__name__}")
