"""Typed TVList variants, one per column type (paper §V-A).

"In the real implementation of IoTDB, in order to reduce the time-consuming
of Java template conversion, IoTDB implements a separate class for each
custom basic type such as DoubleTVList."  Python has no template-erasure
cost, so the per-type classes here earn their keep through *validation*:
each rejects values that its on-disk encoders could not round-trip, failing
at ingestion time instead of at flush time.

They also earn their keep through *storage*: every typed list backs its
time column with an ``array('q')`` (int64, matching IoTDB's timestamp
type), and the numeric lists back their value column with ``array('q')``
(INT32/INT64) or ``array('d')`` (FLOAT/DOUBLE) — one contiguous typed
buffer per backing array instead of a list of boxed objects, which is what
makes the bulk slice-fill paths in :class:`~repro.iotdb.tvlist.TVList`
C-speed copies.  BOOLEAN and TEXT values keep plain list storage (no
fixed-width typecode represents them losslessly).  One visible consequence:
FLOAT/DOUBLE columns store every value as a C double, so an ``int`` written
into an existing float column reads back as ``float`` — exactly what the
on-disk encoders already did at flush time.
"""

from __future__ import annotations

from repro.errors import InvalidParameterError
from repro.iotdb.config import TSDataType
from repro.iotdb.tvlist import TVList

_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1


class IntTVList(TVList):
    """32-bit integer values (IoTDB INT32)."""

    dtype = TSDataType.INT32
    _TIME_TYPECODE = "q"
    _VALUE_TYPECODE = "q"

    def _validate_value(self, value) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise InvalidParameterError(f"INT32 TVList requires int, got {type(value).__name__}")
        if not _INT32_MIN <= value <= _INT32_MAX:
            raise InvalidParameterError(f"value {value} out of INT32 range")


class LongTVList(TVList):
    """64-bit integer values (IoTDB INT64)."""

    dtype = TSDataType.INT64
    _TIME_TYPECODE = "q"
    _VALUE_TYPECODE = "q"

    def _validate_value(self, value) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise InvalidParameterError(f"INT64 TVList requires int, got {type(value).__name__}")
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise InvalidParameterError(f"value {value} out of INT64 range")


class FloatTVList(TVList):
    """Single-precision float values (IoTDB FLOAT); stored as Python float."""

    dtype = TSDataType.FLOAT
    _TIME_TYPECODE = "q"
    _VALUE_TYPECODE = "d"

    def _validate_value(self, value) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise InvalidParameterError(f"FLOAT TVList requires float, got {type(value).__name__}")


class DoubleTVList(TVList):
    """Double-precision float values (IoTDB DOUBLE)."""

    dtype = TSDataType.DOUBLE
    _TIME_TYPECODE = "q"
    _VALUE_TYPECODE = "d"

    def _validate_value(self, value) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise InvalidParameterError(f"DOUBLE TVList requires float, got {type(value).__name__}")


class BooleanTVList(TVList):
    """Boolean values (IoTDB BOOLEAN)."""

    dtype = TSDataType.BOOLEAN
    _TIME_TYPECODE = "q"

    def _validate_value(self, value) -> None:
        if not isinstance(value, bool):
            raise InvalidParameterError(f"BOOLEAN TVList requires bool, got {type(value).__name__}")


class TextTVList(TVList):
    """String values (IoTDB TEXT)."""

    dtype = TSDataType.TEXT
    _TIME_TYPECODE = "q"

    def _validate_value(self, value) -> None:
        if not isinstance(value, str):
            raise InvalidParameterError(f"TEXT TVList requires str, got {type(value).__name__}")


_TVLIST_CLASSES: dict[TSDataType, type[TVList]] = {
    TSDataType.INT32: IntTVList,
    TSDataType.INT64: LongTVList,
    TSDataType.FLOAT: FloatTVList,
    TSDataType.DOUBLE: DoubleTVList,
    TSDataType.BOOLEAN: BooleanTVList,
    TSDataType.TEXT: TextTVList,
}


def tvlist_for(dtype: TSDataType, array_size: int = 32) -> TVList:
    """Instantiate the typed TVList for a column type."""
    try:
        cls = _TVLIST_CLASSES[dtype]
    except KeyError:
        raise InvalidParameterError(f"no TVList class for {dtype!r}") from None
    return cls(array_size=array_size)


def infer_dtype(value) -> TSDataType:
    """Infer a column type from the first written value (schema-on-write)."""
    if isinstance(value, bool):
        return TSDataType.BOOLEAN
    if isinstance(value, int):
        return TSDataType.INT64
    if isinstance(value, float):
        return TSDataType.DOUBLE
    if isinstance(value, str):
        return TSDataType.TEXT
    raise InvalidParameterError(f"cannot infer TSDataType for {type(value).__name__}")
