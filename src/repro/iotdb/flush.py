"""The flush pipeline: sort → deduplicate → encode → write (paper §V-C).

"For flushing, after the MemTable is full and turning into a flushing
state, the time series needs to be sorted and then written to the disk."
The flush-time metric of §VI-D2 covers exactly this pipeline; this module
measures each stage separately so the benchmarks can report both total
flush time and the sort share the paper plots as stacked bars.

All timing flows through :class:`repro.bench.timing.Timer` over the
injected observability's clock; when tracing is enabled each chunk gets a
``flush.chunk`` span nested under the engine's ``engine.flush`` span, with
the sort itself a ``sort`` span one level deeper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter
from repro.iotdb.config import IoTDBConfig
from repro.iotdb.memtable import MemTable, MemTableState
from repro.iotdb.tvlist import dedupe_sorted
from repro.iotdb.tsfile import TsFileWriter
from repro.obs import NOOP, Observability


@dataclass
class ChunkFlushReport:
    """Per-column timings for one flush."""

    device: str
    sensor: str
    points: int
    deduped_points: int
    sort_seconds: float
    encode_write_seconds: float
    sort_stats: SortStats
    expired_points: int = 0


@dataclass
class FlushReport:
    """Aggregate result of flushing one memtable."""

    total_points: int
    sort_seconds: float
    encode_write_seconds: float
    total_seconds: float
    file_bytes: int
    chunks: list[ChunkFlushReport] = field(default_factory=list)
    #: Storage group the flushed memtable belonged to (0 when unsharded).
    shard: int = 0

    @property
    def sort_fraction(self) -> float:
        """Share of flush time spent sorting (the stacked-bar split)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.sort_seconds / self.total_seconds

    def emit(
        self, obs: Observability, *, space: str, instruments=None, shard=None
    ) -> None:
        """Fold this flush into ``obs``'s registry under the ``space`` label.

        ``instruments`` may pass a pre-resolved
        :class:`repro.iotdb.engine_metrics.EngineInstruments` (the engine
        does); otherwise the instruments are looked up idempotently.
        ``shard`` additionally folds the flush into the shard-labelled
        instruments (``engine_shard_flushes_total{shard=...}``), so a
        sharded engine's registry shows where the flush load lands.
        """
        if not obs.metrics_enabled:
            return
        if instruments is None:
            from repro.iotdb.engine_metrics import EngineInstruments

            instruments = EngineInstruments(obs.registry)
        instruments.flushes_by_space[space].inc()
        instruments.flush_seconds_by_space[space].observe(self.total_seconds)
        instruments.flush_sort_seconds_by_space[space].observe(self.sort_seconds)
        if shard is not None:
            shard_instruments = instruments.for_shard(shard)
            shard_instruments.flushes.inc()
            shard_instruments.points_flushed.inc(self.total_points)


def flush_memtable(
    memtable: MemTable,
    writer: TsFileWriter,
    sorter: Sorter,
    config: IoTDBConfig | None = None,
    *,
    obs: Observability = NOOP,
) -> FlushReport:
    """Flush every chunk of a FLUSHING memtable into ``writer``.

    The memtable must already be in the FLUSHING state (the engine's state
    transition is what the flush-time metric clocks from).  The writer is
    closed (footer sealed) before returning.
    """
    from repro.bench.timing import Timer

    if config is None:
        config = memtable.config
    reports: list[ChunkFlushReport] = []
    sort_total = 0.0
    encode_total = 0.0
    with Timer(obs.clock) as total_timer:
        for device, sensor, tvlist in memtable.iter_chunks():
            # Ingested count, before sort_in_place collapses duplicates.
            ingested = len(tvlist)
            with obs.span(
                "flush.chunk", device=device, sensor=sensor, points=ingested
            ) as chunk_span:
                timed = tvlist.sort_in_place(
                    sorter, obs=obs, site="flush", series=f"{device}.{sensor}"
                )
                ts = tvlist.timestamps()
                vs = tvlist.values()
                ts, vs = dedupe_sorted(ts, vs)
                expired = 0
                if config.ttl is not None and ts:
                    # Event-time TTL: points older than this chunk's latest
                    # point minus the TTL are dropped instead of written.
                    from bisect import bisect_left

                    floor = ts[-1] - config.ttl + 1
                    if ts[0] < floor:  # repro: allow(stats-accounting): TTL cutoff test, not a sort
                        cut = bisect_left(ts, floor)
                        expired = cut
                        ts = ts[cut:]
                        vs = vs[cut:]
                with Timer(obs.clock) as encode_timer:
                    if ts:
                        writer.write_chunk(
                            device,
                            sensor,
                            tvlist.dtype,
                            ts,
                            vs,
                            time_encoding=config.time_encoding,
                            value_encoding=config.value_encoding_for(tvlist.dtype),
                            page_size=config.page_size,
                            compression=config.compression,
                        )
                chunk_span.set(deduped_points=len(ts), expired_points=expired)
                sort_total += timed.seconds
                encode_total += encode_timer.seconds
                reports.append(
                    ChunkFlushReport(
                        device=device,
                        sensor=sensor,
                        points=ingested,
                        deduped_points=len(ts),
                        sort_seconds=timed.seconds,
                        encode_write_seconds=encode_timer.seconds,
                        sort_stats=timed.stats,
                        expired_points=expired,
                    )
                )
        file_bytes = writer.close()
        # Idempotent on retry: a flush that died after this transition (e.g.
        # the sink's seal failed) is re-run against a FLUSHED memtable.
        if memtable.state is not MemTableState.FLUSHED:
            memtable.mark_flushed()
    return FlushReport(
        total_points=memtable.total_points,
        sort_seconds=sort_total,
        encode_write_seconds=encode_total,
        total_seconds=total_timer.seconds,
        file_bytes=file_bytes,
        chunks=reports,
    )
