"""Configuration for the IoTDB-substrate storage engine.

Defaults mirror the Apache IoTDB behaviour the paper describes: TVList
arrays of 32 slots (§V-B "The size of the array is configurable with its
default value 32"), Backward-Sort as the TVList sorter, and a memtable
flush threshold around the "appropriate memory points size" of 100,000
(§VI-A3) — scaled down by default so unit tests stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro.errors import InvalidParameterError


class TSDataType(Enum):
    """Column value types, mirroring IoTDB's typed TVList classes (§V-A)."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT = "float"
    DOUBLE = "double"
    BOOLEAN = "boolean"
    TEXT = "text"


@dataclass
class IoTDBConfig:
    """Tunable knobs of the storage substrate.

    Attributes:
        array_size: slots per TVList backing array (IoTDB default 32).
        memtable_flush_threshold: total points across a memtable that
            trigger a flush.
        sorter: registry name of the TVList sorting algorithm — the paper's
            experiments swap this between ``backward``, ``quick``, ``tim``,
            ``patience``, ``ck`` and ``y``.
        sorter_options: constructor kwargs for the sorter (e.g. ``theta``).
        page_size: points per page inside a TsFile chunk.
        time_encoding: encoder for timestamp columns (``ts2diff`` default,
            IoTDB's TS_2DIFF).
        compression: page-payload compression: ``none`` (default) or
            ``zlib`` (IoTDB offers GZIP/SNAPPY at the same layer).
        value_encodings: per-type value encoder overrides; types not listed
            use :attr:`default_value_encoding`.
        default_value_encoding: fallback value encoder (``plain``).
        data_dir: directory for sealed TsFiles; ``None`` keeps them in
            memory (the benchmarking default — isolates sort cost from I/O
            noise, cf. DESIGN.md §4).
        wal_enabled: write records to a write-ahead log before the memtable.
        separation_enabled: route points older than the flush watermark to
            the unsequence memtable (§II: "any timestamp smaller than the
            current flushing time will be ingested into the unsequence
            memtable").
        deferred_flush: when True, a full memtable transitions to FLUSHING
            and writes continue into a fresh working memtable, but the
            sort-encode-write work happens later (at
            :meth:`StorageEngine.drain_flushes`, a query that needs it, or
            close) — IoTDB's asynchronous flush, "it is asynchronously
            awaited" (§VI-D2).  Queries served meanwhile read the flushing
            memtables directly.  When False (default), flushes run inline.
        ttl: time-to-live in timestamp units, relative to each column's
            latest event time (IoTDB's TTL, against event time since the
            substrate has no wall clock).  Expired points are invisible to
            queries/aggregations and dropped when a memtable flushes.
            ``None`` (default) disables expiry.
        shards: number of storage groups inside the engine (IoTDB's storage
            groups).  Each shard owns its own WAL pair, memtable pair,
            separation watermarks, and sealed-file list under its own lock;
            devices are routed by a stable hash of the device id, so a
            series always lands in the same shard across restarts.  On
            disk each shard keeps its files under ``data_dir/shard-NN/``.
        flush_workers: size of the shared flush/compaction thread pool.
            ``0`` (default) keeps every flush inline on the calling thread
            (fully deterministic — the crash harness relies on this);
            ``> 0`` lets ``drain_flushes``/``flush_all``/``compact`` fan
            out across shards concurrently.
        index_enabled: consult the per-shard interval index on the query
            path, opening only sealed files whose ``[min_time, max_time]``
            intersects the query range (see
            :mod:`repro.iotdb.interval_index`).  The index itself is
            always maintained (it also drives the overlap compaction
            scheduler); this knob gates only the query-time pruning, so
            ``False`` reproduces the scan-every-file behaviour bit for
            bit — the differential suite compares the two.
        compaction_policy: which sealed files a compaction pass merges:
            ``"full"`` (default) k-way merges every sealed file into one
            sequence file; ``"overlap"`` merges only unsequence files
            whose time range overlaps at least
            ``compaction_overlap_threshold`` sequence files (plus the
            overlapped sequence files and a write-order safety closure) —
            partial compaction that spends I/O where queries pay for it.
        compaction_overlap_threshold: minimum number of sequence files an
            unsequence file must overlap before the ``"overlap"`` policy
            selects it.
        engine_version: on-disk layout version ``StorageEngine.create``
            writes by default (``1`` = the historical local directory
            tree; ``2`` = the same key layout addressed through a
            pluggable :class:`~repro.iotdb.backends.BlobStore`).  Only a
            *create-time* default: ``StorageEngine.open`` dispatches on
            the tree's own ``meta/engine.json`` stamp, never on this
            knob.  See docs/STORAGE.md for the version-compatibility
            matrix.
    """

    array_size: int = 32
    memtable_flush_threshold: int = 10_000
    sorter: str = "backward"
    sorter_options: dict = field(default_factory=dict)
    page_size: int = 1_024
    time_encoding: str = "ts2diff"
    compression: str = "none"
    value_encodings: dict = field(default_factory=dict)
    default_value_encoding: str = "plain"
    data_dir: str | Path | None = None
    wal_enabled: bool = False
    separation_enabled: bool = True
    deferred_flush: bool = False
    ttl: int | None = None
    shards: int = 1
    flush_workers: int = 0
    index_enabled: bool = True
    compaction_policy: str = "full"
    compaction_overlap_threshold: int = 2
    engine_version: int = 1

    def __post_init__(self) -> None:
        if self.engine_version not in (1, 2):
            raise InvalidParameterError(
                f"engine_version must be 1 or 2, got {self.engine_version!r}"
            )
        if self.shards < 1:
            raise InvalidParameterError(f"shards must be >= 1, got {self.shards}")
        if self.flush_workers < 0:
            raise InvalidParameterError(
                f"flush_workers must be >= 0, got {self.flush_workers}"
            )
        if self.array_size < 1:
            raise InvalidParameterError(f"array_size must be >= 1, got {self.array_size}")
        if self.memtable_flush_threshold < 1:
            raise InvalidParameterError(
                "memtable_flush_threshold must be >= 1, "
                f"got {self.memtable_flush_threshold}"
            )
        if self.page_size < 1:
            raise InvalidParameterError(f"page_size must be >= 1, got {self.page_size}")
        if self.ttl is not None and self.ttl < 1:
            raise InvalidParameterError(f"ttl must be >= 1, got {self.ttl}")
        if self.compaction_policy not in ("full", "overlap"):
            raise InvalidParameterError(
                "compaction_policy must be 'full' or 'overlap', "
                f"got {self.compaction_policy!r}"
            )
        if self.compaction_overlap_threshold < 1:
            raise InvalidParameterError(
                "compaction_overlap_threshold must be >= 1, "
                f"got {self.compaction_overlap_threshold}"
            )
        if self.compression not in ("none", "zlib"):
            raise InvalidParameterError(
                f"compression must be 'none' or 'zlib', got {self.compression!r}"
            )
        if self.data_dir is not None:
            self.data_dir = Path(self.data_dir)

    def value_encoding_for(self, dtype: TSDataType) -> str:
        """Resolve the value encoder name for a column type."""
        return self.value_encodings.get(dtype, self.default_value_encoding)
