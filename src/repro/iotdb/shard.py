"""StorageShard: one storage group's complete write/flush/query pipeline.

A shard is what the whole :class:`~repro.iotdb.engine.StorageEngine` used
to be: its own :class:`SegmentedWal` pair, working/flushing memtables,
separation watermarks, and sealed-file list, all serialised by one
re-entrant shard lock.  The engine facade owns a fixed tuple of shards and
routes every series to exactly one of them by a stable hash of the device
id, so shards never share mutable state and writes to different shards
proceed concurrently.

A shard keeps everything (TsFiles and WAL segments) under its own
``shard-NN/`` key prefix of the engine's
:class:`~repro.iotdb.backends.BlobStore` — on the local-directory backend
that is literally the ``shard-NN/`` subdirectory of ``data_dir``, byte for
byte — and recovers that prefix independently of its siblings: a crash
that tears one shard's flush leaves the other shards' recovery untouched.
Every persistence call site (sink writes, WAL segments, the interval
index) routes through the store; ``store=None`` is the pure in-memory
mode with no persistence at all.

Crash consistency (exercised by the ``repro.faults`` harness): every
operation that can die mid-way leaves a recoverable disk state.  Sinks are
written under a ``.tsfile.part`` name and renamed into place only after
their bytes are flushed (a torn flush leaves garbage ``open()`` discards,
never a torn TsFile); each retired memtable is covered by its own WAL
segment(s), dropped only once that memtable is sealed (truncating a shared
log lost acknowledged writes); a failed flush keeps its memtable queued
and retryable.  Named fault sites (``wal.write``, ``sink.write``,
``flush.perform``, ``flush.seal``, ``flush.sealed``, ``wal.rotate``,
``wal.drop``, ``compact.swap``, ``compact.unlink``, ``index.write``,
``index.swap``) thread through these
steps via the injected :class:`repro.faults.FaultInjector`; every site
fires with a ``shard`` context key so a fault plan can target one shard's
pipeline specifically.

Interval index: the shard maintains a per-shard
:class:`~repro.iotdb.interval_index.IntervalIndex` over its sealed files —
updated on every seal and compaction swap, persisted next to the TsFiles
(fault sites ``index.write``/``index.swap``), and rebuilt-or-validated
during :meth:`recover`.  With ``config.index_enabled`` the query path
opens only sealed files whose time range intersects the query range; a
torn or stale index file is rebuilt from the sealed files themselves, so
index damage can cost a rebuild but never a wrong answer.

Lock hierarchy: ``StorageEngine._lock`` → ``StorageShard._lock`` →
{``MemTable._lock``, ``SegmentedWal._lock``, ``FaultInjector._lock``,
``MetricsRegistry._lock``} → ``MemoryStore._lock`` (the in-memory
backend's blob table; a leaf — store methods never call out under it).
A shard never acquires the engine lock or another shard's lock.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.concurrency import apply_guards, create_lock, holds
from repro.errors import StorageError
from repro.iotdb.config import IoTDBConfig
from repro.iotdb.flush import FlushReport, flush_memtable
from repro.iotdb.interval_index import (
    INDEX_FILE_NAME,
    IndexCorruptionError,
    IntervalIndex,
    build_entries,
    entry_for_sealed,
)
from repro.iotdb.memtable import MemTable
from repro.iotdb.query import QueryResult, TimeRangeQueryExecutor
from repro.iotdb.separation import SeparationPolicy, Space
from repro.iotdb.tsfile import TsFileReader, TsFileWriter
from repro.iotdb.wal import SegmentedWal


@dataclass
class _SealedFile:
    """One immutable TsFile plus where its bytes live."""

    space: Space
    reader: TsFileReader
    #: Blob-store key of the published file (``None`` = in-memory only).
    key: str | None = None
    buffer: io.BytesIO | None = None
    #: Temporary key the sink is written under until sealed (persisted
    #: sinks only).
    part_key: str | None = None
    #: Stable id (``<space>-<counter>``) keying this file in the shard's
    #: interval index; counters are never reused within a shard.
    file_id: str = ""


@dataclass
class _FlushTask:
    """One FLUSHING memtable queued for the flush pipeline."""

    space: Space
    memtable: MemTable
    #: WAL segment ids covering exactly this memtable's points; dropped
    #: only after the memtable is sealed into a TsFile.
    wal_segments: list[int] = field(default_factory=list)
    #: True when sealing this memtable releases a crash-recovery hold on
    #: the replayed WAL segments (see ``StorageShard.recover``).
    releases_recovery_hold: bool = False


def shard_directory(data_dir: Path, shard_id: int) -> Path:
    """Where shard ``shard_id`` keeps its TsFiles and WAL segments."""
    return Path(data_dir) / f"shard-{shard_id:02d}"


class StorageShard:
    """One storage group: a full write pipeline under one shard lock.

    Concurrency discipline: one coarse re-entrant shard lock serialises
    this shard's write, flush, query, and compaction paths; ``GUARDED_BY``
    declares which attributes it covers (checked statically by the
    ``guarded-by`` rule and, under ``REPRO_CONCURRENCY=1``, at runtime by
    access-checking proxies).  The shard lock sits *below* the engine lock
    and *above* the memtable/WAL/injector/registry locks in the global
    order.
    """

    #: Lock discipline for the ``guarded-by`` rule and the runtime
    #: sanitizer: these attributes may only be touched under ``_lock``.
    GUARDED_BY = {
        "_working": "_lock",
        "_flushing": "_lock",
        "_sealed": "_lock",
        "_flush_reports": "_lock",
        "_recovery_segments": "_lock",
        "_recovery_holds": "_lock",
        "_wals": "_lock",
        "_file_counter": "_lock",
        "_index": "_lock",
    }

    def __init__(
        self,
        shard_id: int,
        config: IoTDBConfig,
        sorter,
        *,
        obs,
        faults,
        instruments,
        executor: TimeRangeQueryExecutor,
        fresh: bool = True,
        store=None,
    ) -> None:
        self.shard_id = shard_id
        self.config = config
        self.sorter = sorter
        self.obs = obs
        self.faults = faults
        self.separation = SeparationPolicy(enabled=config.separation_enabled)
        self._instruments = instruments
        self._shard_instruments = instruments.for_shard(shard_id)
        self._executor = executor
        if store is None and config.data_dir is not None:
            # Direct construction (outside the engine factories) keeps the
            # historical behaviour: persistence over the local directory.
            from repro.iotdb.backends.local import LocalDirStore

            store = LocalDirStore(config.data_dir)
        #: Where this shard persists bytes (``None`` = pure in-memory).
        self.store = store
        #: This shard's key namespace inside the store.
        self.prefix = f"shard-{shard_id:02d}/"
        self.data_dir: Path | None = (
            shard_directory(config.data_dir, shard_id)
            if config.data_dir is not None
            else None
        )
        self._lock = create_lock("StorageShard._lock")
        self._working: dict[Space, MemTable] = {
            Space.SEQUENCE: MemTable(config, obs=obs),
            Space.UNSEQUENCE: MemTable(config, obs=obs),
        }
        self._flushing: list[_FlushTask] = []
        self._sealed: list[_SealedFile] = []
        self._file_counter = 0
        # Interval index over the sealed files; no lock of its own — every
        # access happens under this shard's lock.
        self._index = IntervalIndex()
        self._flush_reports: list[FlushReport] = []
        if self.store is not None:
            # Materialise the shard's namespace eagerly where the backend
            # has real directories — keeps the local tree identical to the
            # historical layout down to empty shard directories.
            self.store.ensure_prefix(self.prefix)
        # WAL segments recovered by recover() that must survive until every
        # memtable holding their replayed points has been sealed.
        self._recovery_segments: dict[Space, list[int]] = {}
        self._recovery_holds: set[Space] = set()
        self._wals: dict[Space, SegmentedWal] | None = None
        if config.wal_enabled and fresh:
            if self.store is not None:
                # Fresh-start semantics: any WAL segments left behind are
                # deleted; StorageEngine.open (via recover()) replays them
                # instead.
                self._wals = {
                    space: SegmentedWal.on_store(
                        self.store,
                        self.prefix,
                        space.value,
                        fresh=True,
                        wrap=self.faults.wrap_file,
                    )
                    for space in (Space.SEQUENCE, Space.UNSEQUENCE)
                }
            else:
                self._wals = {
                    space: SegmentedWal.in_memory(
                        space.value, wrap=self.faults.wrap_file
                    )
                    for space in (Space.SEQUENCE, Space.UNSEQUENCE)
                }
        apply_guards(self)

    # -- write path ----------------------------------------------------------

    @property
    def flush_reports(self) -> list[FlushReport]:
        """Reports of every completed flush, in completion order (a copy)."""
        with self._lock:
            return list(self._flush_reports)

    def write(self, device: str, sensor: str, timestamp: int, value) -> None:
        """Ingest one point; may trigger a synchronous flush.

        The WAL append is flushed before the memtable accepts the point,
        so a write is durable by the time this method returns.
        """
        with self.obs.span("engine.write", shard=self.shard_id) as span:
            with self._lock:
                space = self.separation.route(device, timestamp)
                span.set(space=space.value)
                if self._wals is not None:
                    self._wals[space].append(device, sensor, timestamp, value)
                memtable = self._working[space]
                memtable.write(device, sensor, timestamp, value)
                self._instruments.points_written.inc()
                self._shard_instruments.points_written.inc()
                if memtable.should_flush():
                    self._flush_space(space)

    def write_batch(
        self, device: str, sensor: str, timestamps, values
    ) -> tuple[int, int]:
        """Ingest a whole batch under one shard-lock acquisition.

        The true batch path: every point is routed with the watermark as of
        the batch's start, each space's records land in the WAL through one
        batched append (a single flush at the end keeps the whole batch
        durable on acknowledge), and ``should_flush`` is checked once per
        space after the batch — a memtable may overshoot its threshold by
        at most one batch, which is the documented batch semantics.

        Returns ``(points_written, flushes_triggered)`` so the engine's
        ``engine.write_batch`` span can report what actually happened.
        """
        flushes_triggered = 0
        with self._lock:
            by_space: dict[Space, tuple[list, list]] = {
                Space.SEQUENCE: ([], []),
                Space.UNSEQUENCE: ([], []),
            }
            for t, v in zip(timestamps, values):
                ts, vs = by_space[self.separation.route(device, t)]
                ts.append(t)  # repro: allow(stats-accounting): space routing, not a sort
                vs.append(v)
            if self._wals is not None:
                for space in (Space.SEQUENCE, Space.UNSEQUENCE):
                    ts, vs = by_space[space]
                    if ts:
                        self._wals[space].append_batch(
                            [(device, sensor, t, v) for t, v in zip(ts, vs)]
                        )
            for space in (Space.SEQUENCE, Space.UNSEQUENCE):
                ts, vs = by_space[space]
                if not ts:
                    continue
                self._working[space].write_batch(device, sensor, ts, vs)
                self._instruments.points_written.inc(len(ts))
                self._shard_instruments.points_written.inc(len(ts))
            for space in (Space.SEQUENCE, Space.UNSEQUENCE):
                if by_space[space][0] and self._working[space].should_flush():
                    self._flush_space(space)
                    flushes_triggered += 1
        return len(timestamps), flushes_triggered

    # -- flushing --------------------------------------------------------------

    @holds("_lock")
    def _new_sink(self, space: Space) -> tuple[TsFileWriter, _SealedFile]:
        """A fresh sink; on disk it is written under a ``.part`` name until
        sealed, so a crash mid-write can never leave a torn ``.tsfile``."""
        self._file_counter += 1
        file_id = f"{space.value}-{self._file_counter:06d}"
        if self.store is None:
            buffer = io.BytesIO()
            return TsFileWriter(buffer), _SealedFile(
                space=space, reader=None, buffer=buffer, file_id=file_id
            )
        key = f"{self.prefix}{file_id}.tsfile"
        part_key = key + ".part"
        handle = self.faults.wrap_file(
            self.store.open_write(part_key), site="sink.write"
        )
        return TsFileWriter(handle), _SealedFile(
            space=space, reader=None, key=key, buffer=handle, part_key=part_key,
            file_id=file_id,
        )

    def _seal_sink(self, sealed: _SealedFile) -> None:
        """Flush a closed writer's bytes and atomically publish the file."""
        sealed.buffer.flush()
        self.faults.crash_point(
            "flush.seal", space=sealed.space.value, shard=self.shard_id
        )
        if sealed.part_key is not None:
            self.store.rename_atomic(sealed.part_key, sealed.key)
            sealed.part_key = None
            self.faults.crash_point(
                "flush.sealed", space=sealed.space.value, shard=self.shard_id
            )
        sealed.reader = TsFileReader(sealed.buffer)

    def _discard_sink(self, sealed: _SealedFile) -> None:
        """Drop a partially written sink after a recoverable failure."""
        if sealed.buffer is not None and not isinstance(sealed.buffer, io.BytesIO):
            try:
                sealed.buffer.close()
            except OSError:
                pass
        if sealed.part_key is not None:
            self.store.delete(sealed.part_key, missing_ok=True)

    @holds("_lock")
    def _retire_working(self, space: Space) -> _FlushTask | None:
        """WORKING → FLUSHING: swap in a fresh memtable, enqueue the old one.

        The separation watermark advances here — once the memtable is
        immutable, "the current flushing time" (§II) is fixed, regardless of
        when the sort-encode-write work actually happens.  The WAL rotates
        in the same step, so the sealed segment covers exactly the retired
        memtable's points.
        """
        memtable = self._working[space]
        if memtable.total_points == 0:
            return None
        memtable.mark_flushing()
        self._working[space] = MemTable(self.config, obs=self.obs)
        segment_ids: list[int] = []
        if self._wals is not None:
            self.faults.crash_point(
                "wal.rotate", space=space.value, shard=self.shard_id
            )
            segment_ids = [self._wals[space].rotate()]
        task = _FlushTask(
            space=space,
            memtable=memtable,
            wal_segments=segment_ids,
            releases_recovery_hold=space in self._recovery_holds,
        )
        self._flushing.append(task)
        if space is Space.SEQUENCE:
            for device, _sensor, tvlist in memtable.iter_chunks():
                if tvlist.max_time is not None:
                    self.separation.update_watermark(device, tvlist.max_time)
        return task

    @holds("_lock")
    def _perform_flush(self, task: _FlushTask) -> FlushReport:
        """Sort, encode, and seal one FLUSHING memtable into a TsFile."""
        space, memtable = task.space, task.memtable
        self.faults.fail_point("flush.perform", space=space.value, shard=self.shard_id)
        with self.obs.span(
            "engine.flush", space=space.value, shard=self.shard_id
        ) as span:
            writer, sealed = self._new_sink(space)
            try:
                report = flush_memtable(
                    memtable, writer, self.sorter, self.config, obs=self.obs
                )
                self._seal_sink(sealed)
            except Exception:
                # A failed flush must leave the shard retryable: the
                # memtable stays queued (still FLUSHING), its WAL segments
                # stay live, and the partial sink is discarded.  A
                # simulated crash (BaseException) skips this cleanup — a
                # dead process cannot tidy up.
                self._discard_sink(sealed)
                raise
            report.shard = self.shard_id
            self._sealed.append(sealed)
            self._register_sealed(sealed)
            self._flushing.remove(task)
            if self._wals is not None:
                for segment_id in task.wal_segments:
                    self.faults.crash_point(
                        "wal.drop",
                        space=space.value,
                        segment=segment_id,
                        shard=self.shard_id,
                    )
                    self._wals[space].drop(segment_id)
            if task.releases_recovery_hold:
                self._recovery_holds.discard(space)
                if not self._recovery_holds:
                    self._drop_recovery_segments()
            span.set(points=report.total_points, file_bytes=report.file_bytes)
        self._flush_reports.append(report)
        report.emit(
            self.obs,
            space=space.value,
            instruments=self._instruments,
            shard=self.shard_id,
        )
        return report

    @holds("_lock")
    def _drop_recovery_segments(self) -> None:
        """Delete replayed WAL segments once their points are all sealed."""
        if self._wals is None:
            return
        for space, segment_ids in self._recovery_segments.items():
            for segment_id in segment_ids:
                self.faults.crash_point(
                    "wal.drop",
                    space=space.value,
                    segment=segment_id,
                    shard=self.shard_id,
                )
                self._wals[space].drop(segment_id)
        # Cleared in place: rebinding would shed the runtime guard proxy.
        self._recovery_segments.clear()

    # -- interval index ------------------------------------------------------

    @holds("_lock")
    def _persist_index(self) -> None:
        """Write the interval index next to the TsFiles (atomic; fault
        sites ``index.write``/``index.swap``).  In-memory shards keep the
        index only in memory."""
        if self.store is None:
            return
        self._index.save_to(
            self.store, self.prefix + INDEX_FILE_NAME, faults=self.faults
        )

    @holds("_lock")
    def _register_sealed(self, sealed: _SealedFile) -> None:
        """Add one newly sealed file to the interval index and persist.

        A crash between sealing the TsFile and persisting the index leaves
        a stale index file on disk; :meth:`recover` detects the mismatch
        against the sealed files and rebuilds, so staleness is never
        visible to queries.
        """
        entry = entry_for_sealed(sealed)
        if entry is not None:
            self._index.add(entry)
        self._persist_index()

    @holds("_lock")
    def _recover_index(self) -> None:
        """Load the persisted index, or rebuild it from the sealed files.

        Ground truth is always ``build_entries(self._sealed)`` — computed
        from the already-open readers, so validation is free.  A missing,
        corrupt (:class:`IndexCorruptionError`), or stale (any entry
        mismatch — e.g. a crash between sealing a file and persisting the
        index) blob is replaced by a rebuild; the outcome is counted in
        ``engine_index_recoveries_total`` so sweeps can see which path ran.
        Either way the in-memory index ends exactly consistent with the
        recovered sealed set: damage costs a rebuild, never a wrong answer.
        """
        expected = build_entries(self._sealed)
        index_key = self.prefix + INDEX_FILE_NAME
        if not self.store.exists(index_key):
            outcome = "rebuilt-missing"
        else:
            try:
                loaded = IntervalIndex.load_from(self.store, index_key)
            except IndexCorruptionError:
                outcome = "rebuilt-corrupt"
            else:
                matches = sorted(loaded.entries()) == sorted(expected)
                outcome = "validated" if matches else "rebuilt-stale"
        self._index.replace(expected)
        if outcome != "validated":
            self._persist_index()
        self._instruments.index_recoveries.labels(outcome=outcome).inc()

    @holds("_lock")
    def _flush_space(self, space: Space) -> FlushReport | None:
        task = self._retire_working(space)
        if task is None:
            return None
        if self.config.deferred_flush:
            # Asynchronous mode: the memtable waits in the flushing queue;
            # drain_flushes() (or close) pays the cost later.
            return None
        return self._perform_flush(task)

    def drain_flushes(self) -> list[FlushReport]:
        """Flush every queued FLUSHING memtable of this shard."""
        with self._lock:
            reports = []
            for task in list(self._flushing):
                reports.append(self._perform_flush(task))
            return reports

    def pending_flushes(self) -> int:
        """How many memtables are queued in the FLUSHING state."""
        with self._lock:
            return len(self._flushing)

    def flush_all(self) -> list[FlushReport]:
        """Retire and flush both working memtables (shutdown / checkpoint).

        Also drains any deferred FLUSHING memtables, so after this call no
        live memtable of this shard holds data in either mode.
        """
        with self._lock:
            reports: list[FlushReport] = []
            for space in (Space.SEQUENCE, Space.UNSEQUENCE):
                if self.config.deferred_flush:
                    self._retire_working(space)
                else:
                    report = self._flush_space(space)
                    if report is not None:
                        reports.append(report)
            reports.extend(self.drain_flushes())
            return reports

    # -- query path ------------------------------------------------------------

    def _ttl_floor(self, device: str, sensor: str) -> int | None:
        """Smallest live timestamp under the TTL policy (None = no TTL)."""
        if self.config.ttl is None:
            return None
        latest = self.latest_time(device, sensor)
        if latest is None:
            return None
        return latest - self.config.ttl + 1

    def query(self, device: str, sensor: str, start: int, end: int) -> QueryResult:
        """``SELECT * FROM device.sensor WHERE start <= time < end``.

        With a TTL configured, expired points (older than the column's
        latest event time minus the TTL) are excluded.
        """
        with self.obs.span(
            "engine.query", device=device, sensor=sensor, shard=self.shard_id
        ) as span:
            with self._lock:
                floor = self._ttl_floor(device, sensor)
                if floor is not None and floor > start:
                    if floor >= end:
                        from repro.iotdb.query import QueryStats

                        self._record_query(0.0)
                        return QueryResult(
                            timestamps=[], values=[], stats=QueryStats()
                        )
                    start = floor
                seq_files = [
                    (f.file_id, f.reader)
                    for f in self._sealed
                    if f.space is Space.SEQUENCE
                ]
                unseq_files = [
                    (f.file_id, f.reader)
                    for f in self._sealed
                    if f.space is Space.UNSEQUENCE
                ]
                flushing = [task.memtable for task in self._flushing]
                # Both working memtables can hold in-range points; merge order
                # makes the sequence table freshest-but-one, the unsequence
                # table holds late rewrites of old timestamps.
                result = self._executor.execute(
                    device,
                    sensor,
                    start,
                    end,
                    flushing_memtables=flushing + [self._working[Space.UNSEQUENCE]],
                    working_memtable=self._working[Space.SEQUENCE],
                    seq_files=seq_files,
                    unseq_files=unseq_files,
                    index=self._index if self.config.index_enabled else None,
                )
                self._record_query(
                    result.stats.total_seconds,
                    files_opened=result.stats.files_opened,
                    files_pruned=result.stats.files_pruned,
                )
            span.set(points=len(result))
        return result

    def _record_query(
        self, seconds: float, *, files_opened: int = 0, files_pruned: int = 0
    ) -> None:
        self._instruments.queries.inc()
        self._instruments.query_seconds.observe(seconds)
        if files_opened:
            self._instruments.query_files_opened.inc(files_opened)
        if files_pruned:
            self._instruments.index_files_pruned.inc(files_pruned)

    def aggregate(self, device: str, sensor: str, start: int, end: int):
        """Aggregations over ``[start, end)``: count/sum/avg/min/max/first/last.

        When the range is served *only* by sealed sequence files (no live
        memtable points, no unsequence data in range), fully covered pages
        are answered from their statistics without decoding — the payoff of
        the statistics the flush pipeline computes.  Any fresher overlapping
        source forces the always-correct merged raw scan, because an
        overwrite could invalidate per-page sums.
        """
        from repro.errors import QueryError
        from repro.iotdb.aggregation import (
            AggregationResult,
            aggregate_from_points,
            aggregate_sealed_chunk,
        )

        if start >= end:
            raise QueryError(f"empty time range [{start}, {end})")
        floor = self._ttl_floor(device, sensor)
        if floor is not None and floor > start:
            if floor >= end:
                return AggregationResult(
                    count=0, sum=None, avg=None, min_value=None,
                    max_value=None, first=None, last=None,
                )
            start = floor
        with self.obs.span(
            "engine.aggregate", device=device, sensor=sensor, shard=self.shard_id
        ):
            with self._lock:
                if self._fast_aggregation_safe(device, sensor, start, end):
                    partials = []
                    for sealed in self._sealed:
                        if sealed.space is not Space.SEQUENCE:
                            continue
                        meta = sealed.reader.chunk_metadata(device, sensor)
                        if (
                            meta is None
                            or meta.max_time < start
                            or meta.min_time >= end
                        ):
                            continue
                        partials.append(
                            aggregate_sealed_chunk(
                                sealed.reader, device, sensor, start, end
                            )
                        )
                    self._record_query(0.0)
                    return combine_aggregates(partials)
                return aggregate_from_points(self.query(device, sensor, start, end))

    @holds("_lock")
    def _fast_aggregation_safe(
        self, device: str, sensor: str, start: int, end: int
    ) -> bool:
        """No source fresher than the sealed sequence files overlaps the range,
        and the sequence files themselves are pairwise disjoint for this
        column (crash recovery or an interrupted compaction can leave
        overlapping sequence files whose per-file partial sums would
        double-count)."""
        for space in (Space.SEQUENCE, Space.UNSEQUENCE):
            tvlist = self._working[space].chunk(device, sensor)
            if tvlist is not None and tvlist.overlaps(start, end):
                return False
        for task in self._flushing:
            tvlist = task.memtable.chunk(device, sensor)
            if tvlist is not None and tvlist.overlaps(start, end):
                return False
        seq_ranges: list[tuple[int, int]] = []
        for sealed in self._sealed:
            meta = sealed.reader.chunk_metadata(device, sensor)
            if meta is None or meta.min_time is None:
                continue
            if sealed.space is Space.UNSEQUENCE:
                if meta.min_time < end and meta.max_time >= start:
                    return False
            else:
                seq_ranges.append((meta.min_time, meta.max_time))
        seq_ranges.sort()
        for i in range(1, len(seq_ranges)):
            if seq_ranges[i][0] <= seq_ranges[i - 1][1]:
                return False
        return True

    def latest_time(self, device: str, sensor: str) -> int | None:
        """Largest timestamp ever written for a column (benchmark helper)."""
        with self._lock:
            best: int | None = None
            live_memtables = list(self._working.values()) + [
                task.memtable for task in self._flushing
            ]
            for memtable in live_memtables:
                tvlist = memtable.chunk(device, sensor)
                if tvlist is not None and tvlist.max_time is not None:
                    best = (
                        tvlist.max_time
                        if best is None
                        else max(best, tvlist.max_time)
                    )
            for sealed in self._sealed:
                meta = sealed.reader.chunk_metadata(device, sensor)
                if meta is not None and meta.max_time is not None:
                    best = meta.max_time if best is None else max(best, meta.max_time)
            return best

    # -- compaction ----------------------------------------------------------

    def compact(self, policy=None):
        """One compaction pass over this shard's sealed files (see
        :mod:`repro.iotdb.compaction`); ``policy`` defaults to whatever
        ``config.compaction_policy`` names."""
        from repro.iotdb.compaction import compact

        return compact(self, policy)

    @holds("_lock")
    def _swap_sealed(
        self, to_remove: list[_SealedFile], replacement: _SealedFile | None
    ) -> None:
        """Swap compacted files out of the sealed set, closing old handles.

        Unselected files keep their write order; the merged ``replacement``
        is appended, making it the freshest sequence file (the overlap
        policy's write-order safety closure guarantees appending preserves
        every overwrite outcome).  Crash-safe in any prefix: until an old
        file's unlink happens it remains readable, and the compacted file
        supersedes it under the query merge rule (later sequence files
        win), so dying between unlinks leaves duplicated but never lost
        data.  The interval index is rebuilt over the survivors and
        persisted last — a crash before that leaves a stale index, which
        recovery detects and rebuilds.
        """
        removing = {f.file_id for f in to_remove}
        for old in to_remove:
            if old.buffer is not None and not isinstance(old.buffer, io.BytesIO):
                old.buffer.close()
            if old.key is not None:
                self.faults.crash_point(
                    "compact.unlink",
                    file=old.key.rsplit("/", 1)[-1],
                    shard=self.shard_id,
                )
                self.store.delete(old.key, missing_ok=True)
        survivors = [f for f in self._sealed if f.file_id not in removing]
        if replacement is not None:
            survivors.append(replacement)  # repro: allow(stats-accounting): file set, not a sort
        # Replaced in place: rebinding would shed the runtime guard proxy.
        self._sealed[:] = survivors
        self._index.replace(build_entries(survivors))
        self._persist_index()

    # -- lifecycle ---------------------------------------------------------------

    def sealed_file_count(self) -> dict[Space, int]:
        with self._lock:
            counts = {Space.SEQUENCE: 0, Space.UNSEQUENCE: 0}
            for f in self._sealed:
                counts[f.space] += 1
            return counts

    def snapshot(self) -> dict:
        """Operator-facing snapshot of this shard's state."""
        with self._lock:
            working = {
                space.value: self._working[space].total_points
                for space in (Space.SEQUENCE, Space.UNSEQUENCE)
            }
            sealed = [
                {"space": f.space.value, **f.reader.describe()} for f in self._sealed
            ]
            pending = len(self._flushing)
            index_entries = len(self._index)
        return {
            "shard": self.shard_id,
            "index_entries": index_entries,
            "points_written": int(self._shard_instruments.points_written.value),
            "working_points": working,
            "pending_flushes": pending,
            "sealed_files": len(sealed),
            "sealed": sealed,
            "watermarks": dict(self.separation._watermarks),
        }

    def close(self) -> None:
        """Flush everything and release this shard's on-disk file handles."""
        self.flush_all()
        with self._lock:
            if self.store is not None:
                for sealed in self._sealed:
                    if sealed.buffer is not None and not isinstance(
                        sealed.buffer, io.BytesIO
                    ):
                        sealed.buffer.close()
            if self._wals is not None:
                for wal in self._wals.values():
                    wal.close()

    def wal_stats(self) -> dict[str, int]:
        """Cumulative WAL append accounting across this shard's spaces.

        ``bytes_appended`` / ``flushes`` sum :meth:`SegmentedWal.stats` over
        the sequence and unsequence logs; zeros when the WAL is disabled.
        Segment drops never decrease these — they feed the ``wal_bytes/``
        and ``ingest/path`` bench cells.
        """
        totals = {"bytes_appended": 0, "flushes": 0}
        with self._lock:
            if self._wals is None:
                return totals
            wals = list(self._wals.values())
        for wal in wals:
            stats = wal.stats()
            totals["bytes_appended"] += stats["bytes_appended"]
            totals["flushes"] += stats["flushes"]
        return totals

    # -- recovery ----------------------------------------------------------------

    def recover_from_wal(self) -> int:
        """Replay this shard's WALs into its working memtables.

        Returns the number of replayed points.  Only meaningful on a fresh
        shard constructed over the same WAL buffers.  Replayed points are
        routed through the separation policy, so the sequence memtable
        invariant (no point at or below the watermark) holds afterwards.
        """
        with self._lock:
            if self._wals is None:
                raise StorageError("WAL is disabled in this configuration")
            replayed = 0
            with self.obs.span("engine.wal_replay", shard=self.shard_id) as span:
                for _space, wal in self._wals.items():
                    for device, sensor, timestamp, value in wal.replay():
                        target = self.separation.route(device, timestamp)
                        self._working[target].write(device, sensor, timestamp, value)
                        replayed += 1
                span.set(points=replayed)
        self._instruments.points_written.inc(replayed)
        self._shard_instruments.points_written.inc(replayed)
        self._instruments.wal_replayed.inc(replayed)
        return replayed

    def recover(self) -> int:
        """Rebuild this shard from its persisted key prefix (crash recovery).

        Scans the shard's store prefix for sealed TsFiles (space and write
        order come from the ``<space>-<seq>.tsfile`` naming), discards
        ``.part`` sinks a crash left mid-write (their points are still
        covered by the surviving WAL segments), rebuilds the sealed
        readers, replays every persisted WAL segment into fresh working
        memtables (torn tails tolerated), and re-derives the per-device
        separation watermarks from the recovered sequence data so late
        points keep routing correctly.  Replayed segments are kept in the
        store until every memtable holding their points has been sealed —
        only then is it safe to drop them.  Returns the number of WAL
        points replayed.
        """
        if self.store is None:
            raise StorageError(
                "shard recovery requires a persistent backend "
                "(a data_dir or an explicit BlobStore)"
            )

        # A crash mid-flush or mid-compaction leaves a partially written
        # sink under its .part key: never sealed, never readable, safe to
        # discard.  Same for a torn interval-index .part: the published
        # index (or a rebuild) supersedes it.
        for key in self.store.list(self.prefix):
            if key.endswith(".tsfile.part"):
                self.store.delete(key, missing_ok=True)
        self.store.delete(self.prefix + INDEX_FILE_NAME + ".part", missing_ok=True)

        replayed = 0
        with self._lock:
            for key in self.store.list(self.prefix):
                if not key.endswith(".tsfile"):
                    continue
                name = key.rsplit("/", 1)[-1]
                stem = name[: -len(".tsfile")]
                prefix, _, counter = stem.partition("-")
                try:
                    space = Space(prefix)
                    file_number = int(counter)
                except (ValueError, KeyError):
                    raise StorageError(
                        f"unrecognised TsFile name {name!r}"
                    ) from None
                handle = self.store.open_read(key)
                sealed = _SealedFile(
                    space=space, reader=TsFileReader(handle), key=key,
                    buffer=handle, file_id=stem,
                )
                self._sealed.append(sealed)
                self._file_counter = max(self._file_counter, file_number)

            self._recover_index()

            # Watermarks: the largest sequence-space time per device.
            for sealed in self._sealed:
                if sealed.space is not Space.SEQUENCE:
                    continue
                for device in sealed.reader.devices():
                    for sensor in sealed.reader.sensors(device):
                        meta = sealed.reader.chunk_metadata(device, sensor)
                        if meta is not None and meta.max_time is not None:
                            self.separation.update_watermark(device, meta.max_time)

            # WAL replay: unflushed writes come back into the working
            # memtables.
            if self.config.wal_enabled:
                self._wals = {}
                with self.obs.span(
                    "engine.wal_replay", shard=self.shard_id
                ) as span:
                    for space in (Space.SEQUENCE, Space.UNSEQUENCE):
                        wal = SegmentedWal.on_store(
                            self.store,
                            self.prefix,
                            space.value,
                            fresh=False,
                            wrap=self.faults.wrap_file,
                        )
                        self._wals[space] = wal
                        recovered_ids = wal.sealed_segment_ids()
                        if recovered_ids:
                            self._recovery_segments[space] = recovered_ids
                        for device, sensor, timestamp, value in wal.replay():
                            # Route through the rebuilt watermarks: a record
                            # whose point is already sealed in sequence space
                            # re-lands in the unsequence memtable, where the
                            # overwrite rule makes the duplicate harmless.
                            target = self.separation.route(device, timestamp)
                            self._working[target].write(
                                device, sensor, timestamp, value
                            )
                            replayed += 1
                    span.set(points=replayed)
                self._recovery_holds = {
                    space
                    for space in (Space.SEQUENCE, Space.UNSEQUENCE)
                    if self._working[space].total_points > 0
                }
                # _wals and _recovery_holds were rebound above, which sheds
                # the runtime guard proxies — re-wrap before the lock drops.
                apply_guards(self)
                if not self._recovery_holds:
                    # Nothing replayed survives only in the WAL; the
                    # recovered segments are already covered by sealed files.
                    self._drop_recovery_segments()
                self._instruments.points_written.inc(replayed)
                self._shard_instruments.points_written.inc(replayed)
                self._instruments.wal_replayed.inc(replayed)
        return replayed


def combine_aggregates(partials: list):
    """Merge per-file aggregates of non-overlapping, time-ordered chunks."""
    from repro.iotdb.aggregation import AggregationResult

    combined = AggregationResult(
        count=0, sum=None, avg=None, min_value=None, max_value=None,
        first=None, last=None,
    )
    total: float | None = 0.0
    for p in partials:
        if p.count == 0:
            continue
        combined.count += p.count
        if p.sum is None:
            total = None
        elif total is not None:
            total += p.sum
        if p.min_value is not None:
            combined.min_value = (
                p.min_value
                if combined.min_value is None
                else min(combined.min_value, p.min_value)
            )
        if p.max_value is not None:
            combined.max_value = (
                p.max_value
                if combined.max_value is None
                else max(combined.max_value, p.max_value)
            )
        if combined.first is None:
            combined.first = p.first
        combined.last = p.last
        combined.pages_skipped += p.pages_skipped
        combined.pages_decoded += p.pages_decoded
    if combined.count:
        combined.sum = total
        combined.avg = total / combined.count if total is not None else None
    return combined
