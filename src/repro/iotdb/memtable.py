"""MemTable: the working / flushing in-memory table (paper §V-A).

"In Apache IoTDB, the memtable is divided into two categories, the active
memtable (working memtable) and immutable memtable (flushing memtable)."
A memtable owns one TVList per (device, sensor) column; when its point
count crosses the flush threshold the engine transitions it from WORKING to
FLUSHING (no further writes accepted) and hands it to the flush pipeline.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator

from repro.analysis.concurrency import apply_guards, create_lock
from repro.errors import InvalidParameterError, MemTableFlushedError
from repro.iotdb.config import IoTDBConfig, TSDataType
from repro.iotdb.tvlist import TVList
from repro.iotdb.typed_tvlists import infer_dtype, tvlist_for
from repro.obs import NOOP, Observability


class MemTableState(Enum):
    WORKING = "working"
    FLUSHING = "flushing"
    FLUSHED = "flushed"


class MemTable:
    """One generation of in-memory data for a storage group.

    Schema is per-column and sticky: the first value written to a
    (device, sensor) pins its :class:`TSDataType`; later writes of another
    type are rejected at ingestion (the typed-TVList validation of §V-A).

    Concurrency discipline: ``_lock`` serialises writes and state
    transitions; the lock sits *below* the engine lock in the global order
    (the engine may call in holding its own lock, never the reverse).
    """

    #: Lock discipline for the ``guarded-by`` rule and runtime sanitizer.
    GUARDED_BY = {"_chunks": "_lock", "_total_points": "_lock", "state": "_lock"}

    def __init__(
        self, config: IoTDBConfig | None = None, *, obs: Observability = NOOP
    ) -> None:
        self.config = config if config is not None else IoTDBConfig()
        self.obs = obs
        self._lock = create_lock("MemTable._lock")
        self.state = MemTableState.WORKING
        self._chunks: dict[tuple[str, str], TVList] = {}
        self._total_points = 0
        # Pre-resolved child: the per-point cost of observability is one
        # method call (a no-op when ``obs`` is the shared NOOP).
        self._writes_counter = obs.registry.counter(
            "memtable_writes_total", "points accepted by any memtable"
        )
        apply_guards(self)

    # -- writes ------------------------------------------------------------

    def write(self, device: str, sensor: str, timestamp: int, value) -> None:
        """Ingest one point into the column's TVList."""
        with self._lock:
            if self.state is not MemTableState.WORKING:
                raise MemTableFlushedError(
                    f"memtable is {self.state.value}; writes are rejected"
                )
            if not isinstance(timestamp, int) or isinstance(timestamp, bool):
                raise InvalidParameterError(
                    f"timestamp must be int, got {type(timestamp).__name__}"
                )
            key = (device, sensor)
            tvlist = self._chunks.get(key)
            if tvlist is None:
                dtype = infer_dtype(value)
                tvlist = tvlist_for(dtype, array_size=self.config.array_size)
                self._chunks[key] = tvlist
            tvlist.put(timestamp, value)
            self._total_points += 1
            self._writes_counter.inc()

    def write_batch(self, device: str, sensor: str, timestamps, values) -> None:
        """Ingest a whole batch atomically: all points land, or none do.

        One lock acquisition, one state check, then apply-all.  The state is
        checked exactly once for the whole batch — the pre-fix per-point
        loop reacquired the lock for every point, so a ``mark_flushing``
        racing in mid-batch would half-apply it (accept a prefix, reject the
        rest) with no way for the caller to tell how far it got.  Validation
        is also all-or-nothing: timestamps are checked up front and
        :meth:`TVList.put_all` validates every value before mutating, so a
        bad record anywhere in the batch leaves the memtable untouched.
        """
        if len(timestamps) != len(values):
            raise InvalidParameterError("timestamps and values lengths differ")
        if not len(timestamps):
            return
        for timestamp in timestamps:
            if not isinstance(timestamp, int) or isinstance(timestamp, bool):
                raise InvalidParameterError(
                    f"timestamp must be int, got {type(timestamp).__name__}"
                )
        with self._lock:
            if self.state is not MemTableState.WORKING:
                raise MemTableFlushedError(
                    f"memtable is {self.state.value}; writes are rejected"
                )
            key = (device, sensor)
            tvlist = self._chunks.get(key)
            created = tvlist is None
            if created:
                dtype = infer_dtype(values[0])
                tvlist = tvlist_for(dtype, array_size=self.config.array_size)
            # put_all validates every value before appending any, so a
            # validation failure here leaves both the TVList and (via the
            # deferred registration below) the chunk map unchanged.
            tvlist.put_all(timestamps, values)
            if created:
                self._chunks[key] = tvlist
            self._total_points += len(timestamps)
            self._writes_counter.inc(len(timestamps))

    # -- state -------------------------------------------------------------

    @property
    def total_points(self) -> int:
        with self._lock:
            return self._total_points

    def should_flush(self) -> bool:
        """True once the configured point threshold is reached."""
        with self._lock:
            return self._total_points >= self.config.memtable_flush_threshold

    def mark_flushing(self) -> None:
        """WORKING → FLUSHING: the table becomes immutable."""
        with self._lock:
            if self.state is not MemTableState.WORKING:
                raise MemTableFlushedError(
                    f"cannot mark {self.state.value} memtable flushing"
                )
            self.state = MemTableState.FLUSHING

    def mark_flushed(self) -> None:
        """FLUSHING → FLUSHED: data is durable in a sealed TsFile."""
        with self._lock:
            if self.state is not MemTableState.FLUSHING:
                raise MemTableFlushedError(
                    f"cannot mark {self.state.value} memtable flushed"
                )
            self.state = MemTableState.FLUSHED

    # -- access ------------------------------------------------------------

    def chunk(self, device: str, sensor: str) -> TVList | None:
        with self._lock:
            return self._chunks.get((device, sensor))

    def chunk_dtype(self, device: str, sensor: str) -> TSDataType | None:
        with self._lock:
            tvlist = self._chunks.get((device, sensor))
            return tvlist.dtype if tvlist is not None else None

    def iter_chunks(self) -> Iterator[tuple[str, str, TVList]]:
        """Yield (device, sensor, tvlist) in deterministic order.

        The key set is snapshotted under the lock before yielding, so a
        FLUSHING table can be iterated while a WORKING sibling ingests.
        """
        with self._lock:
            snapshot = [
                (device, sensor, self._chunks[(device, sensor)])
                for (device, sensor) in sorted(self._chunks)
            ]
        yield from snapshot

    def devices(self) -> list[str]:
        with self._lock:
            return sorted({d for d, _ in self._chunks})

    def __len__(self) -> int:
        with self._lock:
            return self._total_points

    def memory_slots(self) -> int:
        """Total allocated TVList slots across all chunks."""
        with self._lock:
            return sum(tv.memory_slots() for tv in self._chunks.values())
