"""The Apache IoTDB write-path substrate (paper §V), reimplemented in Python."""

from repro.iotdb.backends import (
    BlobNotFoundError,
    BlobStore,
    LocalDirStore,
    MemoryStore,
)
from repro.iotdb.meta import (
    ENGINE_META_KEY,
    EngineMeta,
    read_meta,
    write_meta,
)

from repro.iotdb.aggregation import (
    AGGREGATIONS,
    AggregationResult,
    WindowAggregate,
    aggregate_from_points,
    aggregate_windows,
)
from repro.iotdb.compaction import (
    CompactionPolicy,
    CompactionReport,
    CompactionSelection,
    FullMergePolicy,
    OverlapDrivenPolicy,
    compact,
    policy_from_config,
)

from repro.iotdb.config import IoTDBConfig, TSDataType
from repro.iotdb.interval_index import IndexEntry, IntervalIndex
from repro.iotdb.encoding import Encoder, get_encoder
from repro.iotdb.engine import StorageEngine
from repro.iotdb.flush import ChunkFlushReport, FlushReport, flush_memtable
from repro.iotdb.memtable import MemTable, MemTableState
from repro.iotdb.query import QueryResult, QueryStats, TimeRangeQueryExecutor
from repro.iotdb.separation import SeparationPolicy, Space
from repro.iotdb.session import ParsedQuery, Session
from repro.iotdb.shard import StorageShard
from repro.iotdb.tsfile import (
    ChunkMetadata,
    PageMetadata,
    PageStatistics,
    TsFileReader,
    TsFileWriter,
)
from repro.iotdb.tvlist import TVList, dedupe_arrival, dedupe_sorted
from repro.iotdb.typed_tvlists import (
    BooleanTVList,
    DoubleTVList,
    FloatTVList,
    IntTVList,
    LongTVList,
    TextTVList,
    infer_dtype,
    tvlist_for,
)
from repro.iotdb.wal import SegmentedWal, WriteAheadLog

__all__ = [
    "AGGREGATIONS",
    "AggregationResult",
    "BlobNotFoundError",
    "BlobStore",
    "ENGINE_META_KEY",
    "EngineMeta",
    "LocalDirStore",
    "MemoryStore",
    "read_meta",
    "write_meta",
    "CompactionPolicy",
    "CompactionReport",
    "CompactionSelection",
    "FullMergePolicy",
    "IndexEntry",
    "IntervalIndex",
    "OverlapDrivenPolicy",
    "aggregate_from_points",
    "aggregate_windows",
    "WindowAggregate",
    "compact",
    "policy_from_config",
    "BooleanTVList",
    "ChunkFlushReport",
    "ChunkMetadata",
    "DoubleTVList",
    "Encoder",
    "FloatTVList",
    "FlushReport",
    "IntTVList",
    "IoTDBConfig",
    "LongTVList",
    "MemTable",
    "MemTableState",
    "PageMetadata",
    "PageStatistics",
    "QueryResult",
    "QueryStats",
    "SeparationPolicy",
    "ParsedQuery",
    "Session",
    "Space",
    "SegmentedWal",
    "StorageEngine",
    "StorageShard",
    "TSDataType",
    "TVList",
    "TextTVList",
    "TimeRangeQueryExecutor",
    "TsFileReader",
    "TsFileWriter",
    "WriteAheadLog",
    "dedupe_arrival",
    "dedupe_sorted",
    "flush_memtable",
    "get_encoder",
    "infer_dtype",
    "tvlist_for",
]
