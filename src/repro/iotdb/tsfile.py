"""A simplified TsFile: IoTDB's immutable columnar file format.

Layout (all integers little-endian)::

    MAGIC "TsFilePy1"
    page*            -- concatenated page payloads, in write order
    footer           -- JSON index: per (device, sensor) chunk metadata with
                        page offsets, counts, time ranges and statistics
    footer_length    -- uint32
    crc32(footer)    -- uint32
    MAGIC "TsFilePy1"

Each page payload is::

    uint32 time_len | time_bytes | uint32 value_len | value_bytes | uint32 crc

Pages within a chunk are time-ordered and non-overlapping (the flush
pipeline writes sorted, deduplicated data — which is the whole point of
sorting before flushing).  Readers use page statistics (min/max time) to
skip pages outside a query range, so query cost reflects how well the data
was organised at flush time.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import InvalidParameterError, TsFileCorruptionError
from repro.iotdb.config import TSDataType
from repro.iotdb.encoding import get_encoder

MAGIC = b"TsFilePy1"


@dataclass
class PageStatistics:
    """Per-page summary used for query pruning and aggregations."""

    count: int
    min_time: int
    max_time: int
    first_value: object = None
    last_value: object = None
    min_value: object = None
    max_value: object = None
    sum_value: float | None = None

    @classmethod
    def from_points(cls, ts: list[int], vs: list) -> "PageStatistics":
        numeric = vs and isinstance(vs[0], (int, float)) and not isinstance(vs[0], bool)
        return cls(
            count=len(ts),
            min_time=ts[0],
            max_time=ts[-1],
            first_value=vs[0],
            last_value=vs[-1],
            min_value=min(vs) if numeric else None,
            max_value=max(vs) if numeric else None,
            sum_value=float(sum(vs)) if numeric else None,
        )

    def to_json(self) -> dict:
        return {
            "count": self.count,
            "min_time": self.min_time,
            "max_time": self.max_time,
            "first_value": self.first_value,
            "last_value": self.last_value,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "sum_value": self.sum_value,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "PageStatistics":
        return cls(**obj)


@dataclass
class PageMetadata:
    """Location and statistics of one page inside the file."""

    offset: int
    stats: PageStatistics

    def to_json(self) -> dict:
        return {"offset": self.offset, "stats": self.stats.to_json()}

    @classmethod
    def from_json(cls, obj: dict) -> "PageMetadata":
        return cls(offset=obj["offset"], stats=PageStatistics.from_json(obj["stats"]))


@dataclass
class ChunkMetadata:
    """All pages of one (device, sensor) column in this file."""

    device: str
    sensor: str
    dtype: TSDataType
    time_encoding: str
    value_encoding: str
    compression: str = "none"
    pages: list[PageMetadata] = field(default_factory=list)

    @property
    def count(self) -> int:
        return sum(p.stats.count for p in self.pages)

    @property
    def min_time(self) -> int | None:
        return self.pages[0].stats.min_time if self.pages else None

    @property
    def max_time(self) -> int | None:
        return self.pages[-1].stats.max_time if self.pages else None

    def to_json(self) -> dict:
        return {
            "device": self.device,
            "sensor": self.sensor,
            "dtype": self.dtype.value,
            "time_encoding": self.time_encoding,
            "value_encoding": self.value_encoding,
            "compression": self.compression,
            "pages": [p.to_json() for p in self.pages],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ChunkMetadata":
        return cls(
            device=obj["device"],
            sensor=obj["sensor"],
            dtype=TSDataType(obj["dtype"]),
            time_encoding=obj["time_encoding"],
            value_encoding=obj["value_encoding"],
            compression=obj.get("compression", "none"),
            pages=[PageMetadata.from_json(p) for p in obj["pages"]],
        )


class TsFileWriter:
    """Writes one immutable TsFile to a binary file-like object."""

    def __init__(self, fileobj: io.RawIOBase | io.BufferedIOBase | io.BytesIO) -> None:
        self._file = fileobj
        self._file.write(MAGIC)
        self._chunks: dict[tuple[str, str], ChunkMetadata] = {}
        self._closed = False
        self._bytes_written = len(MAGIC)

    def write_chunk(
        self,
        device: str,
        sensor: str,
        dtype: TSDataType,
        ts: list[int],
        vs: list,
        time_encoding: str = "ts2diff",
        value_encoding: str = "plain",
        page_size: int = 1_024,
        compression: str = "none",
    ) -> ChunkMetadata:
        """Write a sorted, deduplicated column as one chunk of pages.

        Raises:
            InvalidParameterError: unsorted/duplicated timestamps or length
                mismatch — the writer refuses data the sorter did not clean.
        """
        if self._closed:
            raise InvalidParameterError("writer already closed")
        if len(ts) != len(vs):
            raise InvalidParameterError("timestamps and values lengths differ")
        if any(ts[i] >= ts[i + 1] for i in range(len(ts) - 1)):
            # Strictly increasing required: sorted AND deduplicated.
            raise InvalidParameterError(
                f"chunk for {device}.{sensor} must have strictly increasing timestamps"
            )
        key = (device, sensor)
        if key in self._chunks:
            chunk = self._chunks[key]
            if chunk.dtype is not dtype:
                raise InvalidParameterError(
                    f"dtype change for {device}.{sensor}: {chunk.dtype} -> {dtype}"
                )
            if chunk.max_time is not None and ts and ts[0] <= chunk.max_time:  # repro: allow(stats-accounting): overlap guard, not a sort
                raise InvalidParameterError(
                    f"chunk for {device}.{sensor} overlaps previously written pages"
                )
        else:
            if compression not in ("none", "zlib"):
                raise InvalidParameterError(
                    f"compression must be 'none' or 'zlib', got {compression!r}"
                )
            chunk = ChunkMetadata(
                device, sensor, dtype, time_encoding, value_encoding, compression
            )
            self._chunks[key] = chunk

        time_encoder = get_encoder(time_encoding, TSDataType.INT64)
        value_encoder = get_encoder(value_encoding, dtype)
        for lo in range(0, len(ts), page_size):
            page_t = ts[lo : lo + page_size]
            page_v = vs[lo : lo + page_size]
            payload = bytearray()
            tbytes = time_encoder.encode(page_t)
            vbytes = value_encoder.encode(page_v)
            if chunk.compression == "zlib":
                tbytes = zlib.compress(tbytes)
                vbytes = zlib.compress(vbytes)
            payload.extend(struct.pack("<I", len(tbytes)))
            payload.extend(tbytes)
            payload.extend(struct.pack("<I", len(vbytes)))
            payload.extend(vbytes)
            payload.extend(struct.pack("<I", zlib.crc32(payload)))
            offset = self._bytes_written
            self._file.write(payload)
            self._bytes_written += len(payload)
            chunk.pages.append(
                PageMetadata(offset=offset, stats=PageStatistics.from_points(page_t, page_v))
            )
        return chunk

    def close(self) -> int:
        """Write the footer index and trailing magic; returns file size."""
        if self._closed:
            return self._bytes_written
        footer = json.dumps(
            [c.to_json() for c in self._chunks.values()], separators=(",", ":")
        ).encode("utf-8")
        self._file.write(footer)
        self._file.write(struct.pack("<I", len(footer)))
        self._file.write(struct.pack("<I", zlib.crc32(footer)))
        self._file.write(MAGIC)
        self._bytes_written += len(footer) + 8 + len(MAGIC)
        self._closed = True
        return self._bytes_written


class TsFileReader:
    """Reads chunks and time ranges back out of a sealed TsFile."""

    def __init__(self, fileobj) -> None:
        self._file = fileobj
        self._chunks: dict[tuple[str, str], ChunkMetadata] = {}
        self._load_index()

    def _load_index(self) -> None:
        self._file.seek(0, io.SEEK_END)
        size = self._file.tell()
        tail = len(MAGIC) + 8
        if size < len(MAGIC) + tail:
            raise TsFileCorruptionError("file too small to be a TsFile")
        self._file.seek(0)
        if self._file.read(len(MAGIC)) != MAGIC:
            raise TsFileCorruptionError("bad leading magic")
        self._file.seek(size - tail)
        footer_len, footer_crc = struct.unpack("<II", self._file.read(8))
        if self._file.read(len(MAGIC)) != MAGIC:
            raise TsFileCorruptionError("bad trailing magic")
        footer_start = size - tail - footer_len
        if footer_start < len(MAGIC):
            raise TsFileCorruptionError("footer length exceeds file size")
        self._file.seek(footer_start)
        footer = self._file.read(footer_len)
        if zlib.crc32(footer) != footer_crc:
            raise TsFileCorruptionError("footer checksum mismatch")
        for obj in json.loads(footer.decode("utf-8")):
            chunk = ChunkMetadata.from_json(obj)
            self._chunks[(chunk.device, chunk.sensor)] = chunk

    def devices(self) -> list[str]:
        return sorted({d for d, _ in self._chunks})

    def sensors(self, device: str) -> list[str]:
        return sorted(s for d, s in self._chunks if d == device)

    def chunk_metadata(self, device: str, sensor: str) -> ChunkMetadata | None:
        return self._chunks.get((device, sensor))

    def _read_page(self, chunk: ChunkMetadata, page: PageMetadata) -> tuple[list[int], list]:
        self._file.seek(page.offset)
        (tlen,) = struct.unpack("<I", self._file.read(4))
        tbytes = self._file.read(tlen)
        (vlen,) = struct.unpack("<I", self._file.read(4))
        vbytes = self._file.read(vlen)
        (crc,) = struct.unpack("<I", self._file.read(4))
        payload = struct.pack("<I", tlen) + tbytes + struct.pack("<I", vlen) + vbytes
        if zlib.crc32(payload) != crc:
            raise TsFileCorruptionError(
                f"page checksum mismatch at offset {page.offset}"
            )
        if chunk.compression == "zlib":
            tbytes = zlib.decompress(tbytes)
            vbytes = zlib.decompress(vbytes)
        ts = get_encoder(chunk.time_encoding, TSDataType.INT64).decode(
            tbytes, page.stats.count
        )
        vs = get_encoder(chunk.value_encoding, chunk.dtype).decode(
            vbytes, page.stats.count
        )
        return ts, vs

    def read_chunk(self, device: str, sensor: str) -> tuple[list[int], list]:
        """All points of one column, in time order."""
        chunk = self._chunks.get((device, sensor))
        if chunk is None:
            return [], []
        all_t: list[int] = []
        all_v: list = []
        for page in chunk.pages:
            ts, vs = self._read_page(chunk, page)
            all_t.extend(ts)  # repro: allow(stats-accounting): page concat, not a sort
            all_v.extend(vs)
        return all_t, all_v

    def describe(self) -> dict:
        """Layout summary: chunks, pages, points, and per-column time spans.

        The ``tsfile describe`` style tooling operators use to inspect a
        sealed file without decoding any page payloads.
        """
        self._file.seek(0, io.SEEK_END)
        columns = []
        for (device, sensor), chunk in sorted(self._chunks.items()):
            columns.append(
                {
                    "device": device,
                    "sensor": sensor,
                    "dtype": chunk.dtype.value,
                    "time_encoding": chunk.time_encoding,
                    "value_encoding": chunk.value_encoding,
                    "pages": len(chunk.pages),
                    "points": chunk.count,
                    "min_time": chunk.min_time,
                    "max_time": chunk.max_time,
                }
            )
        return {
            "file_bytes": self._file.tell(),
            "chunks": len(self._chunks),
            "pages": sum(len(c.pages) for c in self._chunks.values()),
            "points": sum(c.count for c in self._chunks.values()),
            "columns": columns,
        }

    def query_range(
        self, device: str, sensor: str, start: int, end: int
    ) -> tuple[list[int], list]:
        """Points with ``start <= t < end``, using page stats to skip pages."""
        chunk = self._chunks.get((device, sensor))
        if chunk is None:
            return [], []
        out_t: list[int] = []
        out_v: list = []
        for page in chunk.pages:
            if page.stats.max_time < start or page.stats.min_time >= end:
                continue
            ts, vs = self._read_page(chunk, page)
            for t, v in zip(ts, vs):
                if start <= t < end:
                    out_t.append(t)  # repro: allow(stats-accounting): range filter, not a sort
                    out_v.append(v)
        return out_t, out_v
