"""LocalDirStore: the BlobStore over a local directory (the v1 layout).

Keys map 1:1 to paths relative to ``root`` — ``shard-00/seq-000001.tsfile``
is literally ``root/shard-00/seq-000001.tsfile`` — so an engine whose
persistence goes through this store writes the *same bytes to the same
paths* as the pre-backend code did.  That identity is what makes the v1
tree byte-for-byte stable under the backend refactor (pinned by the parity
suite) and what lets ``StorageEngine.open`` serve a v2-local tree and a v1
tree with the same code.

Atomicity: ``put`` stages to ``<key>.part`` and publishes with
``os.replace``; ``rename_atomic`` *is* ``os.replace``.  Both therefore
carry the POSIX same-filesystem rename guarantee the engine's seal/swap
protocols are built on (docs/STORAGE.md).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import BlobNotFoundError
from repro.iotdb.backends.base import BlobStore, validate_key


class LocalDirStore(BlobStore):
    """Key → bytes over ``root``, key ↔ relative path, byte-identical v1."""

    kind = "local"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / validate_key(key)

    # -- whole-blob operations --------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Stage-then-rename: a crash mid-put leaves a stray .part the
        # engine's recovery scan discards, never a torn published blob.
        part = path.with_name(path.name + ".part")
        part.write_bytes(data)
        os.replace(part, path)

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise BlobNotFoundError(f"no blob {key!r} under {self.root}") from None

    def delete(self, key: str, *, missing_ok: bool = False) -> None:
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            if not missing_ok:
                raise BlobNotFoundError(
                    f"no blob {key!r} under {self.root}"
                ) from None

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def list(self, prefix: str = "") -> list[str]:
        if not self.root.is_dir():
            return []
        keys = [
            path.relative_to(self.root).as_posix()
            for path in self.root.rglob("*")
            if path.is_file()
        ]
        return sorted(key for key in keys if key.startswith(prefix))

    def rename_atomic(self, src: str, dst: str) -> None:
        src_path, dst_path = self._path(src), self._path(dst)
        dst_path.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(src_path, dst_path)
        except FileNotFoundError:
            raise BlobNotFoundError(f"no blob {src!r} under {self.root}") from None

    # -- streaming handles -------------------------------------------------

    def open_write(self, key: str):
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        return open(path, "wb+")

    def open_read(self, key: str):
        try:
            return open(self._path(key), "rb")
        except FileNotFoundError:
            raise BlobNotFoundError(f"no blob {key!r} under {self.root}") from None

    # -- namespace hints ---------------------------------------------------

    def ensure_prefix(self, prefix: str) -> None:
        """Create the directory a ``/``-terminated prefix names (keeps the
        v2-local tree identical to v1 down to empty shard directories)."""
        (self.root / prefix.rstrip("/")).mkdir(parents=True, exist_ok=True)
