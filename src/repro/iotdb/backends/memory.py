"""MemoryStore: an S3-like in-memory key-value BlobStore.

The second backend the v2 layout runs on: one ``dict`` of key →
``bytearray`` behind its own lock, with the same key namespace and the
same atomicity contract as :class:`~repro.iotdb.backends.local.LocalDirStore`
(``rename_atomic`` moves the value object between keys in one locked
step).  It exists for what a real object store would be used for minus the
network: backend-parity suites (same workload → identical bytes and query
results as the local tree) and the crash harness's ``v2-memory`` sweep,
where :meth:`snapshot` plays the role the
:class:`~repro.faults.crash.CrashSimulator` directory copy plays on disk.

Durability model under fault injection: a write handle appends straight
into the stored ``bytearray`` — those bytes are "on disk".  The engine
always wraps handles in :class:`~repro.faults.files.FaultyFile`, whose
pending buffer holds unflushed bytes *outside* the store, so a simulated
crash abandons them exactly as it does for a real file; a
:meth:`snapshot` taken at the crash point therefore sees only flushed
bytes, on both backends, with the same code.

Concurrency: ``_lock`` guards the blob table and sits at the bottom of
the engine's lock hierarchy (below shard and WAL locks, which call into
the store while held; it never calls out while holding its own lock).
Handles deliberately bypass the lock: a blob is written by exactly one
owner at a time under that owner's shard/WAL lock, matching how file
descriptors bypass the directory on a real filesystem.
"""

from __future__ import annotations

import io

from repro.analysis.concurrency import apply_guards, create_lock
from repro.errors import BlobNotFoundError, StorageError
from repro.iotdb.backends.base import BlobStore, validate_key


class _MemoryBlobHandle:
    """A seekable binary file over one stored ``bytearray``.

    Write handles mutate the array in place (never rebinding it), so the
    store's table — and any concurrently taken :meth:`MemoryStore.snapshot`
    — always sees exactly the bytes written so far, like a file on disk.
    """

    def __init__(self, buffer: bytearray, *, writable: bool, name: str) -> None:
        self._buffer = buffer
        self._writable = writable
        self._name = name
        self._pos = 0
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"I/O operation on closed blob handle {self._name!r}")

    # -- file protocol -----------------------------------------------------

    def write(self, data) -> int:
        self._check_open()
        if not self._writable:
            raise io.UnsupportedOperation(f"blob handle {self._name!r} is read-only")
        data = bytes(data)
        end = self._pos + len(data)
        if self._pos > len(self._buffer):
            # Sparse write beyond the end zero-fills, like a POSIX file.
            self._buffer.extend(b"\x00" * (self._pos - len(self._buffer)))
        self._buffer[self._pos:end] = data
        self._pos = end
        return len(data)

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if size is None or size < 0:
            end = len(self._buffer)
        else:
            end = min(self._pos + size, len(self._buffer))
        data = bytes(self._buffer[self._pos:end])
        self._pos = end
        return data

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        self._check_open()
        if whence == io.SEEK_SET:
            pos = offset
        elif whence == io.SEEK_CUR:
            pos = self._pos + offset
        elif whence == io.SEEK_END:
            pos = len(self._buffer) + offset
        else:  # pragma: no cover - defensive
            raise ValueError(f"invalid whence {whence}")
        if pos < 0:
            raise OSError(22, "negative seek position")
        self._pos = pos
        return pos

    def tell(self) -> int:
        self._check_open()
        return self._pos

    def truncate(self, size: int | None = None) -> int:
        self._check_open()
        if not self._writable:
            raise io.UnsupportedOperation(f"blob handle {self._name!r} is read-only")
        size = self._pos if size is None else size
        if size < 0:
            raise OSError(22, "negative truncate size")
        if size < len(self._buffer):
            del self._buffer[size:]
        else:
            self._buffer.extend(b"\x00" * (size - len(self._buffer)))
        return size

    def flush(self) -> None:
        # Writes land in the store immediately; nothing is buffered here.
        self._check_open()

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def readable(self) -> bool:
        return True

    def writable(self) -> bool:
        return self._writable

    def seekable(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "wb+" if self._writable else "rb"
        return f"<_MemoryBlobHandle {self._name!r} mode={mode}>"


class MemoryStore(BlobStore):
    """In-memory key → bytes store with snapshot support for crash tests."""

    kind = "memory"

    #: Lock discipline for the ``guarded-by`` rule and runtime sanitizer.
    GUARDED_BY = {"_blobs": "_lock"}

    def __init__(self) -> None:
        self._lock = create_lock("MemoryStore._lock")
        self._blobs: dict[str, bytearray] = {}
        apply_guards(self)

    # -- whole-blob operations --------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        validate_key(key)
        with self._lock:
            # One dict assignment under the lock: readers see the old
            # value or the whole new one, never a torn blob.
            self._blobs[key] = bytearray(data)

    def get(self, key: str) -> bytes:
        validate_key(key)
        with self._lock:
            buffer = self._blobs.get(key)
            if buffer is None:
                raise BlobNotFoundError(f"no blob {key!r} in MemoryStore")
            return bytes(buffer)

    def delete(self, key: str, *, missing_ok: bool = False) -> None:
        validate_key(key)
        with self._lock:
            if self._blobs.pop(key, None) is None and not missing_ok:
                raise BlobNotFoundError(f"no blob {key!r} in MemoryStore")

    def exists(self, key: str) -> bool:
        validate_key(key)
        with self._lock:
            return key in self._blobs

    def list(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(key for key in self._blobs if key.startswith(prefix))

    def rename_atomic(self, src: str, dst: str) -> None:
        validate_key(src)
        validate_key(dst)
        with self._lock:
            buffer = self._blobs.pop(src, None)
            if buffer is None:
                raise BlobNotFoundError(f"no blob {src!r} in MemoryStore")
            # The value object moves, so a handle still open on it keeps
            # reading the published bytes — like an fd across os.replace.
            self._blobs[dst] = buffer

    # -- streaming handles -------------------------------------------------

    def open_write(self, key: str) -> _MemoryBlobHandle:
        validate_key(key)
        with self._lock:
            buffer = bytearray()
            self._blobs[key] = buffer
        return _MemoryBlobHandle(buffer, writable=True, name=key)

    def open_read(self, key: str) -> _MemoryBlobHandle:
        validate_key(key)
        with self._lock:
            buffer = self._blobs.get(key)
            if buffer is None:
                raise BlobNotFoundError(f"no blob {key!r} in MemoryStore")
        return _MemoryBlobHandle(buffer, writable=False, name=key)

    # -- crash-harness support ---------------------------------------------

    def snapshot(self) -> dict[str, bytes]:
        """An immutable copy of every blob's current bytes — the in-memory
        analogue of the :class:`~repro.faults.crash.CrashSimulator`
        directory copy (bytes pending in a ``FaultyFile`` are naturally
        absent: they never reached the store)."""
        with self._lock:
            return {key: bytes(buffer) for key, buffer in self._blobs.items()}

    @classmethod
    def from_snapshot(cls, snapshot: dict[str, bytes]) -> "MemoryStore":
        """A fresh store holding exactly a snapshot's blobs (recovery)."""
        store = cls()
        for key, data in snapshot.items():
            if not isinstance(data, (bytes, bytearray)):
                raise StorageError(
                    f"snapshot value for {key!r} must be bytes, got "
                    f"{type(data).__name__}"
                )
            store.put(key, bytes(data))
        return store
