"""Pluggable blob-store backends for the storage engine's v2 layout.

Every persistence call site in the engine — sealed TsFiles, WAL segments,
interval indexes, ``meta/engine.json`` — addresses bytes through the
:class:`BlobStore` interface.  :class:`LocalDirStore` maps keys 1:1 onto a
local directory (byte-identical to the historical v1 tree);
:class:`MemoryStore` is an S3-like in-memory table used by the parity
suites and the ``v2-memory`` crash sweep.  See docs/STORAGE.md for the
normative on-disk format and the per-method atomicity contract.
"""

from repro.iotdb.backends.base import BlobNotFoundError, BlobStore, validate_key
from repro.iotdb.backends.local import LocalDirStore
from repro.iotdb.backends.memory import MemoryStore

__all__ = [
    "BlobNotFoundError",
    "BlobStore",
    "LocalDirStore",
    "MemoryStore",
    "validate_key",
]
