"""BlobStore: the storage interface every persistence call site routes through.

A *blob store* is a flat key → bytes mapping with S3-like semantics: keys
are ``/``-separated relative paths (``shard-00/seq-000001.tsfile``,
``meta/engine.json``), values are immutable once published, and the only
structural operation is a prefix listing.  The engine's v1 on-disk layout
is exactly one such mapping over a local directory
(:class:`~repro.iotdb.backends.local.LocalDirStore`, key ↔ relative path,
byte for byte), which is what lets every sealed TsFile, WAL segment,
interval index, and engine-meta write go through this interface without
changing a single byte of the v1 tree.  A second implementation
(:class:`~repro.iotdb.backends.memory.MemoryStore`) keeps the same mapping
in process memory — the shape of an object-store backend, used by the
parity suites and the crash harness's ``v2-memory`` sweep.

Atomicity contract (normative; docs/STORAGE.md §"BlobStore contract"):

``put``
    publishes the whole value or nothing — a reader (or a crash snapshot)
    never observes a torn blob under ``key``.  Streaming writers that
    need crash-visible partial state use ``open_write`` on a ``.part``
    key instead and publish with ``rename_atomic``.
``rename_atomic``
    atomically moves ``src`` over ``dst`` (replacing it); afterwards
    ``src`` is gone.  This is the engine's publish primitive — TsFile
    seal, index swap, and meta swap all end in one.
``delete``
    removes a key; with ``missing_ok`` a missing key is a no-op (crash
    recovery deletes leftovers it may or may not find).
``open_write``
    a seekable binary handle whose bytes become durable as they are
    flushed (like ``open(path, "wb+")``); it truncates any existing
    value.  Partially flushed bytes *are* observable under the key — the
    engine only ever streams to ``.part`` keys for exactly that reason.
``open_read`` / ``get`` / ``list`` / ``exists``
    plain reads; ``list(prefix)`` returns every key with that string
    prefix, sorted, and is the recovery scan primitive.
``ensure_prefix``
    materialises a directory-like prefix where the backend has real
    directories (``LocalDirStore``), a no-op elsewhere — it exists so the
    v2-local tree stays byte-identical to v1 including *empty* shard
    directories.
"""

from __future__ import annotations

from repro.errors import BlobNotFoundError, StorageError

__all__ = ["BlobNotFoundError", "BlobStore", "validate_key"]


def validate_key(key: str) -> str:
    """Reject keys that could escape or alias the store's namespace.

    Keys are relative ``/``-separated paths: no empty segments, no
    leading ``/``, no ``.``/``..`` traversal, no backslashes (one key
    must name one blob on every backend, including the local filesystem).
    """
    if not isinstance(key, str) or not key:
        raise StorageError(f"blob key must be a non-empty string, got {key!r}")
    if "\\" in key:
        raise StorageError(f"blob key {key!r} must use '/' separators")
    if key.startswith("/") or key.endswith("/"):
        raise StorageError(f"blob key {key!r} must be a relative path")
    for segment in key.split("/"):
        if segment in ("", ".", ".."):
            raise StorageError(f"blob key {key!r} contains an invalid segment")
    return key


class BlobStore:
    """Abstract flat key → bytes store (see the module docstring for the
    per-method atomicity contract every implementation must honour)."""

    #: Backend name recorded in ``meta/engine.json`` (``"local"`` /
    #: ``"memory"``); doubles as the bench cell label.
    kind: str = "abstract"

    # -- whole-blob operations --------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        """Atomically publish ``data`` under ``key`` (all or nothing)."""
        raise NotImplementedError

    def get(self, key: str) -> bytes:
        """The value under ``key``; :class:`BlobNotFoundError` if absent."""
        raise NotImplementedError

    def delete(self, key: str, *, missing_ok: bool = False) -> None:
        """Remove ``key``; missing keys raise unless ``missing_ok``."""
        raise NotImplementedError

    def exists(self, key: str) -> bool:
        raise NotImplementedError

    def list(self, prefix: str = "") -> list[str]:
        """Every key starting with ``prefix``, sorted."""
        raise NotImplementedError

    def rename_atomic(self, src: str, dst: str) -> None:
        """Atomically move ``src`` over ``dst`` (the publish primitive)."""
        raise NotImplementedError

    # -- streaming handles -------------------------------------------------

    def open_write(self, key: str):
        """A fresh seekable binary write handle for ``key`` (truncates)."""
        raise NotImplementedError

    def open_read(self, key: str):
        """A seekable binary read handle; :class:`BlobNotFoundError` if
        absent."""
        raise NotImplementedError

    # -- namespace hints ---------------------------------------------------

    def ensure_prefix(self, prefix: str) -> None:
        """Materialise a directory-like ``prefix`` where the backend has
        real directories; a no-op on flat key-value backends."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} kind={self.kind!r}>"
