"""Write-ahead log: crash durability for the memtable write path.

Each record is::

    uint32 length | payload | uint32 crc32(payload)

with the payload a JSON array ``[device, sensor, timestamp, value]``.  The
engine appends a record before acknowledging a write and truncates the log
once the covering memtable has been flushed to a sealed TsFile.  Replay
stops cleanly at the first torn record (a crash mid-append), surfacing
everything durable before it.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from typing import Iterator

from repro.errors import WalCorruptionError

_HEADER = struct.Struct("<I")


class WriteAheadLog:
    """Append-only record log over a seekable binary file-like object."""

    def __init__(self, fileobj: io.BytesIO | io.BufferedRandom | None = None) -> None:
        self._file = fileobj if fileobj is not None else io.BytesIO()
        self._file.seek(0, io.SEEK_END)

    def append(self, device: str, sensor: str, timestamp: int, value) -> None:
        """Durably record one write."""
        payload = json.dumps([device, sensor, timestamp, value]).encode("utf-8")
        self._file.write(_HEADER.pack(len(payload)))
        self._file.write(payload)
        self._file.write(_HEADER.pack(zlib.crc32(payload)))

    def replay(self, strict: bool = False) -> Iterator[tuple[str, str, int, object]]:
        """Yield every intact record from the start of the log.

        Args:
            strict: raise :class:`WalCorruptionError` on a corrupt record
                instead of treating it as the torn tail of a crash.
        """
        self._file.seek(0)
        while True:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return
            (length,) = _HEADER.unpack(header)
            payload = self._file.read(length)
            crc_bytes = self._file.read(_HEADER.size)
            if len(payload) < length or len(crc_bytes) < _HEADER.size:
                if strict:
                    raise WalCorruptionError("torn record at end of WAL")
                return
            (crc,) = _HEADER.unpack(crc_bytes)
            if zlib.crc32(payload) != crc:
                if strict:
                    raise WalCorruptionError("WAL record checksum mismatch")
                return
            device, sensor, timestamp, value = json.loads(payload.decode("utf-8"))
            yield device, sensor, timestamp, value

    def truncate(self) -> None:
        """Drop all records (called after the covering memtable flushed)."""
        self._file.seek(0)
        self._file.truncate()

    def close(self) -> None:
        """Release the underlying file handle (no-op for BytesIO)."""
        if not isinstance(self._file, io.BytesIO):
            self._file.close()

    def size_bytes(self) -> int:
        pos = self._file.tell()
        self._file.seek(0, io.SEEK_END)
        size = self._file.tell()
        self._file.seek(pos)
        return size
