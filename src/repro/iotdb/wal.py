"""Write-ahead log: crash durability for the memtable write path.

Each frame is::

    uint32 header | payload | uint32 crc32(payload)

The header's low 31 bits are the payload length; the top bit distinguishes
the two frame kinds:

* a **single record** frame (bit clear — every segment written before batch
  framing existed parses as this kind), payload a JSON array
  ``[device, sensor, timestamp, value]``;
* a **batch record** frame (bit set), payload one JSON array of N such
  records — one length prefix, one CRC, and one flush for the whole batch,
  which is what makes ``append_batch`` amortise the per-record framing and
  flush cost.

The engine appends before acknowledging a write, and both ``append`` and
``append_batch`` flush the underlying file so an acknowledged write is
durable even if the process dies immediately afterwards (the
``repro.faults`` crash sweep is what turned the missing flush into a pinned
regression test).  Replay accepts both frame kinds — old segments stay
recoverable — and stops cleanly at the first torn frame (a crash
mid-append), surfacing everything durable before it.  A torn batch frame
drops the *whole* batch, which is correct: the batch is only acknowledged
after its single flush returns, so a torn frame means nothing in it was
acked.

Two layers live here:

* :class:`WriteAheadLog` — the record codec over one seekable file: one
  *segment*.
* :class:`SegmentedWal` — an ordered collection of segments.  The engine
  rotates to a fresh segment whenever a working memtable retires, so each
  FLUSHING memtable is covered by its own segment(s); once that memtable
  is sealed into a TsFile, exactly those segments are dropped.  Truncating
  a single shared log instead (the pre-fault-harness design) destroyed
  coverage for every point acknowledged after the retire — a crash then
  lost acknowledged writes.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.concurrency import apply_guards, create_lock, holds
from repro.errors import StorageError, WalCorruptionError

_HEADER = struct.Struct("<I")

#: Top bit of the length header marks a batch frame; the low 31 bits carry
#: the payload length.  Pre-batch segments never set the bit (a single
#: record's JSON payload is nowhere near 2 GiB), so old logs replay as-is.
_BATCH_FLAG = 0x80000000
_LENGTH_MASK = 0x7FFFFFFF


class WriteAheadLog:
    """Append-only record log over a seekable binary file-like object."""

    def __init__(self, fileobj: io.BytesIO | io.BufferedRandom | None = None) -> None:
        self._file = fileobj if fileobj is not None else io.BytesIO()
        self._file.seek(0, io.SEEK_END)

    def append(self, device: str, sensor: str, timestamp: int, value) -> int:
        """Durably record one write (flushed before returning).

        Returns the number of bytes appended (frame overhead included).
        """
        payload = json.dumps([device, sensor, timestamp, value]).encode("utf-8")
        self._file.write(_HEADER.pack(len(payload)))
        self._file.write(payload)
        self._file.write(_HEADER.pack(zlib.crc32(payload)))
        # Durability on acknowledge: without this flush, records sat in the
        # user-space buffer and a crash lost acknowledged writes.
        self._file.flush()
        return _HEADER.size * 2 + len(payload)

    def append_batch(self, records) -> int:
        """Durably record many writes as one batch frame, one flush.

        ``records`` is an iterable of ``(device, sensor, timestamp, value)``
        tuples.  The whole batch becomes a single frame — one length prefix,
        one JSON array payload, one CRC — and one flush covers it, so both
        the framing overhead and the flush syscall amortise across the
        batch.  The batch is acknowledged only after the flush returns, so
        all-or-nothing replay of a torn frame matches what was acked.

        An empty iterable is a no-op: no bytes are written and no flush is
        issued.  Returns the number of bytes appended.
        """
        batch = [
            [device, sensor, timestamp, value]
            for device, sensor, timestamp, value in records
        ]
        if not batch:
            return 0
        payload = json.dumps(batch).encode("utf-8")
        if len(payload) > _LENGTH_MASK:
            raise StorageError(
                f"WAL batch payload of {len(payload)} bytes exceeds the "
                f"{_LENGTH_MASK}-byte frame limit; split the batch"
            )
        self._file.write(_HEADER.pack(len(payload) | _BATCH_FLAG))
        self._file.write(payload)
        self._file.write(_HEADER.pack(zlib.crc32(payload)))
        self._file.flush()
        return _HEADER.size * 2 + len(payload)

    def replay(self, strict: bool = False) -> Iterator[tuple[str, str, int, object]]:
        """Yield every intact record from the start of the log.

        Both frame kinds are accepted: a single-record frame yields one
        record, a batch frame yields each of its records in order.  A torn
        or corrupt batch frame drops the whole batch — the batch was only
        acknowledged after its flush, so replay still surfaces exactly the
        acknowledged prefix.

        Args:
            strict: raise :class:`WalCorruptionError` on a torn or corrupt
                record instead of treating it as the tail of a crash.  The
                error message names the failing record index and which part
                of the record is damaged (header / payload / crc / checksum).
        """
        self._file.seek(0)
        index = 0
        while True:
            header = self._file.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                if strict:
                    raise WalCorruptionError(
                        f"torn header at record {index}: "
                        f"{len(header)} of {_HEADER.size} bytes"
                    )
                return
            (word,) = _HEADER.unpack(header)
            is_batch = bool(word & _BATCH_FLAG)
            length = word & _LENGTH_MASK
            payload = self._file.read(length)
            if len(payload) < length:
                if strict:
                    raise WalCorruptionError(
                        f"torn payload at record {index}: "
                        f"{len(payload)} of {length} bytes"
                    )
                return
            crc_bytes = self._file.read(_HEADER.size)
            if len(crc_bytes) < _HEADER.size:
                if strict:
                    raise WalCorruptionError(
                        f"torn crc at record {index}: "
                        f"{len(crc_bytes)} of {_HEADER.size} bytes"
                    )
                return
            (crc,) = _HEADER.unpack(crc_bytes)
            if zlib.crc32(payload) != crc:
                if strict:
                    raise WalCorruptionError(
                        f"checksum mismatch at record {index}: "
                        f"stored {crc:#010x}, computed {zlib.crc32(payload):#010x}"
                    )
                return
            decoded = json.loads(payload.decode("utf-8"))
            if is_batch:
                for device, sensor, timestamp, value in decoded:
                    yield device, sensor, timestamp, value
                    index += 1
            else:
                device, sensor, timestamp, value = decoded
                yield device, sensor, timestamp, value
                index += 1

    def truncate(self) -> None:
        """Drop all records (called after the covering memtable flushed)."""
        self._file.seek(0)
        self._file.truncate()

    def close(self) -> None:
        """Release the underlying file handle (no-op for BytesIO)."""
        if not isinstance(self._file, io.BytesIO):
            self._file.close()

    def size_bytes(self) -> int:
        pos = self._file.tell()
        self._file.seek(0, io.SEEK_END)
        size = self._file.tell()
        self._file.seek(pos)
        return size


class _Segment:
    """One WAL segment: id, codec, and (for persisted segments) its
    blob-store key."""

    __slots__ = ("segment_id", "wal", "key")

    def __init__(self, segment_id: int, wal: WriteAheadLog, key: str | None) -> None:
        self.segment_id = segment_id
        self.wal = wal
        self.key = key


class SegmentedWal:
    """Ordered WAL segments for one memtable space.

    The *active* segment receives appends; :meth:`rotate` seals it and
    opens a fresh one (the engine rotates when a working memtable retires,
    so the sealed segment covers exactly that memtable's points);
    :meth:`drop` deletes a sealed segment once its memtable is durable in
    a TsFile.  :meth:`replay` iterates every live segment in id order —
    after a crash that is precisely the set of acknowledged-but-unsealed
    points.

    Concurrency discipline: ``_lock`` serialises segment lifecycle and
    appends; it sits below the engine lock in the global order.
    """

    #: Lock discipline for the ``guarded-by`` rule and runtime sanitizer.
    GUARDED_BY = {"_segments": "_lock"}

    def __init__(
        self,
        *,
        store=None,
        prefix: str = "",
        space: str,
        wrap: Callable | None = None,
    ) -> None:
        # All persistence goes through a BlobStore (None = in-memory
        # segments); ``prefix`` scopes this WAL's keys (e.g. "shard-00/").
        self._store = store
        self._prefix = prefix
        self._space = space
        # ``wrap(fileobj, site=...)`` lets the fault injector interpose on
        # every byte written; identity when fault injection is off.
        self._wrap = wrap if wrap is not None else (lambda fileobj, site: fileobj)
        self._lock = create_lock("SegmentedWal._lock")
        self._segments: list[_Segment] = []
        self._active: _Segment | None = None  # repro: guarded_by(_lock)
        self._next_id = 1  # repro: guarded_by(_lock)
        # Lifetime accounting for the bench cells: ``size_bytes`` shrinks
        # when sealed segments are dropped, so the cumulative appended
        # bytes and flush count are tracked here where they survive drops.
        self._bytes_appended = 0  # repro: guarded_by(_lock)
        self._flush_count = 0  # repro: guarded_by(_lock)
        apply_guards(self)

    # -- constructors ------------------------------------------------------

    @classmethod
    def in_memory(cls, space: str, *, wrap: Callable | None = None) -> "SegmentedWal":
        wal = cls(store=None, space=space, wrap=wrap)
        with wal._lock:
            wal._start_active()
        return wal

    @classmethod
    def on_disk(
        cls,
        directory: Path,
        space: str,
        *,
        fresh: bool,
        wrap: Callable | None = None,
    ) -> "SegmentedWal":
        """Open the segment set under a local ``directory``.

        A thin veneer over :meth:`on_store` with a
        :class:`~repro.iotdb.backends.LocalDirStore` rooted at
        ``directory`` — segment names and bytes are identical to what the
        pre-backend code wrote.
        """
        from repro.iotdb.backends.local import LocalDirStore

        return cls.on_store(LocalDirStore(directory), "", space, fresh=fresh, wrap=wrap)

    @classmethod
    def on_store(
        cls,
        store,
        prefix: str,
        space: str,
        *,
        fresh: bool,
        wrap: Callable | None = None,
    ) -> "SegmentedWal":
        """Open the segment set stored under ``prefix`` in ``store``.

        ``fresh=True`` is the constructor's fresh-start semantics: any
        leftover segments are deleted.  ``fresh=False`` (recovery) keeps
        them as sealed segments so :meth:`replay` surfaces their records;
        the engine drops them once the replayed points are sealed.
        """
        if prefix and not prefix.endswith("/"):
            prefix += "/"
        wal = cls(store=store, prefix=prefix, space=space, wrap=wrap)
        name_prefix = f"{prefix}wal-{space}-"
        with wal._lock:
            for key in store.list(name_prefix):
                if not key.endswith(".log"):
                    continue
                try:
                    segment_id = int(key[len(name_prefix):-len(".log")])
                except ValueError:
                    name = key.rsplit("/", 1)[-1]
                    raise StorageError(
                        f"unrecognised WAL segment name {name!r}"
                    ) from None
                if fresh:
                    store.delete(key)
                    continue
                handle = store.open_read(key)
                wal._segments.append(
                    _Segment(segment_id, WriteAheadLog(handle), key)
                )
                wal._next_id = max(wal._next_id, segment_id + 1)
            wal._segments.sort(key=lambda s: s.segment_id)
            wal._start_active()
        return wal

    # -- segment lifecycle -------------------------------------------------

    @holds("_lock")
    def _start_active(self) -> None:
        segment_id = self._next_id
        self._next_id += 1
        if self._store is None:
            fileobj, key = io.BytesIO(), None
        else:
            key = f"{self._prefix}wal-{self._space}-{segment_id:06d}.log"
            fileobj = self._store.open_write(key)
        wrapped = self._wrap(fileobj, site="wal.write")
        self._active = _Segment(segment_id, WriteAheadLog(wrapped), key)
        self._segments.append(self._active)

    def rotate(self) -> int:
        """Seal the active segment, start a fresh one; returns the sealed id."""
        with self._lock:
            sealed = self._active
            self._start_active()
            return sealed.segment_id

    def drop(self, segment_id: int) -> None:
        """Delete a sealed segment whose points are durable in a TsFile."""
        with self._lock:
            for segment in self._segments:
                if segment.segment_id == segment_id:
                    if segment is self._active:
                        raise StorageError(
                            f"cannot drop the active WAL segment {segment_id}"
                        )
                    segment.wal.close()
                    if segment.key is not None:
                        self._store.delete(segment.key, missing_ok=True)
                    self._segments.remove(segment)
                    return
            raise StorageError(f"unknown WAL segment {segment_id}")

    # -- record API --------------------------------------------------------

    def append(self, device: str, sensor: str, timestamp: int, value) -> None:
        with self._lock:
            self._bytes_appended += self._active.wal.append(
                device, sensor, timestamp, value
            )
            self._flush_count += 1

    def append_batch(self, records) -> None:
        """Append a batch as one frame under one lock acquisition, one flush.

        An empty batch returns before taking the lock — the threaded ingest
        client routes per-shard slices that are frequently empty, and those
        must not contend on the lock or touch the file.
        """
        batch = records if isinstance(records, list) else list(records)
        if not batch:
            return
        with self._lock:
            self._bytes_appended += self._active.wal.append_batch(batch)
            self._flush_count += 1

    def replay(self, strict: bool = False) -> Iterator[tuple[str, str, int, object]]:
        """Every intact record across all live segments, in segment order.

        The segment list is snapshotted under the lock; record iteration
        itself runs unlocked (the sealed segments are immutable).
        """
        with self._lock:
            segments = list(self._segments)
        for segment in segments:
            yield from segment.wal.replay(strict=strict)

    # -- introspection -----------------------------------------------------

    def segment_ids(self) -> list[int]:
        """Ids of every live segment, active last."""
        with self._lock:
            return [s.segment_id for s in self._segments]

    def sealed_segment_ids(self) -> list[int]:
        with self._lock:
            return [s.segment_id for s in self._segments if s is not self._active]

    def size_bytes(self) -> int:
        with self._lock:
            return sum(s.wal.size_bytes() for s in self._segments)

    def stats(self) -> dict[str, int]:
        """Cumulative append accounting (unaffected by segment drops).

        ``bytes_appended`` counts every frame byte ever written to this
        space's segments; ``flushes`` counts flush syscalls issued by
        ``append``/``append_batch``.  Both feed the ``wal_bytes/`` and
        ``ingest/path`` bench cells.
        """
        with self._lock:
            return {
                "bytes_appended": self._bytes_appended,
                "flushes": self._flush_count,
            }

    def close(self) -> None:
        with self._lock:
            for segment in self._segments:
                segment.wal.close()
