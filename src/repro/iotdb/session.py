"""A minimal SQL-ish session over the storage engine.

The paper's system benchmark issues literal statements (§VI-D)::

    SELECT *
    FROM data
    WHERE time > current - window

This module parses and executes exactly that family — plus the aggregation
forms those range scans are "the basis of" — against a
:class:`~repro.iotdb.engine.StorageEngine`:

* ``SELECT * FROM <device>.<sensor> [WHERE <time-predicates>]``
* ``SELECT count(*) | sum(v) | avg(v) | min(v) | max(v) | first(v) | last(v)
  FROM <device>.<sensor> [WHERE ...]``
* trailing ``GROUP BY (<window>)`` for windowed aggregation.

Time predicates: ``time >/>=/</<= <expr>`` joined by ``AND``, where
``<expr>`` is an integer literal or ``current [- <integer>]`` (``current``
resolves to the column's latest timestamp, as in the paper's query).  The
grammar is deliberately tiny — this is the paper's workload language, not a
general SQL engine.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryError

_MAX_TIME = 2**62

_SELECT_RE = re.compile(
    r"^\s*select\s+(?P<projection>.+?)\s+from\s+(?P<path>[\w.\-]+)"
    r"(?:\s+where\s+(?P<where>.+?))?"
    r"(?:\s+group\s+by\s+\(\s*(?P<window>\d+)\s*\))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_AGG_RE = re.compile(r"^(?P<fn>\w+)\s*\(\s*(?:\*|[\w]+)\s*\)$")

_PREDICATE_RE = re.compile(
    r"^time\s*(?P<op>>=|<=|>|<)\s*(?P<expr>current(?:\s*-\s*\d+)?|\d+)$",
    re.IGNORECASE,
)

_VALUE_PREDICATE_RE = re.compile(
    r"^(?:value|v)\s*(?P<op>>=|<=|>|<|=|!=)\s*(?P<literal>-?\d+(?:\.\d+)?)$",
    re.IGNORECASE,
)

_VALUE_OPS = {
    ">": lambda v, x: v > x,
    ">=": lambda v, x: v >= x,
    "<": lambda v, x: v < x,
    "<=": lambda v, x: v <= x,
    "=": lambda v, x: v == x,
    "!=": lambda v, x: v != x,
}

_AGG_NAMES = {
    "count": "count",
    "sum": "sum",
    "avg": "avg",
    "min": "min_value",
    "max": "max_value",
    "first": "first",
    "last": "last",
}


@dataclass
class ParsedQuery:
    """A validated statement ready for execution."""

    device: str
    sensor: str
    aggregation: str | None  # AggregationResult attribute name, or None for *
    start: int | None  # None until `current` is resolved
    end: int | None
    start_is_current_minus: int | None  # offset when start references current
    end_is_current_minus: int | None
    group_window: int | None
    value_predicates: tuple[tuple[str, float], ...] = ()


def parse(statement: str) -> ParsedQuery:
    """Parse one statement; raises :class:`QueryError` on anything else."""
    match = _SELECT_RE.match(statement)
    if not match:
        raise QueryError(f"cannot parse statement: {statement!r}")
    path = match.group("path")
    if "." not in path:
        raise QueryError(f"path must be <device>.<sensor>, got {path!r}")
    device, sensor = path.rsplit(".", 1)

    projection = match.group("projection").strip()
    aggregation: str | None
    if projection == "*":
        aggregation = None
    else:
        agg_match = _AGG_RE.match(projection)
        if not agg_match:
            raise QueryError(f"unsupported projection {projection!r}")
        fn = agg_match.group("fn").lower()
        if fn not in _AGG_NAMES:
            raise QueryError(
                f"unknown aggregation {fn!r}; supported: {', '.join(_AGG_NAMES)}"
            )
        aggregation = _AGG_NAMES[fn]

    start: int | None = 0
    end: int | None = _MAX_TIME
    start_cur: int | None = None
    end_cur: int | None = None
    value_predicates: list[tuple[str, float]] = []
    where = match.group("where")
    if where:
        for raw in re.split(r"\s+and\s+", where, flags=re.IGNORECASE):
            value_predicate = _VALUE_PREDICATE_RE.match(raw.strip())
            if value_predicate:
                value_predicates.append(
                    (value_predicate.group("op"), float(value_predicate.group("literal")))
                )
                continue
            predicate = _PREDICATE_RE.match(raw.strip())
            if not predicate:
                raise QueryError(f"unsupported predicate {raw.strip()!r}")
            op = predicate.group("op")
            expr = predicate.group("expr").lower().replace(" ", "")
            if expr.startswith("current"):
                offset = int(expr[8:]) if len(expr) > 7 else 0
                # Stored as "subtract this from current for the half-open
                # bound": inclusive start = current - start_cur, exclusive
                # end = current - end_cur.
                if op == ">":
                    start_cur = offset - 1
                elif op == ">=":
                    start_cur = offset
                elif op == "<":
                    end_cur = offset
                else:  # <=
                    end_cur = offset - 1
            else:
                value = int(expr)
                if op == ">":
                    start = max(start, value + 1)
                elif op == ">=":
                    start = max(start, value)
                elif op == "<":
                    end = min(end, value)
                else:  # <=
                    end = min(end, value + 1)

    window = match.group("window")
    group_window = int(window) if window else None
    if group_window is not None and aggregation is None:
        raise QueryError("GROUP BY requires an aggregation projection")
    return ParsedQuery(
        device=device,
        sensor=sensor,
        aggregation=aggregation,
        start=start,
        end=end,
        start_is_current_minus=start_cur,
        end_is_current_minus=end_cur,
        group_window=group_window,
        value_predicates=tuple(value_predicates),
    )


def _filter_by_value(result, predicates: tuple[tuple[str, float], ...]):
    """Apply conjunctive value predicates to a raw query result."""
    from repro.iotdb.query import QueryResult

    checks = [(_VALUE_OPS[op], literal) for op, literal in predicates]
    ts = []
    vs = []
    for t, v in zip(result.timestamps, result.values):
        if all(check(v, literal) for check, literal in checks):
            ts.append(t)  # repro: allow(stats-accounting): value filter, not a sort
            vs.append(v)
    return QueryResult(timestamps=ts, values=vs, stats=result.stats)


class Session:
    """Statement-level access to one storage engine."""

    def __init__(self, engine) -> None:
        self.engine = engine

    def _resolve_range(self, parsed: ParsedQuery) -> tuple[int, int]:
        start, end = parsed.start, parsed.end
        if parsed.start_is_current_minus is not None or parsed.end_is_current_minus is not None:
            current = self.engine.latest_time(parsed.device, parsed.sensor)
            if current is None:
                raise QueryError(
                    f"'current' is undefined: no data for {parsed.device}.{parsed.sensor}"
                )
            if parsed.start_is_current_minus is not None:
                start = max(start, current - parsed.start_is_current_minus)
            if parsed.end_is_current_minus is not None:
                end = min(end, current - parsed.end_is_current_minus)
        if start >= end:
            raise QueryError(f"empty time range [{start}, {end})")
        return start, end

    def execute(self, statement: str):
        """Run one statement.

        Returns:
            * ``SELECT *`` → :class:`~repro.iotdb.query.QueryResult`;
            * aggregation → the scalar value;
            * aggregation with ``GROUP BY (w)`` → list of
              ``(window_start, value)`` tuples.
        """
        parsed = parse(statement)
        start, end = self._resolve_range(parsed)
        if parsed.value_predicates:
            # Value filters force the raw-scan path: page statistics cannot
            # answer "sum where v > x".
            raw = self.engine.query(parsed.device, parsed.sensor, start, end)
            filtered = _filter_by_value(raw, parsed.value_predicates)
            if parsed.aggregation is None:
                return filtered
            from repro.iotdb.aggregation import aggregate_from_points, aggregate_windows

            if parsed.group_window is not None:
                buckets = aggregate_windows(filtered, start, end, parsed.group_window)
                return [(b.start, b.result.get(parsed.aggregation)) for b in buckets]
            return aggregate_from_points(filtered).get(parsed.aggregation)
        if parsed.aggregation is None:
            return self.engine.query(parsed.device, parsed.sensor, start, end)
        if parsed.group_window is not None:
            buckets = self.engine.aggregate_windows(
                parsed.device, parsed.sensor, start, end, parsed.group_window
            )
            return [(b.start, b.result.get(parsed.aggregation)) for b in buckets]
        result = self.engine.aggregate(parsed.device, parsed.sensor, start, end)
        return result.get(parsed.aggregation)

    def insert(self, device: str, sensor: str, timestamp: int, value) -> None:
        """Insert one point (a single-point batch through the batch path)."""
        self.engine.write_batch(device, sensor, [timestamp], [value])

    def insert_batch(self, device: str, sensor: str, timestamps, values) -> None:
        """Insert a batch of points through the engine's true batch path."""
        self.engine.write_batch(device, sensor, timestamps, values)
