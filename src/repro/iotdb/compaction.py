"""Compaction: fold unsequence files back into sequence space.

The separation policy (paper §II, building on the authors' ICDE 2022
"Separation or not" study) deliberately lets very late points accumulate in
unsequence files whose time ranges overlap the sealed sequence files.  The
deferred cost is query-time merging across seq and unseq files; compaction
pays that cost once: for every column it k-way merges the selected sealed
files with the engine's overwrite semantics (unsequence beats sequence,
later files beat earlier ones) and rewrites the result as a single sealed
sequence file appended to the shard's file list.

Which files a pass merges is a pluggable :class:`CompactionPolicy`:

:class:`FullMergePolicy` (``config.compaction_policy = "full"``, default)
    merges *every* sealed file into one sequence file — maximum read
    amplification repair, maximum write amplification.

:class:`OverlapDrivenPolicy` (``"overlap"``)
    scores each unsequence file by how many sequence files its time range
    overlaps (the interval index's ``overlapping`` measure) and seeds the
    selection with files scoring at least
    ``config.compaction_overlap_threshold`` — the files queries actually
    pay to merge.  Low-overlap files are left in place: partial compaction
    that spends write I/O only where read amplification lives.

Partial compaction is only sound because the merged output is appended as
the shard's *freshest sequence file* and a write-order safety closure runs
the seed selection to fixpoint (:meth:`OverlapDrivenPolicy.select`):

- *efficacy*: a sequence file overlapping a selected unsequence file is
  pulled in (otherwise the query-time merge it causes would survive);
- *safety (a)*: a selected sequence file overlapping an unselected **later**
  sequence file pulls that later file in — the merged output is fresher
  than every surviving sequence file, so leaving the later file behind
  would flip the winner of their duplicate timestamps;
- *safety (b)*: a selected unsequence file overlapping an unselected
  **earlier** unsequence file pulls the earlier file in — surviving
  unsequence files are fresher than the merged output, so the stale
  earlier file would otherwise start winning.

Range overlap is a conservative proxy for "may share a timestamp"
(duplicates require intersecting ranges), so the closure can over-select
but never under-select; the policy contract tests assert query-result
equivalence before/after compaction under both policies.

After compaction the engine serves the same query results (asserted by the
equivalence tests), with every fully compacted region once again eligible
for the aggregation statistics fast path.  Per-pass decisions are exported
through ``repro.obs``: ``engine_compactions_total`` /
``engine_compaction_files_selected_total`` /
``engine_compaction_files_skipped_total``, all labelled by policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.iotdb.interval_index import IndexEntry
from repro.iotdb.separation import Space


@dataclass
class CompactionReport:
    """Outcome of one compaction pass (or an engine-wide aggregate)."""

    files_before: int
    files_after: int
    unseq_files_merged: int
    points_written: int
    seconds: float
    #: Scheduling policy that ran (``"full"`` / ``"overlap"``; aggregates
    #: over mixed policies join the distinct names with ``+``).
    policy: str = "full"
    #: Sealed files merged into the output file.
    files_selected: int = 0
    #: Sealed files the policy left in place.
    files_skipped: int = 0


@dataclass(frozen=True)
class CompactionSelection:
    """A policy's verdict over one shard's sealed-file entries."""

    #: ``file_id``s to merge (empty = the pass is a no-op).
    file_ids: frozenset = frozenset()
    #: The unsequence files whose overlap score seeded the selection.
    seed_ids: frozenset = frozenset()


class CompactionPolicy:
    """Decides which sealed files one compaction pass merges.

    Policies are pure functions over the shard's interval-index entries
    (write order preserved per space), so they are unit- and
    property-testable without a shard.  ``select`` runs under the shard
    lock; it must not touch the shard.
    """

    name = "abstract"

    def select(self, entries: list[IndexEntry]) -> CompactionSelection:
        raise NotImplementedError


class FullMergePolicy(CompactionPolicy):
    """Merge every sealed file into one sequence file (the original
    behaviour): a no-op only when at most one file exists and nothing
    lives in unsequence space."""

    name = "full"

    def select(self, entries: list[IndexEntry]) -> CompactionSelection:
        unseq = [e for e in entries if e.space == Space.UNSEQUENCE.value]
        if len(entries) <= 1 and not unseq:
            return CompactionSelection()
        ids = frozenset(e.file_id for e in entries)
        return CompactionSelection(
            file_ids=ids, seed_ids=frozenset(e.file_id for e in unseq)
        )


class OverlapDrivenPolicy(CompactionPolicy):
    """Merge only the unsequence files that queries pay for.

    An unsequence file's *overlap score* is the number of sequence files
    whose closed time range intersects its own — exactly the extra files a
    range query hitting it must open and merge.  Files scoring at least
    ``threshold`` seed the selection; the seed is then closed under the
    efficacy and write-order safety rules (module docstring) until a
    fixpoint, so merging the selection and appending the output as the
    freshest sequence file preserves every overwrite outcome.
    """

    name = "overlap"

    def __init__(self, threshold: int = 2) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold

    def select(self, entries: list[IndexEntry]) -> CompactionSelection:
        seq = [e for e in entries if e.space == Space.SEQUENCE.value]
        unseq = [e for e in entries if e.space == Space.UNSEQUENCE.value]

        seeds = {
            u.file_id
            for u in unseq
            if sum(1 for s in seq if s.overlaps_entry(u)) >= self.threshold
        }
        if not seeds:
            return CompactionSelection()

        selected = set(seeds)
        changed = True
        while changed:
            changed = False
            chosen_seq = [s for s in seq if s.file_id in selected]
            chosen_unseq = [u for u in unseq if u.file_id in selected]
            # Efficacy: take the sequence files the selected unsequence
            # files overlap — the merge queries currently pay for.
            for s in seq:
                if s.file_id in selected:
                    continue
                if any(s.overlaps_entry(u) for u in chosen_unseq):
                    selected.add(s.file_id)
                    changed = True
            # Safety (a): a later sequence file overlapping a selected
            # earlier one must come along (the output outranks it).
            for i, s in enumerate(seq):
                if s.file_id in selected:
                    continue
                if any(
                    x.file_id in selected and x.overlaps_entry(s)
                    for x in seq[:i]
                ):
                    selected.add(s.file_id)
                    changed = True
            # Safety (b): an earlier unsequence file overlapping a selected
            # later one must come along (it would outrank the output).
            for i, u in enumerate(unseq):
                if u.file_id in selected:
                    continue
                if any(
                    x.file_id in selected and x.overlaps_entry(u)
                    for x in unseq[i + 1 :]
                ):
                    selected.add(u.file_id)
                    changed = True
        return CompactionSelection(
            file_ids=frozenset(selected), seed_ids=frozenset(seeds)
        )


def policy_from_config(config) -> CompactionPolicy:
    """The policy ``config.compaction_policy`` names."""
    if config.compaction_policy == "overlap":
        return OverlapDrivenPolicy(config.compaction_overlap_threshold)
    return FullMergePolicy()


def compact(shard, policy: CompactionPolicy | None = None) -> CompactionReport:
    """Run one compaction pass over a shard's sealed files.

    Live memtables are untouched (IoTDB compacts sealed files only).  The
    ``policy`` (default: whatever ``shard.config.compaction_policy``
    names) picks the subset to merge; an empty selection is a no-op pass.
    Compaction is a per-shard operation: each storage group compacts its
    own sealed-file list under its own lock
    (:meth:`repro.iotdb.engine.StorageEngine.compact` fans out and
    aggregates the reports).
    """
    from repro.bench.timing import Timer

    if policy is None:
        policy = policy_from_config(shard.config)
    obs = shard.obs
    with shard._lock:
        return _compact_locked(shard, policy, obs, Timer)


def _compact_locked(shard, policy, obs, Timer) -> CompactionReport:
    # Snapshot: _swap_sealed edits the shard's list in place, so an alias
    # would see the post-compaction set.
    sealed = list(shard._sealed)
    # The index stores entries sorted by ending time; the policies' safety
    # rules reason about write order, so re-order per the sealed list.
    by_id = {e.file_id: e for e in shard._index.entries()}
    entries = [by_id[f.file_id] for f in sealed if f.file_id in by_id]
    selection = policy.select(entries)
    chosen = [f for f in sealed if f.file_id in selection.file_ids]
    skipped = len(sealed) - len(chosen)
    instruments = shard._instruments
    instruments.compactions.labels(policy=policy.name).inc()
    instruments.compaction_files_selected.labels(policy=policy.name).inc(len(chosen))
    instruments.compaction_files_skipped.labels(policy=policy.name).inc(skipped)
    if not chosen:
        return CompactionReport(
            files_before=len(sealed),
            files_after=len(sealed),
            unseq_files_merged=0,
            points_written=0,
            seconds=0.0,
            policy=policy.name,
            files_selected=0,
            files_skipped=skipped,
        )

    unseq_merged = sum(1 for f in chosen if f.space is Space.UNSEQUENCE)
    with Timer(obs.clock) as timer:
        # Freshness order matches the query executor: seq files then unseq
        # files, each in write order; later sources overwrite earlier ones.
        ordered = [f for f in chosen if f.space is Space.SEQUENCE] + [
            f for f in chosen if f.space is Space.UNSEQUENCE
        ]
        columns: dict[tuple[str, str], dict[int, object]] = {}
        dtypes: dict[tuple[str, str], object] = {}
        for f in ordered:
            reader = f.reader
            for device in reader.devices():
                for sensor in reader.sensors(device):
                    ts, vs = reader.read_chunk(device, sensor)
                    merged = columns.setdefault((device, sensor), {})
                    for t, v in zip(ts, vs):
                        merged[t] = v
                    dtypes[(device, sensor)] = reader.chunk_metadata(device, sensor).dtype

        writer, new_sealed = shard._new_sink(Space.SEQUENCE)
        points = 0
        for (device, sensor) in sorted(columns):
            merged = columns[(device, sensor)]
            ts = sorted(merged)
            vs = [merged[t] for t in ts]
            if not ts:
                continue
            writer.write_chunk(
                device,
                sensor,
                dtypes[(device, sensor)],
                ts,
                vs,
                time_encoding=shard.config.time_encoding,
                value_encoding=shard.config.value_encoding_for(dtypes[(device, sensor)]),
                page_size=shard.config.page_size,
                compression=shard.config.compression,
            )
            points += len(ts)
        writer.close()

        if points:
            # Seal the merged file *before* unlinking its inputs: a crash
            # between the two leaves overlapping sequence files, which the
            # query merge tolerates (later file wins) and the aggregation
            # fast path detects — duplicated work, never lost data.
            shard._seal_sink(new_sealed)
            shard.faults.crash_point("compact.swap", shard=shard.shard_id)
            shard._swap_sealed(chosen, new_sealed)
        else:
            shard._discard_sink(new_sealed)
            shard._swap_sealed(chosen, None)
    shard._instruments.compaction_seconds.observe(timer.seconds)
    return CompactionReport(
        files_before=len(sealed),
        files_after=len(sealed) - len(chosen) + (1 if points else 0),
        unseq_files_merged=unseq_merged,
        points_written=points,
        seconds=timer.seconds,
        policy=policy.name,
        files_selected=len(chosen),
        files_skipped=skipped,
    )
