"""Full-merge compaction: fold unsequence files back into sequence space.

The separation policy (paper §II, building on the authors' ICDE 2022
"Separation or not" study) deliberately lets very late points accumulate in
unsequence files so the in-memory sorter only sees *not-too-distant*
disorder.  The deferred cost is query-time merging across seq and unseq
files; compaction pays that cost once: for every column it k-way merges all
sealed files with the engine's overwrite semantics (unsequence beats
sequence, later files beat earlier ones), and rewrites the result as a
single sealed sequence file per device set.

After compaction the engine serves the same query results (asserted by the
equivalence tests) from one file, with every page once again eligible for
the aggregation statistics fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iotdb.separation import Space


@dataclass
class CompactionReport:
    """Outcome of one full-merge compaction pass."""

    files_before: int
    files_after: int
    unseq_files_merged: int
    points_written: int
    seconds: float


def compact(shard) -> CompactionReport:
    """Merge all sealed files of one shard into one sequence file.

    Live memtables are untouched (IoTDB compacts sealed files only).  A
    no-op when there is at most one sealed file and nothing unsequence.
    Compaction is a per-shard operation: each storage group compacts its
    own sealed-file list under its own lock
    (:meth:`repro.iotdb.engine.StorageEngine.compact` fans out and
    aggregates the reports).
    """
    from repro.bench.timing import Timer

    obs = shard.obs
    with shard._lock:
        return _compact_locked(shard, obs, Timer)


def _compact_locked(shard, obs, Timer) -> CompactionReport:
    # Snapshot: _replace_sealed swaps the shard's list in place, so an
    # alias would see the post-compaction set.
    sealed = list(shard._sealed)
    unseq_count = sum(1 for f in sealed if f.space is Space.UNSEQUENCE)
    if len(sealed) <= 1 and unseq_count == 0:
        return CompactionReport(
            files_before=len(sealed),
            files_after=len(sealed),
            unseq_files_merged=0,
            points_written=0,
            seconds=0.0,
        )

    with Timer(obs.clock) as timer:
        # Freshness order matches the query executor: seq files then unseq
        # files, each in write order; later sources overwrite earlier ones.
        ordered = [f for f in sealed if f.space is Space.SEQUENCE] + [
            f for f in sealed if f.space is Space.UNSEQUENCE
        ]
        columns: dict[tuple[str, str], dict[int, object]] = {}
        dtypes: dict[tuple[str, str], object] = {}
        for f in ordered:
            reader = f.reader
            for device in reader.devices():
                for sensor in reader.sensors(device):
                    ts, vs = reader.read_chunk(device, sensor)
                    merged = columns.setdefault((device, sensor), {})
                    for t, v in zip(ts, vs):
                        merged[t] = v
                    dtypes[(device, sensor)] = reader.chunk_metadata(device, sensor).dtype

        writer, new_sealed = shard._new_sink(Space.SEQUENCE)
        points = 0
        for (device, sensor) in sorted(columns):
            merged = columns[(device, sensor)]
            ts = sorted(merged)
            vs = [merged[t] for t in ts]
            if not ts:
                continue
            writer.write_chunk(
                device,
                sensor,
                dtypes[(device, sensor)],
                ts,
                vs,
                time_encoding=shard.config.time_encoding,
                value_encoding=shard.config.value_encoding_for(dtypes[(device, sensor)]),
                page_size=shard.config.page_size,
                compression=shard.config.compression,
            )
            points += len(ts)
        writer.close()

        if points:
            # Seal the merged file *before* unlinking its inputs: a crash
            # between the two leaves overlapping sequence files, which the
            # query merge tolerates (later file wins) and the aggregation
            # fast path detects — duplicated work, never lost data.
            shard._seal_sink(new_sealed)
            shard.faults.crash_point("compact.swap", shard=shard.shard_id)
            shard._replace_sealed([new_sealed])
        else:
            shard._discard_sink(new_sealed)
            shard._replace_sealed([])
    shard._instruments.compaction_seconds.observe(timer.seconds)
    return CompactionReport(
        files_before=len(sealed),
        files_after=1 if points else 0,
        unseq_files_merged=unseq_count,
        points_written=points,
        seconds=timer.seconds,
    )
