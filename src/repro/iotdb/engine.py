"""StorageEngine: the sharded front door tying the whole write path together.

The engine is a facade over a fixed set of storage groups — *shards*
(:class:`repro.iotdb.shard.StorageShard`).  Each shard owns a complete
write pipeline: its own :class:`SegmentedWal` pair, working/flushing
memtables, separation watermarks, and sealed-file list under its own lock.
A stable hash router (CRC-32 of the device id, modulo ``config.shards``)
dispatches every series to exactly one shard, so writes to different
devices proceed concurrently and a series always lands in the same shard
across restarts.

Write path (§V): a point is routed by its shard's separation policy to the
sequence or unsequence *working* memtable (optionally after a WAL append);
when a memtable crosses the flush threshold it transitions to *flushing*,
is sorted chunk-by-chunk with the configured sorter, encoded, and sealed
into an immutable TsFile (in memory by default, on disk under the shard's
``shard-NN/`` directory when ``data_dir`` is set).

Query path: a time-range query is answered by the single shard that owns
the device (series-hash routing makes the per-shard merge degenerate); the
shard merges its sealed files and live memtables, putting the sorter on
the query's critical path — the effect the paper's system experiments
measure.

Front door: construct engines through the two keyword-only factories —
:meth:`StorageEngine.create` for a fresh start (deletes any leftover WAL
segments) and :meth:`StorageEngine.open` to recover a persisted engine
after a restart or crash (each shard recovers its key prefix
independently).  The plain constructor survives as a deprecated shim of
``create``.

Versioned layouts: every persisted tree carries a CRC-framed
``meta/engine.json`` stamp (:mod:`repro.iotdb.meta`) naming its layout
version, backend kind, and shard count.  ``create`` writes version 1 (the
historical local directory tree) by default; ``create(version=2)`` — or
``config.engine_version = 2`` — selects the v2 layout, whose bytes are
addressed through a pluggable :class:`~repro.iotdb.backends.BlobStore`
(``backend=`` accepts any store; the default wraps ``data_dir`` in a
:class:`~repro.iotdb.backends.LocalDirStore`, making the v2-local tree
byte-identical to v1).  ``open`` dispatches on the stamp, not on the
config: an unversioned directory is inferred as v1 and stamped, a torn
stamp is rebuilt from what the access path proves, and a future or
malformed version is refused with a precise error (docs/STORAGE.md holds
the normative format and compatibility matrix).

Flush/compaction concurrency: with ``config.flush_workers > 0`` the
engine owns a shared :class:`~concurrent.futures.ThreadPoolExecutor` and
``drain_flushes``/``flush_all``/``compact`` fan out across shards on it,
so flushes of different shards overlap.  With the default ``0`` every
flush stays inline on the calling thread — fully deterministic, which the
``repro.faults`` crash harness relies on.

Lock hierarchy: ``StorageEngine._lock`` → ``StorageShard._lock`` →
{``MemTable._lock``, ``SegmentedWal._lock``, ``FaultInjector._lock``,
``MetricsRegistry._lock``}.  The engine lock only serialises whole-engine
fan-out operations (flush_all / drain / compact / close / recovery); the
write and query hot paths take only the owning shard's lock.
"""

from __future__ import annotations

import warnings
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.analysis.concurrency import create_lock
from repro.core.sorter import Sorter
from repro.errors import MetaCorruptionError, StorageError
from repro.faults.injector import NOOP_INJECTOR
from repro.iotdb.backends import BlobStore, LocalDirStore
from repro.iotdb.config import IoTDBConfig
from repro.iotdb.engine_metrics import EngineInstruments
from repro.iotdb.meta import (
    ENGINE_META_KEY,
    EngineMeta,
    check_supported_version,
    read_meta,
    write_meta,
)
from repro.iotdb.flush import FlushReport
from repro.iotdb.query import QueryResult, TimeRangeQueryExecutor
from repro.iotdb.separation import Space
from repro.iotdb.shard import StorageShard
from repro.obs import Observability, metrics_only
from repro.sorting.registry import get_sorter

#: Sentinel distinguishing "derive the store from config.data_dir" (the
#: constructor's historical behaviour) from an explicit ``None``/store.
_UNSET = object()


class _SeparationView:
    """Engine-wide view over the per-shard separation policies.

    Each shard routes with its own :class:`SeparationPolicy` (devices
    partition cleanly across shards, so per-shard watermarks are exactly
    the engine-wide watermarks restricted to that shard's devices).  This
    view keeps the old single-policy surface working: per-device calls
    delegate to the owning shard's policy, counters aggregate across all
    shards.
    """

    def __init__(self, engine: "StorageEngine") -> None:
        self._engine = engine

    @property
    def enabled(self) -> bool:
        return self._engine.config.separation_enabled

    def route(self, device: str, timestamp: int) -> Space:
        return self._engine.shard_for(device).separation.route(device, timestamp)

    def watermark(self, device: str) -> int | None:
        return self._engine.shard_for(device).separation.watermark(device)

    def update_watermark(self, device: str, max_flushed_time: int) -> None:
        self._engine.shard_for(device).separation.update_watermark(
            device, max_flushed_time
        )

    def routed_counts(self) -> dict[Space, int]:
        totals = {Space.SEQUENCE: 0, Space.UNSEQUENCE: 0}
        for shard in self._engine.shards:
            for space, count in shard.separation.routed_counts().items():
                totals[space] += count
        return totals

    @property
    def _watermarks(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for shard in self._engine.shards:
            merged.update(shard.separation._watermarks)
        return merged


class StorageEngine:
    """An in-process, sharded time-series store with a pluggable TVList sorter.

    Concurrency discipline: every series belongs to exactly one shard and
    each shard serialises its own write/flush/query/compaction paths under
    its shard lock; the engine lock above it only serialises whole-engine
    fan-out operations.  See the module docstring for the lock hierarchy.
    """

    def __init__(
        self,
        config: IoTDBConfig | None = None,
        sorter: Sorter | None = None,
        *,
        obs: Observability | None = None,
        faults=None,
        _from_factory: bool = False,
        _fresh: bool = True,
        _store=_UNSET,
        _version: int | None = None,
    ) -> None:
        if not _from_factory:
            warnings.warn(
                "constructing StorageEngine(...) directly is deprecated; use "
                "StorageEngine.create(...) for a fresh engine or "
                "StorageEngine.open(...) to recover an on-disk one",
                DeprecationWarning,
                stacklevel=2,
            )
        self.config = config if config is not None else IoTDBConfig()
        # Default: a per-engine metrics-only Observability, so describe()
        # always sits over a live registry.  Inject Observability() for
        # tracing too, or repro.obs.NOOP to disable metrics entirely.
        self.obs = obs if obs is not None else metrics_only()
        # Fault injection seam (repro.faults); the shared no-op costs one
        # method call per site.
        self.faults = faults if faults is not None else NOOP_INJECTOR
        if sorter is not None:
            self.sorter = sorter
        else:
            self.sorter = get_sorter(self.config.sorter, **self.config.sorter_options)
        self._lock = create_lock("StorageEngine._lock")
        self._instruments = EngineInstruments(self.obs.registry)
        self._executor = TimeRangeQueryExecutor(self.sorter, self.obs)
        if _store is _UNSET:
            # Historical behaviour: persistence over the local directory
            # (LocalDirStore creates it), pure in-memory without one.
            store = (
                LocalDirStore(self.config.data_dir)
                if self.config.data_dir is not None
                else None
            )
        else:
            store = _store
        #: Where the engine persists bytes (``None`` = pure in-memory).
        self.store: BlobStore | None = store
        #: The layout version this engine reads and writes.
        self.engine_version: int = (
            _version if _version is not None else self.config.engine_version
        )
        self._shards: tuple[StorageShard, ...] = tuple(
            StorageShard(
                shard_id,
                self.config,
                self.sorter,
                obs=self.obs,
                faults=self.faults,
                instruments=self._instruments,
                executor=self._executor,
                fresh=_fresh,
                store=store,
            )
            for shard_id in range(self.config.shards)
        )
        self.separation = _SeparationView(self)
        self._flush_pool: ThreadPoolExecutor | None = None
        if self.config.flush_workers > 0:
            self._flush_pool = ThreadPoolExecutor(
                max_workers=self.config.flush_workers,
                thread_name_prefix="repro-flush",
            )

    # -- the front door ------------------------------------------------------

    @classmethod
    def create(
        cls,
        config: IoTDBConfig | None = None,
        *,
        sorter: Sorter | None = None,
        obs: Observability | None = None,
        faults=None,
        version: int | None = None,
        backend: BlobStore | None = None,
    ) -> "StorageEngine":
        """A fresh engine (the fresh-start entry of the front door).

        Fresh-start semantics: any WAL segments left behind in the
        engine's backend are deleted — use :meth:`open` to recover them
        instead.  All dependencies are keyword-only: ``sorter`` overrides
        the configured sorter instance, ``obs`` injects an
        :class:`~repro.obs.Observability`, ``faults`` a
        :class:`~repro.faults.FaultInjector`.

        ``version`` selects the on-disk layout (default
        ``config.engine_version``): version 1 is the historical local
        directory tree and persists iff ``config.data_dir`` is set;
        version 2 addresses the same key layout through a pluggable
        :class:`~repro.iotdb.backends.BlobStore` — pass one as
        ``backend=``, or set ``config.data_dir`` to persist through a
        :class:`~repro.iotdb.backends.LocalDirStore` (byte-identical to
        the v1 tree).  Every persisted tree is stamped with a
        ``meta/engine.json`` record that :meth:`open` later dispatches on.
        """
        config = config if config is not None else IoTDBConfig()
        if version is None:
            version = config.engine_version
        if version not in (1, 2):
            raise StorageError(f"engine version must be 1 or 2, got {version!r}")
        if version == 1:
            if backend is not None:
                raise StorageError(
                    "engine version 1 is the local directory layout; it takes "
                    "a config.data_dir, not a backend= store (use version=2 "
                    "for pluggable backends)"
                )
            store = (
                LocalDirStore(config.data_dir)
                if config.data_dir is not None
                else None
            )
        else:
            if backend is not None and config.data_dir is not None:
                raise StorageError(
                    "pass either config.data_dir or backend= to "
                    "StorageEngine.create, not both"
                )
            if backend is None and config.data_dir is None:
                raise StorageError(
                    "engine version 2 persists through a backend: pass "
                    "backend= or set config.data_dir"
                )
            store = (
                backend if backend is not None else LocalDirStore(config.data_dir)
            )
        engine = cls(
            config,
            sorter,
            obs=obs,
            faults=faults,
            _from_factory=True,
            _store=store,
            _version=version,
        )
        if store is not None:
            write_meta(
                store,
                EngineMeta(version=version, backend=store.kind, shards=config.shards),
                faults=engine.faults,
            )
        return engine

    @classmethod
    def open(
        cls,
        config: IoTDBConfig,
        *,
        sorter: Sorter | None = None,
        obs: Observability | None = None,
        faults=None,
        backend: BlobStore | None = None,
    ) -> "StorageEngine":
        """Reopen a persisted engine after a restart (or crash).

        Dispatches on the tree's ``meta/engine.json`` stamp (never on
        ``config.engine_version``): a validated stamp selects its own
        layout version; an unversioned local directory is inferred as
        version 1 and stamped; an unversioned explicit backend is
        inferred as version 2 and stamped (a crash can land between the
        shard writes of ``create`` and the stamp); a torn or
        CRC-damaged stamp is rebuilt from what the access path proves;
        a well-framed stamp naming a future version, a different
        backend kind, or a different shard count is refused with a
        precise error.  Resolutions are counted on
        ``engine_meta_recoveries_total{outcome}``.

        Each shard then recovers its own ``shard-NN/`` key prefix
        independently (see
        :meth:`repro.iotdb.shard.StorageShard.recover`): sealed TsFiles
        are rebuilt, ``.part`` sinks discarded, WAL segments replayed,
        and separation watermarks re-derived.  The shard count must
        match what the tree was written with — the series router hashes
        over ``config.shards``, so reopening with a different count
        would make recovered series invisible.
        """
        if backend is not None:
            if config.data_dir is not None:
                raise StorageError(
                    "pass either config.data_dir or backend= to "
                    "StorageEngine.open, not both"
                )
            store, version, outcome = cls._resolve_store_meta(config, backend)
        else:
            if config.data_dir is None:
                raise StorageError(
                    "StorageEngine.open requires a data_dir configuration"
                )
            store = LocalDirStore(config.data_dir)
            version, outcome = cls._resolve_local_meta(config, store)
        engine = cls(
            config,
            sorter,
            obs=obs,
            faults=faults,
            _from_factory=True,
            _fresh=False,
            _store=store,
            _version=version,
        )
        engine._instruments.meta_recoveries.labels(outcome=outcome).inc()
        # A crash during a stamp's publish can leave a torn .part behind;
        # it was never the published stamp, so it is plain garbage.
        store.delete(ENGINE_META_KEY + ".part", missing_ok=True)
        if outcome != "validated":
            write_meta(
                store,
                EngineMeta(version=version, backend=store.kind, shards=config.shards),
                faults=engine.faults,
            )
        with engine._lock:
            for shard in engine._shards:
                shard.recover()
        return engine

    @staticmethod
    def _resolve_store_meta(
        config: IoTDBConfig, store: BlobStore
    ) -> tuple[BlobStore, int, str]:
        """Resolve the stamp of an explicit-backend tree (v2 only)."""
        try:
            meta = read_meta(store)
        except MetaCorruptionError:
            # A torn stamp is a crash artifact.  The tree reached us
            # through an explicit BlobStore, which only version 2 ever
            # writes — rebuild the stamp from that.
            return store, 2, "rebuilt-corrupt"
        if meta is None:
            # create() stamps after the shards initialise, so a crash in
            # between leaves an unversioned v2 tree.
            return store, 2, "stamped-unversioned"
        check_supported_version(meta.version)
        if meta.version == 1:
            raise StorageError(
                "this tree was written as engine version 1 (the local "
                "directory layout); open it through config.data_dir, not "
                "an explicit backend"
            )
        if meta.backend != store.kind:
            raise StorageError(
                f"engine meta records backend kind {meta.backend!r} but the "
                f"store passed to open is {store.kind!r}; refusing to mix "
                "backends"
            )
        if meta.shards != config.shards:
            raise StorageError(
                f"engine meta records {meta.shards} shards but "
                f"config.shards={config.shards}; reopen with the shard "
                "count the tree was written with"
            )
        return store, meta.version, "validated"

    @staticmethod
    def _resolve_local_meta(
        config: IoTDBConfig, store: BlobStore
    ) -> tuple[int, str]:
        """Resolve the stamp of a ``data_dir`` tree (v1 or v2-local).

        Unversioned directories predate the stamp: their shape is checked
        (shard-directory count, no stray root TsFiles) and they are
        inferred as version 1.  The v1 and v2-local layouts are
        byte-identical below ``meta/``, so a torn stamp costs nothing but
        a rebuild — the shard recovery path proves everything else.
        """
        data_dir = Path(config.data_dir)
        existing = sorted(p for p in data_dir.glob("shard-*") if p.is_dir())
        if existing and len(existing) != config.shards:
            raise StorageError(
                f"data_dir holds {len(existing)} shard directories but "
                f"config.shards={config.shards}; reopen with the shard "
                "count the directory was written with"
            )
        stray = sorted(data_dir.glob("*.tsfile")) + sorted(
            data_dir.glob("*.tsfile.part")
        )
        if stray:
            raise StorageError(
                f"unrecognised TsFile name {stray[0].name!r}: TsFiles "
                "live under per-shard shard-NN/ directories"
            )
        try:
            meta = read_meta(store)
        except MetaCorruptionError:
            # Crash artifact; the directory shape above already passed the
            # v1 checks, and v1/v2-local trees coincide — stamp v1.
            return 1, "rebuilt-corrupt"
        if meta is None:
            return 1, "stamped-unversioned"
        check_supported_version(meta.version)
        if meta.backend != store.kind:
            raise StorageError(
                f"engine meta records backend kind {meta.backend!r} but "
                f"data_dir trees are written through a 'local' store; "
                "refusing to mix backends"
            )
        if meta.shards != config.shards:
            raise StorageError(
                f"engine meta records {meta.shards} shards but "
                f"config.shards={config.shards}; reopen with the shard "
                "count the tree was written with"
            )
        return meta.version, "validated"

    # -- sharding ------------------------------------------------------------

    @property
    def shards(self) -> tuple[StorageShard, ...]:
        """The engine's storage groups, indexed by shard id (immutable)."""
        return self._shards

    def shard_for(self, device: str) -> StorageShard:
        """The shard owning ``device`` (stable series-hash routing).

        CRC-32 rather than the builtin ``hash``: the router must assign
        the same shard across processes and restarts, and ``hash(str)`` is
        salted per interpreter.
        """
        if len(self._shards) == 1:
            return self._shards[0]
        return self._shards[zlib.crc32(device.encode("utf-8")) % len(self._shards)]

    def _map_shards(self, fn) -> list:
        """Run ``fn(shard)`` over every shard; on the flush pool if one is
        configured (flushes of different shards overlap), inline otherwise.

        ``Future.result()`` re-raises whatever the worker raised — including
        :class:`~repro.errors.InjectedCrashError` (a ``BaseException``), so
        simulated crashes propagate identically in both modes.
        """
        if self._flush_pool is None or len(self._shards) == 1:
            return [fn(shard) for shard in self._shards]
        futures = [self._flush_pool.submit(fn, shard) for shard in self._shards]
        return [future.result() for future in futures]

    # -- write path ----------------------------------------------------------

    @property
    def flush_reports(self) -> list[FlushReport]:
        """Completed flush reports of every shard (shard-id order; each
        report carries its ``shard`` label)."""
        reports: list[FlushReport] = []
        for shard in self._shards:
            reports.extend(shard.flush_reports)
        return reports

    def write(self, device: str, sensor: str, timestamp: int, value) -> None:
        """Ingest one point; may trigger a synchronous flush.

        The WAL append is flushed before the memtable accepts the point,
        so a write is durable by the time this method returns.
        """
        self.shard_for(device).write(device, sensor, timestamp, value)

    def write_batch(self, device: str, sensor: str, timestamps, values) -> None:
        """Ingest a batch (the IoTDB-benchmark client's unit of work).

        The batch path: one shard-lock acquisition, one batched WAL append
        per space, one ``should_flush`` check per space at the end of the
        batch.  The ``engine.write_batch`` span reports the shard and the
        number of flushes the batch actually triggered.
        """
        if len(timestamps) != len(values):
            raise StorageError("timestamps and values lengths differ")
        shard = self.shard_for(device)
        with self.obs.span(
            "engine.write_batch",
            device=device,
            sensor=sensor,
            shard=shard.shard_id,
        ) as span:
            points, flushes = shard.write_batch(device, sensor, timestamps, values)
            span.set(points=points, flushes_triggered=flushes)

    def wal_stats(self) -> dict[str, int]:
        """Cumulative WAL append accounting summed over every shard.

        ``bytes_appended`` / ``flushes`` as in :meth:`StorageShard.wal_stats`;
        zeros when the WAL is disabled.
        """
        totals = {"bytes_appended": 0, "flushes": 0}
        for shard in self._shards:
            stats = shard.wal_stats()
            totals["bytes_appended"] += stats["bytes_appended"]
            totals["flushes"] += stats["flushes"]
        return totals

    # -- flushing --------------------------------------------------------------

    def drain_flushes(self) -> list[FlushReport]:
        """Flush every queued FLUSHING memtable across all shards.

        With ``flush_workers > 0`` the per-shard drains run concurrently on
        the shared pool (the asynchronous flush worker's job).
        """
        with self._lock:
            reports: list[FlushReport] = []
            for shard_reports in self._map_shards(lambda s: s.drain_flushes()):
                reports.extend(shard_reports)
            return reports

    def pending_flushes(self) -> int:
        """How many memtables are queued in the FLUSHING state (all shards)."""
        return sum(shard.pending_flushes() for shard in self._shards)

    def flush_all(self) -> list[FlushReport]:
        """Retire and flush every shard's working memtables (shutdown /
        checkpoint).  After this call no live memtable holds data."""
        with self._lock:
            reports: list[FlushReport] = []
            for shard_reports in self._map_shards(lambda s: s.flush_all()):
                reports.extend(shard_reports)
            return reports

    # -- query path ------------------------------------------------------------

    def query(self, device: str, sensor: str, start: int, end: int) -> QueryResult:
        """``SELECT * FROM device.sensor WHERE start <= time < end``.

        Served by the single shard that owns the device: series-hash
        routing means no other shard can hold points of this column, so
        the per-shard ``QueryResult`` merge is degenerate (one source).
        """
        return self.shard_for(device).query(device, sensor, start, end)

    def aggregate(self, device: str, sensor: str, start: int, end: int):
        """Aggregations over ``[start, end)``: count/sum/avg/min/max/first/last
        (the owning shard's statistics fast path applies unchanged)."""
        return self.shard_for(device).aggregate(device, sensor, start, end)

    def aggregate_windows(
        self, device: str, sensor: str, start: int, end: int, window: int
    ):
        """``GROUP BY time``: per-window aggregates over ``[start, end)``.

        The §VI-E use case ("the average speed of an engine in every
        minute") — executed over the merged, time-ordered query result, so
        every bucket sees exactly the freshest value per timestamp.
        """
        from repro.iotdb.aggregation import aggregate_windows

        return aggregate_windows(
            self.query(device, sensor, start, end), start, end, window
        )

    def latest_time(self, device: str, sensor: str) -> int | None:
        """Largest timestamp ever written for a column (benchmark helper)."""
        return self.shard_for(device).latest_time(device, sensor)

    # -- compaction ----------------------------------------------------------

    def compact(self, policy=None):
        """One compaction pass over every shard's sealed files.

        ``policy`` (a :class:`repro.iotdb.compaction.CompactionPolicy`)
        defaults to whatever ``config.compaction_policy`` names.  Each
        shard compacts independently (concurrently, when a flush pool is
        configured); the returned :class:`CompactionReport` aggregates the
        per-shard reports.
        """
        from repro.iotdb.compaction import CompactionReport

        with self.obs.span("engine.compact") as span:
            with self._lock:
                reports = self._map_shards(lambda s: s.compact(policy))
            policies = sorted({r.policy for r in reports})
            combined = CompactionReport(
                files_before=sum(r.files_before for r in reports),
                files_after=sum(r.files_after for r in reports),
                unseq_files_merged=sum(r.unseq_files_merged for r in reports),
                points_written=sum(r.points_written for r in reports),
                seconds=sum(r.seconds for r in reports),
                policy="+".join(policies) if policies else "full",
                files_selected=sum(r.files_selected for r in reports),
                files_skipped=sum(r.files_skipped for r in reports),
            )
            span.set(
                policy=combined.policy,
                files_before=combined.files_before,
                files_after=combined.files_after,
                files_selected=combined.files_selected,
                files_skipped=combined.files_skipped,
                points=combined.points_written,
            )
        return combined

    # -- lifecycle ---------------------------------------------------------------

    def sealed_file_count(self) -> dict[Space, int]:
        counts = {Space.SEQUENCE: 0, Space.UNSEQUENCE: 0}
        for shard in self._shards:
            for space, count in shard.sealed_file_count().items():
                counts[space] += count
        return counts

    def describe(self) -> dict:
        """Operator-facing snapshot of the whole engine's state.

        The engine-wide numeric fields are read straight from the metrics
        registry (the legacy keys are kept stable); per-shard snapshots
        ride along under ``"shards"`` and the full registry snapshot under
        ``"metrics"``.
        """
        shard_snapshots = [shard.snapshot() for shard in self._shards]
        working = {
            space.value: sum(
                snap["working_points"][space.value] for snap in shard_snapshots
            )
            for space in (Space.SEQUENCE, Space.UNSEQUENCE)
        }
        sealed = [entry for snap in shard_snapshots for entry in snap["sealed"]]
        flush_hist = self._instruments.flush_seconds
        flush_count = sum(child.count for _, child in flush_hist.children())
        flush_sum = sum(child.sum for _, child in flush_hist.children())
        return {
            "sorter": self.sorter.name,
            "points_written": int(self._instruments.points_written.value),
            "working_points": working,
            "pending_flushes": sum(
                snap["pending_flushes"] for snap in shard_snapshots
            ),
            "sealed_files": len(sealed),
            "sealed": sealed,
            "watermarks": dict(self.separation._watermarks),
            "shards": shard_snapshots,
            "flushes": {
                "seq": int(self._instruments.flushes_by_space["seq"].value),
                "unseq": int(self._instruments.flushes_by_space["unseq"].value),
                "mean_seconds": flush_sum / flush_count if flush_count else 0.0,
            },
            "metrics": self.obs.registry.as_dict(),
        }

    def close(self) -> None:
        """Flush everything, release file handles, stop the flush pool."""
        with self._lock:
            self._map_shards(lambda s: s.close())
        if self._flush_pool is not None:
            self._flush_pool.shutdown(wait=True)

    def recover_from_wal(self) -> int:
        """Replay every shard's WAL into its working memtables.

        Returns the number of replayed points.  Only meaningful on a fresh
        engine constructed over the same WAL buffers.
        """
        if not self.config.wal_enabled:
            raise StorageError("WAL is disabled in this configuration")
        with self._lock:
            return sum(shard.recover_from_wal() for shard in self._shards)
