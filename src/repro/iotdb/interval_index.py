"""Per-shard interval index over sealed TsFiles (unsequence-space pruning).

The separation policy (paper §II) routes very late points into unsequence
files whose time ranges overlap, so a time-range query otherwise pays to
open and merge *every* unseq file.  This module implements the structure
"Disk-Based Interval Indexes Under the Increasing Ending Time Assumption"
(PAPERS.md) suggests for exactly this shape of data: sealed files are
immutable and, per shard, are sealed with (weakly) increasing ending
times, so a table sorted by ending time answers stabbing/overlap queries
with one binary search plus a short suffix scan.

Structure
---------
:class:`IntervalIndex` keeps one entry per sealed file — ``(file_id,
space, min_time, max_time)`` — sorted by ``max_time``.  A query range
``[start, end)`` intersects a file iff ``max_time >= start`` and
``min_time < end``; files with ``max_time >= start`` form a *suffix* of
the sorted table (the increasing-ending-time property), found by binary
search.  The suffix scan early-terminates through ``_suffix_min_start``
(the smallest ``min_time`` at or after each position): once every
remaining file starts at or beyond ``end``, nothing further can overlap.

Persistence
-----------
``save_to`` writes the table as a small checksummed text blob next to the
shard's TsFiles — through whatever
:class:`~repro.iotdb.backends.BlobStore` the shard persists to (``save``
is the local-path veneer) — atomically (``.part`` + rename) and through the shard's
:class:`~repro.faults.FaultInjector` — fault sites ``index.write`` (every
byte written, torn-write capable) and ``index.swap`` (the rename).
``load`` raises :class:`~repro.errors.IndexCorruptionError` on any torn,
truncated, or bit-flipped file; recovery treats that — or any mismatch
with the sealed files actually on disk — as "rebuild from the TsFiles",
so a damaged index can cost a rebuild but never a wrong answer.
"""

from __future__ import annotations

import json
import zlib
from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path

from repro.errors import IndexCorruptionError

#: First line of a persisted index file.
MAGIC = "REPROIDX1"

#: Name of the index file inside a shard directory.
INDEX_FILE_NAME = "interval-index.json"


@dataclass(frozen=True, order=True)
class IndexEntry:
    """One sealed file's closed time range ``[min_time, max_time]``."""

    file_id: str
    space: str
    min_time: int
    max_time: int

    def intersects(self, start: int, end: int) -> bool:
        """Does this file's range intersect the query range ``[start, end)``?"""
        return self.max_time >= start and self.min_time < end

    def overlaps_entry(self, other: "IndexEntry") -> bool:
        """Closed-interval overlap between two files' ranges."""
        return self.min_time <= other.max_time and other.min_time <= self.max_time

    def to_json(self) -> dict:
        return {
            "file_id": self.file_id,
            "space": self.space,
            "min_time": self.min_time,
            "max_time": self.max_time,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "IndexEntry":
        return cls(
            file_id=str(obj["file_id"]),
            space=str(obj["space"]),
            min_time=int(obj["min_time"]),
            max_time=int(obj["max_time"]),
        )


class IntervalIndex:
    """Sorted-by-ending-time file table with an overlap stab structure.

    Not internally locked: an index belongs to exactly one
    :class:`~repro.iotdb.shard.StorageShard` and every access happens
    under that shard's lock (declared via the shard's ``GUARDED_BY``).
    """

    def __init__(self, entries=()) -> None:
        self._entries: list[IndexEntry] = []
        #: ``max_time`` per entry, parallel to ``_entries`` (bisect key).
        self._ends: list[int] = []
        #: ``min(min_time of entries[i:])`` — the suffix-scan early stop.
        self._suffix_min_start: list[int] = []
        #: Known file ids (O(1) ``covers`` checks on the query path).
        self._ids: set[str] = set()
        if entries:
            self.replace(entries)

    # -- mutation ----------------------------------------------------------

    def _rebuild(self) -> None:
        self._entries.sort(key=lambda e: (e.max_time, e.min_time, e.file_id))
        self._ends[:] = [e.max_time for e in self._entries]
        suffix: list[int] = [0] * len(self._entries)
        running: int | None = None
        for i in range(len(self._entries) - 1, -1, -1):
            start = self._entries[i].min_time
            running = start if running is None else min(running, start)
            suffix[i] = running
        self._suffix_min_start[:] = suffix
        self._ids.clear()
        self._ids.update(e.file_id for e in self._entries)

    def add(self, entry: IndexEntry) -> None:
        """Register one newly sealed file."""
        self._entries.append(entry)  # repro: allow(stats-accounting): index table, not a sort
        self._rebuild()

    def remove(self, file_ids) -> None:
        """Drop entries for files removed by compaction."""
        gone = set(file_ids)
        self._entries[:] = [e for e in self._entries if e.file_id not in gone]
        self._rebuild()

    def replace(self, entries) -> None:
        """Swap in a whole new table (recovery rebuild, full compaction)."""
        self._entries[:] = list(entries)
        self._rebuild()

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> tuple[IndexEntry, ...]:
        return tuple(self._entries)

    def covers(self, file_id: str) -> bool:
        """Is ``file_id`` known to the index?  (A file the index does not
        know must never be pruned — the executor opens it defensively.)"""
        return file_id in self._ids

    def candidates(self, start: int, end: int) -> set[str]:
        """File ids whose range intersects the query range ``[start, end)``.

        Binary search to the first entry with ``max_time >= start`` (the
        increasing-ending-time suffix), then scan it, stopping as soon as
        ``_suffix_min_start`` proves no remaining file begins before
        ``end``.  Exact: equals the brute-force overlap scan (the property
        suite pins this against randomized file sets).
        """
        if end <= start:
            return set()
        out: set[str] = set()
        i = bisect_left(self._ends, start)
        while i < len(self._entries):
            if self._suffix_min_start[i] >= end:
                break
            entry = self._entries[i]
            if entry.min_time < end:
                out.add(entry.file_id)
            i += 1
        return out

    def overlapping(self, min_time: int, max_time: int) -> list[IndexEntry]:
        """Entries whose closed range intersects ``[min_time, max_time]``
        (the compaction scheduler's overlap measure)."""
        if max_time < min_time:
            return []
        return [
            self._entries[i]
            for i in range(bisect_left(self._ends, min_time), len(self._entries))
            if self._entries[i].min_time <= max_time
        ]

    # -- persistence -------------------------------------------------------

    def _payload(self) -> str:
        return json.dumps(
            {"entries": [e.to_json() for e in self._entries]},
            sort_keys=True,
            separators=(",", ":"),
        )

    def save_to(self, store, key: str, *, faults=None) -> None:
        """Atomically persist the table into a blob store.

        Bytes stream to ``<key>.part`` first (through the injector's
        ``index.write`` site, so torn writes are simulatable), then the
        ``index.swap`` crash point fires and one ``rename_atomic``
        publishes the key.  A crash anywhere leaves either the old index
        or a torn ``.part`` — both of which recovery discards and
        rebuilds.
        """
        from repro.faults.injector import NOOP_INJECTOR

        injector = faults if faults is not None else NOOP_INJECTOR
        payload = self._payload()
        crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        blob = f"{MAGIC}\n{crc:08x}\n{payload}\n".encode("utf-8")
        part_key = key + ".part"
        handle = injector.wrap_file(store.open_write(part_key), site="index.write")
        try:
            handle.write(blob)
            handle.flush()
        finally:
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        injector.crash_point("index.swap", file=key.rsplit("/", 1)[-1])
        store.rename_atomic(part_key, key)

    def save(self, path: Path, *, faults=None) -> None:
        """:meth:`save_to` over the local directory holding ``path``
        (byte-identical to the historical direct-file writer)."""
        from repro.iotdb.backends.local import LocalDirStore

        path = Path(path)
        self.save_to(LocalDirStore(path.parent), path.name, faults=faults)

    @classmethod
    def _parse(cls, text: str, source) -> "IntervalIndex":
        parts = text.split("\n", 2)
        if len(parts) != 3 or parts[0] != MAGIC:
            raise IndexCorruptionError(f"bad index magic in {source}")
        crc_line, payload = parts[1], parts[2]
        if not payload.endswith("\n"):
            raise IndexCorruptionError(f"truncated index payload in {source}")
        payload = payload[:-1]
        try:
            expected = int(crc_line, 16)
        except ValueError as exc:
            raise IndexCorruptionError(
                f"bad index checksum line in {source}"
            ) from exc
        actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        if actual != expected:
            raise IndexCorruptionError(
                f"index checksum mismatch in {source}: "
                f"stored {expected:08x}, computed {actual:08x}"
            )
        try:
            obj = json.loads(payload)
            entries = [IndexEntry.from_json(e) for e in obj["entries"]]
        except (ValueError, KeyError, TypeError) as exc:
            raise IndexCorruptionError(
                f"bad index payload in {source}: {exc}"
            ) from exc
        return cls(entries)

    @classmethod
    def load_from(cls, store, key: str) -> "IntervalIndex":
        """Parse a persisted index from a blob store; any damage raises
        :class:`IndexCorruptionError` (the caller rebuilds instead)."""
        from repro.errors import BlobNotFoundError

        try:
            blob = store.get(key)
        except BlobNotFoundError as exc:
            raise IndexCorruptionError(f"unreadable index blob {key}: {exc}") from exc
        try:
            text = blob.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise IndexCorruptionError(f"unreadable index blob {key}: {exc}") from exc
        return cls._parse(text, key)

    @classmethod
    def load(cls, path: Path) -> "IntervalIndex":
        """Parse a persisted index file; any damage raises
        :class:`IndexCorruptionError` (the caller rebuilds instead)."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise IndexCorruptionError(f"unreadable index file {path}: {exc}") from exc
        return cls._parse(text, path)


def file_time_range(reader) -> tuple[int, int] | None:
    """A sealed file's closed time range over every column (None = empty)."""
    lo: int | None = None
    hi: int | None = None
    for device in reader.devices():
        for sensor in reader.sensors(device):
            meta = reader.chunk_metadata(device, sensor)
            if meta is None or meta.min_time is None:
                continue
            lo = meta.min_time if lo is None else min(lo, meta.min_time)
            hi = meta.max_time if hi is None else max(hi, meta.max_time)
    if lo is None or hi is None:
        return None
    return lo, hi


def entry_for_sealed(sealed) -> IndexEntry | None:
    """The index entry for one shard ``_SealedFile`` (None when empty)."""
    time_range = file_time_range(sealed.reader)
    if time_range is None:
        return None
    return IndexEntry(
        file_id=sealed.file_id,
        space=sealed.space.value,
        min_time=time_range[0],
        max_time=time_range[1],
    )


def build_entries(sealed_files) -> list[IndexEntry]:
    """Index entries for a shard's sealed-file list, in write order —
    the ground truth every load/validate path is checked against."""
    entries: list[IndexEntry] = []
    for sealed in sealed_files:
        entry = entry_for_sealed(sealed)
        if entry is not None:
            entries.append(entry)  # repro: allow(stats-accounting): index table, not a sort
    return entries
