"""Backward-Sort directly over a TVList's backing arrays (paper §V-C).

"We abstract the core part of the sorting algorithm as interfaces to reuse
the code ... Thereby, the facilities of TVList can be used directly."  In
IoTDB the sorter reads and writes TVList slots through index arithmetic
(``array = i // array_size``, ``offset = i % array_size``) rather than
copying into a flat buffer.  This module reproduces that design: a full
Backward-Sort (block quicksort + insertion cutoff + backward merge with an
overlap buffer) whose every element access goes through the deque layout.

It exists alongside the flatten-based :meth:`TVList.sort_in_place` so the
trade-off can be *measured* (``benchmarks/bench_ablation_tvlist.py``): in
Java the direct path avoids a copy; in CPython the div/mod per access costs
more than the flat copy saves — an honest constant-factor inversion worth
documenting, not hiding.
"""

from __future__ import annotations

from repro.core.block_size import DEFAULT_L0, DEFAULT_THETA
from repro.core.instrumentation import SortStats, TimedResult
from repro.iotdb.tvlist import TVList


class _TVListAccessor:
    """Index-arithmetic access to a TVList's (time, value) slots."""

    def __init__(self, tvlist: TVList) -> None:
        self._times = tvlist._time_arrays
        self._values = tvlist._value_arrays
        self._width = tvlist._array_size
        self.size = len(tvlist)

    def time(self, i: int) -> int:
        return self._times[i // self._width][i % self._width]

    def pair(self, i: int):
        arr, off = divmod(i, self._width)
        return self._times[arr][off], self._values[arr][off]

    def set_pair(self, i: int, t: int, v) -> None:
        arr, off = divmod(i, self._width)
        self._times[arr][off] = t
        self._values[arr][off] = v

    def swap(self, i: int, j: int) -> None:
        ai, oi = divmod(i, self._width)
        aj, oj = divmod(j, self._width)
        ti, vi = self._times[ai][oi], self._values[ai][oi]
        self._times[ai][oi] = self._times[aj][oj]
        self._values[ai][oi] = self._values[aj][oj]
        self._times[aj][oj] = ti
        self._values[aj][oj] = vi


def _insertion(acc: _TVListAccessor, lo: int, hi: int, stats: SortStats) -> None:
    comparisons = 0
    moves = 0
    for i in range(lo + 1, hi):
        key_t, key_v = acc.pair(i)
        j = i - 1
        comparisons += 1
        if acc.time(j) <= key_t:
            continue
        while j >= lo:
            tj, vj = acc.pair(j)
            if tj > key_t:
                acc.set_pair(j + 1, tj, vj)
                moves += 1
                j -= 1
                if j >= lo:
                    comparisons += 1
            else:
                break
        acc.set_pair(j + 1, key_t, key_v)
        moves += 1
    stats.comparisons += comparisons
    stats.moves += moves


def _quicksort(acc: _TVListAccessor, lo: int, hi: int, stats: SortStats) -> None:
    """Middle-pivot Hoare quicksort on ``[lo, hi)`` with insertion cutoff."""
    comparisons = 0
    moves = 0
    stack = [(lo, hi - 1)]
    while stack:
        left, right = stack.pop()
        while right - left + 1 > 32:
            pivot = acc.time((left + right) >> 1)
            i, j = left - 1, right + 1
            while True:
                i += 1
                comparisons += 1
                while acc.time(i) < pivot:
                    i += 1
                    comparisons += 1
                j -= 1
                comparisons += 1
                while acc.time(j) > pivot:
                    j -= 1
                    comparisons += 1
                if i >= j:
                    break
                acc.swap(i, j)
                moves += 3
            if j - left < right - j - 1:
                stack.append((j + 1, right))
                right = j
            else:
                stack.append((left, j))
                left = j + 1
        if right > left:
            _insertion(acc, left, right + 1, stats)
    stats.comparisons += comparisons
    stats.moves += moves


def _merge_block(acc: _TVListAccessor, w_start: int, s: int, stats: SortStats) -> None:
    """Backward-merge block ``[w_start, s)`` into the sorted suffix at ``s``."""
    n = acc.size
    stats.comparisons += 1
    if acc.time(s - 1) <= acc.time(s):
        stats.merges += 1
        return
    block_max = acc.time(s - 1)
    # Overlap length into the suffix (linear probe is fine: Q is small).
    u = 0
    while s + u < n and acc.time(s + u) < block_max:
        u += 1
        stats.comparisons += 1
    buf = [acc.pair(s + k) for k in range(u)]
    stats.moves += u
    stats.note_extra_space(u)
    k = s + u - 1
    i = s - 1
    j = u - 1
    comparisons = 0
    moves = 0
    while j >= 0 and i >= w_start:
        ti, vi = acc.pair(i)
        comparisons += 1
        if buf[j][0] >= ti:
            acc.set_pair(k, *buf[j])
            j -= 1
        else:
            acc.set_pair(k, ti, vi)
            i -= 1
        moves += 1
        k -= 1
    while j >= 0:
        acc.set_pair(k, *buf[j])
        j -= 1
        k -= 1
        moves += 1
    stats.comparisons += comparisons
    stats.moves += moves
    stats.merges += 1
    stats.overlap_total += u


def backward_sort_tvlist_inplace(
    tvlist: TVList, theta: float = DEFAULT_THETA, l0: int = DEFAULT_L0
) -> TimedResult:
    """Run Backward-Sort through the TVList accessor, never flattening.

    Mirrors Algorithm 1 end-to-end: sample the empirical IIR through the
    accessor to pick ``L``, quicksort each block in place, and backward-merge
    the blocks with an overlap-sized buffer.
    """
    import time as _time

    stats = SortStats()
    start = _time.perf_counter()
    acc = _TVListAccessor(tvlist)
    n = acc.size
    if n > 1 and not tvlist.is_sorted:
        # Set block size via down-sampled boundary probes (Algorithm 1, 1-8).
        size = l0
        loops = 0
        while size <= n:
            pairs = 0
            inverted = 0
            for i in range(0, n - size, size):
                pairs += 1
                if acc.time(i) > acc.time(i + size):
                    inverted += 1
            stats.scanned_points += pairs
            stats.comparisons += pairs
            loops += 1
            if pairs == 0 or inverted / pairs < theta:
                break
            size *= 2
        stats.block_size_loops = loops
        block = min(size, n)
        stats.block_size = block

        if block <= 1:
            _insertion(acc, 0, n, stats)
        elif block >= n:
            _quicksort(acc, 0, n, stats)
        else:
            bounds = [i * block for i in range(max(1, n // block))]
            bounds.append(n)
            stats.block_count = len(bounds) - 1
            for b in range(len(bounds) - 1):
                _quicksort(acc, bounds[b], bounds[b + 1], stats)
            for b in range(len(bounds) - 2, 0, -1):
                _merge_block(acc, bounds[b - 1], bounds[b], stats)
        tvlist._sorted = True
    return TimedResult(seconds=_time.perf_counter() - start, stats=stats)
