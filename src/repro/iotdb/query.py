"""Time-range queries over memtables and sealed TsFiles (paper §V-C, §VI-A2).

"For querying, the search needs to be based on an ordered time series" —
the working memtable's TVList must be sorted before it can serve a range
scan, and that sort is on the query's critical path ("The query process in
IoTDB takes the lock and blocks the write process", §VI-D1).  The paper's
query-throughput experiment measures precisely this cost, so
:class:`QueryResult` carries the sort seconds separately.

Merge semantics across sources follow IoTDB's overwrite rule: for duplicate
timestamps the *freshest* source wins, with freshness ordered
``seq files < unseq files < flushing memtables < working memtable``
(and within file lists, write order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.instrumentation import SortStats
from repro.core.sorter import Sorter
from repro.errors import QueryError
from repro.iotdb.memtable import MemTable
from repro.iotdb.tsfile import TsFileReader
from repro.iotdb.tvlist import dedupe_sorted
from repro.obs import NOOP, Observability


@dataclass
class QueryStats:
    """Cost breakdown of one time-range query."""

    sort_seconds: float = 0.0
    total_seconds: float = 0.0
    points_scanned: int = 0
    points_returned: int = 0
    sources_visited: int = 0
    #: Sealed files actually opened (consulted) for this query.
    files_opened: int = 0
    #: Sealed files the interval index proved disjoint from the range.
    files_pruned: int = 0
    sort_stats: SortStats = field(default_factory=SortStats)


@dataclass
class QueryResult:
    """Points of ``SELECT * WHERE start <= time < end`` plus cost stats."""

    timestamps: list[int]
    values: list
    stats: QueryStats

    def __len__(self) -> int:
        return len(self.timestamps)


class TimeRangeQueryExecutor:
    """Executes range scans against an engine's current source set."""

    def __init__(self, sorter: Sorter, obs: Observability = NOOP) -> None:
        self._sorter = sorter
        self._obs = obs

    def execute(
        self,
        device: str,
        sensor: str,
        start: int,
        end: int,
        seq_readers: list[TsFileReader] | None = None,
        unseq_readers: list[TsFileReader] | None = None,
        flushing_memtables: list[MemTable] = (),
        working_memtable: MemTable | None = None,
        *,
        seq_files=None,
        unseq_files=None,
        index=None,
    ) -> QueryResult:
        """Gather, sort, merge and deduplicate points from every source.

        Sealed files arrive either as bare readers (``seq_readers`` /
        ``unseq_readers``) or as ``(file_id, reader)`` pairs
        (``seq_files`` / ``unseq_files``).  With an
        :class:`~repro.iotdb.interval_index.IntervalIndex` injected via
        ``index``, the executor opens only the files whose
        ``[min_time, max_time]`` intersects ``[start, end)`` — files the
        index proves disjoint are counted in ``stats.files_pruned`` and
        never read.  A file the index does not know is always opened
        (defensive: pruning may skip work, never data).
        """
        from repro.bench.timing import Timer

        if start >= end:
            raise QueryError(f"empty time range [{start}, {end})")
        if seq_files is None:
            seq_files = [(None, reader) for reader in (seq_readers or [])]
        if unseq_files is None:
            unseq_files = [(None, reader) for reader in (unseq_readers or [])]
        obs = self._obs
        stats = QueryStats()
        merged: dict[int, object] = {}
        candidate_ids = index.candidates(start, end) if index is not None else None

        with Timer(obs.clock) as total_timer:
            # Freshness order: later sources overwrite earlier ones.
            for file_id, reader in (*seq_files, *unseq_files):
                if (
                    candidate_ids is not None
                    and file_id is not None
                    and file_id not in candidate_ids
                    and index.covers(file_id)
                ):
                    stats.files_pruned += 1
                    continue
                stats.files_opened += 1
                ts, vs = reader.query_range(device, sensor, start, end)
                if ts:
                    stats.sources_visited += 1
                    stats.points_scanned += len(ts)
                    for t, v in zip(ts, vs):
                        merged[t] = v

            for memtable in (*flushing_memtables, working_memtable):
                if memtable is None:
                    continue
                tvlist = memtable.chunk(device, sensor)
                if tvlist is None or len(tvlist) == 0:
                    continue
                stats.sources_visited += 1
                ts, vs, timed = tvlist.get_sorted_arrays(
                    self._sorter, obs=obs, site="query", series=f"{device}.{sensor}"
                )
                stats.sort_seconds += timed.seconds
                stats.sort_stats.merge(timed.stats)
                stats.points_scanned += len(ts)
                ts, vs = dedupe_sorted(ts, vs)
                for t, v in zip(ts, vs):
                    if start <= t < end:
                        merged[t] = v

            out_t = sorted(merged)
            out_v = [merged[t] for t in out_t]
        stats.points_returned = len(out_t)
        stats.total_seconds = total_timer.seconds
        return QueryResult(timestamps=out_t, values=out_v, stats=stats)
