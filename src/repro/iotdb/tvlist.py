"""TVList — IoTDB's in-memory buffer of <T, V> pairs (paper §V-B).

A TVList stores one sensor's points as parallel *lists of fixed-size
arrays* ("a common compromise ... to allocate contiguous block memory,
similar to the design pattern of Deque, to achieve a trade-off between
memory utilization and memory access").  Appends fill the tail array and
allocate a new one when full; random access decomposes an index into
(array, offset).

Sorting: a TVList tracks whether appends ever went back in time.  The sort
entry points materialise the (time, value) pairs into flat arrays, run the
configured :class:`~repro.core.sorter.Sorter`, and write back — IoTDB sorts
in place over the backing arrays through the same index arithmetic; the
flatten/write-back here costs the same for every algorithm, so relative
comparisons are preserved (DESIGN.md §4).

``get_sorted_arrays`` is the *query* path: it never mutates the list (IoTDB
clones the working TVList for queries).  ``sort_in_place`` is the *flush*
path.  Both report sort timing and operation counts.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.instrumentation import SortStats, TimedResult
from repro.core.sorter import Sorter
from repro.errors import InvalidParameterError
from repro.iotdb.config import TSDataType


class TVList:
    """Append-only list of (timestamp, value) pairs in arrival order.

    Subclasses (one per :class:`TSDataType`, mirroring IoTDB's DoubleTVList
    etc.) override :meth:`_validate_value`; this base class accepts any
    value.
    """

    dtype: TSDataType | None = None

    def __init__(self, array_size: int = 32) -> None:
        if array_size < 1:
            raise InvalidParameterError(f"array_size must be >= 1, got {array_size}")
        self._array_size = array_size
        self._time_arrays: list[list[int]] = []
        self._value_arrays: list[list] = []
        self._size = 0
        self._max_time_seen: int | None = None
        self._min_time_seen: int | None = None
        self._sorted = True

    # -- ingestion ---------------------------------------------------------

    def put(self, timestamp: int, value) -> None:
        """Append one point; tracks whether arrival order stayed sorted."""
        self._validate_value(value)
        offset = self._size % self._array_size
        if offset == 0:
            self._time_arrays.append([0] * self._array_size)
            self._value_arrays.append([None] * self._array_size)
        self._time_arrays[-1][offset] = timestamp
        self._value_arrays[-1][offset] = value
        self._size += 1
        if self._max_time_seen is not None and timestamp < self._max_time_seen:
            self._sorted = False
        if self._max_time_seen is None or timestamp > self._max_time_seen:
            self._max_time_seen = timestamp
        if self._min_time_seen is None or timestamp < self._min_time_seen:
            self._min_time_seen = timestamp

    def put_all(self, timestamps, values) -> None:
        """Append many points (lengths must match)."""
        if len(timestamps) != len(values):
            raise InvalidParameterError("timestamps and values lengths differ")
        for t, v in zip(timestamps, values):
            self.put(t, v)

    def _validate_value(self, value) -> None:
        """Subclass hook: reject values of the wrong type."""

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def is_sorted(self) -> bool:
        """True when appends never went back in time."""
        return self._sorted

    @property
    def max_time(self) -> int | None:
        """Largest timestamp ingested so far (None when empty)."""
        return self._max_time_seen

    @property
    def min_time(self) -> int | None:
        """Smallest timestamp ingested so far (None when empty)."""
        return self._min_time_seen

    def overlaps(self, start: int, end: int) -> bool:
        """True when any ingested timestamp could fall in ``[start, end)``."""
        if self._size == 0:
            return False
        return self._min_time_seen < end and self._max_time_seen >= start

    def get_time(self, index: int) -> int:
        self._check_index(index)
        return self._time_arrays[index // self._array_size][index % self._array_size]

    def get_value(self, index: int):
        self._check_index(index)
        return self._value_arrays[index // self._array_size][index % self._array_size]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for TVList of size {self._size}")

    def __iter__(self) -> Iterator[tuple[int, object]]:
        for i in range(self._size):
            yield self.get_time(i), self.get_value(i)

    def timestamps(self) -> list[int]:
        """Flat copy of all timestamps in arrival order."""
        out: list[int] = []
        full, tail = divmod(self._size, self._array_size)
        for arr in self._time_arrays[:full]:
            out.extend(arr)
        if tail:
            out.extend(self._time_arrays[full][:tail])
        return out

    def values(self) -> list:
        """Flat copy of all values in arrival order."""
        out: list = []
        full, tail = divmod(self._size, self._array_size)
        for arr in self._value_arrays[:full]:
            out.extend(arr)
        if tail:
            out.extend(self._value_arrays[full][:tail])
        return out

    def memory_slots(self) -> int:
        """Allocated slots (>= size): the deque trade-off made visible."""
        return len(self._time_arrays) * self._array_size

    # -- sorting -----------------------------------------------------------

    def get_sorted_arrays(
        self, sorter: Sorter, *, obs=None, site: str = "query"
    ) -> tuple[list[int], list, TimedResult]:
        """Query path: sorted copies of (times, values) without mutation.

        Already-sorted lists skip the sort entirely (IoTDB checks the same
        flag); the returned :class:`TimedResult` then reports zero cost.
        ``obs``/``site`` flow through to :meth:`Sorter.timed_sort` so the
        sort lands in the span tree and the per-sorter metrics.
        """
        ts = self.timestamps()
        vs = self.values()
        if self._sorted:
            return ts, vs, TimedResult(seconds=0.0, stats=SortStats())
        ts, vs = dedupe_arrival(ts, vs)
        timed = sorter.timed_sort(ts, vs, obs=obs, site=site)
        return ts, vs, timed

    def sort_in_place(
        self, sorter: Sorter, *, obs=None, site: str = "flush"
    ) -> TimedResult:
        """Flush path: sort the backing arrays, returning timing + counters.

        Duplicate timestamps are collapsed (last arrival wins) *before* the
        sort, physically shrinking the list — see :func:`dedupe_arrival` for
        why this must happen pre-sort.
        """
        if self._sorted:
            return TimedResult(seconds=0.0, stats=SortStats())
        ts = self.timestamps()
        vs = self.values()
        ts, vs = dedupe_arrival(ts, vs)
        timed = sorter.timed_sort(ts, vs, obs=obs, site=site)
        self._shrink_to(len(ts))
        self._write_back(ts, vs)
        self._sorted = True
        return timed

    def _shrink_to(self, size: int) -> None:
        if size == self._size:
            return
        self._size = size
        arrays = -(-size // self._array_size)
        del self._time_arrays[arrays:]
        del self._value_arrays[arrays:]

    def _write_back(self, ts: list[int], vs: list) -> None:
        for i in range(self._size):
            arr, off = divmod(i, self._array_size)
            self._time_arrays[arr][off] = ts[i]
            self._value_arrays[arr][off] = vs[i]


def dedupe_arrival(ts: list[int], vs: list) -> tuple[list[int], list]:
    """Collapse duplicate timestamps in *arrival-order* arrays, last write wins.

    Must run **before** the sort: several registry sorters (Backward-Sort's
    block quicksort included) are unstable, so once a tie group has been
    through them the arrival order is gone and "keep the last element of the
    tie" — what :func:`dedupe_sorted` does — resolves the overwrite to an
    arbitrary value.  Collapsing first means the sorter only ever sees
    unique keys, so stability stops mattering.  Survivors keep their
    original relative order.
    """
    last: dict[int, int] = {}
    for i, t in enumerate(ts):
        last[t] = i
    if len(last) == len(ts):
        return ts, vs
    keep = sorted(last.values())  # repro: allow(stats-accounting): O(k log k) dedupe index sort, not a point sort
    return [ts[i] for i in keep], [vs[i] for i in keep]  # repro: allow(parallel-arrays): dedupe, not a sort


def dedupe_sorted(ts: list[int], vs: list) -> tuple[list[int], list]:
    """Collapse duplicate timestamps, keeping the *last* written value.

    IoTDB semantics: re-writing a timestamp overwrites the previous value;
    the duplicate is resolved when the sorted run is materialised (flush or
    query).  Requires ``ts`` sorted *and* tie groups in arrival order —
    which an unstable sorter destroys, so unsorted arrays must go through
    :func:`dedupe_arrival` before the sort; this post-sort pass then only
    handles duplicates that were appended already-in-order.
    """
    if not ts:
        return ts, vs
    out_t: list[int] = []
    out_v: list = []
    for i in range(len(ts)):
        if out_t and out_t[-1] == ts[i]:  # repro: allow(stats-accounting): dedupe, not a sort
            out_v[-1] = vs[i]  # repro: allow(stats-accounting): dedupe, not a sort
        else:
            out_t.append(ts[i])  # repro: allow(stats-accounting, parallel-arrays): dedupe, not a sort
            out_v.append(vs[i])
    return out_t, out_v
