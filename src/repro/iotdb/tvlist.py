"""TVList — IoTDB's in-memory buffer of <T, V> pairs (paper §V-B).

A TVList stores one sensor's points as parallel *lists of fixed-size
arrays* ("a common compromise ... to allocate contiguous block memory,
similar to the design pattern of Deque, to achieve a trade-off between
memory utilization and memory access").  Appends fill the tail array and
allocate a new one when full; random access decomposes an index into
(array, offset).

Sorting: a TVList tracks whether appends ever went back in time.  The sort
entry points materialise the (time, value) pairs into flat arrays, run the
configured :class:`~repro.core.sorter.Sorter`, and write back — IoTDB sorts
in place over the backing arrays through the same index arithmetic; the
flatten/write-back here costs the same for every algorithm, so relative
comparisons are preserved (DESIGN.md §4).

Column storage is pluggable per subclass: the base class backs both columns
with plain Python lists, while the typed subclasses in
:mod:`repro.iotdb.typed_tvlists` declare :data:`array.array` typecodes
(``'q'`` for int64 times and integer values, ``'d'`` for float values) so a
column is one contiguous typed buffer per backing array.  Bulk operations —
:meth:`TVList.put_all`, :meth:`TVList._write_back` — move whole slices
between the flat arrays and the backing arrays instead of decomposing every
index through ``divmod``.

``get_sorted_arrays`` is the *query* path: it never mutates the list (IoTDB
clones the working TVList for queries).  ``sort_in_place`` is the *flush*
path.  Both report sort timing and operation counts.
"""

from __future__ import annotations

from array import array
from typing import ClassVar, Iterator

from repro.core.instrumentation import SortStats, TimedResult
from repro.core.sorter import Sorter
from repro.errors import InvalidParameterError
from repro.iotdb.config import TSDataType


class TVList:
    """Append-only list of (timestamp, value) pairs in arrival order.

    Subclasses (one per :class:`TSDataType`, mirroring IoTDB's DoubleTVList
    etc.) override :meth:`_validate_value`; this base class accepts any
    value.
    """

    dtype: TSDataType | None = None

    #: ``array.array`` typecode backing the time / value columns; ``None``
    #: keeps the column as a plain Python list (accepts any value).  The
    #: typed subclasses in :mod:`repro.iotdb.typed_tvlists` set these so a
    #: numeric column is one contiguous typed buffer per backing array.
    _TIME_TYPECODE: ClassVar[str | None] = None
    _VALUE_TYPECODE: ClassVar[str | None] = None

    def __init__(self, array_size: int = 32) -> None:
        if array_size < 1:
            raise InvalidParameterError(f"array_size must be >= 1, got {array_size}")
        self._array_size = array_size
        self._time_arrays: list = []
        self._value_arrays: list = []
        self._size = 0
        self._max_time_seen: int | None = None
        self._min_time_seen: int | None = None
        self._sorted = True

    # -- backing-array storage --------------------------------------------

    def _new_time_array(self):
        """One fixed-size backing array for the time column."""
        if self._TIME_TYPECODE is None:
            return [0] * self._array_size
        return array(self._TIME_TYPECODE, (0,)) * self._array_size

    def _new_value_array(self):
        """One fixed-size backing array for the value column."""
        if self._VALUE_TYPECODE is None:
            return [None] * self._array_size
        return array(self._VALUE_TYPECODE, (0,)) * self._array_size

    def _as_time_buffer(self, ts):
        """A slice-assignable buffer matching the time-column storage."""
        if self._TIME_TYPECODE is None:
            return ts if isinstance(ts, list) else list(ts)
        return array(self._TIME_TYPECODE, ts)

    def _as_value_buffer(self, vs):
        """A slice-assignable buffer matching the value-column storage."""
        if self._VALUE_TYPECODE is None:
            return vs if isinstance(vs, list) else list(vs)
        return array(self._VALUE_TYPECODE, vs)

    # -- ingestion ---------------------------------------------------------

    def put(self, timestamp: int, value) -> None:
        """Append one point; tracks whether arrival order stayed sorted."""
        self._validate_value(value)
        offset = self._size % self._array_size
        if offset == 0:
            self._time_arrays.append(self._new_time_array())
            self._value_arrays.append(self._new_value_array())
        self._time_arrays[-1][offset] = timestamp
        self._value_arrays[-1][offset] = value
        self._size += 1
        if self._max_time_seen is not None and timestamp < self._max_time_seen:
            self._sorted = False
        if self._max_time_seen is None or timestamp > self._max_time_seen:
            self._max_time_seen = timestamp
        if self._min_time_seen is None or timestamp < self._min_time_seen:
            self._min_time_seen = timestamp

    def put_all(self, timestamps, values) -> None:
        """Append many points at once — the bulk ingest path.

        All-or-nothing on validation: every value is validated *before* any
        mutation, so a bad value mid-batch leaves the list untouched (the
        memtable's atomic ``write_batch`` relies on this).  The batch is
        slice-filled into whole backing arrays, and the min/max/sorted
        bookkeeping is updated once per batch rather than per point.
        """
        n = len(timestamps)
        if n != len(values):
            raise InvalidParameterError("timestamps and values lengths differ")
        if n == 0:
            return
        for value in values:
            self._validate_value(value)
        tbuf = self._as_time_buffer(timestamps)
        vbuf = self._as_value_buffer(values)
        asize = self._array_size
        pos = 0
        while pos < n:
            offset = self._size % asize
            if offset == 0:
                self._time_arrays.append(self._new_time_array())
                self._value_arrays.append(self._new_value_array())
            take = min(asize - offset, n - pos)
            self._time_arrays[-1][offset : offset + take] = tbuf[pos : pos + take]
            self._value_arrays[-1][offset : offset + take] = vbuf[pos : pos + take]
            self._size += take
            pos += take
        if self._sorted:
            # The list stays sorted only if the batch itself never goes back
            # in time and starts at or after everything seen so far.  ``prev``
            # tracks the running max, which *is* the previous element while
            # the scan stays non-decreasing.
            prev = self._max_time_seen
            for t in timestamps:
                if prev is not None and t < prev:
                    self._sorted = False
                    break
                prev = t
        mn = min(timestamps)
        mx = max(timestamps)
        if self._max_time_seen is None or mx > self._max_time_seen:
            self._max_time_seen = mx
        if self._min_time_seen is None or mn < self._min_time_seen:
            self._min_time_seen = mn

    def _validate_value(self, value) -> None:
        """Subclass hook: reject values of the wrong type."""

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def is_sorted(self) -> bool:
        """True when appends never went back in time."""
        return self._sorted

    @property
    def max_time(self) -> int | None:
        """Largest timestamp ingested so far (None when empty)."""
        return self._max_time_seen

    @property
    def min_time(self) -> int | None:
        """Smallest timestamp ingested so far (None when empty)."""
        return self._min_time_seen

    def overlaps(self, start: int, end: int) -> bool:
        """True when any ingested timestamp could fall in ``[start, end)``."""
        if self._size == 0:
            return False
        return self._min_time_seen < end and self._max_time_seen >= start

    def get_time(self, index: int) -> int:
        self._check_index(index)
        return self._time_arrays[index // self._array_size][index % self._array_size]

    def get_value(self, index: int):
        self._check_index(index)
        return self._value_arrays[index // self._array_size][index % self._array_size]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for TVList of size {self._size}")

    def __iter__(self) -> Iterator[tuple[int, object]]:
        for i in range(self._size):
            yield self.get_time(i), self.get_value(i)

    def timestamps(self) -> list[int]:
        """Flat copy of all timestamps in arrival order."""
        out: list[int] = []
        full, tail = divmod(self._size, self._array_size)
        for arr in self._time_arrays[:full]:
            out.extend(arr)
        if tail:
            out.extend(self._time_arrays[full][:tail])
        return out

    def values(self) -> list:
        """Flat copy of all values in arrival order."""
        out: list = []
        full, tail = divmod(self._size, self._array_size)
        for arr in self._value_arrays[:full]:
            out.extend(arr)
        if tail:
            out.extend(self._value_arrays[full][:tail])
        return out

    def memory_slots(self) -> int:
        """Allocated slots (>= size): the deque trade-off made visible."""
        return len(self._time_arrays) * self._array_size

    # -- sorting -----------------------------------------------------------

    def get_sorted_arrays(
        self, sorter: Sorter, *, obs=None, site: str = "query", series=None
    ) -> tuple[list[int], list, TimedResult]:
        """Query path: sorted copies of (times, values) without mutation.

        Already-sorted lists skip the sort entirely (IoTDB checks the same
        flag); the returned :class:`TimedResult` then reports zero cost.
        ``obs``/``site``/``series`` flow through to :meth:`Sorter.timed_sort`
        so the sort lands in the span tree and the per-sorter metrics, and a
        block-size-caching sorter can key its cache by series.
        """
        ts = self.timestamps()
        vs = self.values()
        if self._sorted:
            return ts, vs, TimedResult(seconds=0.0, stats=SortStats())
        ts, vs = dedupe_arrival(ts, vs)
        timed = sorter.timed_sort(ts, vs, obs=obs, site=site, series=series)
        return ts, vs, timed

    def sort_in_place(
        self, sorter: Sorter, *, obs=None, site: str = "flush", series=None
    ) -> TimedResult:
        """Flush path: sort the backing arrays, returning timing + counters.

        Duplicate timestamps are collapsed (last arrival wins) *before* the
        sort, physically shrinking the list — see :func:`dedupe_arrival` for
        why this must happen pre-sort.  ``series`` identifies the column for
        sorters that cache state across consecutive sorts of the same series
        (:class:`~repro.core.backward_sort.BackwardSorter`'s block-size
        cache).
        """
        if self._sorted:
            return TimedResult(seconds=0.0, stats=SortStats())
        ts = self.timestamps()
        vs = self.values()
        ts, vs = dedupe_arrival(ts, vs)
        timed = sorter.timed_sort(ts, vs, obs=obs, site=site, series=series)
        self._shrink_to(len(ts))
        self._write_back(ts, vs)
        self._sorted = True
        return timed

    def _shrink_to(self, size: int) -> None:
        if size == self._size:
            return
        self._size = size
        arrays = -(-size // self._array_size)
        del self._time_arrays[arrays:]
        del self._value_arrays[arrays:]

    def _write_back(self, ts: list[int], vs: list) -> None:
        """Copy the flat sorted arrays back over the backing arrays.

        Whole-array slice assignment instead of a per-element ``divmod``
        loop: each backing array receives its span of the flat arrays in
        one bulk copy (a C-speed ``memcpy`` for typed columns).
        """
        tbuf = self._as_time_buffer(ts)
        vbuf = self._as_value_buffer(vs)
        asize = self._array_size
        for index in range(len(self._time_arrays)):
            lo = index * asize
            hi = min(lo + asize, self._size)
            if lo >= hi:
                break
            self._time_arrays[index][0 : hi - lo] = tbuf[lo:hi]
            self._value_arrays[index][0 : hi - lo] = vbuf[lo:hi]


def dedupe_arrival(ts: list[int], vs: list) -> tuple[list[int], list]:
    """Collapse duplicate timestamps in *arrival-order* arrays, last write wins.

    Must run **before** the sort: several registry sorters (Backward-Sort's
    block quicksort included) are unstable, so once a tie group has been
    through them the arrival order is gone and "keep the last element of the
    tie" — what :func:`dedupe_sorted` does — resolves the overwrite to an
    arbitrary value.  Collapsing first means the sorter only ever sees
    unique keys, so stability stops mattering.  Survivors keep their
    original relative order.
    """
    last: dict[int, int] = {}
    for i, t in enumerate(ts):
        last[t] = i
    if len(last) == len(ts):
        return ts, vs
    keep = sorted(last.values())  # repro: allow(stats-accounting): O(k log k) dedupe index sort, not a point sort
    return [ts[i] for i in keep], [vs[i] for i in keep]  # repro: allow(parallel-arrays): dedupe, not a sort


def dedupe_sorted(ts: list[int], vs: list) -> tuple[list[int], list]:
    """Collapse duplicate timestamps, keeping the *last* written value.

    IoTDB semantics: re-writing a timestamp overwrites the previous value;
    the duplicate is resolved when the sorted run is materialised (flush or
    query).  Requires ``ts`` sorted *and* tie groups in arrival order —
    which an unstable sorter destroys, so unsorted arrays must go through
    :func:`dedupe_arrival` before the sort; this post-sort pass then only
    handles duplicates that were appended already-in-order.
    """
    if not ts:
        return ts, vs
    out_t: list[int] = []
    out_v: list = []
    for i in range(len(ts)):
        if out_t and out_t[-1] == ts[i]:  # repro: allow(stats-accounting): dedupe, not a sort
            out_v[-1] = vs[i]  # repro: allow(stats-accounting): dedupe, not a sort
        else:
            out_t.append(ts[i])  # repro: allow(stats-accounting, parallel-arrays): dedupe, not a sort
            out_v.append(vs[i])
    return out_t, out_v
