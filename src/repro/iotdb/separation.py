"""The separation policy: sequence vs unsequence routing (paper §II).

"Since separation policy is applied in Apache IoTDB, any timestamp smaller
than the current flushing time will be ingested into the unsequence
memtable.  Therefore, extreme delays like system recovery from failure are
not what we focus on."

The policy tracks, per device, the largest timestamp already flushed to
sequence space (the *flush watermark*).  Incoming points at or below the
watermark go to the unsequence memtable; everything else stays in sequence
space.  This is the mechanism that makes the *not-too-distant* assumption
hold for the data Backward-Sort actually sees: by construction, the
sequence memtable only ever contains points delayed less than one
memtable's span.
"""

from __future__ import annotations

from enum import Enum


class Space(Enum):
    SEQUENCE = "seq"
    UNSEQUENCE = "unseq"


class SeparationPolicy:
    """Per-device flush-watermark router."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._watermarks: dict[str, int] = {}
        self._routed = {Space.SEQUENCE: 0, Space.UNSEQUENCE: 0}

    def route(self, device: str, timestamp: int) -> Space:
        """Decide which memtable an incoming point belongs to."""
        if not self.enabled:
            self._routed[Space.SEQUENCE] += 1
            return Space.SEQUENCE
        watermark = self._watermarks.get(device)
        if watermark is not None and timestamp <= watermark:
            self._routed[Space.UNSEQUENCE] += 1
            return Space.UNSEQUENCE
        self._routed[Space.SEQUENCE] += 1
        return Space.SEQUENCE

    def watermark(self, device: str) -> int | None:
        """The device's current flush watermark (None before any seq flush)."""
        return self._watermarks.get(device)

    def update_watermark(self, device: str, max_flushed_time: int) -> None:
        """Advance the watermark after a sequence-space flush."""
        current = self._watermarks.get(device)
        if current is None or max_flushed_time > current:
            self._watermarks[device] = max_flushed_time

    def routed_counts(self) -> dict[Space, int]:
        """How many points went to each space (observability for benches)."""
        return dict(self._routed)
