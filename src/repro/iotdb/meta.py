"""Engine-version metadata: the ``meta/engine.json`` stamp.

Every persisted engine tree carries one small CRC-framed blob at the key
``meta/engine.json`` recording which layout *version* wrote it, which
*backend* kind it was written through, and the *shard* count the series
router hashed over.  ``StorageEngine.open`` dispatches on it (the
version-aware open pattern of ontologia's RFC 0009): version 1 is the
historical local directory tree, version 2 the same key layout addressed
through any :class:`~repro.iotdb.backends.BlobStore`.  Trees written
before this stamp existed carry no meta at all; ``open`` infers version 1
from the directory shape and stamps it.

Framing (normative; docs/STORAGE.md §"meta/engine.json"):

.. code-block:: text

    REPROMETA1\\n{crc32:08x}\\n{payload}\\n

— the same three-line checksummed text frame as ``interval-index.json``,
where ``payload`` is a compact sorted-key JSON object
``{"backend": str, "shards": int, "version": int}`` and the CRC-32 covers
exactly the payload bytes.  The stamp is written atomically: bytes stream
to ``meta/engine.json.part`` through the ``meta.write`` fault site, the
``meta.swap`` crash point fires, then one ``rename_atomic`` publishes it.
A crash anywhere leaves the old stamp or a torn ``.part`` — never a
half-written published stamp.

Damage discipline: framing/CRC damage raises
:class:`~repro.errors.MetaCorruptionError` (a crash artifact — the caller
rebuilds the stamp from what its access path proves); a well-framed
payload with unsupported fields (future version, unknown backend string)
raises a precise :class:`~repro.errors.StorageError` and is never
rewritten — refusing is the only safe answer to metadata from a newer
engine.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass

from repro.errors import BlobNotFoundError, MetaCorruptionError, StorageError

#: Key of the engine-version stamp in every backend's namespace.
ENGINE_META_KEY = "meta/engine.json"

#: First line of the stamp's frame.
META_MAGIC = "REPROMETA1"

#: Layout versions this build can open (the compatibility matrix rows in
#: docs/STORAGE.md).
SUPPORTED_VERSIONS = (1, 2)


@dataclass(frozen=True)
class EngineMeta:
    """One engine tree's identity: layout version, backend kind, shards."""

    version: int
    backend: str
    shards: int

    def payload(self) -> str:
        return json.dumps(
            {"backend": self.backend, "shards": self.shards, "version": self.version},
            sort_keys=True,
            separators=(",", ":"),
        )


def encode_meta(meta: EngineMeta) -> bytes:
    """The stamp's full framed bytes (magic, CRC line, payload line)."""
    payload = meta.payload()
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{META_MAGIC}\n{crc:08x}\n{payload}\n".encode("utf-8")


def decode_meta(blob: bytes, source: str = ENGINE_META_KEY) -> EngineMeta:
    """Parse a stamp.

    Framing or checksum damage raises :class:`MetaCorruptionError`
    (rebuildable crash artifact); a well-framed payload whose fields are
    malformed or unsupported raises :class:`StorageError` with a precise
    message (refuse, never misread).
    """
    try:
        text = blob.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise MetaCorruptionError(f"undecodable engine meta in {source}: {exc}") from exc
    parts = text.split("\n", 2)
    if len(parts) != 3 or parts[0] != META_MAGIC:
        raise MetaCorruptionError(f"bad engine-meta magic in {source}")
    crc_line, payload = parts[1], parts[2]
    if not payload.endswith("\n"):
        raise MetaCorruptionError(f"truncated engine-meta payload in {source}")
    payload = payload[:-1]
    try:
        expected = int(crc_line, 16)
    except ValueError as exc:
        raise MetaCorruptionError(f"bad engine-meta checksum line in {source}") from exc
    actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise MetaCorruptionError(
            f"engine-meta checksum mismatch in {source}: "
            f"stored {expected:08x}, computed {actual:08x}"
        )
    try:
        obj = json.loads(payload)
    except ValueError as exc:
        # CRC-valid but not JSON cannot come from a crash mid-write (the
        # CRC covers the payload); treat it as corruption all the same —
        # there is nothing here safe to believe.
        raise MetaCorruptionError(f"bad engine-meta payload in {source}: {exc}") from exc
    if not isinstance(obj, dict):
        raise StorageError(f"engine meta in {source} is not an object: {obj!r}")
    version = obj.get("version")
    backend = obj.get("backend")
    shards = obj.get("shards")
    if not isinstance(version, int) or isinstance(version, bool):
        raise StorageError(
            f"engine meta in {source} carries a malformed version field "
            f"{version!r}; refusing to guess the on-disk layout"
        )
    if not isinstance(backend, str) or not backend:
        raise StorageError(
            f"engine meta in {source} carries a malformed backend field {backend!r}"
        )
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise StorageError(
            f"engine meta in {source} carries a malformed shards field {shards!r}"
        )
    return EngineMeta(version=version, backend=backend, shards=shards)


def write_meta(store, meta: EngineMeta, *, faults=None) -> None:
    """Atomically stamp ``meta`` into ``store`` at :data:`ENGINE_META_KEY`.

    Bytes stream to ``<key>.part`` through the injector's ``meta.write``
    site (torn writes simulatable), the ``meta.swap`` crash point fires,
    then one ``rename_atomic`` publishes the stamp.
    """
    from repro.faults.injector import NOOP_INJECTOR

    injector = faults if faults is not None else NOOP_INJECTOR
    part_key = ENGINE_META_KEY + ".part"
    handle = injector.wrap_file(store.open_write(part_key), site="meta.write")
    try:
        handle.write(encode_meta(meta))
        handle.flush()
    finally:
        try:
            handle.close()
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
    injector.crash_point("meta.swap", key=ENGINE_META_KEY)
    store.rename_atomic(part_key, ENGINE_META_KEY)


def read_meta(store) -> EngineMeta | None:
    """The stamp in ``store``, ``None`` when absent (an unversioned tree).

    Raises :class:`MetaCorruptionError` / :class:`StorageError` per
    :func:`decode_meta`'s damage discipline.
    """
    try:
        blob = store.get(ENGINE_META_KEY)
    except BlobNotFoundError:
        return None
    return decode_meta(blob)


def check_supported_version(version: int) -> None:
    """Refuse versions this build cannot open, with a precise error."""
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise StorageError(
            f"on-disk engine version {version} is not supported by this build "
            f"(supported: {supported}); upgrade the library to open this tree"
        )
