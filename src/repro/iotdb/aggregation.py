"""Aggregation queries over time ranges (count / sum / avg / min / max / first / last).

The paper's evaluation uses the plain time-range query because it "is one of
the simplest query and the basis of the aggregation functions" (§VI-A2).
This module builds those aggregation functions on top of the same machinery,
with the optimisation that makes the TsFile page statistics worth storing:
a page *fully covered* by the query range contributes through its
pre-computed statistics without being decoded, while partially covered
pages and live memtable points fall back to raw scanning.

Correctness requires the overwrite semantics of the engine: a timestamp
rewritten in a fresher source must not be double-counted.  The executor
therefore only takes the statistics fast path when no fresher source can
overlap the page's time span; otherwise it degrades to the merged raw scan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import QueryError
from repro.iotdb.query import QueryResult

#: The supported aggregation function names.
AGGREGATIONS = ("count", "sum", "avg", "min_value", "max_value", "first", "last")


@dataclass
class AggregationResult:
    """All aggregates of one (device, sensor, range) computed in one pass.

    ``None`` value-aggregates mean the range was empty (count == 0) or the
    column is non-numeric (sum/avg/min/max undefined for TEXT/BOOLEAN).
    """

    count: int
    sum: float | None
    avg: float | None
    min_value: object
    max_value: object
    first: object
    last: object
    pages_skipped: int = 0  # pages answered from statistics alone
    pages_decoded: int = 0

    def get(self, name: str):
        if name not in AGGREGATIONS:
            raise QueryError(
                f"unknown aggregation {name!r}; available: {', '.join(AGGREGATIONS)}"
            )
        return getattr(self, name)


def aggregate_from_points(result: QueryResult) -> AggregationResult:
    """Aggregate a merged raw query result (the always-correct slow path)."""
    ts, vs = result.timestamps, result.values
    if not ts:
        return AggregationResult(
            count=0, sum=None, avg=None, min_value=None, max_value=None,
            first=None, last=None,
        )
    numeric = isinstance(vs[0], (int, float)) and not isinstance(vs[0], bool)
    total = float(sum(vs)) if numeric else None
    return AggregationResult(
        count=len(ts),
        sum=total,
        avg=total / len(ts) if total is not None else None,
        min_value=min(vs) if numeric else None,
        max_value=max(vs) if numeric else None,
        first=vs[0],
        last=vs[-1],
    )


def aggregate_sealed_chunk(
    reader,
    device: str,
    sensor: str,
    start: int,
    end: int,
) -> AggregationResult:
    """Aggregate one sealed file's chunk, skipping fully covered pages.

    Only safe when this chunk is the sole source for the range (no
    overwrites possible); :meth:`StorageEngine.aggregate` checks that
    precondition before calling.
    """
    chunk = reader.chunk_metadata(device, sensor)
    empty = AggregationResult(
        count=0, sum=None, avg=None, min_value=None, max_value=None,
        first=None, last=None,
    )
    if chunk is None:
        return empty
    count = 0
    total: float | None = 0.0
    min_v = None
    max_v = None
    first = None
    last = None
    skipped = 0
    decoded = 0
    for page in chunk.pages:
        stats = page.stats
        if stats.max_time < start or stats.min_time >= end:
            continue
        covered = start <= stats.min_time and stats.max_time < end
        if covered and stats.sum_value is not None:
            # Fast path: the page's statistics are the page's aggregate.
            count += stats.count
            if total is not None:
                total += stats.sum_value
            min_v = stats.min_value if min_v is None else min(min_v, stats.min_value)
            max_v = stats.max_value if max_v is None else max(max_v, stats.max_value)
            if first is None:
                first = stats.first_value
            last = stats.last_value
            skipped += 1
            continue
        ts, vs = reader._read_page(chunk, page)
        decoded += 1
        for t, v in zip(ts, vs):
            if not start <= t < end:
                continue
            count += 1
            numeric = isinstance(v, (int, float)) and not isinstance(v, bool)
            if numeric and total is not None:
                total += float(v)
                min_v = v if min_v is None else min(min_v, v)
                max_v = v if max_v is None else max(max_v, v)
            elif not numeric:
                total = None
            if first is None:
                first = v
            last = v
    if count == 0:
        return empty
    return AggregationResult(
        count=count,
        sum=total,
        avg=total / count if total is not None else None,
        min_value=min_v,
        max_value=max_v,
        first=first,
        last=last,
        pages_skipped=skipped,
        pages_decoded=decoded,
    )


@dataclass
class WindowAggregate:
    """One ``GROUP BY time`` bucket: ``[start, end)`` plus its aggregates."""

    start: int
    end: int
    result: AggregationResult


def aggregate_windows(
    result: QueryResult, start: int, end: int, window: int
) -> list[WindowAggregate]:
    """Bucket a merged raw query result into fixed time windows.

    This is the paper's §VI-E motivating computation — "the average speed of
    an engine in every minute" — which is only correct over time-ordered
    data: the bucketing below walks the merged result once and relies on its
    sort order.  Buckets with no points report ``count == 0``.
    """
    if window < 1:
        raise QueryError(f"window must be >= 1, got {window}")
    if start >= end:
        raise QueryError(f"empty time range [{start}, {end})")
    buckets: list[WindowAggregate] = []
    ts, vs = result.timestamps, result.values
    idx = 0
    n = len(ts)
    for lo in range(start, end, window):
        hi = min(lo + window, end)
        bucket_t: list[int] = []
        bucket_v: list = []
        while idx < n and ts[idx] < hi:
            if ts[idx] >= lo:  # repro: allow(stats-accounting): window bucketing, not a sort
                bucket_t.append(ts[idx])  # repro: allow(stats-accounting): window bucketing, not a sort
                bucket_v.append(vs[idx])
            idx += 1
        buckets.append(
            WindowAggregate(
                start=lo,
                end=hi,
                result=aggregate_from_points(
                    QueryResult(timestamps=bucket_t, values=bucket_v, stats=result.stats)
                ),
            )
        )
    return buckets


def is_close(a: float | None, b: float | None, rel: float = 1e-9) -> bool:
    """Tolerant float comparison used by the aggregation equivalence tests."""
    if a is None or b is None:
        return a is b
    return math.isclose(a, b, rel_tol=rel, abs_tol=1e-12)
