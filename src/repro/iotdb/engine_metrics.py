"""The storage engine's registered metrics instruments.

The engine's server-side metrics live in a
:class:`repro.obs.MetricsRegistry`; :class:`EngineInstruments` registers
them once and pre-resolves the per-space children, so the hot path pays one
method call per event (no label hashing per write).  The deprecated
``EngineMetrics`` attribute façade that used to live here has been removed —
read the registry (``engine.obs.registry``), the exporters, or
``engine.flush_reports`` instead.

Instrument catalogue (see docs/OBSERVABILITY.md):

======================================  =========  ==================
name                                    kind       labels
======================================  =========  ==================
``engine_points_written_total``         counter    —
``engine_queries_total``                counter    —
``engine_flushes_total``                counter    ``space``
``engine_flush_seconds``                histogram  ``space``
``engine_flush_sort_seconds``           histogram  ``space``
``engine_query_seconds``                histogram  —
``engine_wal_replayed_points_total``    counter    —
``engine_compaction_seconds``           histogram  —
``engine_shard_points_written_total``   counter    ``shard``
``engine_shard_points_flushed_total``   counter    ``shard``
``engine_shard_flushes_total``          counter    ``shard``
``engine_query_files_opened_total``     counter    —
``engine_index_files_pruned_total``     counter    —
``engine_index_recoveries_total``       counter    ``outcome``
``engine_meta_recoveries_total``        counter    ``outcome``
``engine_compactions_total``            counter    ``policy``
``engine_compaction_files_selected_total``  counter  ``policy``
``engine_compaction_files_skipped_total``   counter  ``policy``
======================================  =========  ==================
"""

from __future__ import annotations

_SPACE_LABEL = ("space",)
_SHARD_LABEL = ("shard",)

#: Label values of the two memtable spaces (match ``Space.value``).
SPACES = ("seq", "unseq")


class EngineInstruments:
    """The engine's registered instruments with pre-resolved children."""

    def __init__(self, registry) -> None:
        self.points_written = registry.counter(
            "engine_points_written_total", "points ingested through write()"
        )
        self.queries = registry.counter(
            "engine_queries_total", "time-range queries and aggregations executed"
        )
        self.flushes = registry.counter(
            "engine_flushes_total", "memtable flushes per space", _SPACE_LABEL
        )
        self.flush_seconds = registry.histogram(
            "engine_flush_seconds", "total flush pipeline duration", _SPACE_LABEL
        )
        self.flush_sort_seconds = registry.histogram(
            "engine_flush_sort_seconds", "sort share of each flush", _SPACE_LABEL
        )
        self.query_seconds = registry.histogram(
            "engine_query_seconds", "end-to-end time-range query duration"
        )
        self.wal_replayed = registry.counter(
            "engine_wal_replayed_points_total", "points replayed from the WAL"
        )
        self.compaction_seconds = registry.histogram(
            "engine_compaction_seconds", "duration of compaction passes"
        )
        self.query_files_opened = registry.counter(
            "engine_query_files_opened_total",
            "sealed files opened (consulted) by time-range queries",
        )
        self.index_files_pruned = registry.counter(
            "engine_index_files_pruned_total",
            "sealed files the interval index pruned from query reads",
        )
        self.index_recoveries = registry.counter(
            "engine_index_recoveries_total",
            "interval-index recoveries on open, by outcome "
            "(validated / rebuilt-missing / rebuilt-corrupt / rebuilt-stale)",
            ("outcome",),
        )
        self.meta_recoveries = registry.counter(
            "engine_meta_recoveries_total",
            "engine-meta (meta/engine.json) resolutions on open, by outcome "
            "(validated / stamped-unversioned / rebuilt-corrupt)",
            ("outcome",),
        )
        self.compactions = registry.counter(
            "engine_compactions_total",
            "compaction passes per scheduling policy",
            ("policy",),
        )
        self.compaction_files_selected = registry.counter(
            "engine_compaction_files_selected_total",
            "sealed files merged by compaction, per scheduling policy",
            ("policy",),
        )
        self.compaction_files_skipped = registry.counter(
            "engine_compaction_files_skipped_total",
            "sealed files a compaction pass left in place, per policy",
            ("policy",),
        )
        self._shard_points_written = registry.counter(
            "engine_shard_points_written_total",
            "points ingested per storage group",
            _SHARD_LABEL,
        )
        self._shard_points_flushed = registry.counter(
            "engine_shard_points_flushed_total",
            "points sealed into TsFiles per storage group",
            _SHARD_LABEL,
        )
        self._shard_flushes = registry.counter(
            "engine_shard_flushes_total",
            "memtable flushes per storage group",
            _SHARD_LABEL,
        )
        # Resolve the per-space children once: exports always show both
        # spaces (zeros included) and the flush path never hashes labels.
        self.flushes_by_space = {
            s: self.flushes.labels(space=s) for s in SPACES
        }
        self.flush_seconds_by_space = {
            s: self.flush_seconds.labels(space=s) for s in SPACES
        }
        self.flush_sort_seconds_by_space = {
            s: self.flush_sort_seconds.labels(space=s) for s in SPACES
        }
        self._shard_children: dict[int, ShardInstruments] = {}

    def for_shard(self, shard_id: int) -> "ShardInstruments":
        """Pre-resolved shard-labelled children for one storage group."""
        child = self._shard_children.get(shard_id)
        if child is None:
            child = ShardInstruments(self, shard_id)
            self._shard_children[shard_id] = child
        return child


class ShardInstruments:
    """One shard's pre-resolved children of the shard-labelled instruments."""

    def __init__(self, instruments: EngineInstruments, shard_id: int) -> None:
        label = str(shard_id)
        self.shard_id = shard_id
        self.points_written = instruments._shard_points_written.labels(shard=label)
        self.points_flushed = instruments._shard_points_flushed.labels(shard=label)
        self.flushes = instruments._shard_flushes.labels(shard=label)
