"""Engine instruments + the deprecated ``EngineMetrics`` façade.

The storage engine's server-side metrics live in a
:class:`repro.obs.MetricsRegistry`; this module owns both sides of that
move:

* :class:`EngineInstruments` — registers the engine's instruments once and
  pre-resolves the per-space children, so the hot path pays one method call
  per event (no label hashing per write);
* :class:`EngineMetrics` — the old mutable-dataclass API, now a thin façade
  over those instruments.  Every attribute still reads (and writes) the
  same numbers, but emits a :class:`DeprecationWarning` pointing at the
  registry replacement.  Direct mutation of ``engine.metrics.<field>`` from
  outside this module is additionally flagged by the
  ``no-direct-metrics-mutation`` lint rule.

Instrument catalogue (see docs/OBSERVABILITY.md):

======================================  =========  ==================
name                                    kind       labels
======================================  =========  ==================
``engine_points_written_total``         counter    —
``engine_queries_total``                counter    —
``engine_flushes_total``                counter    ``space``
``engine_flush_seconds``                histogram  ``space``
``engine_flush_sort_seconds``           histogram  ``space``
``engine_query_seconds``                histogram  —
``engine_wal_replayed_points_total``    counter    —
``engine_compaction_seconds``           histogram  —
======================================  =========  ==================
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.iotdb.flush import FlushReport

_SPACE_LABEL = ("space",)

#: Label values of the two memtable spaces (match ``Space.value``).
SPACES = ("seq", "unseq")


class EngineInstruments:
    """The engine's registered instruments with pre-resolved children."""

    def __init__(self, registry) -> None:
        self.points_written = registry.counter(
            "engine_points_written_total", "points ingested through write()"
        )
        self.queries = registry.counter(
            "engine_queries_total", "time-range queries and aggregations executed"
        )
        self.flushes = registry.counter(
            "engine_flushes_total", "memtable flushes per space", _SPACE_LABEL
        )
        self.flush_seconds = registry.histogram(
            "engine_flush_seconds", "total flush pipeline duration", _SPACE_LABEL
        )
        self.flush_sort_seconds = registry.histogram(
            "engine_flush_sort_seconds", "sort share of each flush", _SPACE_LABEL
        )
        self.query_seconds = registry.histogram(
            "engine_query_seconds", "end-to-end time-range query duration"
        )
        self.wal_replayed = registry.counter(
            "engine_wal_replayed_points_total", "points replayed from the WAL"
        )
        self.compaction_seconds = registry.histogram(
            "engine_compaction_seconds", "duration of full-merge compactions"
        )
        # Resolve the per-space children once: exports always show both
        # spaces (zeros included) and the flush path never hashes labels.
        self.flushes_by_space = {
            s: self.flushes.labels(space=s) for s in SPACES
        }
        self.flush_seconds_by_space = {
            s: self.flush_seconds.labels(space=s) for s in SPACES
        }
        self.flush_sort_seconds_by_space = {
            s: self.flush_sort_seconds.labels(space=s) for s in SPACES
        }


def _warn(field: str, replacement: str) -> None:
    warnings.warn(
        f"EngineMetrics.{field} is deprecated; {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


class EngineMetrics:
    """Deprecated façade: the old attribute API over the metrics registry.

    Kept so existing harnesses keep reading correct numbers; every access
    emits a :class:`DeprecationWarning`.  New code reads the registry
    (``engine.obs.registry``), the exporters, or ``engine.flush_reports``.
    """

    def __init__(
        self, instruments: EngineInstruments, flush_reports: "list[FlushReport]"
    ) -> None:
        self._instruments = instruments
        self._flush_reports = flush_reports

    # -- counters ----------------------------------------------------------

    @property
    def points_written(self) -> int:
        _warn("points_written", "read the engine_points_written_total counter")
        return int(self._instruments.points_written.value)

    @points_written.setter
    def points_written(self, value: int) -> None:
        _warn("points_written", "increment counters through the registry")
        inst = self._instruments.points_written
        inst._add(value - inst.value)

    @property
    def queries_executed(self) -> int:
        _warn("queries_executed", "read the engine_queries_total counter")
        return int(self._instruments.queries.value)

    @queries_executed.setter
    def queries_executed(self, value: int) -> None:
        _warn("queries_executed", "increment counters through the registry")
        inst = self._instruments.queries
        inst._add(value - inst.value)

    @property
    def seq_flushes(self) -> int:
        _warn("seq_flushes", 'read engine_flushes_total{space="seq"}')
        return int(self._instruments.flushes_by_space["seq"].value)

    @seq_flushes.setter
    def seq_flushes(self, value: int) -> None:
        _warn("seq_flushes", "increment counters through the registry")
        inst = self._instruments.flushes_by_space["seq"]
        inst._add(value - inst.value)

    @property
    def unseq_flushes(self) -> int:
        _warn("unseq_flushes", 'read engine_flushes_total{space="unseq"}')
        return int(self._instruments.flushes_by_space["unseq"].value)

    @unseq_flushes.setter
    def unseq_flushes(self, value: int) -> None:
        _warn("unseq_flushes", "increment counters through the registry")
        inst = self._instruments.flushes_by_space["unseq"]
        inst._add(value - inst.value)

    # -- flush reports -----------------------------------------------------

    @property
    def flush_reports(self) -> "list[FlushReport]":
        _warn("flush_reports", "use StorageEngine.flush_reports")
        return self._flush_reports

    @flush_reports.setter
    def flush_reports(self, value) -> None:
        _warn("flush_reports", "use StorageEngine.flush_reports")
        self._flush_reports[:] = value

    @property
    def mean_flush_seconds(self) -> float:
        _warn("mean_flush_seconds", "read the engine_flush_seconds histogram")
        if not self._flush_reports:
            return 0.0
        return sum(r.total_seconds for r in self._flush_reports) / len(
            self._flush_reports
        )

    @property
    def mean_flush_sort_seconds(self) -> float:
        _warn(
            "mean_flush_sort_seconds",
            "read the engine_flush_sort_seconds histogram",
        )
        if not self._flush_reports:
            return 0.0
        return sum(r.sort_seconds for r in self._flush_reports) / len(
            self._flush_reports
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<EngineMetrics (deprecated façade over the metrics registry)>"
