"""Column encodings for the TsFile-like storage format.

The flush pipeline the paper measures includes "sorting, encoding, and I/O"
(§VI-D2), so the substrate implements real encoders rather than pickling:

* ``plain``    — type-tagged raw values (varint ints, IEEE-754 doubles,
  bit-packed booleans, length-prefixed UTF-8 text).
* ``ts2diff``  — IoTDB's TS_2DIFF: zigzag-varint delta encoding.  Sorted
  timestamps become tiny positive deltas, which is *why* flushing sorted
  data is cheap — the encoder rewards the sorter.
* ``rle``      — run-length encoding for integers and booleans.
* ``gorilla``  — Facebook Gorilla XOR compression for doubles.

Every encoder round-trips exactly: ``decode(encode(xs), len(xs)) == xs``.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod

from repro.errors import EncodingError
from repro.iotdb.config import TSDataType

# ---------------------------------------------------------------------------
# varint / zigzag primitives
# ---------------------------------------------------------------------------


def zigzag_encode(n: int) -> int:
    """Map signed ints to unsigned: 0,-1,1,-2,... -> 0,1,2,3,..."""
    return (n << 1) ^ (n >> 63) if n >= 0 else ((-n) << 1) - 1


def zigzag_decode(z: int) -> int:
    return (z >> 1) ^ -(z & 1)


def write_uvarint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned varint at ``pos``; returns (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise EncodingError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise EncodingError("varint too long")


# ---------------------------------------------------------------------------
# bit-level I/O (for gorilla and boolean packing)
# ---------------------------------------------------------------------------


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        if self._bit_count % 8 == 0:
            self._bytes.append(0)
        if bit:
            self._bytes[-1] |= 0x80 >> (self._bit_count % 8)
        self._bit_count += 1

    def write_bits(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def getvalue(self) -> bytes:
        return bytes(self._bytes)


class BitReader:
    """MSB-first bit reader over a bytes object."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read_bit(self) -> int:
        byte_index, bit_index = divmod(self._pos, 8)
        if byte_index >= len(self._data):
            raise EncodingError("bit stream exhausted")
        self._pos += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value


# ---------------------------------------------------------------------------
# encoders
# ---------------------------------------------------------------------------


class Encoder(ABC):
    """Round-tripping column encoder for one data type family."""

    name: str = "abstract"

    @abstractmethod
    def encode(self, values: list) -> bytes:
        """Serialise ``values``; raises EncodingError on unsupported input."""

    @abstractmethod
    def decode(self, data: bytes, count: int) -> list:
        """Recover exactly ``count`` values from ``data``."""


class PlainIntEncoder(Encoder):
    """Zigzag varints, one per value."""

    name = "plain"

    def encode(self, values: list) -> bytes:
        out = bytearray()
        for v in values:
            if not isinstance(v, int) or isinstance(v, bool):
                raise EncodingError(f"plain-int encoder got {type(v).__name__}")
            write_uvarint(out, zigzag_encode(v))
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        out = []
        pos = 0
        for _ in range(count):
            z, pos = read_uvarint(data, pos)
            out.append(zigzag_decode(z))
        return out


class PlainDoubleEncoder(Encoder):
    """IEEE-754 little-endian doubles."""

    name = "plain"

    def encode(self, values: list) -> bytes:
        try:
            return struct.pack(f"<{len(values)}d", *values)
        except struct.error as exc:
            raise EncodingError(f"plain-double encoder: {exc}") from exc

    def decode(self, data: bytes, count: int) -> list:
        return list(struct.unpack(f"<{count}d", data[: 8 * count]))


class PlainBooleanEncoder(Encoder):
    """Booleans packed eight to a byte."""

    name = "plain"

    def encode(self, values: list) -> bytes:
        writer = BitWriter()
        for v in values:
            if not isinstance(v, bool):
                raise EncodingError(f"plain-bool encoder got {type(v).__name__}")
            writer.write_bit(1 if v else 0)
        return writer.getvalue()

    def decode(self, data: bytes, count: int) -> list:
        reader = BitReader(data)
        return [bool(reader.read_bit()) for _ in range(count)]


class PlainTextEncoder(Encoder):
    """Length-prefixed UTF-8 strings."""

    name = "plain"

    def encode(self, values: list) -> bytes:
        out = bytearray()
        for v in values:
            if not isinstance(v, str):
                raise EncodingError(f"plain-text encoder got {type(v).__name__}")
            raw = v.encode("utf-8")
            write_uvarint(out, len(raw))
            out.extend(raw)
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        out = []
        pos = 0
        for _ in range(count):
            length, pos = read_uvarint(data, pos)
            out.append(data[pos : pos + length].decode("utf-8"))
            pos += length
        return out


class Ts2DiffEncoder(Encoder):
    """Delta encoding with zigzag varints (IoTDB TS_2DIFF).

    The first value is stored raw; each subsequent value stores its delta.
    Sorted timestamp columns produce constant small deltas — near-optimal
    compression, and the concrete payoff of sorting before flushing.
    """

    name = "ts2diff"

    def encode(self, values: list) -> bytes:
        out = bytearray()
        prev = 0
        for i, v in enumerate(values):
            if not isinstance(v, int) or isinstance(v, bool):
                raise EncodingError(f"ts2diff encoder got {type(v).__name__}")
            delta = v if i == 0 else v - prev
            write_uvarint(out, zigzag_encode(delta))
            prev = v
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        out = []
        pos = 0
        acc = 0
        for i in range(count):
            z, pos = read_uvarint(data, pos)
            delta = zigzag_decode(z)
            acc = delta if i == 0 else acc + delta
            out.append(acc)
        return out


class RleIntEncoder(Encoder):
    """(run-length, value) pairs with varints; great for slow-moving ints."""

    name = "rle"

    def encode(self, values: list) -> bytes:
        out = bytearray()
        i = 0
        n = len(values)
        while i < n:
            v = values[i]
            if not isinstance(v, int) or isinstance(v, bool):
                raise EncodingError(f"rle encoder got {type(v).__name__}")
            run = 1
            while i + run < n and values[i + run] == v:
                run += 1
            write_uvarint(out, run)
            write_uvarint(out, zigzag_encode(v))
            i += run
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        out: list = []
        pos = 0
        while len(out) < count:
            run, pos = read_uvarint(data, pos)
            z, pos = read_uvarint(data, pos)
            out.extend([zigzag_decode(z)] * run)
        if len(out) != count:
            raise EncodingError("rle run overshoots declared count")
        return out


class RleBooleanEncoder(Encoder):
    """RLE over booleans: (run-length, bit) pairs."""

    name = "rle"

    def encode(self, values: list) -> bytes:
        out = bytearray()
        i = 0
        n = len(values)
        while i < n:
            v = values[i]
            if not isinstance(v, bool):
                raise EncodingError(f"rle-bool encoder got {type(v).__name__}")
            run = 1
            while i + run < n and values[i + run] == v:
                run += 1
            write_uvarint(out, run)
            out.append(1 if v else 0)
            i += run
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list:
        out: list = []
        pos = 0
        while len(out) < count:
            run, pos = read_uvarint(data, pos)
            if pos >= len(data):
                raise EncodingError("truncated rle-bool stream")
            out.extend([bool(data[pos])] * run)
            pos += 1
        if len(out) != count:
            raise EncodingError("rle-bool run overshoots declared count")
        return out


class GorillaDoubleEncoder(Encoder):
    """Facebook Gorilla XOR compression for IEEE-754 doubles.

    First value raw (64 bits); each next value XORs with its predecessor:
    identical → single 0 bit; meaningful bits inside the previous window →
    ``10`` + bits; otherwise ``11`` + 5-bit leading-zero count + 6-bit
    length + bits.
    """

    name = "gorilla"

    def encode(self, values: list) -> bytes:
        writer = BitWriter()
        prev_bits = 0
        prev_leading = 64
        prev_trailing = 0
        for i, v in enumerate(values):
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                raise EncodingError(f"gorilla encoder got {type(v).__name__}")
            bits = struct.unpack("<Q", struct.pack("<d", float(v)))[0]
            if i == 0:
                writer.write_bits(bits, 64)
                prev_bits = bits
                continue
            xor = bits ^ prev_bits
            if xor == 0:
                writer.write_bit(0)
            else:
                writer.write_bit(1)
                leading = 64 - xor.bit_length()
                trailing = (xor & -xor).bit_length() - 1
                if leading >= prev_leading and trailing >= prev_trailing:
                    writer.write_bit(0)
                    width = 64 - prev_leading - prev_trailing
                    writer.write_bits(xor >> prev_trailing, width)
                else:
                    writer.write_bit(1)
                    leading = min(leading, 31)
                    width = 64 - leading - trailing
                    writer.write_bits(leading, 5)
                    writer.write_bits(width - 1, 6)
                    writer.write_bits(xor >> trailing, width)
                    prev_leading = leading
                    prev_trailing = trailing
            prev_bits = bits
        return writer.getvalue()

    def decode(self, data: bytes, count: int) -> list:
        if count == 0:
            return []
        reader = BitReader(data)
        bits = reader.read_bits(64)
        out = [struct.unpack("<d", struct.pack("<Q", bits))[0]]
        leading = 64
        trailing = 0
        for _ in range(count - 1):
            if reader.read_bit() == 0:
                out.append(out[-1])
                continue
            if reader.read_bit() == 0:
                width = 64 - leading - trailing
                xor = reader.read_bits(width) << trailing
            else:
                leading = reader.read_bits(5)
                width = reader.read_bits(6) + 1
                trailing = 64 - leading - width
                xor = reader.read_bits(width) << trailing
            bits ^= xor
            out.append(struct.unpack("<d", struct.pack("<Q", bits))[0])
        return out


# Populated only by the _register calls below, at import time; read-only
# afterwards, so no lock is needed.  Catalogued in docs/ANALYSIS.md.
_ENCODERS: dict[tuple[str, TSDataType], type[Encoder]] = {}  # repro: allow(shared-state-escape)


def _register(name: str, dtypes: tuple[TSDataType, ...], cls: type[Encoder]) -> None:
    for dtype in dtypes:
        _ENCODERS[(name, dtype)] = cls


_INTS = (TSDataType.INT32, TSDataType.INT64)
_FLOATS = (TSDataType.FLOAT, TSDataType.DOUBLE)

_register("plain", _INTS, PlainIntEncoder)
_register("plain", _FLOATS, PlainDoubleEncoder)
_register("plain", (TSDataType.BOOLEAN,), PlainBooleanEncoder)
_register("plain", (TSDataType.TEXT,), PlainTextEncoder)
_register("ts2diff", _INTS, Ts2DiffEncoder)
_register("rle", _INTS, RleIntEncoder)
_register("rle", (TSDataType.BOOLEAN,), RleBooleanEncoder)
_register("gorilla", _FLOATS, GorillaDoubleEncoder)


def get_encoder(name: str, dtype: TSDataType) -> Encoder:
    """Resolve an encoder by (name, column type); falls back to ``plain``.

    The fallback mirrors IoTDB, where requesting e.g. GORILLA on TEXT
    silently degrades to PLAIN rather than failing the flush.
    """
    cls = _ENCODERS.get((name, dtype))
    if cls is None:
        cls = _ENCODERS.get(("plain", dtype))
    if cls is None:
        raise EncodingError(f"no encoder for dtype {dtype!r}")
    return cls()
