"""SortStats → metrics bridge: per-sorter counters land in the registry.

The sorters report platform-independent operation counts through
:class:`repro.core.instrumentation.SortStats`; this bridge folds one sort's
counters into the shared registry under ``sorter`` and ``site`` labels, so
per-sorter comparisons/moves/extra-space sit next to the engine's system
metrics and export through the same three formats.

``site`` distinguishes the call site: ``"flush"`` (TVList flush-path sort),
``"query"`` (working-memtable sort on the query's critical path), or
``"direct"`` (library calls / benchmarks).

The module is duck-typed against SortStats on purpose — ``repro.obs`` stays
import-free of the core package so it can never participate in a cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.instrumentation import SortStats
    from repro.obs.observability import Observability

#: Bucket bounds for per-sort durations (sorts are much faster than flushes).
SORT_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 10.0
)

_LABELS = ("sorter", "site")


def record_sort_stats(
    obs: "Observability",
    stats: "SortStats",
    *,
    sorter: str,
    site: str = "direct",
    seconds: float | None = None,
    points: int | None = None,
) -> None:
    """Fold one sort invocation's counters into ``obs``'s registry."""
    if not obs.metrics_enabled:
        return
    reg = obs.registry
    labels = {"sorter": sorter, "site": site}
    reg.counter(
        "sort_invocations_total", "sort calls per sorter and call site", _LABELS
    ).labels(**labels).inc()
    reg.counter(
        "sort_comparisons_total", "timestamp comparisons performed", _LABELS
    ).labels(**labels).inc(stats.comparisons)
    reg.counter(
        "sort_moves_total", "element writes (buffer hops included)", _LABELS
    ).labels(**labels).inc(stats.moves)
    reg.counter(
        "sort_merges_total", "(backward) merge operations executed", _LABELS
    ).labels(**labels).inc(stats.merges)
    reg.gauge(
        "sort_extra_space_peak", "peak auxiliary element slots in one sort", _LABELS
    ).labels(**labels).set_max(stats.extra_space)
    if points is not None:
        reg.counter(
            "sort_points_total", "points passed through a sorter", _LABELS
        ).labels(**labels).inc(points)
    if seconds is not None:
        reg.histogram(
            "sort_seconds",
            "wall-clock duration of one sort call",
            _LABELS,
            buckets=SORT_SECONDS_BUCKETS,
        ).labels(**labels).observe(seconds)
