"""MetricsRegistry: the single namespace all instruments live in.

Every subsystem — the storage engine, the sorter bridge, the bench harness —
registers its instruments here by name.  Registration is get-or-create and
idempotent, so two call sites asking for ``engine_flushes_total`` share one
counter; re-registering with a *different* type or label set is an error
(silent divergence is how metrics rot).

The registry is a plain in-process object with no global state: tests build
one per case, the engine builds one per instance, and a shared one can be
injected to aggregate across components (Prometheus-style process metrics).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.analysis.concurrency import apply_guards, create_lock, holds
from repro.errors import InvalidParameterError
from repro.obs.instruments import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    NOOP_INSTRUMENT,
)


class MetricsRegistry:
    """Name-keyed store of :class:`~repro.obs.instruments.Instrument` objects.

    Concurrency discipline: ``_lock`` guards the name → instrument map (a
    leaf lock — nothing else is acquired while it is held).  Instrument
    *values* are updated without it; counter drift under contention is an
    accepted metrics-grade tolerance, the map itself is not.
    """

    #: Lock discipline for the ``guarded-by`` rule and runtime sanitizer.
    GUARDED_BY = {"_instruments": "_lock"}

    def __init__(self) -> None:
        self._lock = create_lock("MetricsRegistry._lock")
        self._instruments: dict[str, Instrument] = {}
        apply_guards(self)

    @holds("_lock")
    def _get_or_create_locked(
        self,
        cls: type,
        name: str,
        help: str,
        labelnames: Sequence[str],
        **kwargs,
    ) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise InvalidParameterError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind}, not a {cls.kind}"  # type: ignore[attr-defined]
                )
            if existing.labelnames != tuple(labelnames):
                raise InvalidParameterError(
                    f"metric {name!r} is already registered with labels "
                    f"{existing.labelnames}, not {tuple(labelnames)}"
                )
            return existing
        instrument = cls(name, help, labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labelnames: Sequence[str],
        **kwargs,
    ) -> Instrument:
        with self._lock:
            return self._get_or_create_locked(cls, name, help, labelnames, **kwargs)

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )  # type: ignore[return-value]

    def get(self, name: str) -> Instrument | None:
        """The registered instrument, or None (read-only lookup)."""
        with self._lock:
            return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def instruments(self) -> Iterator[Instrument]:
        """All instruments in registration-name order.

        Snapshotted under the lock before yielding: exporters iterate this
        without holding any lock of their own.
        """
        with self._lock:
            snapshot = [self._instruments[name] for name in sorted(self._instruments)]
        yield from snapshot

    def as_dict(self) -> dict:
        """Nested snapshot: ``{name: {kind, help, samples: [...]}}``.

        This is the generated data model behind ``StorageEngine.describe()``
        and the JSON-lines exporter — one shape, derived from the registry,
        never hand-maintained per metric.
        """
        out: dict[str, dict] = {}
        for instrument in self.instruments():
            samples = []
            for labels, child in instrument.children():
                if instrument.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                [bound, count] for bound, count in child.bucket_counts()
                            ],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "samples": samples,
            }
        return out


class NoopRegistry:
    """Registry twin whose instruments swallow every update.

    Shared by the module-level no-op :class:`~repro.obs.observability.Observability`
    so a disabled pipeline costs a dict-free method call per event.
    """

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return NOOP_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return NOOP_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        return NOOP_INSTRUMENT

    def get(self, name: str):
        return None

    def __contains__(self, name: str) -> bool:
        return False

    def instruments(self) -> Iterator[Instrument]:
        return iter(())

    def as_dict(self) -> dict:
        return {}


#: Shared no-op registry (one per process is plenty — it holds no state).
NOOP_REGISTRY = NoopRegistry()
