"""repro.obs — dependency-free observability: metrics, traces, exporters.

The package is a *leaf*: it imports only the stdlib and ``repro.errors``,
so any layer (core sorters, the IoTDB engine, the bench harness) can depend
on it without risking an import cycle.  The one upward reference — the text
exporter reusing ``repro.bench.reporting.format_table`` — is a lazy,
function-level import.

Entry points:

* :class:`Observability` — the façade injected down the hot path
  (``obs.clock`` / ``obs.registry`` / ``obs.tracer`` / ``obs.span``);
* :data:`NOOP` — the shared all-off instance, the default wherever ``obs``
  is not passed;
* :func:`from_env` — ``REPRO_OBS=1`` flips a process to fully enabled.

See docs/OBSERVABILITY.md for the metric and span catalogue.
"""

from repro.obs.clock import MONOTONIC, Clock, FakeClock, MonotonicClock
from repro.obs.instruments import (
    DEFAULT_TIME_BUCKETS,
    NOOP_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    Instrument,
)
from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry, NoopRegistry
from repro.obs.tracing import NOOP_SPAN, NOOP_TRACER, NoopTracer, Span, Tracer
from repro.obs.observability import (
    NOOP,
    Observability,
    from_env,
    metrics_only,
)
from repro.obs.bridge import SORT_SECONDS_BUCKETS, record_sort_stats
from repro.obs.export import (
    iter_jsonlines,
    render_jsonlines,
    render_prometheus,
    render_span_tree,
    render_text,
)

__all__ = [
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "MONOTONIC",
    "Instrument",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "NOOP_INSTRUMENT",
    "MetricsRegistry",
    "NoopRegistry",
    "NOOP_REGISTRY",
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "Observability",
    "NOOP",
    "from_env",
    "metrics_only",
    "record_sort_stats",
    "SORT_SECONDS_BUCKETS",
    "iter_jsonlines",
    "render_jsonlines",
    "render_prometheus",
    "render_span_tree",
    "render_text",
]
