"""Tracer: nested spans over the injectable clock.

A span is one timed region of the hot path (``engine.write`` →
``engine.flush`` → ``sort``); nesting follows the call stack, so the span
tree answers "where does write→flush→query latency go?" without editing
source.  All timing goes through :mod:`repro.obs.clock` — monotonic by
default, a :class:`~repro.obs.clock.FakeClock` in tests.

Spans are retained in memory up to ``max_spans`` (a bound, not a sample:
beyond it spans still nest and time correctly but are not kept, and the
``dropped`` counter says how many).  For long benchmark runs,
``sample_rate`` keeps a representative fraction instead of a truncated
prefix: the decision is made once per *root* span with a seeded RNG (so a
given seed always keeps the same traces) and applies to the whole tree —
an unsampled root's descendants are never retained, because a partial
trace is worse than none.  The no-op twin hands out one shared context
manager, so a disabled tracer costs a single method call per span.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.clock import MONOTONIC, Clock


@dataclass
class Span:
    """One timed region with attributes and child spans."""

    name: str
    span_id: int
    parent_id: int | None = None
    start: float = 0.0
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes) -> None:
        """Attach attributes to the span (merged over existing keys)."""
        self.attributes.update(attributes)

    def iter(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) named ``name``, depth-first."""
        for span in self.iter():
            if span.name == name:
                return span
        return None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class _SpanContext:
    """Context manager that opens/closes one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Produces nested spans; keeps the finished tree for export."""

    def __init__(
        self,
        clock: Clock | None = None,
        max_spans: int = 10_000,
        sample_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            from repro.errors import InvalidParameterError

            raise InvalidParameterError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self._clock = clock if clock is not None else MONOTONIC
        self._max_spans = max_spans
        self._sample_rate = sample_rate
        self._rng = random.Random(seed)
        # Depth inside an unsampled root's subtree (0 = sampling normally).
        self._unsampled_depth = 0
        self._stack: list[Span] = []
        self._next_id = 1
        self.roots: list[Span] = []
        self.span_count = 0
        self.dropped = 0
        #: Spans not retained because their root lost the sampling draw.
        self.sampled_out = 0

    def span(self, name: str, **attributes) -> _SpanContext:
        """Open a span on entry; attributes may be extended via ``span.set``."""
        span = Span(name=name, span_id=self._next_id, attributes=attributes)
        self._next_id += 1
        return _SpanContext(self, span)

    def _open(self, span: Span) -> None:
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        if self._unsampled_depth:
            # Inside an unsampled root's subtree: never retain.
            self._unsampled_depth += 1
            self.sampled_out += 1
        elif (
            not self._stack
            and self._sample_rate < 1.0
            and self._rng.random() >= self._sample_rate
        ):
            # Root lost the (seeded, deterministic) sampling draw.
            self._unsampled_depth = 1
            self.sampled_out += 1
        elif self.span_count < self._max_spans:
            self.span_count += 1
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)
        span.start = self._clock.now()  # last: exclude bookkeeping from the span

    def _close(self, span: Span) -> None:
        span.end = self._clock.now()
        # Tolerate out-of-order exits (a span leaked across a generator):
        # unwind to the matching entry instead of corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if self._unsampled_depth:
                self._unsampled_depth -= 1
            if top is span:
                break

    def iter_spans(self) -> Iterator[Span]:
        """Every retained span, depth-first over the root forest."""
        for root in self.roots:
            yield from root.iter()

    def find(self, name: str) -> Span | None:
        """First retained span named ``name``, depth-first."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def clear(self) -> None:
        """Drop all retained spans (the stack of open spans survives)."""
        self.roots = []
        self.span_count = 0
        self.dropped = 0
        self.sampled_out = 0


class _NoopSpan:
    """Shared do-nothing span/context-manager for the disabled path."""

    __slots__ = ()
    name = "noop"
    span_id = 0
    parent_id = None
    start = 0.0
    end = 0.0
    duration = 0.0
    @property
    def attributes(self) -> dict:
        # Fresh per access: the no-op span is a shared singleton, so a
        # class-level dict would be cross-thread mutable state.
        return {}

    @property
    def children(self) -> list:
        return []

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes) -> None:
        pass

    def iter(self) -> Iterator["_NoopSpan"]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def as_dict(self) -> dict:
        return {}


NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Tracer twin returning the shared no-op span."""

    roots: tuple = ()
    span_count = 0
    dropped = 0
    sampled_out = 0

    def span(self, name: str, **attributes) -> _NoopSpan:
        return NOOP_SPAN

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def clear(self) -> None:
        pass


#: Shared no-op tracer (stateless, safe to share process-wide).
NOOP_TRACER = NoopTracer()
