"""Metric instruments: Counter, Gauge, and fixed-bucket Histogram with labels.

The model follows Prometheus conventions so the exposition exporter is a
straight serialisation: an instrument is declared once with a name, a help
string, and an optional tuple of *label names*; each distinct combination of
label *values* materialises a child that holds the actual numbers.  An
instrument declared without labels is its own (single) child, so call sites
can write ``counter.inc()`` without a ``labels()`` hop.

Children are cached — the hot path resolves its children once and then pays
one attribute update per event — and every no-op twin (:data:`NOOP_COUNTER`
and friends) swallows the same API so disabled observability costs a single
no-op method call.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.errors import InvalidParameterError

#: Default histogram buckets for durations in seconds: 1µs .. ~100s.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 100.0
)


def _check_labels(
    labelnames: tuple[str, ...], labels: Mapping[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise InvalidParameterError(
            f"labels {sorted(labels)} do not match declared label names "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Instrument:
    """Base of every instrument: name/help/labels plus the child cache."""

    kind = "abstract"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], "Instrument"] = {}

    def labels(self, **labels: str) -> "Instrument":
        """The child for one combination of label values (created on demand)."""
        if not self.labelnames:
            if labels:
                raise InvalidParameterError(
                    f"instrument {self.name!r} was declared without labels"
                )
            return self
        key = _check_labels(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help)
            child._labelvalues = key  # type: ignore[attr-defined]
            self._children[key] = child
        return child

    def children(self) -> Iterator[tuple[dict[str, str], "Instrument"]]:
        """Yield ``(labels, child)`` pairs; the parent itself when unlabeled."""
        if not self.labelnames:
            yield {}, self
            return
        for key, child in sorted(self._children.items()):
            yield dict(zip(self.labelnames, key)), child


class Counter(Instrument):
    """Monotonically increasing count of events."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(Instrument):
    """A value that can go up and down (sizes, watermarks, peaks)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    def set_max(self, value: float) -> None:
        """Record a high-water mark (keeps the larger of old and new)."""
        if value > self._value:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram(Instrument):
    """Fixed-bucket histogram of observations (cumulative buckets on export).

    ``buckets`` are the inclusive upper bounds of each bucket; a final
    ``+Inf`` bucket is implicit.  Per-bucket counts are kept non-cumulative
    internally and accumulated at export time, matching Prometheus.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise InvalidParameterError(f"histogram {self.name!r} needs >= 1 bucket")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0

    def labels(self, **labels: str) -> "Histogram":
        if not self.labelnames:
            return super().labels(**labels)  # type: ignore[return-value]
        key = _check_labels(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            child = Histogram(self.name, self.help, buckets=self.buckets)
            child._labelvalues = key  # type: ignore[attr-defined]
            self._children[key] = child
        return child  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first bucket whose upper bound admits the value
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        self._counts[lo] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip((*self.buckets, float("inf")), self._counts):
            running += count
            out.append((bound, running))
        return out


class _NoopInstrument:
    """Absorbs the full instrument API at the cost of one no-op call."""

    __slots__ = ()
    kind = "noop"
    name = "noop"
    help = ""
    labelnames: tuple[str, ...] = ()
    buckets: tuple[float, ...] = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def labels(self, **labels: str) -> "_NoopInstrument":
        return self

    def children(self) -> Iterator[tuple[dict[str, str], "_NoopInstrument"]]:
        return iter(())

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def bucket_counts(self) -> list[tuple[float, int]]:
        return []


#: Shared no-op children handed out by the no-op registry.
NOOP_INSTRUMENT = _NoopInstrument()
