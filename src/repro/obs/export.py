"""Exporters: aligned text, JSON-lines, and Prometheus-style exposition.

Three sinks over one data model (the registry snapshot plus the span
forest):

* :func:`render_text` — the human/terminal view, reusing the same
  ``format_table`` the experiment drivers print figures with;
* :func:`render_jsonlines` — one JSON object per line (``{"type": ...}``),
  the machine-readable stream CI and downstream tooling parse;
* :func:`render_prometheus` — ``# HELP``/``# TYPE`` + sample lines in the
  text exposition format, so a scrape endpoint is a string away.

Custom sinks consume the same primitives: ``registry.as_dict()`` for
metrics and ``tracer.iter_spans()`` for spans (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracing import Tracer


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


# ---------------------------------------------------------------- text table


def render_text(registry: "MetricsRegistry", tracer: "Tracer | None" = None) -> str:
    """Aligned table of every sample, plus the span tree when a tracer is given."""
    # Lazy import: repro.bench's package __init__ pulls in the storage engine,
    # which imports repro.obs — a module-level import here would close that
    # cycle (the documented lazy-import pattern keeps it harmless).
    from repro.bench.reporting import format_table

    rows: list[tuple] = []
    for instrument in registry.instruments():
        for labels, child in instrument.children():
            label_text = _format_labels(labels) or "-"
            if instrument.kind == "histogram":
                rows.append(
                    (instrument.name, instrument.kind, label_text,
                     f"count={child.count} sum={child.sum:.6f} mean={child.mean:.6f}")
                )
            else:
                rows.append(
                    (instrument.name, instrument.kind, label_text,
                     f"{child.value:g}")
                )
    if not rows:
        rows.append(("(no metrics recorded)", "-", "-", "-"))
    parts = [format_table(("metric", "kind", "labels", "value"), rows, title="metrics")]
    if tracer is not None and tracer.roots:
        parts.append("")
        parts.append(render_span_tree(tracer))
    return "\n".join(parts)


def render_span_tree(tracer: "Tracer") -> str:
    """Indented one-line-per-span rendering of the retained span forest."""
    lines = ["spans"]

    def _walk(span, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{'  ' * depth}- {span.name}  {span.duration * 1e3:.3f}ms{suffix}")
        for child in span.children:
            _walk(child, depth + 1)

    for root in tracer.roots:
        _walk(root, 1)
    if tracer.dropped:
        lines.append(f"  ({tracer.dropped} span(s) beyond the retention cap not shown)")
    return "\n".join(lines)


# ---------------------------------------------------------------- JSON lines


def iter_jsonlines(
    registry: "MetricsRegistry", tracer: "Tracer | None" = None
) -> Iterator[str]:
    """Yield one JSON document per metric sample / span."""
    for name, info in registry.as_dict().items():
        for sample in info["samples"]:
            record = {"type": "metric", "name": name, "kind": info["kind"], **sample}
            yield json.dumps(record, sort_keys=True)
    if tracer is not None:
        for span in tracer.iter_spans():
            yield json.dumps({"type": "span", **span.as_dict()}, sort_keys=True)
        if tracer.dropped:
            yield json.dumps({"type": "spans_dropped", "count": tracer.dropped})


def render_jsonlines(
    registry: "MetricsRegistry", tracer: "Tracer | None" = None
) -> str:
    """The JSON-lines export as one newline-joined string."""
    return "\n".join(iter_jsonlines(registry, tracer))


# ---------------------------------------------------------------- Prometheus


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Text exposition format (counters/gauges/histograms, labels included)."""
    lines: list[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for labels, child in instrument.children():
            if instrument.kind == "histogram":
                for bound, count in child.bucket_counts():
                    le = "+Inf" if bound == float("inf") else f"{bound:g}"
                    bucket_labels = {**labels, "le": le}
                    lines.append(
                        f"{instrument.name}_bucket{_format_labels(bucket_labels)} {count}"
                    )
                lines.append(
                    f"{instrument.name}_sum{_format_labels(labels)} {child.sum:g}"
                )
                lines.append(
                    f"{instrument.name}_count{_format_labels(labels)} {child.count}"
                )
            else:
                lines.append(
                    f"{instrument.name}{_format_labels(labels)} {child.value:g}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
