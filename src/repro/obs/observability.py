"""The Observability façade: one injected object carries clock + metrics + traces.

Every instrumented surface in the project takes ``obs`` — the storage
engine, the memtable, the flush pipeline, the query executor,
``Sorter.timed_sort``, and the bench harness — and reads three things from
it: ``obs.clock`` (the injectable time source), ``obs.registry`` (metric
instruments), and ``obs.tracer`` (nested spans).

Three configurations cover every use:

* ``Observability()`` — everything on (metrics + tracing);
* ``Observability(tracing=False)`` — metrics only; what the engine builds
  for itself by default, so ``describe()`` always has a live registry
  behind it;
* :data:`NOOP` — the shared all-off instance; the default for the
  standalone sorter/flush/query entry points, costing one no-op method call
  per event (the <5% hot-path bound is tested against it).
"""

from __future__ import annotations

import os

from repro.obs.clock import MONOTONIC, Clock
from repro.obs.registry import NOOP_REGISTRY, MetricsRegistry, NoopRegistry
from repro.obs.tracing import NOOP_TRACER, NoopTracer, Tracer


class Observability:
    """Bundle of clock, metrics registry, and tracer handed down the hot path."""

    def __init__(
        self,
        *,
        metrics: bool = True,
        tracing: bool = True,
        clock: Clock | None = None,
        max_spans: int = 10_000,
        sample_rate: float = 1.0,
        trace_seed: int = 0,
    ) -> None:
        self.clock = clock if clock is not None else MONOTONIC
        self.registry: MetricsRegistry | NoopRegistry = (
            MetricsRegistry() if metrics else NOOP_REGISTRY
        )
        self.tracer: Tracer | NoopTracer = (
            Tracer(
                clock=self.clock,
                max_spans=max_spans,
                sample_rate=sample_rate,
                seed=trace_seed,
            )
            if tracing
            else NOOP_TRACER
        )

    @property
    def metrics_enabled(self) -> bool:
        return isinstance(self.registry, MetricsRegistry)

    @property
    def tracing_enabled(self) -> bool:
        return isinstance(self.tracer, Tracer)

    @property
    def enabled(self) -> bool:
        return self.metrics_enabled or self.tracing_enabled

    def span(self, name: str, **attributes):
        """Shorthand for ``obs.tracer.span(...)``."""
        return self.tracer.span(name, **attributes)

    # -- exporters ---------------------------------------------------------

    def export_text(self) -> str:
        """Aligned-table metrics + span tree (terminal-friendly)."""
        from repro.obs.export import render_text

        tracer = self.tracer if self.tracing_enabled else None
        return render_text(self.registry, tracer)  # type: ignore[arg-type]

    def export_jsonlines(self) -> str:
        """One JSON object per metric sample / span."""
        from repro.obs.export import render_jsonlines

        tracer = self.tracer if self.tracing_enabled else None
        return render_jsonlines(self.registry, tracer)  # type: ignore[arg-type]

    def export_prometheus(self) -> str:
        """Prometheus text exposition of the registry."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self.registry)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Observability metrics={self.metrics_enabled} "
            f"tracing={self.tracing_enabled}>"
        )


def metrics_only(clock: Clock | None = None) -> Observability:
    """An Observability with the registry live and tracing off."""
    return Observability(metrics=True, tracing=False, clock=clock)


def from_env(var: str = "REPRO_OBS") -> Observability:
    """:class:`Observability` switched by an environment variable.

    ``REPRO_OBS`` unset/false → the shared :data:`NOOP`; truthy (``1``,
    ``true``, ``yes``, ``on``) → a fresh fully-enabled instance.  Experiment
    drivers use this so a metrics dump is one env var away.
    """
    if os.environ.get(var, "").strip().lower() in {"1", "true", "yes", "on"}:
        return Observability()
    return NOOP


#: Shared all-off instance; the default everywhere ``obs`` is not injected.
NOOP = Observability(metrics=False, tracing=False)
