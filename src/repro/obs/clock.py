"""The one injectable clock behind every span and timer in the project.

Wall-clock reads are banned in hot-path modules (the ``wall-clock`` lint
rule); reliable timings flow through exactly two sanctioned modules —
:mod:`repro.bench.timing`, which owns warmup/repetition statistics, and
this one, which owns the *clock itself*.  Everything that stamps a time
(:class:`~repro.obs.tracing.Tracer` spans, :class:`~repro.bench.timing.Timer`,
the flush/query pipelines) reads through a :class:`Clock` instance, so tests
can swap in a :class:`FakeClock` and assert exact durations deterministically.

The default is monotonic (``time.perf_counter``): span and timer arithmetic
must never see the clock jump backwards on an NTP adjustment.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of seconds for durations; values are only meaningfully *subtracted*."""

    @abstractmethod
    def now(self) -> float:
        """Current reading in seconds (arbitrary epoch, monotonic preferred)."""


class MonotonicClock(Clock):
    """High-resolution monotonic clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """Deterministic manual clock for tests: advances only when told to."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (negative values rejected)."""
        if seconds < 0:
            raise ValueError(f"FakeClock cannot move backwards (advance {seconds})")
        self._now += seconds

    def set(self, now: float) -> None:
        """Jump to an absolute reading (must not go backwards)."""
        if now < self._now:
            raise ValueError(f"FakeClock cannot move backwards ({now} < {self._now})")
        self._now = float(now)


#: Shared default used whenever no clock is injected.
MONOTONIC = MonotonicClock()
