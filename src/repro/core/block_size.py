"""The "set block size" phase of Backward-Sort (Algorithm 1, lines 1-8).

Starting from an initial block size ``L0`` (paper default 4), the block size
is grown until the *empirical interval inversion ratio* between block
boundaries drops below the threshold ``Θ`` (paper default 0.04).  Because
only down-sampled boundary pairs are inspected — one pair per current block —
each iteration scans ``n / L`` points, and with geometric growth the whole
search scans at most ``2 n / L0`` points in at most ``log2(n / L0) + 1``
iterations (Proposition 3).  Those two bounds are asserted by the property
tests in ``tests/core/test_block_size.py``.

Two growth strategies are provided:

* ``"double"`` (paper Eq. 15): ``L ← 2 L``.
* ``"ratio"`` (the ``updateBlockSizeByRatio`` reading): jump further when the
  measured ratio exceeds the threshold by a lot, i.e.
  ``L ← L · 2^max(1, ceil(log2(α / Θ)))``.  Kept as an ablation — see
  ``benchmarks/bench_ablation_block_size.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.concurrency import apply_guards, create_lock
from repro.core.instrumentation import SortStats
from repro.errors import InvalidParameterError

#: Paper default for the empirical IIR threshold ("Fixed Parameter", §VI-B).
DEFAULT_THETA = 0.04
#: The paper sets L0 = 4 (§VI-B), reasoning only that L0 "should not be too
#: large" so the optimum is never missed.  In Java the per-block overhead is
#: negligible; in pure Python each block costs a function call, so a floor
#: of 32 keeps the nearly-sorted fast path fast without overshooting the
#: optimum ("Loptimal is almost always greater than 4" — and, on every
#: dataset in Figure 8(b), at least 2^5).  The paper's value remains
#: available via ``find_block_size(..., l0=4)`` / ``BackwardSorter(l0=4)``,
#: and DESIGN.md §4 records this as a Python constant-factor substitution.
DEFAULT_L0 = 32
#: The paper's literal L0 (kept for experiments that reproduce §VI-B).
PAPER_L0 = 4

_GROWTH_STRATEGIES = ("double", "ratio")


def empirical_interval_inversion_ratio(
    ts: list,
    interval: int,
    anchor_stride: int | None = None,
    stats: SortStats | None = None,
) -> float:
    """Down-sampled estimate ``α̃`` of the interval inversion ratio.

    Anchors are placed every ``anchor_stride`` positions (default: the
    interval itself, which is what bounds the scan to ``n / L`` points per
    iteration) and each anchor ``i`` contributes one sampled pair
    ``(ts[i], ts[i + interval])``.  The estimate is the fraction of sampled
    pairs that are inverted, mirroring the paper's Example 5.

    Args:
        ts: the timestamp array in arrival order.
        interval: the interval ``L`` being probed.
        anchor_stride: spacing between sampled anchors; defaults to
            ``interval``.
        stats: optional counters; ``scanned_points`` and ``comparisons`` are
            incremented by the number of sampled pairs.

    Returns:
        The empirical ratio in ``[0, 1]``; ``0.0`` when no pair fits.
    """
    if interval < 1:
        raise InvalidParameterError(f"interval must be >= 1, got {interval}")
    stride = interval if anchor_stride is None else anchor_stride
    if stride < 1:
        raise InvalidParameterError(f"anchor_stride must be >= 1, got {stride}")
    n = len(ts)
    pairs = 0
    inverted = 0
    for i in range(0, n - interval, stride):
        pairs += 1
        if ts[i] > ts[i + interval]:
            inverted += 1
    if stats is not None:
        stats.scanned_points += pairs
        stats.comparisons += pairs
    if pairs == 0:
        return 0.0
    return inverted / pairs


@dataclass
class BlockSizeResult:
    """Outcome of the set-block-size search.

    Attributes:
        block_size: the chosen ``L``.
        loops: iterations of the search loop (the paper's ``P``).
        scanned_points: total sampled pairs across all iterations.
        history: ``(L, α̃)`` per iteration, in search order.
    """

    block_size: int
    loops: int
    scanned_points: int
    history: list[tuple[int, float]] = field(default_factory=list)


def find_block_size(
    ts: list,
    theta: float = DEFAULT_THETA,
    l0: int = DEFAULT_L0,
    growth: str = "double",
    stats: SortStats | None = None,
) -> BlockSizeResult:
    """Run Algorithm 1 lines 1-8: grow ``L`` until ``α̃_L < Θ``.

    Args:
        ts: timestamps in arrival order.
        theta: empirical IIR threshold ``Θ`` (must be in ``(0, 1]``).
        l0: initial block size ``L0`` (must be ``>= 1``).
        growth: ``"double"`` or ``"ratio"`` (see module docstring).
        stats: optional counters to update alongside the returned result.

    Returns:
        A :class:`BlockSizeResult`; ``block_size`` is capped at
        ``max(len(ts), 1)``, which degenerates Backward-Sort into plain
        Quicksort (Prop. 5).  Empty and single-element inputs therefore
        always yield ``block_size == 1`` with zero loops — they have no
        pair to probe, and an uncapped ``l0`` here used to leak a block
        size larger than the array into callers that cache or reuse it.
    """
    if not 0.0 < theta <= 1.0:
        raise InvalidParameterError(f"theta must be in (0, 1], got {theta}")
    if l0 < 1:
        raise InvalidParameterError(f"l0 must be >= 1, got {l0}")
    if growth not in _GROWTH_STRATEGIES:
        raise InvalidParameterError(
            f"growth must be one of {_GROWTH_STRATEGIES}, got {growth!r}"
        )
    n = len(ts)
    local = SortStats()
    result = BlockSizeResult(block_size=min(l0, max(n, 1)), loops=0, scanned_points=0)
    size = l0
    while size <= n:
        alpha = empirical_interval_inversion_ratio(ts, size, stats=local)
        result.loops += 1
        result.history.append((size, alpha))
        if alpha < theta:
            break
        if growth == "double":
            size *= 2
        else:
            factor = 2 ** max(1, math.ceil(math.log2(alpha / theta)))
            size *= factor
    # One cap for every exit path: the zero-iteration cases (n == 0 and
    # n < l0) land here too, so an empty array can never surface an
    # uncapped l0 as its block size.
    result.block_size = min(size, max(n, 1))
    result.scanned_points = local.scanned_points
    if stats is not None:
        stats.scanned_points += local.scanned_points
        stats.comparisons += local.comparisons
        stats.block_size_loops += result.loops
    return result


class BlockSizeCache:
    """Remembered block sizes, keyed by series identity.

    A steady-state flush sorts the same series over and over with the same
    arrival pattern, so the ``L`` discovered last time is almost always the
    right starting point this time.  The cache stores the last chosen ``L``
    per series; :meth:`repro.core.backward_sort.BackwardSorter` revalidates
    a hit with one cheap boundary probe before trusting it, so a series
    whose disorder shifts falls back to the full search automatically.

    Eviction is insertion-ordered FIFO at ``max_entries`` — the working set
    is "every live series of one engine", so in practice eviction only
    protects against unbounded ad-hoc keys.

    Concurrency discipline: ``_lock`` guards the mapping; it is a leaf lock
    (no other lock is ever taken while holding it).
    """

    #: Lock discipline for the ``guarded-by`` rule and runtime sanitizer.
    GUARDED_BY = {"_cache": "_lock"}

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise InvalidParameterError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._max_entries = max_entries
        self._lock = create_lock("BlockSizeCache._lock")
        self._cache: dict[str, int] = {}
        apply_guards(self)

    def get(self, series: str) -> int | None:
        """The last remembered ``L`` for ``series``, or ``None``."""
        with self._lock:
            return self._cache.get(series)

    def put(self, series: str, block_size: int) -> None:
        """Remember ``block_size`` for ``series`` (evicting FIFO if full)."""
        if block_size < 1:
            raise InvalidParameterError(
                f"block_size must be >= 1, got {block_size}"
            )
        with self._lock:
            self._cache.pop(series, None)
            while len(self._cache) >= self._max_entries:
                self._cache.pop(next(iter(self._cache)))
            self._cache[series] = block_size

    def invalidate(self, series: str) -> None:
        with self._lock:
            self._cache.pop(series, None)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)
